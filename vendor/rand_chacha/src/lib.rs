//! Vendored offline stand-in for the [`rand_chacha`] crate.
//!
//! Implements a genuine ChaCha keystream generator with 8 rounds
//! ([`ChaCha8Rng`]) behind the vendored `rand` traits. The keystream is
//! the RFC-8439 block function (with an 8-round core and a 64-bit block
//! counter); output-word order follows the block layout, which is *not*
//! guaranteed to be byte-compatible with upstream `rand_chacha` — the
//! workspace relies only on determinism and statistical quality, both of
//! which the real ChaCha core provides.
//!
//! [`rand_chacha`]: https://crates.io/crates/rand_chacha

#![forbid(unsafe_code)]

pub use rand::RngCore;

/// Re-export of the seeding traits under the path `rand_chacha::rand_core`
/// uses upstream.
pub mod rand_core {
    pub use rand::{RngCore, SeedableRng};
}

const ROUNDS: usize = 8;

#[inline(always)]
fn quarter_round(state: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(16);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(12);
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(8);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(7);
}

/// The ChaCha8 random number generator.
#[derive(Clone, Debug)]
pub struct ChaCha8Rng {
    /// Key words 0..8 of the initial state (constants and counter are
    /// reconstructed per block).
    key: [u32; 8],
    /// 64-bit block counter (state words 12–13).
    counter: u64,
    /// Buffered keystream block.
    block: [u32; 16],
    /// Next unread word index in `block`; 16 = exhausted.
    index: usize,
}

impl ChaCha8Rng {
    fn refill(&mut self) {
        const SIGMA: [u32; 4] = [0x6170_7865, 0x3320_646e, 0x7962_2d32, 0x6b20_6574];
        let mut s = [0u32; 16];
        s[0..4].copy_from_slice(&SIGMA);
        s[4..12].copy_from_slice(&self.key);
        s[12] = self.counter as u32;
        s[13] = (self.counter >> 32) as u32;
        s[14] = 0;
        s[15] = 0;
        let input = s;
        for _ in 0..ROUNDS / 2 {
            // Column round.
            quarter_round(&mut s, 0, 4, 8, 12);
            quarter_round(&mut s, 1, 5, 9, 13);
            quarter_round(&mut s, 2, 6, 10, 14);
            quarter_round(&mut s, 3, 7, 11, 15);
            // Diagonal round.
            quarter_round(&mut s, 0, 5, 10, 15);
            quarter_round(&mut s, 1, 6, 11, 12);
            quarter_round(&mut s, 2, 7, 8, 13);
            quarter_round(&mut s, 3, 4, 9, 14);
        }
        for (out, inp) in s.iter_mut().zip(input.iter()) {
            *out = out.wrapping_add(*inp);
        }
        self.block = s;
        self.index = 0;
        self.counter = self.counter.wrapping_add(1);
    }
}

impl rand::SeedableRng for ChaCha8Rng {
    type Seed = [u8; 32];

    fn from_seed(seed: [u8; 32]) -> Self {
        let mut key = [0u32; 8];
        for (i, chunk) in seed.chunks_exact(4).enumerate() {
            key[i] = u32::from_le_bytes(chunk.try_into().expect("4-byte chunk"));
        }
        ChaCha8Rng {
            key,
            counter: 0,
            block: [0; 16],
            index: 16,
        }
    }
}

impl RngCore for ChaCha8Rng {
    fn next_u32(&mut self) -> u32 {
        if self.index >= 16 {
            self.refill();
        }
        let w = self.block[self.index];
        self.index += 1;
        w
    }

    fn next_u64(&mut self) -> u64 {
        let lo = self.next_u32() as u64;
        let hi = self.next_u32() as u64;
        lo | (hi << 32)
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(4) {
            let b = self.next_u32().to_le_bytes();
            chunk.copy_from_slice(&b[..chunk.len()]);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = ChaCha8Rng::seed_from_u64(42);
        let mut b = ChaCha8Rng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = ChaCha8Rng::seed_from_u64(43);
        assert_ne!(ChaCha8Rng::seed_from_u64(42).next_u64(), c.next_u64());
    }

    #[test]
    fn from_seed_uses_all_key_bytes() {
        let mut s1 = [0u8; 32];
        let mut s2 = [0u8; 32];
        s2[31] = 1;
        assert_ne!(
            ChaCha8Rng::from_seed(s1).next_u64(),
            ChaCha8Rng::from_seed(s2).next_u64()
        );
        s1[0] = 7;
        assert_ne!(
            ChaCha8Rng::from_seed(s1).next_u64(),
            ChaCha8Rng::from_seed([0u8; 32]).next_u64()
        );
    }

    #[test]
    fn uniformity_smoke() {
        // Mean of u01 over many draws ≈ 0.5; bit balance ≈ 32.
        let mut rng = ChaCha8Rng::seed_from_u64(7);
        let n = 20_000;
        let mut acc = 0.0;
        let mut ones = 0u64;
        for _ in 0..n {
            acc += rng.gen::<f64>();
            ones += rng.next_u64().count_ones() as u64;
        }
        let mean = acc / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
        let avg_ones = ones as f64 / n as f64;
        assert!((avg_ones - 32.0).abs() < 0.1, "avg ones {avg_ones}");
    }

    #[test]
    fn chacha_core_differs_from_input() {
        // The block function must actually diffuse: consecutive blocks
        // share no obvious structure.
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let a: Vec<u32> = (0..16).map(|_| rng.next_u32()).collect();
        let b: Vec<u32> = (0..16).map(|_| rng.next_u32()).collect();
        assert_ne!(a, b);
        let same = a.iter().zip(&b).filter(|(x, y)| x == y).count();
        assert!(same <= 1, "blocks share {same} words");
    }
}
