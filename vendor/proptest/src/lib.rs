//! Vendored offline stand-in for the [`proptest`] crate.
//!
//! Supports the subset of the proptest surface this workspace's property
//! tests use: the [`proptest!`] macro, range and tuple strategies,
//! [`prop::collection::vec`], [`Strategy::prop_map`],
//! [`ProptestConfig::with_cases`], and the `prop_assert!` /
//! `prop_assert_eq!` / `prop_assume!` macros.
//!
//! Differences from upstream: cases are generated from a fixed
//! deterministic seed (reproducible across runs by construction, no
//! `PROPTEST_` env handling), and failing cases are reported with their
//! case index but **not shrunk**.
//!
//! [`proptest`]: https://crates.io/crates/proptest

#![forbid(unsafe_code)]

use std::ops::Range;

/// Outcome of one generated case.
#[derive(Debug)]
pub enum TestCaseError {
    /// The case did not satisfy a `prop_assume!` precondition.
    Reject,
    /// A `prop_assert*!` failed.
    Fail(String),
}

/// Runner configuration.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of random cases per test.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

impl ProptestConfig {
    /// A config running `cases` random cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

/// The deterministic case generator handed to strategies (SplitMix64).
#[derive(Clone, Debug)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seeds a generator.
    pub fn new(seed: u64) -> Self {
        TestRng { state: seed }
    }

    /// Next 64 uniformly random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform below `bound` (> 0).
    pub fn below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        let zone = u64::MAX - (u64::MAX % bound) - 1;
        loop {
            let v = self.next_u64();
            if v <= zone {
                return v % bound;
            }
        }
    }

    /// Uniform below `bound` (> 0), 128-bit.
    pub fn below_u128(&mut self, bound: u128) -> u128 {
        debug_assert!(bound > 0);
        if bound <= u64::MAX as u128 {
            return self.below(bound as u64) as u128;
        }
        let zone = u128::MAX - (u128::MAX % bound) - 1;
        loop {
            let v = ((self.next_u64() as u128) << 64) | self.next_u64() as u128;
            if v <= zone {
                return v % bound;
            }
        }
    }
}

/// A generator of random values of one type.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<U, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> S::Value {
        (**self).generate(rng)
    }
}

/// The [`Strategy::prop_map`] adapter.
#[derive(Clone, Debug)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;
    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

macro_rules! impl_int_strategy {
    ($($t:ty),* $(,)?) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                let span = (self.end as u128).wrapping_sub(self.start as u128);
                self.start.wrapping_add(rng.below_u128(span) as $t)
            }
        }
    )*};
}

impl_int_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Range<u128> {
    type Value = u128;
    fn generate(&self, rng: &mut TestRng) -> u128 {
        assert!(self.start < self.end, "empty strategy range");
        self.start + rng.below_u128(self.end - self.start)
    }
}

impl Strategy for Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty strategy range");
        let v = self.start + (self.end - self.start) * rng.unit_f64();
        if v < self.end {
            v
        } else {
            f64::from_bits(self.end.to_bits() - 1)
        }
    }
}

impl Strategy for Range<f32> {
    type Value = f32;
    fn generate(&self, rng: &mut TestRng) -> f32 {
        assert!(self.start < self.end, "empty strategy range");
        let v = self.start + (self.end - self.start) * rng.unit_f64() as f32;
        if v < self.end {
            v
        } else {
            f32::from_bits(self.end.to_bits() - 1)
        }
    }
}

impl<A: Strategy, B: Strategy> Strategy for (A, B) {
    type Value = (A::Value, B::Value);
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (self.0.generate(rng), self.1.generate(rng))
    }
}

impl<A: Strategy, B: Strategy, C: Strategy> Strategy for (A, B, C) {
    type Value = (A::Value, B::Value, C::Value);
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (
            self.0.generate(rng),
            self.1.generate(rng),
            self.2.generate(rng),
        )
    }
}

/// A range of collection sizes.
#[derive(Clone, Debug)]
pub struct SizeRange {
    lo: usize,
    hi: usize, // exclusive
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty size range");
        SizeRange {
            lo: r.start,
            hi: r.end,
        }
    }
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange { lo: n, hi: n + 1 }
    }
}

/// Collection strategies (`proptest::collection` subset).
pub mod collection {
    use super::{SizeRange, Strategy, TestRng};

    /// Strategy for `Vec`s with lengths drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    /// The [`vec`] strategy.
    #[derive(Clone, Debug)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.hi - self.size.lo) as u64;
            let len = self.size.lo
                + if span > 0 {
                    rng.below(span) as usize
                } else {
                    0
                };
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// The `prop::` module path used by the prelude (`prop::collection::vec`).
pub mod prop {
    pub use crate::collection;
}

/// Everything a property test needs in scope.
pub mod prelude {
    pub use crate::{
        prop, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest, ProptestConfig,
        Strategy, TestCaseError,
    };
}

/// Runs `cases` generated cases of one property (used by [`proptest!`];
/// public so the macro expansion can reach it).
pub fn run_cases(
    test_name: &str,
    cases: u32,
    mut case: impl FnMut(&mut TestRng) -> Result<(), TestCaseError>,
) {
    // Deterministic seed per test name (FNV-1a over the name).
    let mut seed: u64 = 0xcbf2_9ce4_8422_2325;
    for b in test_name.bytes() {
        seed ^= b as u64;
        seed = seed.wrapping_mul(0x1000_0000_01b3);
    }
    let mut rejected = 0u32;
    let max_rejects = cases.saturating_mul(16).max(1024);
    let mut ran = 0u32;
    let mut i = 0u32;
    while ran < cases {
        let mut rng = TestRng::new(seed ^ (i as u64).wrapping_mul(0xA24B_AED4_963E_E407));
        i += 1;
        match case(&mut rng) {
            Ok(()) => ran += 1,
            Err(TestCaseError::Reject) => {
                rejected += 1;
                assert!(
                    rejected <= max_rejects,
                    "{test_name}: too many prop_assume! rejections ({rejected})"
                );
            }
            Err(TestCaseError::Fail(msg)) => {
                panic!("{test_name}: property failed at case #{i}: {msg}")
            }
        }
    }
}

/// Declares property tests over generated inputs.
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($cfg:expr)]
        $(
            #[test]
            $(#[$meta:meta])*
            fn $name:ident($($arg:ident in $strat:expr),* $(,)?) $body:block
        )*
    ) => {
        $(
            #[test]
            $(#[$meta])*
            fn $name() {
                let cfg: $crate::ProptestConfig = $cfg;
                $crate::run_cases(stringify!($name), cfg.cases, |__proptest_rng| {
                    $(let $arg = $crate::Strategy::generate(&($strat), __proptest_rng);)*
                    $body
                    Ok(())
                });
            }
        )*
    };
    (
        $(
            #[test]
            $(#[$meta:meta])*
            fn $name:ident($($arg:ident in $strat:expr),* $(,)?) $body:block
        )*
    ) => {
        $crate::proptest! {
            #![proptest_config($crate::ProptestConfig::default())]
            $(
                #[test]
                $(#[$meta])*
                fn $name($($arg in $strat),*) $body
            )*
        }
    };
}

/// Asserts inside a property; failure fails the *case* with context.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::Fail(format!($($fmt)*)));
        }
    };
}

/// Asserts equality inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(a == b, "{:?} != {:?}", a, b);
    }};
    ($a:expr, $b:expr, $($fmt:tt)*) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(a == b, $($fmt)*);
    }};
}

/// Asserts inequality inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(a != b, "{:?} == {:?}", a, b);
    }};
}

/// Skips cases that do not satisfy a precondition.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::Reject);
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_in_bounds(x in 3u64..17, f in -1.0f64..1.0) {
            prop_assert!((3..17).contains(&x));
            prop_assert!((-1.0..1.0).contains(&f));
        }

        #[test]
        fn vec_lengths_respected(v in prop::collection::vec(0u32..5, 2..9)) {
            prop_assert!((2..9).contains(&v.len()));
            prop_assert!(v.iter().all(|&x| x < 5));
        }

        #[test]
        fn tuples_and_map(p in (0u32..10, 0u32..10).prop_map(|(a, b)| a + b)) {
            prop_assert!(p < 19, "sum {} out of range", p);
        }

        #[test]
        fn assume_skips(x in 0u64..100) {
            prop_assume!(x % 2 == 0);
            prop_assert_eq!(x % 2, 0);
        }
    }

    #[test]
    #[should_panic(expected = "property failed")]
    fn failures_panic_with_context() {
        crate::run_cases("always_fails", 4, |_| {
            Err(crate::TestCaseError::Fail("nope".into()))
        });
    }

    #[test]
    fn determinism() {
        let mut a = Vec::new();
        let mut b = Vec::new();
        crate::run_cases("det", 8, |rng| {
            a.push(rng.next_u64());
            Ok(())
        });
        crate::run_cases("det", 8, |rng| {
            b.push(rng.next_u64());
            Ok(())
        });
        assert_eq!(a, b);
    }
}
