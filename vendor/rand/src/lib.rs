//! Vendored offline stand-in for the [`rand`] crate (API subset of 0.8).
//!
//! The build environment has no access to a crates registry, so the
//! workspace vendors the small slice of `rand` it actually uses:
//! [`RngCore`], [`SeedableRng`], the [`Rng`] extension trait
//! (`gen`, `gen_range`, `gen_bool`) and [`seq::SliceRandom`]
//! (`choose`, `shuffle`). Streams are *not* bit-compatible with the
//! upstream crate — the workspace only relies on internal determinism
//! (same seed ⇒ same stream), never on upstream-exact values.
//!
//! [`rand`]: https://crates.io/crates/rand

#![forbid(unsafe_code)]

use std::ops::{Range, RangeInclusive};

/// A low-level source of uniformly random bits.
pub trait RngCore {
    /// The next 32 uniformly random bits.
    fn next_u32(&mut self) -> u32;
    /// The next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;
    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]);
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

/// An RNG constructible from a seed.
pub trait SeedableRng: Sized {
    /// The seed type (a byte array).
    type Seed: Sized + Default + AsMut<[u8]>;

    /// Creates the RNG from a full seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Creates the RNG from a `u64` by expanding it with SplitMix64
    /// (same construction upstream rand uses, though the resulting
    /// streams are not required to match upstream's).
    fn seed_from_u64(mut state: u64) -> Self {
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(8) {
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^= z >> 31;
            let bytes = z.to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
        Self::from_seed(seed)
    }
}

/// A type samplable uniformly from all of its values (`Rng::gen`).
pub trait Standard: Sized {
    /// Draws one value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for f64 {
    /// Uniform in `[0, 1)` with 53 bits of precision.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32() & 1 == 1
    }
}

/// A type with uniform sampling over ranges (mirrors rand's
/// `SampleUniform` so that `gen_range`'s type inference behaves the
/// same way: the output type unifies with the range's element type).
pub trait SampleUniform: Sized + PartialOrd {
    /// Uniform draw from `[lo, hi)` (`inclusive = false`) or `[lo, hi]`.
    fn sample_uniform<R: RngCore + ?Sized>(
        lo: Self,
        hi: Self,
        inclusive: bool,
        rng: &mut R,
    ) -> Self;
}

/// A range samplable by `Rng::gen_range`.
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        assert!(self.start < self.end, "cannot sample empty range");
        T::sample_uniform(self.start, self.end, false, rng)
    }
}

impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let (lo, hi) = self.into_inner();
        assert!(lo <= hi, "cannot sample empty range");
        T::sample_uniform(lo, hi, true, rng)
    }
}

/// Uniform `u64` below `bound` (> 0), by rejection from the zone of
/// widths that divide evenly — unbiased and cheap for all bounds.
fn uniform_u64_below<R: RngCore + ?Sized>(rng: &mut R, bound: u64) -> u64 {
    debug_assert!(bound > 0);
    if bound.is_power_of_two() {
        return rng.next_u64() & (bound - 1);
    }
    let zone = u64::MAX - (u64::MAX % bound) - 1;
    loop {
        let v = rng.next_u64();
        if v <= zone {
            return v % bound;
        }
    }
}

fn uniform_u128_below<R: RngCore + ?Sized>(rng: &mut R, bound: u128) -> u128 {
    debug_assert!(bound > 0);
    if bound <= u64::MAX as u128 {
        return uniform_u64_below(rng, bound as u64) as u128;
    }
    let zone = u128::MAX - (u128::MAX % bound) - 1;
    loop {
        let v = ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128;
        if v <= zone {
            return v % bound;
        }
    }
}

macro_rules! impl_int_uniform {
    ($($t:ty => $u:ty),* $(,)?) => {$(
        impl SampleUniform for $t {
            fn sample_uniform<R: RngCore + ?Sized>(lo: $t, hi: $t, inclusive: bool, rng: &mut R) -> $t {
                let span = (hi as $u).wrapping_sub(lo as $u) as u128;
                let span = if inclusive {
                    if span == u128::MAX {
                        // Whole-domain inclusive range: every bit pattern valid.
                        return uniform_u128_below(rng, u128::MAX) as $t;
                    }
                    span + 1
                } else {
                    span
                };
                lo.wrapping_add(uniform_u128_below(rng, span) as $t)
            }
        }
    )*};
}

impl_int_uniform!(
    u8 => u8, u16 => u16, u32 => u32, u64 => u64, u128 => u128, usize => usize,
    i8 => u8, i16 => u16, i32 => u32, i64 => u64, i128 => u128, isize => usize,
);

macro_rules! impl_float_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_uniform<R: RngCore + ?Sized>(lo: $t, hi: $t, _inclusive: bool, rng: &mut R) -> $t {
                let u: $t = Standard::sample(rng);
                // Clamp below `hi` so the half-open contract holds even
                // when rounding lands exactly on it.
                let v = lo + (hi - lo) * u;
                if v < hi || lo >= hi { v } else { lo + (hi - lo) * 0.5 }
            }
        }
    )*};
}

impl_float_uniform!(f32, f64);

/// The user-facing random-value API, blanket-implemented for every
/// [`RngCore`].
pub trait Rng: RngCore {
    /// A uniformly random value of `T`.
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// A uniformly random value in `range`.
    fn gen_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T {
        range.sample_single(self)
    }

    /// `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "p = {p} out of [0, 1]");
        let u: f64 = Standard::sample(self);
        u < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Sequence-related random operations (`rand::seq` subset).
pub mod seq {
    use super::{uniform_u64_below, Rng};

    /// Random operations on slices.
    pub trait SliceRandom {
        /// The element type.
        type Item;

        /// A uniformly random element, or `None` if empty.
        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;

        /// Shuffles the slice in place (Fisher–Yates).
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                self.get(uniform_u64_below(rng, self.len() as u64) as usize)
            }
        }

        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = uniform_u64_below(rng, i as u64 + 1) as usize;
                self.swap(i, j);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::seq::SliceRandom;
    use super::*;

    struct Counter(u64);
    impl RngCore for Counter {
        fn next_u32(&mut self) -> u32 {
            self.next_u64() as u32
        }
        fn next_u64(&mut self) -> u64 {
            // SplitMix64: decent equidistribution for the tests below.
            self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.0;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
        fn fill_bytes(&mut self, dest: &mut [u8]) {
            for chunk in dest.chunks_mut(8) {
                let b = self.next_u64().to_le_bytes();
                chunk.copy_from_slice(&b[..chunk.len()]);
            }
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = Counter(1);
        for _ in 0..2000 {
            let v = rng.gen_range(3..17usize);
            assert!((3..17).contains(&v));
            let f = rng.gen_range(-2.5..2.5f64);
            assert!((-2.5..2.5).contains(&f));
            let i = rng.gen_range(-5..=5i64);
            assert!((-5..=5).contains(&i));
        }
    }

    #[test]
    fn all_values_reachable_small_range() {
        let mut rng = Counter(2);
        let mut seen = [false; 5];
        for _ in 0..500 {
            seen[rng.gen_range(0..5usize)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn gen_bool_frequency() {
        let mut rng = Counter(3);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2000..3000).contains(&hits), "hits = {hits}");
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut rng = Counter(4);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(
            v, sorted,
            "50 elements staying sorted is astronomically unlikely"
        );
    }

    #[test]
    fn choose_none_on_empty() {
        let mut rng = Counter(5);
        let empty: [u8; 0] = [];
        assert!(empty.choose(&mut rng).is_none());
    }
}
