//! The thread pool: persistent workers draining *parallel regions*
//! (chunk-claimed data-parallel loops) and *scope tasks* (boxed
//! heterogeneous jobs).
//!
//! # Design
//!
//! A pool of `N` threads is the calling thread plus `N - 1` spawned
//! workers. Data-parallel loops (`for_each` on the indexed iterators)
//! compile down to [`run_region`]: the caller publishes a [`Region`] —
//! a stack-allocated descriptor holding a type-erased chunk executor
//! and an atomic chunk cursor — wakes the workers, and then claims
//! chunks itself alongside them. Claiming is a single `fetch_add`, so
//! whichever thread is free takes the next chunk: this is work
//! stealing at chunk granularity, with no per-task allocation and no
//! per-task queue. The caller leaves the region only after every
//! worker has (`active == 0`), which is what makes lending
//! stack-borrowed closures to the workers sound.
//!
//! Scope tasks ([`scope`]/[`Scope::spawn`]) are the general escape
//! hatch: boxed jobs pushed to a shared queue, drained by idle workers
//! and by the scope owner itself while it waits. They allocate (one
//! `Box` per task) and are therefore not used on the round engine's
//! steady-state path, which goes exclusively through regions.
//!
//! # Determinism
//!
//! The pool guarantees nothing about *which* thread runs which chunk —
//! by design. Callers that need deterministic output must make each
//! chunk's effect a pure function of its index range (the gossip
//! engine derives all randomness from `(seed, round, node, phase)` and
//! writes only to disjoint per-node rows, so any chunk schedule
//! produces identical bytes).

use std::any::Any;
use std::cell::RefCell;
use std::collections::VecDeque;
use std::fmt;
use std::marker::PhantomData;
use std::panic::{self, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, OnceLock};
use std::thread;
use std::time::Duration;

/// A published data-parallel loop. Lives on the publishing thread's
/// stack for the duration of [`run_region`].
struct Region {
    /// The chunk executor, lifetime-erased. Only dereferenced by
    /// threads registered in `Inner::active`, which the publisher
    /// waits on before its stack frame (and the real closure behind
    /// this pointer) can go away.
    exec: *const (dyn Fn(usize) + Sync),
    /// Total chunks; claimed indices `>= chunks` mean "done".
    chunks: usize,
    /// The claim cursor. `fetch_add` hands each chunk to exactly one
    /// thread; `Relaxed` suffices because claimers share no data
    /// through the cursor itself (completion visibility rides on the
    /// pool mutex).
    next: AtomicUsize,
    /// First panic payload from any chunk, rethrown by the publisher.
    panic: Mutex<Option<Box<dyn Any + Send>>>,
}

/// A `*const Region` that may cross the worker handoff. Safety is the
/// region protocol itself (see [`Region::exec`]).
#[derive(Clone, Copy)]
struct RegionPtr(*const Region);
// SAFETY: the pointee outlives every dereference by the active-count
// protocol; Region's fields are Sync (atomics + Mutex).
unsafe impl Send for RegionPtr {}

/// A queued scope task. The closure is lifetime-erased to `'static`;
/// [`scope`] refuses to return before its counter drains, which keeps
/// every borrow inside the closure alive while it can still run.
struct Task {
    job: Box<dyn FnOnce() + Send>,
}

/// Pool state guarded by the one pool mutex.
struct Inner {
    /// The currently published region, if any. One region at a time:
    /// a second publisher (necessarily another thread, or a nested
    /// loop on a participating thread) runs its loop inline instead —
    /// always correct for independent chunks, merely not accelerated.
    region: Option<RegionPtr>,
    /// Bumped on every publication so a worker that already drained
    /// this region does not re-enter it.
    generation: u64,
    /// Threads currently inside `work_region` for the published
    /// region. The publisher waits for 0 before unpublishing.
    active: usize,
    /// Queued scope tasks.
    tasks: VecDeque<Task>,
    shutdown: bool,
}

pub(crate) struct Shared {
    inner: Mutex<Inner>,
    /// Workers sleep here; notified on region publication, task
    /// arrival, and shutdown.
    work_cv: Condvar,
    /// Region publishers sleep here waiting for `active == 0`.
    done_cv: Condvar,
    /// Total parallelism including the installing/calling thread.
    threads: usize,
}

impl Shared {
    pub(crate) fn threads(&self) -> usize {
        self.threads
    }
}

thread_local! {
    /// The pool the current thread works for ([`ThreadPool::install`]
    /// scopes, or the worker's own pool). `None` means the lazy global
    /// pool.
    static CURRENT: RefCell<Option<Arc<Shared>>> = const { RefCell::new(None) };
}

/// The pool `par_*` calls on this thread target: the installed pool if
/// inside [`ThreadPool::install`], else the global one (created on
/// first use with [`std::thread::available_parallelism`] threads).
pub(crate) fn current_shared() -> Arc<Shared> {
    CURRENT
        .with(|c| c.borrow().clone())
        .unwrap_or_else(|| Arc::clone(&global_pool().shared))
}

static GLOBAL: OnceLock<ThreadPool> = OnceLock::new();

fn global_pool() -> &'static ThreadPool {
    GLOBAL.get_or_init(|| {
        ThreadPoolBuilder::new()
            .build()
            .expect("failed to build the global thread pool")
    })
}

/// The number of threads `par_*` calls made from this thread will use
/// (the installed pool's size, or the global pool's).
pub fn current_num_threads() -> usize {
    current_shared().threads
}

/// Drains chunks of the region until the cursor runs out. Panics from
/// the executor are caught and parked in the region (first one wins);
/// the publisher rethrows after the region completes, so a panicking
/// chunk never tears down a worker and never leaves the pool wedged.
///
/// # Safety
///
/// `region` must point to a live [`Region`], which the caller
/// guarantees either by owning it (the publisher) or by being counted
/// in `Inner::active` (a worker).
unsafe fn work_region(region: *const Region) {
    // SAFETY: live per the function contract.
    let region = unsafe { &*region };
    // SAFETY: `exec` outlives the region per the region protocol.
    let exec = unsafe { &*region.exec };
    loop {
        let k = region.next.fetch_add(1, Ordering::Relaxed);
        if k >= region.chunks {
            return;
        }
        if let Err(payload) = panic::catch_unwind(AssertUnwindSafe(|| exec(k))) {
            region.panic.lock().unwrap().get_or_insert(payload);
        }
    }
}

fn worker_loop(shared: Arc<Shared>) {
    // A worker's ambient pool is its own: nested `par_*` calls from
    // inside a chunk or task resolve here (and then run inline via the
    // busy-region fallback rather than deadlocking).
    CURRENT.with(|c| *c.borrow_mut() = Some(Arc::clone(&shared)));
    let mut seen_generation = 0u64;
    let mut guard = shared.inner.lock().unwrap();
    loop {
        if guard.shutdown {
            return;
        }
        if let Some(region) = guard.region {
            if guard.generation != seen_generation {
                seen_generation = guard.generation;
                guard.active += 1;
                drop(guard);
                // SAFETY: we are counted in `active`, so the publisher
                // keeps the region alive until we decrement.
                unsafe { work_region(region.0) };
                guard = shared.inner.lock().unwrap();
                guard.active -= 1;
                if guard.active == 0 {
                    shared.done_cv.notify_all();
                }
                continue;
            }
        }
        if let Some(task) = guard.tasks.pop_front() {
            drop(guard);
            (task.job)();
            guard = shared.inner.lock().unwrap();
            continue;
        }
        guard = shared.work_cv.wait(guard).unwrap();
    }
}

/// Runs `chunks` invocations of `exec` (each exactly once) across the
/// pool, returning when all are done. Single-thread pools, and calls
/// made while this pool is already mid-region, execute inline.
pub(crate) fn run_region(shared: &Shared, chunks: usize, exec: &(dyn Fn(usize) + Sync)) {
    let run_inline = || {
        for k in 0..chunks {
            exec(k);
        }
    };
    if chunks == 0 {
        return;
    }
    if shared.threads <= 1 || chunks == 1 {
        run_inline();
        return;
    }
    // SAFETY (of the transmute): erases the borrow lifetime of `exec`
    // into the raw field type. The publisher below does not return
    // until `active == 0`, and workers only dereference while counted
    // in `active`, so no dereference outlives the real borrow.
    #[allow(clippy::missing_transmute_annotations)]
    let erased: *const (dyn Fn(usize) + Sync) =
        unsafe { std::mem::transmute(exec as *const (dyn Fn(usize) + Sync)) };
    let region = Region {
        exec: erased,
        chunks,
        next: AtomicUsize::new(0),
        panic: Mutex::new(None),
    };
    {
        let mut guard = shared.inner.lock().unwrap();
        if guard.region.is_some() {
            // Another loop is in flight on this pool (a nested
            // `for_each`, or a concurrent caller sharing the pool).
            // Chunks are independent, so inline execution is correct.
            drop(guard);
            run_inline();
            return;
        }
        guard.region = Some(RegionPtr(&region));
        guard.generation = guard.generation.wrapping_add(1);
        shared.work_cv.notify_all();
    }
    // Publisher participates in its own region.
    // SAFETY: `region` is alive — it is this frame's local.
    unsafe { work_region(&region) };
    // All chunks are claimed; wait for workers still finishing theirs.
    // Entry and exit both happen under the mutex, so once `active` is
    // observed 0 here no worker can still touch the region.
    let mut guard = shared.inner.lock().unwrap();
    while guard.active > 0 {
        guard = shared.done_cv.wait(guard).unwrap();
    }
    guard.region = None;
    drop(guard);
    let payload = region.panic.lock().unwrap().take();
    if let Some(payload) = payload {
        panic::resume_unwind(payload);
    }
}

/// Error building a [`ThreadPool`] (thread spawn failure).
#[derive(Debug)]
pub struct ThreadPoolBuildError {
    msg: String,
}

impl fmt::Display for ThreadPoolBuildError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "thread pool build error: {}", self.msg)
    }
}

impl std::error::Error for ThreadPoolBuildError {}

/// Builds a [`ThreadPool`].
#[derive(Debug, Default)]
pub struct ThreadPoolBuilder {
    num_threads: usize,
}

impl ThreadPoolBuilder {
    /// A builder with the default (automatic) thread count.
    pub fn new() -> Self {
        Self::default()
    }

    /// Requests a total parallelism of `num_threads` (`0` = automatic,
    /// [`std::thread::available_parallelism`]). A pool of `n` spawns
    /// `n - 1` workers; the thread calling into the pool is the nth.
    pub fn num_threads(mut self, num_threads: usize) -> Self {
        self.num_threads = num_threads;
        self
    }

    /// Builds the pool, spawning its workers eagerly.
    pub fn build(self) -> Result<ThreadPool, ThreadPoolBuildError> {
        let threads = if self.num_threads == 0 {
            thread::available_parallelism().map_or(1, usize::from)
        } else {
            self.num_threads
        };
        let shared = Arc::new(Shared {
            inner: Mutex::new(Inner {
                region: None,
                generation: 0,
                active: 0,
                tasks: VecDeque::new(),
                shutdown: false,
            }),
            work_cv: Condvar::new(),
            done_cv: Condvar::new(),
            threads,
        });
        let mut workers = Vec::with_capacity(threads.saturating_sub(1));
        for i in 1..threads {
            let worker_shared = Arc::clone(&shared);
            let spawned = thread::Builder::new()
                .name(format!("rayon-worker-{i}"))
                .spawn(move || worker_loop(worker_shared));
            match spawned {
                Ok(handle) => workers.push(handle),
                Err(e) => {
                    shutdown(&shared, &mut workers);
                    return Err(ThreadPoolBuildError { msg: e.to_string() });
                }
            }
        }
        Ok(ThreadPool { shared, workers })
    }
}

fn shutdown(shared: &Shared, workers: &mut Vec<thread::JoinHandle<()>>) {
    shared.inner.lock().unwrap().shutdown = true;
    shared.work_cv.notify_all();
    for handle in workers.drain(..) {
        let _ = handle.join();
    }
}

/// A real thread pool: persistent workers executing parallel regions
/// and scope tasks. See the module docs for the execution model.
pub struct ThreadPool {
    shared: Arc<Shared>,
    workers: Vec<thread::JoinHandle<()>>,
}

impl fmt::Debug for ThreadPool {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ThreadPool")
            .field("threads", &self.shared.threads)
            .finish()
    }
}

impl ThreadPool {
    /// Executes `op` with this pool installed as the current thread's
    /// pool: `par_*` calls and [`scope`]s under `op` use this pool.
    /// Restores the previously installed pool on exit, panic included.
    pub fn install<R>(&self, op: impl FnOnce() -> R) -> R {
        struct Restore(Option<Arc<Shared>>);
        impl Drop for Restore {
            fn drop(&mut self) {
                let prev = self.0.take();
                CURRENT.with(|c| *c.borrow_mut() = prev);
            }
        }
        let prev = CURRENT.with(|c| c.replace(Some(Arc::clone(&self.shared))));
        let _restore = Restore(prev);
        op()
    }

    /// Total parallelism of this pool (workers + the calling thread).
    pub fn current_num_threads(&self) -> usize {
        self.shared.threads
    }
}

impl Drop for ThreadPool {
    fn drop(&mut self) {
        shutdown(&self.shared, &mut self.workers);
    }
}

/// Completion and panic accounting for one [`scope`]. Stack-allocated
/// in [`scope`]; spawned tasks hold a raw pointer, kept valid because
/// `scope` does not return before `count` drains to zero.
struct ScopeState {
    /// Spawned-but-not-finished task count.
    count: Mutex<usize>,
    cv: Condvar,
    /// First panic payload from any task in this scope.
    panic: Mutex<Option<Box<dyn Any + Send>>>,
}

/// A spawn handle tied to a stack frame, in the style of rayon's
/// `Scope`: tasks may borrow anything that outlives the [`scope`]
/// call, and have all run when `scope` returns.
pub struct Scope<'scope> {
    shared: Arc<Shared>,
    state: *const ScopeState,
    /// Invariant over `'scope`, like rayon: the scope must not shrink.
    marker: PhantomData<&'scope mut &'scope ()>,
}

// SAFETY: the raw `state` pointer is valid for the whole scope (the
// owning `scope` call outlives every spawned task), and `ScopeState`
// is all Sync primitives.
unsafe impl Send for Scope<'_> {}

impl<'scope> Scope<'scope> {
    fn state(&self) -> &ScopeState {
        // SAFETY: valid for the scope's lifetime, see `Scope` docs.
        unsafe { &*self.state }
    }

    /// Spawns `task` into the pool. It runs at most once, exactly once
    /// unless the process dies first, possibly on the spawning thread
    /// itself (while the scope waits), and may itself spawn.
    pub fn spawn<F>(&self, task: F)
    where
        F: FnOnce(&Scope<'scope>) + Send + 'scope,
    {
        *self.state().count.lock().unwrap() += 1;
        let handle = Scope {
            shared: Arc::clone(&self.shared),
            state: self.state,
            marker: PhantomData,
        };
        let job: Box<dyn FnOnce() + Send + 'scope> = Box::new(move || {
            let result = panic::catch_unwind(AssertUnwindSafe(|| task(&handle)));
            let state = handle.state();
            if let Err(payload) = result {
                state.panic.lock().unwrap().get_or_insert(payload);
            }
            let mut count = state.count.lock().unwrap();
            *count -= 1;
            if *count == 0 {
                state.cv.notify_all();
            }
        });
        // SAFETY: erases `'scope` to `'static` so the job can sit in
        // the shared queue. The owning `scope` call waits for `count`
        // to reach zero before returning, so every borrow in the job
        // outlives its execution.
        let job: Box<dyn FnOnce() + Send> = unsafe { std::mem::transmute(job) };
        let mut guard = self.shared.inner.lock().unwrap();
        guard.tasks.push_back(Task { job });
        drop(guard);
        self.shared.work_cv.notify_one();
    }

    /// Blocks until this scope's task count reaches zero, running
    /// queued tasks (any scope's — progress is progress) while
    /// waiting so that spawn-from-task chains cannot deadlock even
    /// when every worker is busy.
    fn wait_all(&self) {
        let state = self.state();
        loop {
            if *state.count.lock().unwrap() == 0 {
                return;
            }
            let task = self.shared.inner.lock().unwrap().tasks.pop_front();
            if let Some(task) = task {
                (task.job)();
                continue;
            }
            let count = state.count.lock().unwrap();
            if *count == 0 {
                return;
            }
            // Timed wait: completion notifies `cv`, but a task spawned
            // after we found the queue empty does not, so poll.
            let (guard, _) = state
                .cv
                .wait_timeout(count, Duration::from_millis(1))
                .unwrap();
            drop(guard);
        }
    }
}

/// Creates a scope: `op` may spawn tasks borrowing anything that
/// outlives the call, and every task has finished when `scope`
/// returns. Runs on the current thread's pool ([`ThreadPool::install`]
/// or the global pool). Panics propagate: `op`'s own panic first,
/// otherwise the first task panic.
pub fn scope<'scope, OP, R>(op: OP) -> R
where
    OP: FnOnce(&Scope<'scope>) -> R,
{
    let state = ScopeState {
        count: Mutex::new(0),
        cv: Condvar::new(),
        panic: Mutex::new(None),
    };
    let scope = Scope {
        shared: current_shared(),
        state: &state,
        marker: PhantomData,
    };
    let result = panic::catch_unwind(AssertUnwindSafe(|| op(&scope)));
    scope.wait_all();
    let task_panic = state.panic.lock().unwrap().take();
    match result {
        Err(payload) => panic::resume_unwind(payload),
        Ok(value) => {
            if let Some(payload) = task_panic {
                panic::resume_unwind(payload);
            }
            value
        }
    }
}
