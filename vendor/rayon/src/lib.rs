//! Vendored minimal [`rayon`]: a real work-stealing thread pool behind
//! the rayon API surface this workspace uses.
//!
//! The build environment has no crates-registry access, so this crate
//! provides — with genuine multi-threaded execution, not the former
//! sequential stand-in — the entry points the workspace calls:
//!
//! - [`prelude::ParallelSliceMut::par_iter_mut`] /
//!   [`prelude::ParallelSlice::par_iter`] with the
//!   [`zip`](prelude::IndexedParallelIterator::zip) /
//!   [`enumerate`](prelude::IndexedParallelIterator::enumerate) /
//!   [`for_each`](prelude::IndexedParallelIterator::for_each) chain,
//!   executed as dynamically claimed contiguous chunks across the pool;
//! - [`ThreadPoolBuilder`] / [`ThreadPool::install`] /
//!   [`current_num_threads`] with rayon's semantics (an installed pool
//!   scopes `par_*` calls; otherwise a lazy global pool sized by
//!   [`std::thread::available_parallelism`]);
//! - [`scope`] for heterogeneous borrowed tasks.
//!
//! Two properties matter to this workspace beyond plain parallelism:
//!
//! 1. **Allocation-free steady state.** Parallel loops dispatch through
//!    a stack-published region descriptor and an atomic chunk cursor —
//!    no boxed jobs, no channels — so the gossip engine's zero-alloc
//!    round guarantee survives on the parallel path (asserted by a
//!    counting-allocator test in `gossip-sim`).
//! 2. **Schedule-independence is the caller's job, and checkable.** The
//!    pool intentionally randomizes nothing but guarantees each index
//!    is produced exactly once; the engine's byte-identical seq/par
//!    contract rests on per-node RNG derivation plus disjoint `&mut`
//!    rows, and is exercised against real interleavings by the
//!    `par_determinism` suite.
//!
//! Swapping in crates.io rayon remains a manifest-only change for the
//! call sites above.
//!
//! [`rayon`]: https://crates.io/crates/rayon

#![deny(unsafe_op_in_unsafe_fn)]

mod iter;
mod pool;

pub use pool::{
    current_num_threads, scope, Scope, ThreadPool, ThreadPoolBuildError, ThreadPoolBuilder,
};

/// The rayon prelude: traits that add `par_*` methods.
pub mod prelude {
    pub use crate::iter::{
        Enumerate, IndexedParallelIterator, ParIter, ParIterMut, ParallelSlice, ParallelSliceMut,
        Zip,
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use super::ThreadPoolBuilder;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn install_scopes_the_pool_and_reports_its_size() {
        let pool = ThreadPoolBuilder::new().num_threads(4).build().unwrap();
        assert_eq!(pool.current_num_threads(), 4);
        assert_eq!(pool.install(|| 6 * 7), 42);
        assert_eq!(pool.install(super::current_num_threads), 4);
        let auto = ThreadPoolBuilder::new().build().unwrap();
        assert!(auto.current_num_threads() >= 1);
    }

    #[test]
    fn par_chains_visit_every_index_once_with_correct_items() {
        let pool = ThreadPoolBuilder::new().num_threads(4).build().unwrap();
        let n = 10_000;
        let mut v: Vec<u64> = vec![0; n];
        let extra: Vec<u64> = (0..n as u64).map(|x| x * 3).collect();
        let visits: Vec<AtomicUsize> = (0..n).map(|_| AtomicUsize::new(0)).collect();
        pool.install(|| {
            v.par_iter_mut()
                .zip(extra.par_iter())
                .enumerate()
                .for_each(|(i, (slot, x))| {
                    visits[i].fetch_add(1, Ordering::Relaxed);
                    *slot = i as u64 + x;
                });
        });
        assert!(visits.iter().all(|c| c.load(Ordering::Relaxed) == 1));
        assert!(v.iter().enumerate().all(|(i, &x)| x == i as u64 * 4));
        let total: u64 = {
            let sum = AtomicUsize::new(0);
            pool.install(|| {
                v.par_iter().for_each(|&x| {
                    sum.fetch_add(x as usize, Ordering::Relaxed);
                })
            });
            sum.load(Ordering::Relaxed) as u64
        };
        assert_eq!(total, v.iter().sum::<u64>());
    }

    #[test]
    fn zip_stops_at_the_shorter_side() {
        let pool = ThreadPoolBuilder::new().num_threads(2).build().unwrap();
        let mut a = [0u32; 7];
        let b = [1u32; 5];
        pool.install(|| {
            a.par_iter_mut()
                .zip(b.par_iter())
                .for_each(|(slot, x)| *slot = *x);
        });
        assert_eq!(a, [1, 1, 1, 1, 1, 0, 0]);
    }
}
