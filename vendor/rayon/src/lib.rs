//! Vendored offline stand-in for the [`rayon`] crate.
//!
//! The build environment has no crates-registry access, so this crate
//! provides the `par_iter` entry points the workspace uses —
//! [`prelude::IntoParallelIterator::into_par_iter`] and
//! [`prelude::ParallelSliceMut::par_iter_mut`] — as thin wrappers over
//! the corresponding **sequential** std iterators. Chained adapters
//! (`map`, `zip`, `enumerate`, `collect`) are then the plain
//! [`Iterator`] ones.
//!
//! Semantically this is sound everywhere in the workspace: the gossip
//! simulator derives every node's RNG stream from `(seed, round, node,
//! phase)` precisely so that results do not depend on execution order,
//! and its `parallel` flag is documented as a performance knob only.
//! When a real `rayon` is available again, deleting this vendor
//! directory and pointing the manifests back at crates.io restores true
//! data parallelism with no source changes.
//!
//! [`rayon`]: https://crates.io/crates/rayon

#![forbid(unsafe_code)]

/// The rayon prelude: traits that add `par_*` methods.
pub mod prelude {
    /// Conversion into a (sequentially executed) "parallel" iterator.
    pub trait IntoParallelIterator: IntoIterator + Sized {
        /// The stand-in for `rayon`'s `into_par_iter`: the sequential
        /// iterator of `self`.
        fn into_par_iter(self) -> Self::IntoIter {
            self.into_iter()
        }
    }

    impl<I: IntoIterator + Sized> IntoParallelIterator for I {}

    /// Mutable "parallel" slice iteration.
    pub trait ParallelSliceMut<T> {
        /// The stand-in for `rayon`'s `par_iter_mut`: the sequential
        /// mutable iterator.
        fn par_iter_mut(&mut self) -> std::slice::IterMut<'_, T>;
    }

    impl<T> ParallelSliceMut<T> for [T] {
        fn par_iter_mut(&mut self) -> std::slice::IterMut<'_, T> {
            self.iter_mut()
        }
    }

    /// Shared "parallel" slice iteration.
    pub trait ParallelSlice<T> {
        /// The stand-in for `rayon`'s `par_iter`: the sequential iterator.
        fn par_iter(&self) -> std::slice::Iter<'_, T>;
    }

    impl<T> ParallelSlice<T> for [T] {
        fn par_iter(&self) -> std::slice::Iter<'_, T> {
            self.iter()
        }
    }
}

/// Error building a [`ThreadPool`] (never produced by the stand-in,
/// which has no resources to fail to acquire; present so caller code
/// written against real rayon's fallible `build()` compiles unchanged).
#[derive(Debug)]
pub struct ThreadPoolBuildError(());

impl std::fmt::Display for ThreadPoolBuildError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "thread pool build error (unreachable in the stand-in)")
    }
}

impl std::error::Error for ThreadPoolBuildError {}

/// Stand-in for rayon's `ThreadPoolBuilder`: records the requested
/// thread count but builds a pool that executes everything on the
/// calling thread (matching the sequential `par_*` entry points above).
#[derive(Debug, Default)]
pub struct ThreadPoolBuilder {
    num_threads: usize,
}

impl ThreadPoolBuilder {
    /// A builder with the default (automatic) thread count.
    pub fn new() -> Self {
        Self::default()
    }

    /// Requests `num_threads` worker threads (`0` = automatic).
    pub fn num_threads(mut self, num_threads: usize) -> Self {
        self.num_threads = num_threads;
        self
    }

    /// Builds the pool. The stand-in never fails.
    pub fn build(self) -> Result<ThreadPool, ThreadPoolBuildError> {
        Ok(ThreadPool {
            num_threads: if self.num_threads == 0 {
                1
            } else {
                self.num_threads
            },
        })
    }
}

/// Stand-in for rayon's `ThreadPool`: remembers its nominal size and
/// runs installed closures on the calling thread.
#[derive(Debug)]
pub struct ThreadPool {
    num_threads: usize,
}

impl ThreadPool {
    /// Executes `op` "inside" the pool (on the calling thread here;
    /// with real rayon, `par_*` calls under `op` use this pool).
    pub fn install<R>(&self, op: impl FnOnce() -> R) -> R {
        op()
    }

    /// The nominal worker count this pool was built with.
    pub fn current_num_threads(&self) -> usize {
        self.num_threads
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use super::ThreadPoolBuilder;

    #[test]
    fn thread_pool_stub_installs_on_the_calling_thread() {
        let pool = ThreadPoolBuilder::new().num_threads(4).build().unwrap();
        assert_eq!(pool.current_num_threads(), 4);
        assert_eq!(pool.install(|| 6 * 7), 42);
        let auto = ThreadPoolBuilder::new().build().unwrap();
        assert_eq!(auto.current_num_threads(), 1);
    }

    #[test]
    fn entry_points_behave_like_std() {
        let doubled: Vec<i32> = (0..5).into_par_iter().map(|x| x * 2).collect();
        assert_eq!(doubled, vec![0, 2, 4, 6, 8]);

        let mut v = vec![1, 2, 3];
        let extra = vec![10, 20, 30];
        let out: Vec<i32> = v
            .par_iter_mut()
            .zip(extra.into_par_iter())
            .enumerate()
            .map(|(i, (a, b))| {
                *a += b;
                *a + i as i32
            })
            .collect();
        assert_eq!(v, vec![11, 22, 33]);
        assert_eq!(out, vec![11, 23, 35]);
        assert_eq!(v.par_iter().sum::<i32>(), 66);
    }
}
