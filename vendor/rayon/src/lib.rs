//! Vendored offline stand-in for the [`rayon`] crate.
//!
//! The build environment has no crates-registry access, so this crate
//! provides the `par_iter` entry points the workspace uses —
//! [`prelude::IntoParallelIterator::into_par_iter`] and
//! [`prelude::ParallelSliceMut::par_iter_mut`] — as thin wrappers over
//! the corresponding **sequential** std iterators. Chained adapters
//! (`map`, `zip`, `enumerate`, `collect`) are then the plain
//! [`Iterator`] ones.
//!
//! Semantically this is sound everywhere in the workspace: the gossip
//! simulator derives every node's RNG stream from `(seed, round, node,
//! phase)` precisely so that results do not depend on execution order,
//! and its `parallel` flag is documented as a performance knob only.
//! When a real `rayon` is available again, deleting this vendor
//! directory and pointing the manifests back at crates.io restores true
//! data parallelism with no source changes.
//!
//! [`rayon`]: https://crates.io/crates/rayon

#![forbid(unsafe_code)]

/// The rayon prelude: traits that add `par_*` methods.
pub mod prelude {
    /// Conversion into a (sequentially executed) "parallel" iterator.
    pub trait IntoParallelIterator: IntoIterator + Sized {
        /// The stand-in for `rayon`'s `into_par_iter`: the sequential
        /// iterator of `self`.
        fn into_par_iter(self) -> Self::IntoIter {
            self.into_iter()
        }
    }

    impl<I: IntoIterator + Sized> IntoParallelIterator for I {}

    /// Mutable "parallel" slice iteration.
    pub trait ParallelSliceMut<T> {
        /// The stand-in for `rayon`'s `par_iter_mut`: the sequential
        /// mutable iterator.
        fn par_iter_mut(&mut self) -> std::slice::IterMut<'_, T>;
    }

    impl<T> ParallelSliceMut<T> for [T] {
        fn par_iter_mut(&mut self) -> std::slice::IterMut<'_, T> {
            self.iter_mut()
        }
    }

    /// Shared "parallel" slice iteration.
    pub trait ParallelSlice<T> {
        /// The stand-in for `rayon`'s `par_iter`: the sequential iterator.
        fn par_iter(&self) -> std::slice::Iter<'_, T>;
    }

    impl<T> ParallelSlice<T> for [T] {
        fn par_iter(&self) -> std::slice::Iter<'_, T> {
            self.iter()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn entry_points_behave_like_std() {
        let doubled: Vec<i32> = (0..5).into_par_iter().map(|x| x * 2).collect();
        assert_eq!(doubled, vec![0, 2, 4, 6, 8]);

        let mut v = vec![1, 2, 3];
        let extra = vec![10, 20, 30];
        let out: Vec<i32> = v
            .par_iter_mut()
            .zip(extra.into_par_iter())
            .enumerate()
            .map(|(i, (a, b))| {
                *a += b;
                *a + i as i32
            })
            .collect();
        assert_eq!(v, vec![11, 22, 33]);
        assert_eq!(out, vec![11, 23, 35]);
        assert_eq!(v.par_iter().sum::<i32>(), 66);
    }
}
