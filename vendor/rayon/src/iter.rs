//! Indexed parallel iterators over slices: `par_iter` /
//! `par_iter_mut` leaves plus the `zip` / `enumerate` adapters and a
//! chunk-parallel `for_each`.
//!
//! The design is narrower than real rayon's producer/consumer tree
//! but executes the same way the engine needs: an iterator chain is a
//! cheap *random-access descriptor* (`len` + unchecked `get(i)`), and
//! [`IndexedParallelIterator::for_each`] partitions `0..len` into
//! contiguous chunks which pool threads claim dynamically
//! ([`crate::pool`]). `get` hands out disjoint `&mut` items across
//! threads; soundness comes from the claim cursor handing every index
//! to exactly one chunk, exactly once.
//!
//! Items are produced in index order *within* a chunk; chunks
//! complete in no particular order. Callers needing deterministic
//! results must make item effects independent of completion order
//! (disjoint writes — which `&mut` items enforce — and no shared
//! accumulators).

use crate::pool;

/// A random-access parallel iterator of known length, driven in
/// contiguous index chunks by [`for_each`](Self::for_each).
pub trait IndexedParallelIterator: Sized + Sync {
    /// The per-index item. `Send` because items cross into workers.
    type Item: Send;

    /// Number of items.
    fn len(&self) -> usize;

    /// Whether there are no items.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Produces the item at `i`.
    ///
    /// # Safety
    ///
    /// `i < self.len()`, and across all concurrent calls on this
    /// value each index must be produced at most once (items may be
    /// aliasing-exclusive `&mut` borrows).
    unsafe fn get(&self, i: usize) -> Self::Item;

    /// Pairs this iterator with `other` index-by-index; the result is
    /// as long as the shorter of the two.
    fn zip<B: IndexedParallelIterator>(self, other: B) -> Zip<Self, B> {
        Zip { a: self, b: other }
    }

    /// Attaches each item's index.
    fn enumerate(self) -> Enumerate<Self> {
        Enumerate { inner: self }
    }

    /// Consumes every item, in parallel across the current pool
    /// ([`crate::ThreadPool::install`] or the global pool). Items are
    /// claimed as contiguous chunks by whichever thread is free. If a
    /// call panics, remaining chunks still run and the first panic is
    /// rethrown here afterwards.
    fn for_each<F>(self, f: F)
    where
        F: Fn(Self::Item) + Sync,
    {
        let len = self.len();
        if len == 0 {
            return;
        }
        let shared = pool::current_shared();
        let threads = shared.threads();
        if threads <= 1 || len == 1 {
            for i in 0..len {
                // SAFETY: in-bounds, sequential, each index once.
                f(unsafe { self.get(i) });
            }
            return;
        }
        // Several chunks per thread so a thread that lands on a heavy
        // chunk (expensive nodes) sheds the rest of the range to idle
        // threads. More chunks would only add claim traffic.
        let chunks = (threads * CHUNKS_PER_THREAD).min(len);
        let chunk_size = len.div_ceil(chunks);
        let chunks = len.div_ceil(chunk_size);
        let exec = |k: usize| {
            let start = k * chunk_size;
            let end = len.min(start + chunk_size);
            for i in start..end {
                // SAFETY: in-bounds (`end <= len`); the pool's claim
                // cursor hands chunk `k` to exactly one thread, and
                // chunk ranges are disjoint, so each index is produced
                // exactly once across all threads.
                f(unsafe { self.get(i) });
            }
        };
        pool::run_region(&shared, chunks, &exec);
    }
}

/// Chunk multiplier for [`IndexedParallelIterator::for_each`]: enough
/// slack for dynamic balancing, little enough that claim overhead
/// stays invisible next to real per-chunk work.
const CHUNKS_PER_THREAD: usize = 4;

/// Exclusive parallel iterator over a slice; see
/// [`ParallelSliceMut::par_iter_mut`].
pub struct ParIterMut<'a, T> {
    ptr: *mut T,
    len: usize,
    marker: std::marker::PhantomData<&'a mut [T]>,
}

// SAFETY: semantically a `&mut [T]` carved into disjoint `&mut T`
// items; moving it or sharing `&self` across threads is safe exactly
// when sending those items is, i.e. `T: Send`. Shared access hands
// out `&mut` only through `get`, whose contract forbids handing any
// index out twice.
unsafe impl<T: Send> Send for ParIterMut<'_, T> {}
// SAFETY: as above — `&ParIterMut` exposes nothing but the
// disjoint-index `get`.
unsafe impl<T: Send> Sync for ParIterMut<'_, T> {}

impl<'a, T: Send> IndexedParallelIterator for ParIterMut<'a, T> {
    type Item = &'a mut T;

    fn len(&self) -> usize {
        self.len
    }

    unsafe fn get(&self, i: usize) -> &'a mut T {
        // SAFETY: `i < len` keeps the offset in the original slice;
        // the caller's exactly-once contract makes the `&mut` unique.
        unsafe { &mut *self.ptr.add(i) }
    }
}

/// Shared parallel iterator over a slice; see
/// [`ParallelSlice::par_iter`].
pub struct ParIter<'a, T> {
    slice: &'a [T],
}

impl<'a, T: Sync> IndexedParallelIterator for ParIter<'a, T> {
    type Item = &'a T;

    fn len(&self) -> usize {
        self.slice.len()
    }

    unsafe fn get(&self, i: usize) -> &'a T {
        // SAFETY: `i < len` per the trait contract.
        unsafe { self.slice.get_unchecked(i) }
    }
}

/// Index-by-index pairing of two iterators; see
/// [`IndexedParallelIterator::zip`].
pub struct Zip<A, B> {
    a: A,
    b: B,
}

impl<A: IndexedParallelIterator, B: IndexedParallelIterator> IndexedParallelIterator for Zip<A, B> {
    type Item = (A::Item, B::Item);

    fn len(&self) -> usize {
        self.a.len().min(self.b.len())
    }

    unsafe fn get(&self, i: usize) -> Self::Item {
        // SAFETY: `i < min(a.len, b.len)` bounds both sides; the
        // exactly-once contract passes through unchanged.
        unsafe { (self.a.get(i), self.b.get(i)) }
    }
}

/// Index-attaching adapter; see
/// [`IndexedParallelIterator::enumerate`].
pub struct Enumerate<I> {
    inner: I,
}

impl<I: IndexedParallelIterator> IndexedParallelIterator for Enumerate<I> {
    type Item = (usize, I::Item);

    fn len(&self) -> usize {
        self.inner.len()
    }

    unsafe fn get(&self, i: usize) -> Self::Item {
        // SAFETY: contract passes through unchanged.
        (i, unsafe { self.inner.get(i) })
    }
}

/// Adds `par_iter_mut` to slices (and through auto-deref, `Vec`).
pub trait ParallelSliceMut<T: Send> {
    /// A parallel iterator of `&mut T` over the slice.
    fn par_iter_mut(&mut self) -> ParIterMut<'_, T>;
}

impl<T: Send> ParallelSliceMut<T> for [T] {
    fn par_iter_mut(&mut self) -> ParIterMut<'_, T> {
        ParIterMut {
            ptr: self.as_mut_ptr(),
            len: self.len(),
            marker: std::marker::PhantomData,
        }
    }
}

/// Adds `par_iter` to slices (and through auto-deref, `Vec`).
pub trait ParallelSlice<T: Sync> {
    /// A parallel iterator of `&T` over the slice.
    fn par_iter(&self) -> ParIter<'_, T>;
}

impl<T: Sync> ParallelSlice<T> for [T] {
    fn par_iter(&self) -> ParIter<'_, T> {
        ParIter { slice: self }
    }
}
