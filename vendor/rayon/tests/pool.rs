//! Concurrency-correctness battery for the vendored pool: exactly-once
//! execution, panic propagation, nested scopes and nested parallel
//! loops, and the degenerate shapes (zero tasks, one task, one
//! thread).

use rayon::prelude::*;
use rayon::{scope, ThreadPool, ThreadPoolBuilder};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};

fn pool(threads: usize) -> ThreadPool {
    ThreadPoolBuilder::new()
        .num_threads(threads)
        .build()
        .expect("pool")
}

/// Every index of a parallel loop runs exactly once, across thread
/// counts, lengths (empty / one / claim-contended), and repetitions —
/// double-execution or a dropped chunk shows up as a count != 1.
#[test]
fn for_each_runs_every_index_exactly_once() {
    for threads in [1, 2, 4, 8] {
        let pool = pool(threads);
        for len in [0usize, 1, 2, 63, 64, 1000] {
            for _rep in 0..20 {
                let counts: Vec<AtomicUsize> = (0..len).map(|_| AtomicUsize::new(0)).collect();
                let mut rows = vec![0u8; len];
                pool.install(|| {
                    rows.par_iter_mut().enumerate().for_each(|(i, row)| {
                        counts[i].fetch_add(1, Ordering::Relaxed);
                        *row += 1;
                    });
                });
                assert!(
                    counts.iter().all(|c| c.load(Ordering::Relaxed) == 1),
                    "threads={threads} len={len}: some index not run exactly once"
                );
                assert!(rows.iter().all(|&r| r == 1));
            }
        }
    }
}

/// Scope tasks run exactly once each, including tasks spawned from
/// tasks (the work-stealing path where the scope owner helps drain
/// the queue).
#[test]
fn scope_tasks_run_exactly_once() {
    let pool = pool(4);
    for _rep in 0..50 {
        let hits = AtomicUsize::new(0);
        pool.install(|| {
            scope(|s| {
                for _ in 0..32 {
                    s.spawn(|s| {
                        hits.fetch_add(1, Ordering::Relaxed);
                        s.spawn(|_| {
                            hits.fetch_add(1, Ordering::Relaxed);
                        });
                    });
                }
            });
        });
        assert_eq!(hits.load(Ordering::Relaxed), 64);
    }
}

/// Nested scopes complete inside-out: the inner scope's tasks have all
/// run before the outer scope returns, and borrows stay valid.
#[test]
fn nested_scopes_complete_inside_out() {
    let pool = pool(4);
    let outer_hits = AtomicUsize::new(0);
    let inner_hits = AtomicUsize::new(0);
    pool.install(|| {
        scope(|s| {
            for _ in 0..8 {
                s.spawn(|_| {
                    scope(|inner| {
                        for _ in 0..8 {
                            inner.spawn(|_| {
                                inner_hits.fetch_add(1, Ordering::Relaxed);
                            });
                        }
                    });
                    // The inner scope has fully drained by here.
                    assert!(inner_hits.load(Ordering::Relaxed) >= 8);
                    outer_hits.fetch_add(1, Ordering::Relaxed);
                });
            }
        });
    });
    assert_eq!(outer_hits.load(Ordering::Relaxed), 8);
    assert_eq!(inner_hits.load(Ordering::Relaxed), 64);
}

/// Zero-task and single-task scopes return promptly (no lost wakeups,
/// no hangs), and a scope's return value passes through.
#[test]
fn empty_and_singleton_scopes() {
    let pool = pool(2);
    assert_eq!(pool.install(|| scope(|_| 17)), 17);
    let hit = AtomicUsize::new(0);
    let out = pool.install(|| {
        scope(|s| {
            s.spawn(|_| {
                hit.fetch_add(1, Ordering::Relaxed);
            });
            "done"
        })
    });
    assert_eq!(out, "done");
    assert_eq!(hit.load(Ordering::Relaxed), 1);
}

/// A panic inside one chunk propagates to the `for_each` caller, the
/// other chunks still run (no torn state), and the pool stays usable.
#[test]
fn for_each_panic_propagates_and_pool_survives() {
    let pool = pool(4);
    let ran = AtomicUsize::new(0);
    let mut rows = vec![0u8; 512];
    let result = catch_unwind(AssertUnwindSafe(|| {
        pool.install(|| {
            rows.par_iter_mut().enumerate().for_each(|(i, _row)| {
                ran.fetch_add(1, Ordering::Relaxed);
                if i == 300 {
                    panic!("chunk panic");
                }
            });
        });
    }));
    assert!(result.is_err(), "panic must reach the caller");
    // The panicking chunk abandons its own remaining items; every
    // *other* chunk still runs to completion (chunks are at most
    // len / threads = 128 items here, and in practice 32).
    let ran = ran.load(Ordering::Relaxed);
    assert!(
        ran >= 512 - 128,
        "only the panicking chunk's tail may be skipped (ran {ran})"
    );
    // Pool is not wedged: a fresh loop works.
    pool.install(|| {
        rows.par_iter_mut().for_each(|row| *row = 7);
    });
    assert!(rows.iter().all(|&r| r == 7));
}

/// A panic inside a scope task propagates from `scope`, after every
/// task (panicking or not) has finished.
#[test]
fn scope_panic_propagates_after_completion() {
    let pool = pool(4);
    let ran = AtomicUsize::new(0);
    let result = catch_unwind(AssertUnwindSafe(|| {
        pool.install(|| {
            scope(|s| {
                for i in 0..16 {
                    s.spawn(move |_| {
                        if i == 5 {
                            panic!("task panic");
                        }
                    });
                }
                ran.fetch_add(1, Ordering::Relaxed);
            });
        });
    }));
    assert!(result.is_err());
    assert_eq!(ran.load(Ordering::Relaxed), 1);
    // Still usable afterwards.
    assert_eq!(pool.install(|| scope(|_| 3)), 3);
}

/// A parallel loop nested inside another parallel loop's chunk runs
/// inline (one region at a time per pool) and still produces every
/// item exactly once.
#[test]
fn nested_for_each_runs_inline_and_completely() {
    let pool = pool(4);
    let mut outer = vec![0u64; 64];
    pool.install(|| {
        outer.par_iter_mut().enumerate().for_each(|(i, slot)| {
            let mut inner = [0u64; 16];
            inner.par_iter_mut().enumerate().for_each(|(j, cell)| {
                *cell = (i * 16 + j) as u64;
            });
            *slot = inner.iter().sum();
        });
    });
    for (i, &got) in outer.iter().enumerate() {
        let want: u64 = (0..16).map(|j| (i * 16 + j) as u64).sum();
        assert_eq!(got, want, "outer index {i}");
    }
}

/// One-thread pools execute everything on the caller, in index order.
#[test]
fn single_thread_pool_is_inline_and_ordered() {
    let pool = pool(1);
    let mut seen = Vec::new();
    let mut rows = [0u8; 100];
    pool.install(|| {
        let order = std::sync::Mutex::new(&mut seen);
        rows.par_iter_mut().enumerate().for_each(|(i, _)| {
            order.lock().unwrap().push(i);
        });
    });
    assert_eq!(seen, (0..100).collect::<Vec<_>>());
}

/// `install` nests and restores: the ambient pool inside/outside an
/// installed closure is the right one even across panics.
#[test]
fn install_restores_previous_pool() {
    let two = pool(2);
    let three = pool(3);
    two.install(|| {
        assert_eq!(rayon::current_num_threads(), 2);
        three.install(|| assert_eq!(rayon::current_num_threads(), 3));
        assert_eq!(rayon::current_num_threads(), 2);
        let _ = catch_unwind(AssertUnwindSafe(|| {
            three.install(|| -> () { panic!("inside install") })
        }));
        assert_eq!(rayon::current_num_threads(), 2, "restored after panic");
    });
}
