//! Vendored offline stand-in for the [`criterion`] crate.
//!
//! Provides the API subset the workspace's micro-benchmarks use —
//! [`Criterion::bench_function`], [`Criterion::benchmark_group`],
//! [`Bencher::iter`] / [`Bencher::iter_batched`], [`BenchmarkId`], and
//! the [`criterion_group!`] / [`criterion_main!`] macros — backed by a
//! simple wall-clock timer instead of criterion's statistical engine.
//! Each benchmark runs a short warm-up, then a fixed number of timed
//! samples, and prints the median per-iteration time.
//!
//! [`criterion`]: https://crates.io/crates/criterion

#![forbid(unsafe_code)]

use std::fmt::Display;
use std::time::{Duration, Instant};

/// How per-iteration setup cost is batched (accepted for API
/// compatibility; the stand-in always runs setup once per iteration,
/// excluded from timing).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BatchSize {
    /// Small inputs: many iterations per batch upstream.
    SmallInput,
    /// Large inputs: few iterations per batch upstream.
    LargeInput,
    /// One iteration per batch.
    PerIteration,
}

/// Identifier of one benchmark within a group.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    name: String,
}

impl BenchmarkId {
    /// An id with a function name and a parameter.
    pub fn new(name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            name: format!("{}/{}", name.into(), parameter),
        }
    }

    /// An id carrying only a parameter.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            name: parameter.to_string(),
        }
    }
}

/// Times closures.
pub struct Bencher {
    samples: usize,
    /// Median per-iteration time of the last `iter`/`iter_batched` call.
    last_median: Option<Duration>,
}

impl Bencher {
    fn record(&mut self, mut one: impl FnMut() -> Duration) {
        // Warm-up.
        let _ = one();
        let mut times: Vec<Duration> = (0..self.samples).map(|_| one()).collect();
        times.sort_unstable();
        self.last_median = Some(times[times.len() / 2]);
    }

    /// Times `routine` on its own.
    pub fn iter<O>(&mut self, mut routine: impl FnMut() -> O) {
        self.record(|| {
            let t = Instant::now();
            let out = routine();
            let dt = t.elapsed();
            drop(out);
            dt
        });
    }

    /// Times `routine` on a fresh `setup()` value, excluding setup time.
    pub fn iter_batched<I, O>(
        &mut self,
        mut setup: impl FnMut() -> I,
        mut routine: impl FnMut(I) -> O,
        _size: BatchSize,
    ) {
        self.record(|| {
            let input = setup();
            let t = Instant::now();
            let out = routine(input);
            let dt = t.elapsed();
            drop(out);
            dt
        });
    }
}

fn run_one(label: &str, samples: usize, f: impl FnOnce(&mut Bencher)) {
    let mut b = Bencher {
        samples,
        last_median: None,
    };
    f(&mut b);
    match b.last_median {
        Some(median) => println!("bench {label:<40} median {median:>12.3?} ({samples} samples)"),
        None => println!("bench {label:<40} (no measurement recorded)"),
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup {
    name: String,
    samples: usize,
}

impl BenchmarkGroup {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.samples = n.max(1);
        self
    }

    /// Runs one benchmark with an input value.
    pub fn bench_with_input<I: ?Sized>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        f: impl FnOnce(&mut Bencher, &I),
    ) -> &mut Self {
        let label = format!("{}/{}", self.name, id.name);
        run_one(&label, self.samples, |b| f(b, input));
        self
    }

    /// Finishes the group (no-op in the stand-in).
    pub fn finish(self) {}
}

/// The benchmark driver.
pub struct Criterion {
    samples: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { samples: 15 }
    }
}

impl Criterion {
    /// Runs one standalone benchmark.
    pub fn bench_function(&mut self, name: &str, f: impl FnOnce(&mut Bencher)) -> &mut Self {
        run_one(name, self.samples, f);
        self
    }

    /// Opens a benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup {
        BenchmarkGroup {
            name: name.into(),
            samples: self.samples,
        }
    }
}

/// Declares a group of benchmark functions (`fn(&mut Criterion)`).
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut c = $crate::Criterion::default();
            $( $target(&mut c); )+
        }
    };
}

/// Declares the benchmark binary's `main`, running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_measures_and_reports() {
        let mut c = Criterion::default();
        c.bench_function("noop", |b| b.iter(|| 1 + 1));
        let mut g = c.benchmark_group("grp");
        g.sample_size(3);
        g.bench_with_input(BenchmarkId::new("sum", 10), &10u64, |b, &n| {
            b.iter_batched(
                || (0..n).collect::<Vec<_>>(),
                |v| v.iter().sum::<u64>(),
                BatchSize::SmallInput,
            )
        });
        g.finish();
    }

    #[test]
    fn ids_format() {
        assert_eq!(BenchmarkId::new("f", 3).name, "f/3");
        assert_eq!(BenchmarkId::from_parameter(8).name, "8");
    }
}
