//! Umbrella crate for the `lpt-gossip` workspace.
//!
//! Re-exports the public API of every workspace crate so that the examples
//! and integration tests in the repository root can use a single dependency.
//! Library users should depend on the individual crates directly.
//!
//! The README below is included verbatim so its code blocks run as
//! doctests (`cargo test --doc`), keeping the quick-start honest.
//!
#![doc = include_str!("../README.md")]

pub use gossip_sim;
pub use lpt;
pub use lpt_geom;
pub use lpt_gossip;
pub use lpt_problems;
pub use lpt_workloads;
