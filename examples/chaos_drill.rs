//! Crash-safety drill against a live `lpt-server`: inject a panicking
//! run, a run that blows its solve deadline, and a dead session — and
//! watch the service answer each one with a typed error frame while
//! the worker pool stays at full width, no cache key wedges, and a
//! retrying client recovers byte-exact results. A final drill drives
//! the event-driven engine over the wire: unit links replay the
//! round-sync trajectory under its own cache key, latency-3 links
//! demonstrably stretch the run (proving the engine reaches the
//! driver, not just the cache key), and a misspelled engine name earns
//! a typed `unknown-engine` frame.
//!
//! ```sh
//! cargo run --release --example chaos_drill
//! ```

use lpt_gossip::Engine;
use lpt_server::{
    Client, RetryPolicy, RunSpecKey, Server, ServerConfig, StopSpec, CHAOS_PANIC_WORKLOAD,
};
use std::time::Duration;

fn main() -> std::io::Result<()> {
    // ── Drill 1: a worker panic is an answer, not an outage ─────────
    let server = Server::bind("127.0.0.1:0", ServerConfig::default())?;
    let mut client = Client::connect(server.addr())?;
    let width = client.stats()?.workers;
    println!("server up, {width} workers");

    // `chaos-panic` is a reserved workload that panics inside the
    // worker the moment it executes — the same failure an engine bug
    // would produce. (The panic message below on stderr is the
    // injected failure itself: the default panic hook prints before
    // `catch_unwind` contains it.)
    let chaos = RunSpecKey::new(CHAOS_PANIC_WORKLOAD, 64, 16, 1);
    let reply = client.solve(&chaos)?;
    let err = reply.error.as_ref().expect("an error frame");
    println!(
        "injected panic -> typed frame: code={} kind={}",
        err.code, err.kind
    );
    assert_eq!(err.code, 212, "worker-panicked");

    let stats = client.stats()?;
    println!(
        "pool after the panic: {}/{} workers alive, {} panic contained, {} runs counted",
        stats.workers, width, stats.worker_panics, stats.runs
    );
    assert_eq!(stats.workers, width, "no worker died");
    assert_eq!(stats.cache_entries, 0, "a panicking spec is never cached");

    // The session is still usable and the key is not wedged: a
    // resubmit re-executes (and re-panics) instead of hanging on an
    // abandoned pending slot.
    let again = client.solve(&chaos)?;
    assert_eq!(again.error.as_ref().map(|e| e.code), Some(212));
    let normal = client.solve(&RunSpecKey::new("duo-disk", 1024, 128, 7))?;
    println!(
        "same session, next request: {} rounds, business as usual\n",
        normal.summary.expect("a normal run").rounds
    );
    client.shutdown()?;
    server.wait();

    // ── Drill 2: a runaway run hits the solve deadline ──────────────
    let server = Server::bind(
        "127.0.0.1:0",
        ServerConfig {
            solve_timeout: Some(Duration::from_millis(1)),
            ..ServerConfig::default()
        },
    )?;
    let mut client = Client::connect(server.addr())?;
    let mut runaway = RunSpecKey::new("duo-disk", 4096, 4096, 1);
    runaway.stop = StopSpec::RoundBudget(5_000);
    let reply = client.solve(&runaway)?;
    let err = reply.error.as_ref().expect("an error frame");
    println!(
        "runaway run -> typed frame: code={} kind={} ({})",
        err.code, err.kind, err.detail
    );
    assert_eq!(err.code, 213, "solve-timeout");
    let stats = client.stats()?;
    assert_eq!(stats.cache_entries, 0, "a cancelled run is never cached");
    assert_eq!(stats.workers, width, "pool intact after the cancel");
    println!("cancelled cooperatively; nothing cached, pool intact\n");
    client.shutdown()?;
    server.wait();

    // ── Drill 3: the client retries its way through a dead session ──
    let server = Server::bind(
        "127.0.0.1:0",
        ServerConfig {
            idle_timeout: Duration::from_millis(200),
            ..ServerConfig::default()
        },
    )?;
    let policy = RetryPolicy::default();
    println!(
        "retry schedule: {:?} then {:?} then {:?} (capped at {:?})",
        policy.delay(0),
        policy.delay(1),
        policy.delay(2),
        policy.max_delay
    );
    let mut client = Client::connect_with_retry(server.addr(), &policy)?;
    let key = RunSpecKey::new("triple-disk", 1024, 128, 42);
    let cold = client.solve(&key)?;

    // Let the server time the session out, then resubmit through the
    // retry policy: the client eats the terminal idle-timeout frame,
    // reconnects, resubmits, and — because replies are pure functions
    // of the spec — gets the cold run's exact bytes from the cache.
    std::thread::sleep(Duration::from_millis(600));
    let recovered = client.solve_with_retry(&key, &policy)?;
    let stats = client.stats()?;
    println!(
        "session idled out; retry recovered byte-identical reply: {} (runs still {})",
        recovered.raw == cold.raw,
        stats.runs
    );
    assert_eq!(recovered.raw, cold.raw, "idempotent resubmit");
    assert_eq!(stats.runs, 1, "the retry hit the cache, no re-execution");

    client.shutdown()?;
    server.wait();

    // ── Drill 4: the event engine is addressable from the wire ──────
    let server = Server::bind("127.0.0.1:0", ServerConfig::default())?;
    let mut client = Client::connect(server.addr())?;
    let mut key = RunSpecKey::new("duo-disk", 1024, 128, 7);
    let sync = client.solve(&key)?;
    key.engine = Engine::parse("event-unit").expect("canonical name");
    let event = client.solve(&key)?;
    let (s, e) = (
        sync.summary.as_ref().expect("run"),
        event.summary.as_ref().expect("run"),
    );
    println!(
        "event-unit over the wire: {} rounds (round-sync {}), same trajectory",
        e.rounds, s.rounds
    );
    assert_eq!(e.rounds, s.rounds, "unit links replay round-sync");
    let stats = client.stats()?;
    assert_eq!(
        stats.runs, 2,
        "distinct engines are distinct cache keys: both runs executed"
    );

    // Unit links are byte-identical to round-sync by contract, so they
    // cannot tell whether the engine actually reached the driver. A
    // latency-3 plan can: every round trip now costs three ticks, so
    // the trajectory must stretch over strictly more rounds.
    key.engine = Engine::parse("event-const-3").expect("canonical name");
    let het = client.solve(&key)?;
    let h = het.summary.as_ref().expect("run");
    println!(
        "event-const-3 over the wire: {} rounds (round-sync {}), genuinely asynchronous",
        h.rounds, s.rounds
    );
    assert!(
        h.rounds > s.rounds,
        "latency-3 links must cost more rounds than round-sync"
    );
    assert!(h.all_halted, "the asynchronous run still converges");
    assert_eq!(
        het.header.as_ref().expect("header").engine,
        "event-const-3",
        "header echoes the requested engine"
    );
    assert_eq!(client.stats()?.runs, 3, "third engine, third cache key");

    // A misspelled engine is a typed refusal, not a silent default.
    let frame =
        client.raw_line(r#"{"cmd":"solve","workload":"duo-disk","n":64,"engine":"event-warp"}"#)?;
    println!("unknown engine -> {}", frame.trim_end());
    assert!(frame.contains(r#""code":214"#), "unknown-engine frame");

    client.shutdown()?;
    server.wait();
    println!("\nall four drills passed; server drained cleanly");
    Ok(())
}
