//! Gossip-as-a-service tour: spin up the session server in-process,
//! drive three concurrent sessions with distinct scenarios, then
//! resubmit one spec to show the exact report cache at work.
//!
//! ```sh
//! cargo run --release --example server_client
//! ```

use lpt_server::{Client, RunSpecKey, Server, ServerConfig, SolveReply};

fn key_for(workload: &str, fault: &str, topology: &str, seed: u64) -> RunSpecKey {
    let mut key = RunSpecKey::new(workload, 1024, 128, seed);
    key.fault = fault.to_string();
    key.topology = topology.to_string();
    key
}

fn describe(tag: &str, key: &RunSpecKey, reply: &SolveReply) {
    let summary = reply.summary.as_ref().expect("run succeeded");
    println!(
        "[{tag}] {}/{}/{}: {} rounds, stop={}, {} msg words",
        key.workload,
        key.fault,
        key.topology,
        summary.rounds,
        summary.stop_cause,
        summary.total_msg_words
    );
    // The per-round frames are the stream: show the first few deltas.
    for r in reply.rounds.iter().take(3) {
        println!(
            "[{tag}]   round {:>3}: pulls={} pushes={} max_work={} halted={}",
            r.round, r.pulls, r.pushes, r.max_node_work, r.halted
        );
    }
    if reply.rounds.len() > 3 {
        println!("[{tag}]   … {} more round frames", reply.rounds.len() - 3);
    }
    if let Some(consensus) = &summary.consensus {
        println!("[{tag}]   consensus: {consensus}");
    }
}

fn main() -> std::io::Result<()> {
    // An ephemeral port keeps the example runnable anywhere.
    let server = Server::bind("127.0.0.1:0", ServerConfig::default())?;
    let addr = server.addr();
    println!("server listening on {addr}\n");

    // Three sessions, three different fault/topology scenarios, all
    // in flight at once against the bounded worker pool.
    let specs = [
        ("calm", key_for("duo-disk", "perfect", "complete", 42)),
        ("wan", key_for("triple-disk", "wan", "rr8", 42)),
        ("dc", key_for("hull", "datacenter", "hypercube", 42)),
    ];
    let handles: Vec<_> = specs
        .iter()
        .cloned()
        .map(|(tag, key)| {
            std::thread::spawn(move || {
                let mut client = Client::connect(addr)?;
                let reply = client.solve(&key)?;
                Ok::<_, std::io::Error>((tag, key, reply))
            })
        })
        .collect();
    let mut first_raw = None;
    for handle in handles {
        let (tag, key, reply) = handle.join().expect("session thread")?;
        describe(tag, &key, &reply);
        if tag == "calm" {
            first_raw = Some(reply.raw.clone());
        }
    }

    // Resubmit the first spec: the server replays the cold run's exact
    // bytes without executing anything. The in-process handle reads the
    // same counters the `stats` command reports, without spending wire
    // requests on them.
    let mut client = Client::connect(addr)?;
    let before = server.stats();
    let replay = client.solve(&specs[0].1)?;
    let after = server.stats();
    println!("\nresubmitting the {:?} spec:", specs[0].0);
    println!(
        "  byte-identical to cold run: {}",
        replay.raw == first_raw.expect("cold reply recorded")
    );
    println!(
        "  cache hits {} -> {}, driver runs {} -> {} (no re-execution)",
        before.hits, after.hits, before.runs, after.runs
    );
    assert_eq!(after.runs, before.runs, "a cache hit must not run");
    // Every wire request so far was a solve, and every solve either
    // replayed a cached reply or caused exactly one computation — the
    // ledger must balance.
    assert_eq!(
        after.requests,
        after.hits + after.misses,
        "every solve is a hit or a miss"
    );

    // The observability plane: one `metrics` frame summarises all four
    // sessions — per-outcome latency histograms, queue and cache
    // gauges, per-engine run counts.
    let metrics = client.metrics_line()?;
    println!("\nmetrics snapshot:\n  {metrics}");

    client.shutdown()?;
    server.wait();
    println!("server drained cleanly");
    Ok(())
}
