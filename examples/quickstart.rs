//! Quickstart: solve a minimum enclosing disk problem on a simulated
//! gossip network and compare against the sequential baselines.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use lpt::LpType;
use lpt_gossip::Driver;
use lpt_problems::Med;
use lpt_workloads::med::duo_disk;
use rand_chacha::rand_core::SeedableRng;

fn main() {
    let n = 1024; // network size = number of points
    let seed = 7;
    let points = duo_disk(n, seed);

    // Sequential baselines -------------------------------------------------
    let direct = Med.basis_of(&points);
    let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(seed);
    let clarkson = lpt::clarkson(&Med, &points, &mut rng).expect("clarkson");
    println!("dataset             : duo-disk, {n} points on {n} nodes");
    println!("welzl (sequential)  : r = {:.6}", direct.value.r2.sqrt());
    println!(
        "clarkson (sequential): r = {:.6} in {} iterations",
        clarkson.basis.value.r2.sqrt(),
        clarkson.stats.iterations
    );

    // Distributed gossip run ----------------------------------------------
    let report = Driver::new(Med)
        .nodes(n)
        .seed(seed)
        .run(&points)
        .expect("driver run");
    assert!(report.all_halted, "network did not terminate");
    let basis = report
        .consensus_output()
        .expect("all nodes agree on the optimum");
    println!(
        "low-load gossip     : r = {:.6} in {} rounds (first candidate at round {:?})",
        basis.value.r2.sqrt(),
        report.rounds,
        report.first_candidate_round
    );
    println!(
        "                      max work/node/round = {}, total messages = {}",
        report.metrics.max_node_work(),
        report.metrics.total_ops()
    );
    println!(
        "optimal basis       : {} points on the solution circle: {:?}",
        basis.len(),
        basis.elements.iter().map(|e| e.id).collect::<Vec<_>>()
    );

    let err = (basis.value.r2 - direct.value.r2).abs() / direct.value.r2.max(1.0);
    assert!(err < 1e-7, "distributed and sequential answers must agree");
    println!("agreement           : distributed == sequential (rel. err {err:.2e})");
}
