//! The NP-hard problems of the paper's Section 4: distributed hitting
//! set (Algorithm 6) on a planted instance, and set cover through the
//! classical dual reduction — both compared against the greedy and exact
//! sequential baselines.
//!
//! ```sh
//! cargo run --release --example hitting_set_cover
//! ```

use lpt_gossip::{Algorithm, Driver};
use lpt_problems::{greedy_hitting_set, min_hitting_set_exact};
use lpt_workloads::sets::{planted_hitting_set, planted_set_cover};
use std::sync::Arc;

fn main() {
    let seed = 3;

    // --- Hitting set -----------------------------------------------------
    let (n, s, d) = (512usize, 64usize, 3usize);
    let (sys, planted) = planted_hitting_set(n, s, d, 8, seed);
    let sys = Arc::new(sys);
    println!("hitting set: |X| = {n}, |S| = {s}, planted optimum ≤ {d}");

    let greedy = greedy_hitting_set(&sys);
    println!("greedy baseline      : size {}", greedy.len());
    let exact = min_hitting_set_exact(&sys, d).expect("planted bound");
    println!(
        "exact optimum        : size {} (planted: {:?})",
        exact.len(),
        planted
    );

    let report = Driver::new(sys.clone())
        .nodes(n)
        .seed(seed)
        .algorithm(Algorithm::hitting_set(d))
        .max_rounds(5000)
        .run_ground()
        .expect("hitting-set run");
    assert!(report.all_halted, "network did not terminate");
    let best = report.best_output().expect("solution");
    assert!(sys.is_hitting_set(best));
    println!(
        "distributed (gossip) : size {} ≤ bound r = O(d·log(ds)) = {} in {} rounds \
         (first found at round {:?})",
        best.len(),
        report.size_bound.expect("size bound"),
        report.rounds,
        report.first_found_round()
    );

    // --- Set cover via the dual ------------------------------------------
    println!();
    let sc = planted_set_cover(400, 48, 4, seed);
    println!(
        "set cover: |X| = {}, |S| = {}, planted cover ≤ 4 (solved as dual hitting set)",
        sc.n_elements(),
        sc.num_sets()
    );
    let dual = Arc::new(sc.dual_hitting_set());
    let report = Driver::new(dual.clone())
        .nodes(sc.n_elements())
        .seed(seed)
        .algorithm(Algorithm::hitting_set(4))
        .max_rounds(5000)
        .run_ground()
        .expect("set-cover run");
    assert!(report.all_halted);
    let cover = report.best_output().expect("cover");
    assert!(sc.is_cover(cover), "dual hitting set must be a set cover");
    println!(
        "distributed cover    : {} sets (bound {}) in {} rounds: {:?}",
        cover.len(),
        report.size_bound.expect("size bound"),
        report.rounds,
        cover
    );
}
