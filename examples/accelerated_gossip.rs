//! The accelerated High-Load variant (paper, Section 3.1): pushing the
//! local basis `C` times per round trades work for rounds, reaching
//! `O(d log n / log log n)` rounds at `C = log^ε n`. This example sweeps
//! `C` on a fixed minimum-enclosing-disk instance and prints the
//! rounds/work trade-off.
//!
//! ```sh
//! cargo run --release --example accelerated_gossip [n]
//! ```

use lpt::LpType;
use lpt_gossip::high_load::HighLoadConfig;
use lpt_gossip::{Algorithm, Driver, StopCondition};
use lpt_problems::Med;
use lpt_workloads::med::triple_disk;

fn main() {
    let n: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(2048);
    let runs = 5u64;
    let log2n = (n as f64).log2();
    println!(
        "accelerated high-load on triple-disk, n = {n} (log2 n = {log2n:.1}), {runs} runs per C"
    );
    println!();
    println!(
        "{:>6} {:>14} {:>18} {:>22}",
        "C", "avg rounds", "rounds/log2(n)", "max work/node/round"
    );

    let c_values = [
        1usize,
        (log2n.sqrt().ceil()) as usize, // C = log^0.5 n
        log2n.ceil() as usize,          // C = log n
        (2.0 * log2n).ceil() as usize,
    ];
    for &c in &c_values {
        let mut rounds_sum = 0.0;
        let mut max_work = 0u64;
        for seed in 0..runs {
            let points = triple_disk(n, seed);
            let target = Med.basis_of(&points).value;
            let report = Driver::new(Med)
                .nodes(n)
                .seed(seed)
                .algorithm(Algorithm::HighLoad(HighLoadConfig {
                    push_count: c,
                    ..Default::default()
                }))
                .stop(StopCondition::FirstSolution(target))
                .run(&points)
                .expect("accelerated run");
            assert!(report.reached(), "C = {c}, seed {seed} did not converge");
            rounds_sum += report.rounds as f64;
            max_work = max_work.max(report.metrics.max_node_work());
        }
        let avg = rounds_sum / runs as f64;
        println!(
            "{:>6} {:>14.1} {:>18.2} {:>22}",
            c,
            avg,
            avg / log2n,
            max_work
        );
    }
    println!();
    println!("expected shape (Theorem 4): rounds shrink as C grows, work grows with C.");
}
