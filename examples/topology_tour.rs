//! Gossip over restricted topologies: the same MED instance solved on
//! the paper's complete graph versus structured and random overlays,
//! under a lossy WAN.
//!
//! The paper analyzes its algorithms on the complete graph — every
//! push/pull targets a uniformly random node. Real deployments gossip
//! over overlays. This example runs the Low-Load Clarkson algorithm on
//! `Complete`, `Hypercube`, and `RandomRegular(8)` under the `wan`
//! scenario preset (5% loss, ≤2 rounds extra delay) and prints the
//! round/op inflation each overlay costs relative to the complete
//! graph. Every run is deterministic in (seed, topology, scenario).
//!
//! ```sh
//! cargo run --release --example topology_tour
//! ```

use lpt_gossip::topology::{Complete, Hypercube, RandomRegular, Topology};
use lpt_gossip::{Driver, Engine, LinkPlan};
use lpt_problems::Med;
use lpt_workloads::med::duo_disk;
use lpt_workloads::scenarios::Scenario;
use std::sync::Arc;

const N: usize = 512;
const SEED: u64 = 2019;
/// Round budget: on sparse overlays under persistent loss a few
/// stragglers never pass the neighbor-sampled termination audit (the
/// halted count saturates by round ~100 at this seed), so the tour
/// caps the run instead of asserting global termination.
const MAX_ROUNDS: u64 = 200;

fn overlays() -> Vec<Arc<dyn Topology>> {
    vec![
        Arc::new(Complete),
        Arc::new(Hypercube),
        Arc::new(RandomRegular(8)),
    ]
}

fn main() {
    let points = duo_disk(N, SEED);
    println!("minimum enclosing disk, Low-Load Clarkson, n = {N}, wan scenario:");
    println!(
        "{:<16} {:>7} {:>12} {:>9} {:>8} {:>11}",
        "topology", "rounds", "ops", "Δrounds", "Δops", "optimum@node"
    );

    let mut baseline: Option<(u64, u64)> = None;
    for topology in overlays() {
        let report = Driver::new(Med)
            .nodes(N)
            .seed(SEED)
            .fault_model(Scenario::Wan.fault_model())
            .topology(Arc::clone(&topology))
            .max_rounds(MAX_ROUNDS)
            .run(&points)
            .expect("run");
        let halted = report.metrics.rounds.last().map_or(0, |r| r.halted);
        assert!(
            halted * 10 >= 9 * N as u64,
            "{}: at least 90% of nodes halt ({halted}/{N})",
            report.topology
        );
        let ops = report.metrics.total_ops();

        // On sparse overlays the termination audit samples only
        // neighbors, so individual nodes may halt with a sub-optimal
        // basis (and stragglers have no output at all); the optimum
        // must still be *found* somewhere.
        let radii: Vec<f64> = report
            .outputs
            .iter()
            .flatten()
            .map(|o| o.value.r2.sqrt())
            .collect();
        let best = radii.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        assert!(
            (best - 10.0).abs() < 1e-6,
            "{}: optimum not found (best radius {best})",
            report.topology
        );
        let exact = radii.iter().filter(|r| (*r - 10.0).abs() < 1e-6).count();

        let (base_rounds, base_ops) = *baseline.get_or_insert((report.rounds, ops));
        println!(
            "{:<16} {:>7} {:>12} {:>8.2}x {:>7.2}x {:>7}/{N}",
            report.topology,
            report.rounds,
            ops,
            report.rounds as f64 / base_rounds as f64,
            ops as f64 / base_ops as f64,
            exact,
        );
    }

    println!();
    println!(
        "the optimum is found on every overlay; sparse topologies pay \
         rounds/ops (and may leave stragglers on locally-audited bases) — \
         exactly the degradation the topology seam measures."
    );

    // The same tour under the event-driven engine. Unit links replay
    // the round-sync trajectory exactly (checked below on the complete
    // graph); heterogeneous 1–4 tick links stretch each round trip
    // across virtual time, which the vtime column surfaces.
    println!();
    println!("event-driven engine, uniform 1\u{2013}4 tick links, same instance:");
    println!(
        "{:<16} {:>7} {:>9} {:>12}",
        "topology", "rounds", "vtime", "ops"
    );
    for topology in overlays() {
        let run = |engine: Engine, budget: u64| {
            Driver::new(Med)
                .nodes(N)
                .seed(SEED)
                .fault_model(Scenario::Wan.fault_model())
                .topology(Arc::clone(&topology))
                .max_rounds(budget)
                .engine(engine)
                .run(&points)
                .expect("run")
        };
        let unit = run(Engine::EventDriven(LinkPlan::unit()), MAX_ROUNDS);
        let sync = run(Engine::RoundSync, MAX_ROUNDS);
        assert_eq!(
            (unit.rounds, unit.metrics.total_ops()),
            (sync.rounds, sync.metrics.total_ops()),
            "{}: unit links must replay the round-sync trajectory",
            sync.topology
        );
        // Under multi-tick links the budget counts *ticks*: a round
        // trip costs ~7 ticks at uniform 1–4 latency, so the het run
        // gets a proportionally larger valve.
        let het = run(
            Engine::EventDriven(LinkPlan::uniform(1, 4)),
            MAX_ROUNDS * 10,
        );
        let halted = het.metrics.rounds.last().map_or(0, |r| r.halted);
        assert!(halted * 10 >= 9 * N as u64);
        let vtime = het.metrics.rounds.last().map_or(0, |r| r.vtime);
        println!(
            "{:<16} {:>7} {:>9} {:>12}",
            het.topology,
            het.rounds,
            vtime,
            het.metrics.total_ops()
        );
    }
    println!(
        "multi-tick links cost virtual time, never the answer: every \
         overlay still terminates and the unit-link runs above were \
         asserted byte-compatible with round-sync."
    );
}
