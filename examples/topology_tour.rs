//! Gossip over restricted topologies: the same MED instance solved on
//! the paper's complete graph versus structured and random overlays,
//! under a lossy WAN.
//!
//! The paper analyzes its algorithms on the complete graph — every
//! push/pull targets a uniformly random node. Real deployments gossip
//! over overlays. This example runs the Low-Load Clarkson algorithm on
//! `Complete`, `Hypercube`, and `RandomRegular(8)` under the `wan`
//! scenario preset (5% loss, ≤2 rounds extra delay) and prints the
//! round/op inflation each overlay costs relative to the complete
//! graph. Every run is deterministic in (seed, topology, scenario).
//!
//! ```sh
//! cargo run --release --example topology_tour
//! ```

use lpt_gossip::topology::{Complete, Hypercube, RandomRegular, Topology};
use lpt_gossip::Driver;
use lpt_problems::Med;
use lpt_workloads::med::duo_disk;
use lpt_workloads::scenarios::Scenario;
use std::sync::Arc;

const N: usize = 512;
const SEED: u64 = 2019;

fn overlays() -> Vec<Arc<dyn Topology>> {
    vec![
        Arc::new(Complete),
        Arc::new(Hypercube),
        Arc::new(RandomRegular(8)),
    ]
}

fn main() {
    let points = duo_disk(N, SEED);
    println!("minimum enclosing disk, Low-Load Clarkson, n = {N}, wan scenario:");
    println!(
        "{:<16} {:>7} {:>12} {:>9} {:>8} {:>11}",
        "topology", "rounds", "ops", "Δrounds", "Δops", "optimum@node"
    );

    let mut baseline: Option<(u64, u64)> = None;
    for topology in overlays() {
        let report = Driver::new(Med)
            .nodes(N)
            .seed(SEED)
            .fault_model(Scenario::Wan.fault_model())
            .topology(Arc::clone(&topology))
            .run(&points)
            .expect("run");
        assert!(
            report.all_halted,
            "{}: termination survives the overlay",
            report.topology
        );
        let ops = report.metrics.total_ops();

        // On sparse overlays the termination audit samples only
        // neighbors, so individual nodes may halt with a sub-optimal
        // basis; the optimum must still be *found* somewhere.
        let radii: Vec<f64> = report
            .outputs
            .iter()
            .map(|o| o.as_ref().expect("all nodes output").value.r2.sqrt())
            .collect();
        let best = radii.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        assert!(
            (best - 10.0).abs() < 1e-6,
            "{}: optimum not found (best radius {best})",
            report.topology
        );
        let exact = radii.iter().filter(|r| (*r - 10.0).abs() < 1e-6).count();

        let (base_rounds, base_ops) = *baseline.get_or_insert((report.rounds, ops));
        println!(
            "{:<16} {:>7} {:>12} {:>8.2}x {:>7.2}x {:>7}/{N}",
            report.topology,
            report.rounds,
            ops,
            report.rounds as f64 / base_rounds as f64,
            ops as f64 / base_ops as f64,
            exact,
        );
    }

    println!();
    println!(
        "the optimum is found on every overlay; sparse topologies pay \
         rounds/ops (and may leave stragglers on locally-audited bases) — \
         exactly the degradation the topology seam measures."
    );
}
