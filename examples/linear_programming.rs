//! Fixed-dimension linear programming on the gossip network: a
//! production-planning LP (maximize profit under random resource
//! constraints) is scattered over the nodes, solved distributively with
//! the Low-Load Clarkson algorithm, and checked against the sequential
//! vertex-enumeration optimum.
//!
//! ```sh
//! cargo run --release --example linear_programming [constraints]
//! ```

use lpt::LpType;
use lpt_gossip::Driver;
use lpt_problems::FixedDimLp;
use lpt_workloads::lp::production_lp;

fn main() {
    let m: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(512);
    let n = 256; // network size
    let seed = 11;

    let (objective, constraints) = production_lp(m, seed);
    let problem = FixedDimLp::with_default_bound(objective.clone());
    println!(
        "production LP: maximize {:.2}·x + {:.2}·y over {} constraints, {n} nodes",
        -objective[0],
        -objective[1],
        constraints.len()
    );

    // Sequential oracle.
    let direct = problem.basis_of(&constraints);
    println!(
        "sequential optimum  : profit = {:.4} at x = ({:.4}, {:.4})",
        -direct.value.objective, direct.value.x[0], direct.value.x[1]
    );

    // Distributed run.
    let report = Driver::new(problem.clone())
        .nodes(n)
        .seed(seed)
        .run(&constraints)
        .expect("driver run");
    assert!(report.all_halted, "network did not terminate");
    let basis = report.consensus_output().expect("all nodes agree");
    println!(
        "gossip optimum      : profit = {:.4} at x = ({:.4}, {:.4}) in {} rounds",
        -basis.value.objective, basis.value.x[0], basis.value.x[1], report.rounds
    );
    println!(
        "binding constraints : {:?}",
        basis.elements.iter().map(|e| e.id).collect::<Vec<_>>()
    );
    let err = (basis.value.objective - direct.value.objective).abs()
        / direct.value.objective.abs().max(1.0);
    assert!(
        err < 1e-6,
        "distributed and sequential optima must agree (err {err:.2e})"
    );
    println!("agreement           : OK (rel. err {err:.2e})");
}
