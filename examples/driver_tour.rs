//! A tour of the unified `Driver` API: all five algorithms, the four
//! stop conditions, the doubling search, and the documented errors —
//! one problem instance end to end.
//!
//! ```sh
//! cargo run --release --example driver_tour [n]
//! ```

use lpt::LpType;
use lpt_gossip::{Algorithm, Driver, DriverError, Progress, StopCondition};
use lpt_problems::Med;
use lpt_workloads::med::triple_disk;
use lpt_workloads::sets::planted_hitting_set;
use std::sync::Arc;

fn main() -> Result<(), DriverError> {
    let n: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(512);
    let seed = 42;
    let points = triple_disk(n, seed);
    let target = Med.basis_of(&points).value;
    println!(
        "minimum enclosing disk, n = {n}: optimum r = {:.4}",
        target.r2.sqrt()
    );
    println!();

    // One driver, four algorithms.
    let driver = Driver::new(Med).nodes(n).seed(seed);
    for algorithm in [
        Algorithm::low_load(),
        Algorithm::high_load(),
        Algorithm::accelerated(0.5),
        Algorithm::Hypercube,
    ] {
        let name = algorithm.name();
        let report = driver.clone().algorithm(algorithm).run(&points)?;
        let basis = report.consensus_output().expect("consensus");
        println!(
            "{name:<12} r = {:.4} in {:>4} rounds (stop: {:?})",
            basis.value.r2.sqrt(),
            report.rounds,
            report.stop_cause
        );
    }

    // Stop conditions compose with any simulated algorithm.
    println!();
    let first = driver
        .clone()
        .stop(StopCondition::FirstSolution(target))
        .run(&points)?;
    println!(
        "first-solution stop : reached = {} after {} rounds",
        first.reached(),
        first.rounds
    );
    let budget = driver
        .clone()
        .stop(StopCondition::RoundBudget(2))
        .run(&points)?;
    println!(
        "round-budget stop   : {} rounds, {}/{} nodes halted",
        budget.rounds,
        budget.outputs.iter().flatten().count(),
        n
    );
    let custom = driver
        .clone()
        .stop(StopCondition::Custom(Arc::new(|p: &Progress| {
            p.with_candidate * 2 >= p.n
        })))
        .run(&points)?;
    println!(
        "custom stop         : half the nodes held a candidate by round {}",
        custom.rounds
    );

    // The same API runs NP-hard covering problems, with the Section 1.4
    // doubling search when the optimum size is unknown.
    println!();
    let (sys, planted) = planted_hitting_set(n, 48, 3, 6, seed);
    let hs = Driver::new(Arc::new(sys))
        .nodes(n)
        .seed(seed)
        .algorithm(Algorithm::hitting_set(1))
        .with_doubling_search(12.0)
        .run_ground()?;
    let trace = hs.doubling.as_ref().expect("doubling trace");
    println!(
        "hitting set         : |HS| = {} ≤ bound {} (planted {}), d via doubling {:?}",
        hs.best_output().expect("solution").len(),
        hs.size_bound.expect("bound"),
        planted.len(),
        trace.attempts
    );

    // Incompatible requests fail with documented errors, not panics.
    println!();
    let err = driver
        .clone()
        .algorithm(Algorithm::hitting_set(2))
        .run(&points)
        .unwrap_err();
    println!("mismatched algorithm: {err}");
    let err = Driver::new(Med).nodes(0).run(&points).unwrap_err();
    println!("zero nodes          : {err}");

    Ok(())
}
