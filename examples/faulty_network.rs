//! Gossip under an imperfect network: MED and MEB convergence as
//! message loss, churn, and delivery delay are dialed up.
//!
//! The paper's analysis assumes a perfect synchronous uniform-gossip
//! network. This example shows what its algorithms actually do when
//! that assumption is relaxed through the `FaultModel` seam: they keep
//! converging to the *exact* optimum, paying only extra rounds —
//! graceful degradation, not failure. Every run is deterministic in
//! (seed, algorithm, fault model).
//!
//! ```sh
//! cargo run --release --example faulty_network
//! ```

use lpt_gossip::{Algorithm, Bernoulli, Churn, Compose, Delay, Driver, FaultModel, RunReport};
use lpt_problems::{IdPointD, Meb, Med};
use lpt_workloads::med::duo_disk;
use std::sync::Arc;

const N: usize = 512;
const SEED: u64 = 2019;

fn environments() -> Vec<(&'static str, Arc<dyn FaultModel>)> {
    vec![
        ("perfect", Arc::new(lpt_gossip::Perfect)),
        ("5% loss", Arc::new(Bernoulli::new(0.05))),
        ("15% loss", Arc::new(Bernoulli::new(0.15))),
        ("30% loss", Arc::new(Bernoulli::new(0.3))),
        ("churn 30%/20%", Arc::new(Churn::crash_recovery(0.3, 0.2))),
        ("delay ≤2", Arc::new(Delay::uniform(2))),
        (
            "lossy WAN",
            Arc::new(
                Compose::default()
                    .and(Bernoulli::new(0.1))
                    .and(Churn::crash_recovery(0.2, 0.15))
                    .and(Delay::uniform(1)),
            ),
        ),
    ]
}

fn print_row<O>(env: &str, report: &RunReport<O>, radius: f64, expect: f64) {
    println!(
        "{env:<14} {:>7} {:>9} {:>9} {:>9}   r = {radius:.6} {}",
        report.rounds,
        report.faults.messages_dropped,
        report.faults.messages_delayed,
        report.faults.offline_node_rounds,
        if (radius - expect).abs() < 1e-6 {
            "(exact optimum)"
        } else {
            "(WRONG)"
        }
    );
    assert!(
        (radius - expect).abs() < 1e-6,
        "{env}: converged to the wrong value"
    );
}

fn main() {
    let points = duo_disk(N, SEED);
    println!("minimum enclosing disk, Low-Load Clarkson, n = {N}:");
    println!(
        "{:<14} {:>7} {:>9} {:>9} {:>9}",
        "environment", "rounds", "dropped", "delayed", "offline"
    );
    let mut perfect_rounds = 0;
    for (env, fault) in environments() {
        let report = Driver::new(Med)
            .nodes(N)
            .seed(SEED)
            .fault_model(fault)
            .run(&points)
            .expect("run");
        assert!(report.all_halted, "{env}: termination survives the faults");
        let basis = report.consensus_output().expect("all nodes agree");
        print_row(env, &report, basis.value.r2.sqrt(), 10.0);
        if env == "perfect" {
            perfect_rounds = report.rounds;
        } else {
            assert!(
                report.rounds >= perfect_rounds,
                "{env}: faults cannot beat the perfect network"
            );
        }
    }

    // The same instance lifted to a 3-d minimum enclosing ball, solved
    // by the High-Load Clarkson algorithm under the same environments.
    let balls: Vec<IdPointD> = points
        .iter()
        .map(|p| IdPointD::new(p.id, vec![p.p.x, p.p.y, 0.0]))
        .collect();
    println!();
    println!("minimum enclosing ball (3-d), High-Load Clarkson, n = {N}:");
    println!(
        "{:<14} {:>7} {:>9} {:>9} {:>9}",
        "environment", "rounds", "dropped", "delayed", "offline"
    );
    for (env, fault) in environments() {
        let report = Driver::new(Meb::new(3))
            .nodes(N)
            .seed(SEED)
            .algorithm(Algorithm::high_load())
            .fault_model(fault)
            .run(&balls)
            .expect("run");
        assert!(report.all_halted, "{env}: termination survives the faults");
        let basis = report.consensus_output().expect("all nodes agree");
        print_row(env, &report, basis.value.r2.sqrt(), 10.0);
    }

    println!();
    println!(
        "every environment converged to the exact optimum; \
         faults only cost rounds (and the counted messages)."
    );
}
