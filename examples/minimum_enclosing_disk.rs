//! The paper's evaluation scenario end-to-end: minimum enclosing disk on
//! the four dataset families of Figure 1, solved by both gossip
//! algorithms, with round counts and work printed per family.
//!
//! ```sh
//! cargo run --release --example minimum_enclosing_disk [n]
//! ```

use lpt::LpType;
use lpt_gossip::{Algorithm, Driver, StopCondition};
use lpt_problems::Med;
use lpt_workloads::med::MED_DATASETS;

fn main() {
    let n: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(1024);
    let runs = 5;
    println!("minimum enclosing disk, n = {n} points on {n} nodes, {runs} runs per cell");
    println!();
    println!(
        "{:<12} {:>6} {:>16} {:>17} {:>12}",
        "dataset", "basis", "low-load rounds", "high-load rounds", "log2(n)"
    );
    let log2n = (n as f64).log2();
    for ds in MED_DATASETS {
        let mut low_sum = 0.0;
        let mut high_sum = 0.0;
        for seed in 0..runs {
            let points = ds.generate(n, seed);
            let target = Med.basis_of(&points).value;
            let driver = Driver::new(Med)
                .nodes(n)
                .seed(seed)
                .stop(StopCondition::FirstSolution(target));
            let low = driver.clone().run(&points).expect("low-load run");
            assert!(
                low.reached(),
                "{} seed {seed}: low-load did not converge",
                ds.name()
            );
            let high = driver
                .algorithm(Algorithm::high_load())
                .run(&points)
                .expect("high-load run");
            assert!(
                high.reached(),
                "{} seed {seed}: high-load did not converge",
                ds.name()
            );
            low_sum += low.rounds as f64;
            high_sum += high.rounds as f64;
        }
        println!(
            "{:<12} {:>6} {:>16.1} {:>17.1} {:>12.1}",
            ds.name(),
            ds.designed_basis_size(),
            low_sum / runs as f64,
            high_sum / runs as f64,
            log2n
        );
    }
    println!();
    println!("expected shape (paper §5): duo-disk fastest (basis size 2) under both");
    println!("algorithms; rounds grow with log2(n). At small n the low-load algorithm");
    println!("benefits from n parallel samples per round and can finish in ~1 round.");
}
