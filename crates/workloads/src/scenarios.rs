//! Robustness scenarios: named fault-model presets for experiments.
//!
//! Each scenario bundles a [`FaultModel`] configuration that mimics a
//! recognizable deployment environment, so experiments and benches can
//! sweep "the same algorithm across environments" without hand-tuning
//! probabilities at every call site. All scenarios are deterministic:
//! a (seed, protocol, scenario) triple fully determines a run.

use gossip_sim::fault::{Bernoulli, Churn, Compose, Delay, FaultModel, Perfect};
use std::sync::Arc;

/// A named robustness scenario for sweeps and reports.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Scenario {
    /// The paper's fault-free network.
    Perfect,
    /// A well-run datacenter: 0.1% message loss, nothing else.
    Datacenter,
    /// A lossy wide-area network: 5% message loss and up to two rounds
    /// of extra delivery latency.
    Wan,
    /// Volunteer/edge computing: 20% of nodes flap, each offline 10% of
    /// the time, on top of 2% message loss.
    Flaky,
    /// A hostile environment: 20% loss, heavy churn (30% of nodes
    /// offline a quarter of the time), and up to three rounds of delay.
    Hostile,
}

/// Every scenario, mildest first — the order benches sweep them in.
pub const SCENARIOS: [Scenario; 5] = [
    Scenario::Perfect,
    Scenario::Datacenter,
    Scenario::Wan,
    Scenario::Flaky,
    Scenario::Hostile,
];

/// Loss-rate grid for Bernoulli sweeps (the `fault_sweep` bench).
pub const LOSS_GRID: [f64; 6] = [0.0, 0.05, 0.1, 0.2, 0.3, 0.4];

impl Scenario {
    /// Display name (stable; used in CSV headers).
    pub fn name(self) -> &'static str {
        match self {
            Scenario::Perfect => "perfect",
            Scenario::Datacenter => "datacenter",
            Scenario::Wan => "wan",
            Scenario::Flaky => "flaky",
            Scenario::Hostile => "hostile",
        }
    }

    /// Builds the scenario's fault model.
    pub fn fault_model(self) -> Arc<dyn FaultModel> {
        match self {
            Scenario::Perfect => Arc::new(Perfect),
            Scenario::Datacenter => Arc::new(Bernoulli::new(0.001)),
            Scenario::Wan => Arc::new(
                Compose::default()
                    .and(Bernoulli::new(0.05))
                    .and(Delay::uniform(2)),
            ),
            Scenario::Flaky => Arc::new(
                Compose::default()
                    .and(Bernoulli::new(0.02))
                    .and(Churn::crash_recovery(0.2, 0.1)),
            ),
            Scenario::Hostile => Arc::new(
                Compose::default()
                    .and(Bernoulli::new(0.2))
                    .and(Churn::crash_recovery(0.3, 0.25))
                    .and(Delay::uniform(3)),
            ),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scenario_names_are_unique() {
        let mut names: Vec<_> = SCENARIOS.iter().map(|s| s.name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), SCENARIOS.len());
    }

    #[test]
    fn only_the_perfect_scenario_is_perfect() {
        for s in SCENARIOS {
            assert_eq!(
                s.fault_model().is_perfect(),
                s == Scenario::Perfect,
                "{}",
                s.name()
            );
        }
    }

    #[test]
    fn loss_grid_starts_fault_free_and_is_increasing() {
        assert_eq!(LOSS_GRID[0], 0.0);
        for w in LOSS_GRID.windows(2) {
            assert!(w[0] < w[1]);
        }
        assert!(*LOSS_GRID.last().unwrap() <= 0.5);
    }
}
