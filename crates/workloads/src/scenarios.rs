//! Robustness scenarios: named fault-model and topology presets for
//! experiments.
//!
//! Each [`Scenario`] bundles a [`FaultModel`] configuration that mimics
//! a recognizable deployment environment, and each [`TopologyPreset`]
//! names a communication overlay, so experiments and benches can sweep
//! "the same algorithm across environments / overlays" without
//! hand-tuning parameters at every call site. All presets are
//! deterministic: a (seed, protocol, scenario, topology) tuple fully
//! determines a run.

use gossip_sim::fault::{
    Asymmetric, Bernoulli, Byzantine, Churn, Compose, Delay, FaultModel, Partition, Perfect,
    Regional,
};
use gossip_sim::topology::{Complete, Hypercube, RandomRegular, Ring, Topology, Torus2D};
use std::sync::Arc;

/// A named robustness scenario for sweeps and reports.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Scenario {
    /// The paper's fault-free network.
    Perfect,
    /// A well-run datacenter: 0.1% message loss, nothing else.
    Datacenter,
    /// A lossy wide-area network: 5% message loss and up to two rounds
    /// of extra delivery latency.
    Wan,
    /// Volunteer/edge computing: 20% of nodes flap, each offline 10% of
    /// the time, on top of 2% message loss.
    Flaky,
    /// A hostile environment: 20% loss, heavy churn (30% of nodes
    /// offline a quarter of the time), and up to three rounds of delay.
    Hostile,
    /// A seeded ~30/70 network split that heals at round 12 (think: an
    /// inter-datacenter link failure repaired mid-run).
    PartitionScenario,
    /// Correlated rack-scale outages: contiguous 64-node blocks go dark
    /// together 10% of the time, on top of 2% message loss.
    RegionalScenario,
    /// Direction-asymmetric link degradation: 30% of ordered node pairs
    /// lose 40% of pushes and 10% of pulls across the degraded link.
    AsymmetricScenario,
    /// A Byzantine minority: 10% of nodes corrupt 50% of the pull
    /// responses they serve (pullers detect and discard them).
    ByzantineScenario,
}

/// Every scenario, mildest first — the order benches sweep them in.
pub const SCENARIOS: [Scenario; 5] = [
    Scenario::Perfect,
    Scenario::Datacenter,
    Scenario::Wan,
    Scenario::Flaky,
    Scenario::Hostile,
];

/// The adversarial presets, separate from [`SCENARIOS`]: topology-aware
/// structured failures (partitions, correlated outages, asymmetric
/// links, Byzantine servers) rather than i.i.d. noise. Kept out of the
/// main array because the i.i.d. sweeps' convergence guarantees
/// (bounded round inflation at every grid point) are deliberately
/// stronger than what an adversarial model promises — here the claim is
/// *graceful degradation*, asserted by the `fault_sweep` bench's
/// adversarial section and measured by the summary's degradation
/// fields.
pub const ADVERSARIAL: [Scenario; 4] = [
    Scenario::PartitionScenario,
    Scenario::RegionalScenario,
    Scenario::AsymmetricScenario,
    Scenario::ByzantineScenario,
];

/// Loss-rate grid for Bernoulli sweeps (the `fault_sweep` bench).
pub const LOSS_GRID: [f64; 6] = [0.0, 0.05, 0.1, 0.2, 0.3, 0.4];

impl Scenario {
    /// Display name (stable; used in CSV headers).
    pub fn name(self) -> &'static str {
        match self {
            Scenario::Perfect => "perfect",
            Scenario::Datacenter => "datacenter",
            Scenario::Wan => "wan",
            Scenario::Flaky => "flaky",
            Scenario::Hostile => "hostile",
            Scenario::PartitionScenario => "partition",
            Scenario::RegionalScenario => "regional",
            Scenario::AsymmetricScenario => "asymmetric",
            Scenario::ByzantineScenario => "byzantine",
        }
    }

    /// Parses a [`Scenario::name`] string (CLI flags, wire requests);
    /// covers both [`SCENARIOS`] and [`ADVERSARIAL`].
    pub fn parse(s: &str) -> Option<Self> {
        SCENARIOS
            .into_iter()
            .chain(ADVERSARIAL)
            .find(|sc| sc.name() == s)
    }

    /// Builds the scenario's fault model.
    pub fn fault_model(self) -> Arc<dyn FaultModel> {
        match self {
            Scenario::Perfect => Arc::new(Perfect),
            Scenario::Datacenter => Arc::new(Bernoulli::new(0.001)),
            Scenario::Wan => Arc::new(
                Compose::default()
                    .and(Bernoulli::new(0.05))
                    .and(Delay::uniform(2)),
            ),
            Scenario::Flaky => Arc::new(
                Compose::default()
                    .and(Bernoulli::new(0.02))
                    .and(Churn::crash_recovery(0.2, 0.1)),
            ),
            Scenario::Hostile => Arc::new(
                Compose::default()
                    .and(Bernoulli::new(0.2))
                    .and(Churn::crash_recovery(0.3, 0.25))
                    .and(Delay::uniform(3)),
            ),
            Scenario::PartitionScenario => Arc::new(Partition::healing(0.3, 12)),
            Scenario::RegionalScenario => Arc::new(
                Compose::default()
                    .and(Regional::new(64, 0.1))
                    .and(Bernoulli::new(0.02)),
            ),
            Scenario::AsymmetricScenario => Arc::new(Asymmetric::new(0.3, 0.4, 0.1)),
            Scenario::ByzantineScenario => Arc::new(Byzantine::new(0.1, 0.5)),
        }
    }
}

/// A named communication-overlay preset for sweeps and reports,
/// mirroring [`Scenario`] on the topology axis. Parameter choices
/// (random-regular degree 8, ring width 16) are the sweeps' standard
/// "sparse but well-connected" and "sparse and high-diameter" points.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TopologyPreset {
    /// The paper's complete graph (every draw uniform over all nodes).
    Complete,
    /// The dimension-⌈log₂ n⌉ hypercube overlay.
    Hypercube,
    /// A seeded random 8-regular graph (pairing model, built per run).
    RandomRegular8,
    /// The 16-nearest-neighbor ring (degree 32, diameter ≈ n/32).
    Ring16,
    /// The two-dimensional wrap-around grid (degree 4, diameter ≈ √n).
    Torus,
}

/// Every topology preset, densest first — the order benches sweep
/// them in (`Complete` is the baseline the others are compared to).
pub const TOPOLOGIES: [TopologyPreset; 5] = [
    TopologyPreset::Complete,
    TopologyPreset::Hypercube,
    TopologyPreset::RandomRegular8,
    TopologyPreset::Ring16,
    TopologyPreset::Torus,
];

impl TopologyPreset {
    /// Display name (stable; used in CSV headers and perf baselines).
    pub fn name(self) -> &'static str {
        match self {
            TopologyPreset::Complete => "complete",
            TopologyPreset::Hypercube => "hypercube",
            TopologyPreset::RandomRegular8 => "rr8",
            TopologyPreset::Ring16 => "ring16",
            TopologyPreset::Torus => "torus",
        }
    }

    /// Parses a [`TopologyPreset::name`] string (CLI flags, wire
    /// requests).
    pub fn parse(s: &str) -> Option<Self> {
        TOPOLOGIES.into_iter().find(|t| t.name() == s)
    }

    /// Builds the preset's topology.
    pub fn topology(self) -> Arc<dyn Topology> {
        match self {
            TopologyPreset::Complete => Arc::new(Complete),
            TopologyPreset::Hypercube => Arc::new(Hypercube),
            TopologyPreset::RandomRegular8 => Arc::new(RandomRegular(8)),
            TopologyPreset::Ring16 => Arc::new(Ring(16)),
            TopologyPreset::Torus => Arc::new(Torus2D),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn topology_preset_names_are_unique_and_only_complete_is_complete() {
        let mut names: Vec<_> = TOPOLOGIES.iter().map(|t| t.name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), TOPOLOGIES.len());
        for t in TOPOLOGIES {
            assert_eq!(
                t.topology().is_complete(),
                t == TopologyPreset::Complete,
                "{}",
                t.name()
            );
        }
    }

    #[test]
    fn scenario_names_are_unique() {
        let mut names: Vec<_> = SCENARIOS
            .iter()
            .chain(ADVERSARIAL.iter())
            .map(|s| s.name())
            .collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), SCENARIOS.len() + ADVERSARIAL.len());
    }

    #[test]
    fn names_parse_back() {
        for s in SCENARIOS.into_iter().chain(ADVERSARIAL) {
            assert_eq!(Scenario::parse(s.name()), Some(s));
        }
        for t in TOPOLOGIES {
            assert_eq!(TopologyPreset::parse(t.name()), Some(t));
        }
        assert_eq!(Scenario::parse("nope"), None);
        assert_eq!(TopologyPreset::parse(""), None);
    }

    #[test]
    fn only_the_perfect_scenario_is_perfect() {
        for s in SCENARIOS.into_iter().chain(ADVERSARIAL) {
            assert_eq!(
                s.fault_model().is_perfect(),
                s == Scenario::Perfect,
                "{}",
                s.name()
            );
        }
    }

    #[test]
    fn adversarial_presets_are_separate_and_buildable() {
        // The i.i.d. sweeps' convergence asserts iterate SCENARIOS;
        // adversarial presets must never leak into that array.
        for a in ADVERSARIAL {
            assert!(!SCENARIOS.contains(&a), "{} leaked", a.name());
            // Names are wire tokens (RunSpecKey canonicalization).
            assert!(a
                .name()
                .chars()
                .all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '-'));
            let _ = a.fault_model();
        }
    }

    #[test]
    fn loss_grid_starts_fault_free_and_is_increasing() {
        assert_eq!(LOSS_GRID[0], 0.0);
        for w in LOSS_GRID.windows(2) {
            assert!(w[0] < w[1]);
        }
        assert!(*LOSS_GRID.last().unwrap() <= 0.5);
    }
}
