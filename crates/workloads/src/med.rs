//! The four MED dataset families of the paper's experimental evaluation
//! (Section 5, Figure 1).
//!
//! * **duo-disk** — 2 points lie on the solution disk (a diametral pair);
//!   the rest are uniform in the interior. Optimal basis size 2.
//! * **triple-disk** — 3 points lie on the solution disk; the rest are
//!   uniform in the interior. Optimal basis size 3.
//! * **triangle** — 3 points form a (non-obtuse) triangle; the rest are
//!   uniform in its interior. Optimal basis size 3.
//! * **hull** — points are slightly perturbed vertices of a regular
//!   `n`-gon. Optimal basis size is typically 3 and the basis points are
//!   not known in advance.
//!
//! The paper found duo-disk (basis size 2) noticeably faster than the
//! three basis-size-3 families, which is the main qualitative claim the
//! benchmark harness reproduces.

use lpt_problems::IdPoint2;
use rand::Rng;
use rand_chacha::rand_core::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// Radius of the generated solution disks.
const R: f64 = 10.0;

/// The dataset families of Figure 1.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum MedDataset {
    /// Two points on the solution circle, rest strictly inside.
    DuoDisk,
    /// Three points on the solution circle, rest strictly inside.
    TripleDisk,
    /// Non-obtuse triangle corners plus interior points.
    Triangle,
    /// Perturbed regular-polygon vertices.
    Hull,
}

/// All four datasets in the paper's plotting order.
pub const MED_DATASETS: [MedDataset; 4] = [
    MedDataset::TripleDisk,
    MedDataset::Triangle,
    MedDataset::Hull,
    MedDataset::DuoDisk,
];

impl MedDataset {
    /// The dataset's name as used in the paper's figures.
    pub fn name(&self) -> &'static str {
        match self {
            MedDataset::DuoDisk => "duo-disk",
            MedDataset::TripleDisk => "triple-disk",
            MedDataset::Triangle => "triangle",
            MedDataset::Hull => "hull",
        }
    }

    /// Parses a [`MedDataset::name`] string (CLI flags, wire requests).
    pub fn parse(s: &str) -> Option<Self> {
        MED_DATASETS.into_iter().find(|d| d.name() == s)
    }

    /// Size of the optimal basis this family is designed to have.
    pub fn designed_basis_size(&self) -> usize {
        match self {
            MedDataset::DuoDisk => 2,
            _ => 3,
        }
    }

    /// Generates `n` points deterministically from `seed`.
    pub fn generate(&self, n: usize, seed: u64) -> Vec<IdPoint2> {
        match self {
            MedDataset::DuoDisk => duo_disk(n, seed),
            MedDataset::TripleDisk => triple_disk(n, seed),
            MedDataset::Triangle => triangle(n, seed),
            MedDataset::Hull => hull(n, seed),
        }
    }
}

fn rng_for(seed: u64) -> ChaCha8Rng {
    ChaCha8Rng::seed_from_u64(seed ^ 0x6D65_645F_6461_7461)
}

/// Uniform point strictly inside the disk of radius `r·shrink` centered
/// at the origin.
fn interior_point<Rn: Rng + ?Sized>(rng: &mut Rn, r: f64) -> (f64, f64) {
    // Rejection-free: radius via sqrt transform, shrunk to keep points
    // strictly interior.
    let rr = r * 0.999 * rng.gen_range(0.0f64..1.0).sqrt();
    let t = rng.gen_range(0.0..std::f64::consts::TAU);
    (rr * t.cos(), rr * t.sin())
}

/// duo-disk (Figure 1a): a diametral pair on the circle of radius `R`,
/// remaining points uniform in the interior.
pub fn duo_disk(n: usize, seed: u64) -> Vec<IdPoint2> {
    assert!(n >= 1);
    let mut rng = rng_for(seed);
    let phi = rng.gen_range(0.0..std::f64::consts::TAU);
    let mut pts = Vec::with_capacity(n);
    pts.push(IdPoint2::new(0, R * phi.cos(), R * phi.sin()));
    if n >= 2 {
        pts.push(IdPoint2::new(1, -R * phi.cos(), -R * phi.sin()));
    }
    for i in 2..n {
        let (x, y) = interior_point(&mut rng, R);
        pts.push(IdPoint2::new(i as u32, x, y));
    }
    pts
}

/// triple-disk (Figure 1b): three points on the circle of radius `R`
/// whose MED is that circle (pairwise angular gaps < π), remaining points
/// uniform in the interior.
pub fn triple_disk(n: usize, seed: u64) -> Vec<IdPoint2> {
    assert!(n >= 1);
    let mut rng = rng_for(seed.wrapping_add(1));
    let base = rng.gen_range(0.0..std::f64::consts::TAU);
    // Perturbed equilateral angles: every gap stays well below π, so the
    // triangle is acute and all three points support the MED.
    let jitter = std::f64::consts::TAU / 18.0;
    let angles: Vec<f64> = (0..3)
        .map(|k| base + k as f64 * std::f64::consts::TAU / 3.0 + rng.gen_range(-jitter..jitter))
        .collect();
    let mut pts = Vec::with_capacity(n);
    for (i, a) in angles.iter().enumerate().take(n.min(3)) {
        pts.push(IdPoint2::new(i as u32, R * a.cos(), R * a.sin()));
    }
    for i in 3..n {
        let (x, y) = interior_point(&mut rng, R);
        pts.push(IdPoint2::new(i as u32, x, y));
    }
    pts
}

/// triangle (Figure 1c): corners of a non-obtuse triangle plus uniform
/// interior points (by barycentric sampling).
pub fn triangle(n: usize, seed: u64) -> Vec<IdPoint2> {
    assert!(n >= 1);
    let mut rng = rng_for(seed.wrapping_add(2));
    // Acute triangle inscribed in the radius-R circle (same jittered
    // equilateral construction as triple-disk, different magnitudes).
    let base = rng.gen_range(0.0..std::f64::consts::TAU);
    let jitter = std::f64::consts::TAU / 24.0;
    let corners: Vec<(f64, f64)> = (0..3)
        .map(|k| {
            let a = base + k as f64 * std::f64::consts::TAU / 3.0 + rng.gen_range(-jitter..jitter);
            (R * a.cos(), R * a.sin())
        })
        .collect();
    let mut pts = Vec::with_capacity(n);
    for (i, &(x, y)) in corners.iter().enumerate().take(n.min(3)) {
        pts.push(IdPoint2::new(i as u32, x, y));
    }
    for i in 3..n {
        // Uniform in the triangle via the reflection trick, pulled
        // slightly toward the centroid to stay strictly interior.
        let (mut u, mut v) = (rng.gen_range(0.0f64..1.0), rng.gen_range(0.0f64..1.0));
        if u + v > 1.0 {
            u = 1.0 - u;
            v = 1.0 - v;
        }
        let w = 1.0 - u - v;
        let shrink = 0.999;
        let cx = (corners[0].0 + corners[1].0 + corners[2].0) / 3.0;
        let cy = (corners[0].1 + corners[1].1 + corners[2].1) / 3.0;
        let x = w * corners[0].0 + u * corners[1].0 + v * corners[2].0;
        let y = w * corners[0].1 + u * corners[1].1 + v * corners[2].1;
        pts.push(IdPoint2::new(
            i as u32,
            cx + shrink * (x - cx),
            cy + shrink * (y - cy),
        ));
    }
    pts
}

/// hull (Figure 1d): vertices of a regular `n`-gon of radius `R`,
/// radially and angularly perturbed by a small relative amount.
pub fn hull(n: usize, seed: u64) -> Vec<IdPoint2> {
    assert!(n >= 1);
    let mut rng = rng_for(seed.wrapping_add(3));
    let perturb = 0.02;
    (0..n)
        .map(|i| {
            let a = i as f64 / n as f64 * std::f64::consts::TAU
                + rng.gen_range(-perturb..perturb) / n as f64;
            let r = R * (1.0 + rng.gen_range(-perturb..perturb));
            IdPoint2::new(i as u32, r * a.cos(), r * a.sin())
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use lpt::LpType;
    use lpt_problems::Med;

    #[test]
    fn sizes_and_ids_are_dense() {
        for ds in MED_DATASETS {
            let pts = ds.generate(100, 7);
            assert_eq!(pts.len(), 100);
            for (i, p) in pts.iter().enumerate() {
                assert_eq!(p.id, i as u32, "{}", ds.name());
            }
        }
    }

    #[test]
    fn deterministic_in_seed() {
        for ds in MED_DATASETS {
            assert_eq!(ds.generate(64, 5), ds.generate(64, 5));
            assert_ne!(ds.generate(64, 5), ds.generate(64, 6));
        }
    }

    #[test]
    fn duo_disk_basis_is_the_planted_pair() {
        for seed in 0..10 {
            let pts = duo_disk(256, seed);
            let b = Med.basis_of(&pts);
            assert_eq!(b.len(), 2, "seed {seed}");
            let ids: Vec<u32> = b.elements.iter().map(|e| e.id).collect();
            assert_eq!(ids, vec![0, 1], "seed {seed}");
            assert!((b.value.r2.sqrt() - R).abs() < 1e-9, "seed {seed}");
        }
    }

    #[test]
    fn triple_disk_basis_is_the_planted_triple() {
        for seed in 0..10 {
            let pts = triple_disk(256, seed);
            let b = Med.basis_of(&pts);
            assert_eq!(b.len(), 3, "seed {seed}");
            let ids: Vec<u32> = b.elements.iter().map(|e| e.id).collect();
            assert_eq!(ids, vec![0, 1, 2], "seed {seed}");
            assert!((b.value.r2.sqrt() - R).abs() < 1e-9, "seed {seed}");
        }
    }

    #[test]
    fn triangle_basis_is_the_corners() {
        for seed in 0..10 {
            let pts = triangle(256, seed);
            let b = Med.basis_of(&pts);
            let ids: Vec<u32> = b.elements.iter().map(|e| e.id).collect();
            assert_eq!(ids, vec![0, 1, 2], "seed {seed}");
        }
    }

    #[test]
    fn hull_basis_is_small_and_disk_covers_all() {
        for seed in 0..5 {
            let pts = hull(512, seed);
            let b = Med.basis_of(&pts);
            assert!(b.len() >= 2 && b.len() <= 3, "seed {seed}: {}", b.len());
            let disk = b.value.disk();
            for p in &pts {
                assert!(disk.contains(&p.p), "seed {seed}");
            }
        }
    }

    #[test]
    fn small_inputs_work() {
        for ds in MED_DATASETS {
            for n in 1..=4 {
                let pts = ds.generate(n, 3);
                assert_eq!(pts.len(), n);
                let b = Med.basis_of(&pts);
                assert!(b.len() <= 3);
            }
        }
    }
}
