//! Random feasible fixed-dimension LP instances.

use lpt_problems::IdHalfspace;
use rand::Rng;
use rand_chacha::rand_core::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// Generates `n` halfspace constraints in `dim` variables, all satisfied
/// at the origin (tangent hyperplanes of random directions pushed outward
/// by a random offset in `[r_min, r_max]`), so every instance — and by
/// monotonicity every subset — is feasible.
pub fn random_feasible_lp(n: usize, dim: usize, seed: u64) -> Vec<IdHalfspace> {
    assert!(dim >= 1);
    let mut rng = ChaCha8Rng::seed_from_u64(seed ^ 0x6C70_5F67_656E);
    (0..n)
        .map(|i| {
            // Random unit direction via normalized Gaussian-ish sampling
            // (sum of uniforms is fine for direction diversity here).
            let mut a: Vec<f64> = (0..dim).map(|_| rng.gen_range(-1.0..1.0)).collect();
            let norm = a.iter().map(|x| x * x).sum::<f64>().sqrt().max(1e-9);
            for x in &mut a {
                *x /= norm;
            }
            let b = rng.gen_range(1.0..8.0);
            IdHalfspace::new(i as u32, a, b)
        })
        .collect()
}

/// A production-planning style 2-variable LP: maximize `p1·x + p2·y`
/// (minimize the negation) under `n` random resource constraints
/// `a·x + b·y ≤ c` with `a, b ≥ 0`, plus nonnegativity. Feasible at the
/// origin by construction.
pub fn production_lp(n: usize, seed: u64) -> (Vec<f64>, Vec<IdHalfspace>) {
    let mut rng = ChaCha8Rng::seed_from_u64(seed ^ 0x7072_6F64);
    let objective = vec![-rng.gen_range(1.0..5.0), -rng.gen_range(1.0..5.0)];
    let mut cons: Vec<IdHalfspace> = Vec::with_capacity(n + 2);
    cons.push(IdHalfspace::new(0, vec![-1.0, 0.0], 0.0)); // x >= 0
    cons.push(IdHalfspace::new(1, vec![0.0, -1.0], 0.0)); // y >= 0
    for i in 0..n {
        let a = rng.gen_range(0.1..3.0);
        let b = rng.gen_range(0.1..3.0);
        let c = rng.gen_range(2.0..20.0);
        cons.push(IdHalfspace::new((i + 2) as u32, vec![a, b], c));
    }
    (objective, cons)
}

#[cfg(test)]
mod tests {
    use super::*;
    use lpt::LpType;
    use lpt_problems::FixedDimLp;

    #[test]
    fn random_lp_is_feasible_at_origin() {
        let cons = random_feasible_lp(200, 3, 1);
        assert_eq!(cons.len(), 200);
        for c in &cons {
            assert!(c.h.satisfied(&[0.0, 0.0, 0.0]));
        }
    }

    #[test]
    fn random_lp_solves() {
        let cons = random_feasible_lp(60, 2, 2);
        let p = FixedDimLp::with_default_bound(vec![-1.0, -1.0]);
        let b = p.basis_of(&cons);
        assert!(b.value.objective.is_finite());
        assert!(b.len() <= 2);
    }

    #[test]
    fn production_lp_bounded_and_feasible() {
        let (c, cons) = production_lp(30, 3);
        let p = FixedDimLp::with_default_bound(c);
        let b = p.basis_of(&cons);
        assert!(b.value.objective.is_finite());
        // Optimum must be in the nonnegative quadrant and away from the box.
        assert!(b.value.x[0] >= -1e-9 && b.value.x[1] >= -1e-9);
        assert!(b.value.x[0] < 1e3 && b.value.x[1] < 1e3);
    }

    #[test]
    fn deterministic() {
        assert_eq!(random_feasible_lp(10, 2, 9), random_feasible_lp(10, 2, 9));
    }
}
