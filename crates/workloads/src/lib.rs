//! # `lpt-workloads` — workload generators
//!
//! Dataset and instance generators for the experiments:
//!
//! * [`med`] — the four minimum-enclosing-disk dataset families of the
//!   paper's Figure 1 (`duo-disk`, `triple-disk`, `triangle`, `hull`),
//!   plus extra families for wider testing;
//! * [`lp`] — random feasible fixed-dimension LP instances;
//! * [`sets`] — hitting-set / set-cover instances with a planted small
//!   hitting set, the regime of Theorem 5 (`d` small, `s` sets);
//! * [`scenarios`] — named robustness scenarios: fault-model presets
//!   (loss, churn, delay) and communication-topology presets
//!   (hypercube, random-regular, ring, torus) for sweeping an
//!   algorithm across simulated deployment environments and overlays.
//!
//! All generators are deterministic functions of an explicit seed.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod lp;
pub mod med;
pub mod scenarios;
pub mod sets;

pub use med::{MedDataset, MED_DATASETS};
pub use scenarios::{Scenario, TopologyPreset, ADVERSARIAL, LOSS_GRID, SCENARIOS, TOPOLOGIES};
