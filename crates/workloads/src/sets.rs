//! Hitting-set / set-cover instances with a planted small hitting set —
//! the regime of the paper's Theorem 5 (minimum hitting set of size `d`,
//! `s` sets, `n` elements).

use lpt_problems::{SetCover, SetSystem};
use rand::seq::SliceRandom;
use rand::Rng;
use rand_chacha::rand_core::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// Generates a hitting-set instance over `n` elements with `s` sets such
/// that a planted set of `d` elements hits everything (so the minimum
/// hitting set has size ≤ `d`). Each set contains one planted element
/// plus `set_size − 1` random fillers.
///
/// Returns `(system, planted)` with `planted` sorted.
pub fn planted_hitting_set(
    n: usize,
    s: usize,
    d: usize,
    set_size: usize,
    seed: u64,
) -> (SetSystem, Vec<u32>) {
    assert!(d >= 1 && d <= n);
    assert!(set_size >= 1);
    let mut rng = ChaCha8Rng::seed_from_u64(seed ^ 0x6873_5F67_656E);
    let mut ids: Vec<u32> = (0..n as u32).collect();
    ids.shuffle(&mut rng);
    let planted: Vec<u32> = {
        let mut p = ids[..d].to_vec();
        p.sort_unstable();
        p
    };
    let sets: Vec<Vec<u32>> = (0..s)
        .map(|_| {
            let anchor = planted[rng.gen_range(0..d)];
            let mut set = vec![anchor];
            while set.len() < set_size {
                let x = rng.gen_range(0..n as u32);
                if !set.contains(&x) {
                    set.push(x);
                }
            }
            set
        })
        .collect();
    (SetSystem::new(n, sets), planted)
}

/// Geometric hitting set: elements are `n` points on a line (positions
/// `0..n`), sets are `s` random intervals of length in
/// `[min_len, max_len]`. Interval systems have small VC dimension, the
/// classical geometric regime for hitting-set approximation.
pub fn interval_hitting_set(
    n: usize,
    s: usize,
    min_len: usize,
    max_len: usize,
    seed: u64,
) -> SetSystem {
    assert!(min_len >= 1 && min_len <= max_len && max_len <= n);
    let mut rng = ChaCha8Rng::seed_from_u64(seed ^ 0x6976_6C73);
    let sets: Vec<Vec<u32>> = (0..s)
        .map(|_| {
            let len = rng.gen_range(min_len..=max_len);
            let start = rng.gen_range(0..=(n - len));
            (start as u32..(start + len) as u32).collect()
        })
        .collect();
    SetSystem::new(n, sets)
}

/// A set-cover instance whose dual has a planted small hitting set: `s`
/// sets over `n` elements where `d` designated sets jointly cover `X`
/// (so the minimum cover has size ≤ `d`).
pub fn planted_set_cover(n: usize, s: usize, d: usize, seed: u64) -> SetCover {
    assert!(d >= 1 && d <= s);
    let mut rng = ChaCha8Rng::seed_from_u64(seed ^ 0x7363_5F67_656E);
    // Partition X among the d designated sets.
    let mut sets: Vec<Vec<u32>> = vec![Vec::new(); s];
    for x in 0..n as u32 {
        sets[rng.gen_range(0..d)].push(x);
    }
    // Remaining sets are random subsets.
    for set in sets.iter_mut().skip(d) {
        let k = rng.gen_range(1..=(n / 4).max(1));
        while set.len() < k {
            let x = rng.gen_range(0..n as u32);
            if !set.contains(&x) {
                set.push(x);
            }
        }
    }
    // Designated sets might be empty when n < d (not allowed); guard.
    for set in sets.iter_mut().take(d) {
        if set.is_empty() {
            set.push(rng.gen_range(0..n as u32));
        }
    }
    SetCover::new(n, sets)
}

#[cfg(test)]
mod tests {
    use super::*;
    use lpt_problems::{greedy_hitting_set, min_hitting_set_exact};

    #[test]
    fn planted_set_is_a_hitting_set() {
        for seed in 0..10 {
            let (sys, planted) = planted_hitting_set(100, 40, 3, 5, seed);
            assert!(sys.is_hitting_set(&planted), "seed {seed}");
            assert_eq!(planted.len(), 3);
        }
    }

    #[test]
    fn exact_optimum_at_most_planted() {
        let (sys, planted) = planted_hitting_set(40, 25, 3, 4, 11);
        let exact = min_hitting_set_exact(&sys, planted.len()).unwrap();
        assert!(exact.len() <= planted.len());
    }

    #[test]
    fn interval_instance_valid() {
        let sys = interval_hitting_set(50, 20, 3, 10, 12);
        assert_eq!(sys.num_sets(), 20);
        let g = greedy_hitting_set(&sys);
        assert!(sys.is_hitting_set(&g));
    }

    #[test]
    fn planted_cover_has_small_cover() {
        let sc = planted_set_cover(60, 20, 4, 13);
        let cover: Vec<u32> = (0..4).collect();
        assert!(sc.is_cover(&cover), "designated sets cover X");
        // And the dual hitting-set view agrees.
        assert!(sc.dual_hitting_set().is_hitting_set(&cover));
    }

    #[test]
    fn determinism() {
        let (a, pa) = planted_hitting_set(30, 10, 2, 3, 5);
        let (b, pb) = planted_hitting_set(30, 10, 2, 3, 5);
        assert_eq!(pa, pb);
        for i in 0..a.num_sets() {
            assert_eq!(a.set(i), b.set(i));
        }
    }
}
