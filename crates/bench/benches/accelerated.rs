//! Section 3.1: the accelerated High-Load variant. Sweeps the
//! acceleration parameter `C ∈ {1, log^0.5 n, log n, 2·log n}` and
//! reports the rounds/work trade-off; Theorem 4 predicts rounds shrink
//! toward `O(d log n / log log n)` while per-round work grows with `C`.

use lpt::LpType;
use lpt_bench::{banner, max_i, mean, runs, write_csv};
use lpt_gossip::high_load::HighLoadConfig;
use lpt_gossip::{Algorithm, Driver, StopCondition};
use lpt_problems::Med;
use lpt_workloads::med::MedDataset;

fn main() {
    let i = max_i(12).min(13);
    let n = 1usize << i;
    let runs = runs(5);
    let log2n = (n as f64).log2();
    banner(&format!(
        "Section 3.1: accelerated High-Load (n = 2^{i}, {runs} runs/C)"
    ));

    let c_values = [
        1usize,
        log2n.sqrt().ceil() as usize,
        log2n.ceil() as usize,
        (2.0 * log2n).ceil() as usize,
    ];
    println!(
        "{:>8} {:>12} {:>16} {:>16} {:>14}",
        "C", "avg rounds", "rounds/log2 n", "max work/round", "work·rounds"
    );
    let mut rows = Vec::new();
    let mut series = Vec::new();
    for &c in &c_values {
        let mut rounds = Vec::new();
        let mut max_work = 0u64;
        for run in 0..runs {
            let seed = 0xACC ^ (c as u64) << 16 ^ run;
            let points = MedDataset::TripleDisk.generate(n, seed);
            let target = Med.basis_of(&points).value;
            let report = Driver::new(Med)
                .nodes(n)
                .seed(seed)
                .algorithm(Algorithm::HighLoad(HighLoadConfig {
                    push_count: c,
                    ..Default::default()
                }))
                .stop(StopCondition::FirstSolution(target))
                .run(&points)
                .expect("accelerated run");
            assert!(report.reached(), "C = {c} run {run}");
            rounds.push(report.rounds as f64);
            max_work = max_work.max(report.metrics.max_node_work());
        }
        let avg = mean(&rounds);
        println!(
            "{:>8} {:>12.2} {:>16.2} {:>16} {:>14.0}",
            c,
            avg,
            avg / log2n,
            max_work,
            avg * max_work as f64
        );
        rows.push(format!("{c},{avg:.3},{max_work}"));
        series.push((c, avg, max_work));
    }
    write_csv("accelerated.csv", "C,avg_rounds,max_work", &rows);

    println!();
    let base = series[0].1;
    let fastest = series.iter().map(|s| s.1).fold(f64::INFINITY, f64::min);
    println!("speedup of best C over C = 1: {:.2}x", base / fastest);
    assert!(
        fastest <= base,
        "acceleration must not slow the algorithm down on average"
    );
    let work_grows = series.windows(2).all(|w| w[1].2 >= w[0].2);
    println!("work grows monotonically with C: {work_grows}");
}
