//! Section 1.1's motivating comparison: the gossip Low-Load algorithm
//! (`O(d log n)` rounds) versus the hypercube-emulated Clarkson baseline
//! (`O(d log² n)` rounds — each of its `O(d log n)` iterations costs
//! `Θ(log n)` hypercube communication rounds). The gap should widen
//! linearly in `log n`.

use lpt::LpType;
use lpt_bench::{banner, max_i, mean, runs, write_csv};
use lpt_gossip::{Algorithm, Driver, StopCondition};
use lpt_problems::Med;
use lpt_workloads::med::MedDataset;

fn main() {
    let max_i = max_i(12);
    let runs = runs(3);
    banner(&format!(
        "Baseline: gossip Low-Load vs hypercube Clarkson (i = 6..={max_i})"
    ));

    println!(
        "{:>4} {:>8} | {:>14} {:>18} {:>8}",
        "i", "n", "gossip rounds", "hypercube rounds", "ratio"
    );
    let mut rows = Vec::new();
    let mut ratios = Vec::new();
    for i in 6..=max_i {
        let n = 1usize << i;
        let mut gossip = Vec::new();
        let mut hyper = Vec::new();
        for run in 0..runs {
            let seed = (u64::from(i) << 20) ^ run ^ 0xBA5E;
            let points = MedDataset::TripleDisk.generate(n, seed);
            let target = Med.basis_of(&points).value;
            let first = Driver::new(Med)
                .nodes(n)
                .seed(seed)
                .stop(StopCondition::FirstSolution(target))
                .run(&points)
                .expect("gossip run");
            assert!(first.reached());
            gossip.push(first.rounds as f64);
            let rep = Driver::new(Med)
                .nodes(n)
                .seed(seed)
                .algorithm(Algorithm::Hypercube)
                .run(&points)
                .expect("hypercube run");
            let basis = rep.consensus_output().expect("hypercube consensus");
            assert!(
                (basis.value.r2 - target.r2).abs() <= 1e-6 * target.r2.max(1.0),
                "baseline must be correct too"
            );
            hyper.push(rep.rounds as f64);
        }
        let g = mean(&gossip);
        let h = mean(&hyper);
        println!("{:>4} {:>8} | {:>14.1} {:>18.1} {:>8.2}", i, n, g, h, h / g);
        rows.push(format!("{i},{n},{g:.2},{h:.2}"));
        ratios.push((i, h / g));
    }
    write_csv(
        "baseline_comparison.csv",
        "i,n,gossip_rounds,hypercube_rounds",
        &rows,
    );

    println!();
    let (first_i, first_ratio) = ratios.first().copied().unwrap();
    let (last_i, last_ratio) = ratios.last().copied().unwrap();
    println!(
        "ratio grew from {first_ratio:.1} (i = {first_i}) to {last_ratio:.1} (i = {last_i}) — \
         the Θ(log n) separation the paper's algorithms close."
    );
    assert!(
        last_ratio > 1.5,
        "hypercube baseline should be clearly slower at scale"
    );
}
