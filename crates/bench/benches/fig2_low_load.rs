//! Figure 2: average rounds until a node first finds the minimum
//! enclosing disk under the **Low-Load Clarkson Algorithm**, over the
//! four dataset families and `n = 2^i` (the paper sweeps `i = 1..14`,
//! with duo-disk extended to `2^16`; set `LPT_MAX_I=14` for paper scale).
//!
//! Paper claims to reproduce: instances `< 2^8` finish in ~1 round;
//! duo-disk ≈ `1.2·log2 n` rounds; the three basis-size-3 families
//! cluster at ≈ `1.7·log2 n`.

use lpt_bench::sweep::{fit_affine, fit_constant, sweep_dataset, Algo};
use lpt_bench::{banner, max_i, runs, write_csv};
use lpt_workloads::med::{MedDataset, MED_DATASETS};

fn main() {
    let max_i = max_i(12);
    let runs = runs(5);
    banner(&format!(
        "Figure 2: Low-Load Clarkson on MED (runs/cell = {runs}, i = 1..={max_i}, duo to {})",
        max_i + 2
    ));

    println!(
        "{:<12} {:>4} {:>8} {:>12} {:>8} {:>10}",
        "dataset", "i", "n", "avg rounds", "std", "max work"
    );
    let mut csv_rows = Vec::new();
    let mut fits = Vec::new();
    for ds in MED_DATASETS {
        // The paper extends the duo-disk low-load sweep two exponents
        // further (to 2^16 at paper scale).
        let top = if ds == MedDataset::DuoDisk {
            max_i + 2
        } else {
            max_i
        };
        let cells = sweep_dataset(Algo::LowLoad, ds, 1, top, runs);
        for c in &cells {
            println!(
                "{:<12} {:>4} {:>8} {:>12.2} {:>8.2} {:>10}",
                ds.name(),
                c.i,
                c.n,
                c.avg_rounds,
                c.std_rounds,
                c.max_work
            );
            csv_rows.push(format!(
                "{},{},{},{:.3},{:.3},{},{}",
                ds.name(),
                c.i,
                c.n,
                c.avg_rounds,
                c.std_rounds,
                c.max_work,
                c.max_load
            ));
        }
        // Paper: "test instances of size < 2^8 finish in one round".
        let small_fast = cells
            .iter()
            .filter(|c| c.i <= 5)
            .all(|c| c.avg_rounds <= 3.0);
        fits.push((ds, fit_constant(&cells), fit_affine(&cells), small_fast));
        println!();
    }
    write_csv(
        "fig2_low_load.csv",
        "dataset,i,n,avg_rounds,std_rounds,max_work,max_load",
        &csv_rows,
    );

    println!("fitted curves, paper description: duo-disk ~1.2 log n, others ~1.7 log n:");
    for (ds, a, (slope, icept), small_fast) in &fits {
        println!(
            "  {:<12} through-origin a = {:.2}; affine rounds = {:.2}*log2(n) {:+.2}   (small instances ≤ 3 rounds: {})",
            ds.name(),
            a,
            slope,
            icept,
            if *small_fast { "yes" } else { "NO" }
        );
    }
    // Below i = 10 / 3 runs per cell the fitted constants are noise-
    // dominated (instances of a few hundred elements finish in 1–3
    // rounds regardless of basis size, so one lucky seed reorders
    // them); only enforce the paper's shape at meaningful scale, as
    // table_constants does.
    let scaled_enough = max_i >= 10 && runs >= 3;
    if !scaled_enough {
        println!(
            "shape check skipped: LPT_MAX_I = {max_i} / LPT_RUNS = {runs} is noise-dominated \
             (need i >= 10 and >= 3 runs per cell)."
        );
        return;
    }
    let duo = fits
        .iter()
        .find(|(ds, _, _, _)| *ds == MedDataset::DuoDisk)
        .unwrap()
        .1;
    for (ds, a, _, _) in &fits {
        if *ds != MedDataset::DuoDisk {
            assert!(
                *a >= duo * 0.9,
                "{} fitted constant {a:.2} unexpectedly below duo-disk {duo:.2}",
                ds.name()
            );
        }
    }
    println!();
    println!("shape check: duo-disk (basis 2) has the smallest constant — as in the paper.");
}
