//! Figure 3: average rounds until a node first finds the minimum
//! enclosing disk under the **High-Load Clarkson Algorithm** (`C = 1`),
//! over the four dataset families and `n = 2^i`, `i = 1..14`.
//!
//! Paper claims to reproduce: duo-disk ≈ `0.9·log2 n` rounds; the three
//! basis-size-3 families cluster at ≈ `1.1·log2 n`.

use lpt_bench::sweep::{fit_affine, fit_constant, sweep_dataset, Algo};
use lpt_bench::{banner, max_i, runs, write_csv};
use lpt_workloads::med::{MedDataset, MED_DATASETS};

fn main() {
    let max_i = max_i(12);
    let runs = runs(5);
    banner(&format!(
        "Figure 3: High-Load Clarkson on MED (runs/cell = {runs}, i = 1..={max_i})"
    ));

    println!(
        "{:<12} {:>4} {:>8} {:>12} {:>8} {:>10}",
        "dataset", "i", "n", "avg rounds", "std", "max work"
    );
    let mut csv_rows = Vec::new();
    let mut fits = Vec::new();
    for ds in MED_DATASETS {
        let cells = sweep_dataset(Algo::HighLoad { push_count: 1 }, ds, 1, max_i, runs);
        for c in &cells {
            println!(
                "{:<12} {:>4} {:>8} {:>12.2} {:>8.2} {:>10}",
                ds.name(),
                c.i,
                c.n,
                c.avg_rounds,
                c.std_rounds,
                c.max_work
            );
            csv_rows.push(format!(
                "{},{},{},{:.3},{:.3},{},{}",
                ds.name(),
                c.i,
                c.n,
                c.avg_rounds,
                c.std_rounds,
                c.max_work,
                c.max_load
            ));
        }
        fits.push((ds, fit_constant(&cells), fit_affine(&cells)));
        println!();
    }
    write_csv(
        "fig3_high_load.csv",
        "dataset,i,n,avg_rounds,std_rounds,max_work,max_load",
        &csv_rows,
    );

    println!("fitted curves, paper description: duo-disk ~0.9 log n, others ~1.1 log n:");
    for (ds, a, (slope, icept)) in &fits {
        println!(
            "  {:<12} through-origin a = {:.2}; affine rounds = {:.2}*log2(n) {:+.2}",
            ds.name(),
            a,
            slope,
            icept
        );
    }
    let duo = fits
        .iter()
        .find(|(ds, _, _)| *ds == MedDataset::DuoDisk)
        .unwrap()
        .1;
    for (ds, a, _) in &fits {
        if *ds != MedDataset::DuoDisk {
            assert!(
                *a >= duo * 0.9,
                "{} fitted constant {a:.2} unexpectedly below duo-disk {duo:.2}",
                ds.name()
            );
        }
    }
    println!();
    println!("shape check: duo-disk fastest; constants below the low-load ones (Figure 2).");
}
