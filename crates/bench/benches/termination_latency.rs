//! Lemma 12: once a node samples an optimal basis, *every* node outputs
//! the (same, correct) value within `O(log n)` further rounds, and no
//! node ever outputs a wrong value. Measures the gap between
//! first-solution and all-halted across `n` and across the maturity
//! factor `c`, and verifies output correctness on every run.

use lpt::LpType;
use lpt_bench::{banner, max_i, runs, write_csv};
use lpt_gossip::low_load::LowLoadConfig;
use lpt_gossip::{Algorithm, Driver};
use lpt_problems::Med;
use lpt_workloads::med::MedDataset;

fn main() {
    let max_i = max_i(12).min(12);
    let runs = runs(3);
    banner(&format!(
        "Lemma 12: termination latency (runs/cell = {runs})"
    ));

    println!(
        "{:>4} {:>8} {:>6} | {:>12} {:>12} {:>10} {:>10}",
        "i", "n", "c", "first cand.", "all halted", "latency", "maturity"
    );
    let mut rows = Vec::new();
    for i in [6u32, 8, 10, max_i] {
        let n = 1usize << i;
        for c in [1.5f64, 2.0, 3.0] {
            let mut latency_sum = 0.0;
            let mut first_sum = 0.0;
            let mut halted_sum = 0.0;
            let mut maturity = 0u64;
            for run in 0..runs {
                let seed = (u64::from(i) << 16) ^ ((c * 10.0) as u64) << 8 ^ run;
                let points = MedDataset::Triangle.generate(n, seed);
                let target = Med.basis_of(&points).value;
                let report = Driver::new(Med)
                    .nodes(n)
                    .seed(seed)
                    .algorithm(Algorithm::LowLoad(LowLoadConfig {
                        maturity_factor: c,
                        ..Default::default()
                    }))
                    .run(&points)
                    .expect("latency run");
                assert!(report.all_halted, "i={i} c={c} run={run}");
                // Safety: every output equals the true optimum.
                for out in report.outputs.iter() {
                    let b = out.as_ref().expect("halted ⇒ output");
                    assert!(
                        Med.values_close(&b.value, &target),
                        "node output a wrong value — Lemma 12 safety violated"
                    );
                }
                let first = report.first_candidate_round.expect("candidate") as f64;
                let halted = report.rounds as f64;
                maturity = ((c * f64::from(i)).ceil()) as u64;
                first_sum += first;
                halted_sum += halted;
                latency_sum += halted - first;
            }
            let r = runs as f64;
            println!(
                "{:>4} {:>8} {:>6.1} | {:>12.1} {:>12.1} {:>10.1} {:>10}",
                i,
                n,
                c,
                first_sum / r,
                halted_sum / r,
                latency_sum / r,
                maturity
            );
            rows.push(format!(
                "{i},{n},{c},{:.2},{:.2},{:.2}",
                first_sum / r,
                halted_sum / r,
                latency_sum / r
            ));
        }
    }
    write_csv(
        "termination_latency.csv",
        "i,n,c,first_candidate,all_halted,latency",
        &rows,
    );
    println!();
    println!(
        "latency tracks the maturity window (≈ c·log2 n + spread): O(log n), as Lemma 12 states."
    );
}
