//! Ablation: the sample size `r = 6d²` (Lemma 1 / Lemma 7). Smaller
//! samples make each round cheaper but raise the violator rate (more
//! duplication churn, slower convergence); larger samples waste pulls.

use lpt::LpType;
use lpt_bench::{banner, mean, runs, write_csv};
use lpt_gossip::low_load::LowLoadConfig;
use lpt_gossip::{Algorithm, Driver, StopCondition};
use lpt_problems::Med;
use lpt_workloads::med::MedDataset;

fn main() {
    let n = 1usize << 10;
    let runs = runs(5);
    let d = 3usize;
    banner(&format!(
        "Ablation: sample size r (paper: 6d² = {}; n = {n})",
        6 * d * d
    ));

    println!("{:>8} {:>12} {:>16}", "r", "avg rounds", "max work/round");
    let mut rows = Vec::new();
    let r_values = [d + 1, 2 * d, d * d, 3 * d * d, 6 * d * d, 12 * d * d];
    for &r in &r_values {
        let mut rounds = Vec::new();
        let mut max_work = 0u64;
        for run in 0..runs {
            let seed = (r as u64) << 24 ^ run ^ 0x5A5A;
            let points = MedDataset::TripleDisk.generate(n, seed);
            let target = Med.basis_of(&points).value;
            let report = Driver::new(Med)
                .nodes(n)
                .seed(seed)
                .algorithm(Algorithm::LowLoad(LowLoadConfig {
                    sample_size: Some(r),
                    ..Default::default()
                }))
                .max_rounds(3_000)
                .stop(StopCondition::FirstSolution(target))
                .run(&points)
                .expect("ablation run");
            assert!(report.reached(), "r = {r}, run {run}");
            rounds.push(report.rounds as f64);
            max_work = max_work.max(report.metrics.max_node_work());
        }
        let avg = mean(&rounds);
        println!("{:>8} {:>12.2} {:>16}", r, avg, max_work);
        rows.push(format!("{r},{avg:.3},{max_work}"));
    }
    write_csv("ablation_sample_size.csv", "r,avg_rounds,max_work", &rows);

    println!();
    println!("tiny samples (r ≈ d) violate Lemma 1's premise and thrash; past ≈ 6d² the");
    println!("extra pulls buy little — the paper's constant is at the knee of the curve.");
}
