//! Robustness sweep: rounds-to-first-solution (and fault costs) of the
//! Low- and High-Load Clarkson algorithms as the network degrades.
//!
//! Two sweeps:
//!
//! 1. **Loss-rate sweep** — Bernoulli message loss over
//!    [`lpt_workloads::scenarios::LOSS_GRID`], measuring how the round
//!    count inflates relative to the perfect network (graceful
//!    degradation: moderate loss costs a constant factor, not
//!    correctness);
//! 2. **Scenario sweep** — the named deployment presets
//!    ([`lpt_workloads::scenarios::SCENARIOS`]): datacenter, WAN,
//!    flaky, hostile.
//!
//! Environment knobs: `LPT_MAX_I` (network size `n = 2^LPT_MAX_I`
//! capped at 2^12 here; default 10) and `LPT_RUNS` (seeds per cell,
//! default 5). CSVs: `fault_sweep_loss.csv`, `fault_sweep_scenarios.csv`;
//! full per-round traces (first seed of each cell) as JSONL frame
//! streams: `fault_sweep_loss.jsonl`, `fault_sweep_scenarios.jsonl`.

use gossip_sim::fault::Bernoulli;
use lpt::LpType;
use lpt_bench::{banner, max_i, mean, run_frames, runs, stddev, write_csv, write_jsonl, RunFrames};
use lpt_gossip::{Algorithm, Driver, StopCondition};
use lpt_problems::Med;
use lpt_workloads::med::duo_disk;
use lpt_workloads::scenarios::{LOSS_GRID, SCENARIOS};

struct CellOut {
    avg_rounds: f64,
    std_rounds: f64,
    converged: u64,
    avg_dropped: f64,
    avg_offline: f64,
    /// The first seed's full round trace, exported as JSONL.
    trace: Option<RunFrames>,
}

fn run_cell(
    algorithm: &Algorithm,
    cell: &str,
    n: usize,
    runs: u64,
    fault: impl Fn() -> std::sync::Arc<dyn gossip_sim::fault::FaultModel>,
) -> CellOut {
    let mut rounds = Vec::new();
    let mut dropped = Vec::new();
    let mut offline = Vec::new();
    let mut converged = 0u64;
    let mut trace = None;
    for run in 0..runs {
        let seed = 0xFA17 ^ (run.wrapping_mul(0x9E3779B9)) ^ ((n as u64) << 20);
        let points = duo_disk(n, seed);
        let target = Med.basis_of(&points).value;
        let report = Driver::new(Med)
            .nodes(n)
            .seed(seed)
            .algorithm(algorithm.clone())
            .fault_model(fault())
            .stop(StopCondition::FirstSolution(target))
            .max_rounds(5_000)
            .run(&points)
            .expect("sweep run");
        if report.reached() {
            converged += 1;
            rounds.push(report.rounds as f64);
        }
        dropped.push(report.faults.messages_dropped as f64);
        offline.push(report.faults.offline_node_rounds as f64);
        if run == 0 {
            trace = Some(run_frames(
                format!("bench:fault_sweep {cell} n={n}"),
                algorithm.name(),
                n,
                seed,
                cell,
                &report,
            ));
        }
    }
    CellOut {
        avg_rounds: mean(&rounds),
        std_rounds: stddev(&rounds),
        converged,
        avg_dropped: mean(&dropped),
        avg_offline: mean(&offline),
        trace,
    }
}

fn main() {
    let i = max_i(10).min(12);
    let n = 1usize << i;
    let runs = runs(5);
    banner(&format!(
        "Fault sweep: MED duo-disk, n = 2^{i} = {n}, {runs} seeds/cell"
    ));

    let algos = [
        ("low-load", Algorithm::low_load()),
        ("high-load", Algorithm::high_load()),
    ];

    println!(
        "{:<10} {:>6} {:>12} {:>8} {:>6} {:>12}",
        "algo", "loss", "avg rounds", "std", "conv", "avg dropped"
    );
    let mut csv = Vec::new();
    let mut traces = Vec::new();
    for (name, algo) in &algos {
        let mut baseline = None;
        for &loss in &LOSS_GRID {
            let label = format!("loss={loss}");
            let cell = run_cell(algo, &label, n, runs, || {
                std::sync::Arc::new(Bernoulli::new(loss))
            });
            traces.extend(cell.trace.clone());
            println!(
                "{:<10} {:>6.2} {:>12.2} {:>8.2} {:>4}/{:<1} {:>12.0}",
                name,
                loss,
                cell.avg_rounds,
                cell.std_rounds,
                cell.converged,
                runs,
                cell.avg_dropped
            );
            csv.push(format!(
                "{name},{loss},{:.3},{:.3},{},{:.1}",
                cell.avg_rounds, cell.std_rounds, cell.converged, cell.avg_dropped
            ));
            if loss == 0.0 {
                baseline = Some(cell.avg_rounds);
                assert_eq!(cell.converged, runs, "perfect network must converge");
            } else if loss <= 0.2 {
                // Graceful degradation: moderate loss still converges
                // every time and costs at most a small constant factor.
                assert_eq!(cell.converged, runs, "{name} diverged at loss {loss}");
                let base = baseline.expect("loss 0 runs first");
                assert!(
                    cell.avg_rounds <= (base * 6.0).max(base + 12.0),
                    "{name} at loss {loss}: {:.1} rounds vs baseline {base:.1} — not graceful",
                    cell.avg_rounds
                );
            }
        }
        println!();
    }
    write_csv(
        "fault_sweep_loss.csv",
        "algo,loss,avg_rounds,std_rounds,converged,avg_dropped",
        &csv,
    );
    write_jsonl("fault_sweep_loss.jsonl", &traces);

    banner("Scenario sweep (named deployment presets)");
    println!(
        "{:<10} {:<12} {:>12} {:>8} {:>6} {:>12} {:>12}",
        "algo", "scenario", "avg rounds", "std", "conv", "avg dropped", "avg offline"
    );
    let mut csv = Vec::new();
    let mut traces = Vec::new();
    for (name, algo) in &algos {
        for scenario in SCENARIOS {
            let cell = run_cell(algo, scenario.name(), n, runs, || scenario.fault_model());
            traces.extend(cell.trace.clone());
            println!(
                "{:<10} {:<12} {:>12.2} {:>8.2} {:>4}/{:<1} {:>12.0} {:>12.0}",
                name,
                scenario.name(),
                cell.avg_rounds,
                cell.std_rounds,
                cell.converged,
                runs,
                cell.avg_dropped,
                cell.avg_offline
            );
            csv.push(format!(
                "{name},{},{:.3},{:.3},{},{:.1},{:.1}",
                scenario.name(),
                cell.avg_rounds,
                cell.std_rounds,
                cell.converged,
                cell.avg_dropped,
                cell.avg_offline
            ));
        }
        println!();
    }
    write_csv(
        "fault_sweep_scenarios.csv",
        "algo,scenario,avg_rounds,std_rounds,converged,avg_dropped,avg_offline",
        &csv,
    );
    write_jsonl("fault_sweep_scenarios.jsonl", &traces);
    println!("graceful degradation verified: every loss rate ≤ 0.2 converged in every run.");
}
