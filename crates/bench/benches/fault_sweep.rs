//! Robustness sweep: rounds-to-first-solution (and fault costs) of the
//! Low- and High-Load Clarkson algorithms as the network degrades.
//!
//! Two sweeps:
//!
//! 1. **Loss-rate sweep** — Bernoulli message loss over
//!    [`lpt_workloads::scenarios::LOSS_GRID`], measuring how the round
//!    count inflates relative to the perfect network (graceful
//!    degradation: moderate loss costs a constant factor, not
//!    correctness);
//! 2. **Scenario sweep** — the named deployment presets
//!    ([`lpt_workloads::scenarios::SCENARIOS`]): datacenter, WAN,
//!    flaky, hostile;
//! 3. **Adversarial sweep** — the structured-failure presets
//!    ([`lpt_workloads::scenarios::ADVERSARIAL`]): healing partition,
//!    correlated regional outages, asymmetric links, Byzantine servers.
//!    Asserts graceful degradation: every run still converges, and the
//!    summary's degradation counters actually fired for the failure
//!    class being injected.
//!
//! Environment knobs: `LPT_MAX_I` (network size `n = 2^LPT_MAX_I`
//! capped at 2^12 here; default 10) and `LPT_RUNS` (seeds per cell,
//! default 5). CSVs: `fault_sweep_loss.csv`, `fault_sweep_scenarios.csv`;
//! full per-round traces (first seed of each cell) as JSONL frame
//! streams: `fault_sweep_loss.jsonl`, `fault_sweep_scenarios.jsonl`,
//! `fault_sweep_adversarial.{csv,jsonl}`.

use gossip_sim::fault::Bernoulli;
use lpt::LpType;
use lpt_bench::{banner, max_i, mean, run_frames, runs, stddev, write_csv, write_jsonl, RunFrames};
use lpt_gossip::{Algorithm, Driver, StopCondition};
use lpt_problems::Med;
use lpt_workloads::med::duo_disk;
use lpt_workloads::scenarios::{ADVERSARIAL, LOSS_GRID, SCENARIOS};

struct CellOut {
    avg_rounds: f64,
    std_rounds: f64,
    converged: u64,
    avg_dropped: f64,
    avg_offline: f64,
    /// Summed degradation counters across the cell's runs.
    partitioned_rounds: u64,
    byzantine_exposures: u64,
    link_cuts: u64,
    /// The first seed's full round trace, exported as JSONL.
    trace: Option<RunFrames>,
}

fn run_cell(
    algorithm: &Algorithm,
    cell: &str,
    n: usize,
    runs: u64,
    fault: impl Fn() -> std::sync::Arc<dyn gossip_sim::fault::FaultModel>,
) -> CellOut {
    let mut rounds = Vec::new();
    let mut dropped = Vec::new();
    let mut offline = Vec::new();
    let mut converged = 0u64;
    let mut trace = None;
    let mut partitioned_rounds = 0u64;
    let mut byzantine_exposures = 0u64;
    let mut link_cuts = 0u64;
    for run in 0..runs {
        let seed = 0xFA17 ^ (run.wrapping_mul(0x9E3779B9)) ^ ((n as u64) << 20);
        let points = duo_disk(n, seed);
        let target = Med.basis_of(&points).value;
        let report = Driver::new(Med)
            .nodes(n)
            .seed(seed)
            .algorithm(algorithm.clone())
            .fault_model(fault())
            .stop(StopCondition::FirstSolution(target))
            .max_rounds(5_000)
            .run(&points)
            .expect("sweep run");
        if report.reached() {
            converged += 1;
            rounds.push(report.rounds as f64);
        }
        dropped.push(report.faults.messages_dropped as f64);
        offline.push(report.faults.offline_node_rounds as f64);
        partitioned_rounds += report.metrics.degradation.partitioned_rounds;
        byzantine_exposures += report.metrics.degradation.byzantine_exposures;
        link_cuts += report.metrics.degradation.link_cuts;
        if run == 0 {
            trace = Some(run_frames(
                format!("bench:fault_sweep {cell} n={n}"),
                algorithm.name(),
                n,
                seed,
                cell,
                &report,
            ));
        }
    }
    CellOut {
        avg_rounds: mean(&rounds),
        std_rounds: stddev(&rounds),
        converged,
        avg_dropped: mean(&dropped),
        avg_offline: mean(&offline),
        partitioned_rounds,
        byzantine_exposures,
        link_cuts,
        trace,
    }
}

fn main() {
    let i = max_i(10).min(12);
    let n = 1usize << i;
    let runs = runs(5);
    banner(&format!(
        "Fault sweep: MED duo-disk, n = 2^{i} = {n}, {runs} seeds/cell"
    ));

    let algos = [
        ("low-load", Algorithm::low_load()),
        ("high-load", Algorithm::high_load()),
    ];

    println!(
        "{:<10} {:>6} {:>12} {:>8} {:>6} {:>12}",
        "algo", "loss", "avg rounds", "std", "conv", "avg dropped"
    );
    let mut csv = Vec::new();
    let mut traces = Vec::new();
    for (name, algo) in &algos {
        let mut baseline = None;
        for &loss in &LOSS_GRID {
            let label = format!("loss={loss}");
            let cell = run_cell(algo, &label, n, runs, || {
                std::sync::Arc::new(Bernoulli::new(loss))
            });
            traces.extend(cell.trace.clone());
            println!(
                "{:<10} {:>6.2} {:>12.2} {:>8.2} {:>4}/{:<1} {:>12.0}",
                name,
                loss,
                cell.avg_rounds,
                cell.std_rounds,
                cell.converged,
                runs,
                cell.avg_dropped
            );
            csv.push(format!(
                "{name},{loss},{:.3},{:.3},{},{:.1}",
                cell.avg_rounds, cell.std_rounds, cell.converged, cell.avg_dropped
            ));
            if loss == 0.0 {
                baseline = Some(cell.avg_rounds);
                assert_eq!(cell.converged, runs, "perfect network must converge");
            } else if loss <= 0.2 {
                // Graceful degradation: moderate loss still converges
                // every time and costs at most a small constant factor.
                assert_eq!(cell.converged, runs, "{name} diverged at loss {loss}");
                let base = baseline.expect("loss 0 runs first");
                assert!(
                    cell.avg_rounds <= (base * 6.0).max(base + 12.0),
                    "{name} at loss {loss}: {:.1} rounds vs baseline {base:.1} — not graceful",
                    cell.avg_rounds
                );
            }
        }
        println!();
    }
    write_csv(
        "fault_sweep_loss.csv",
        "algo,loss,avg_rounds,std_rounds,converged,avg_dropped",
        &csv,
    );
    write_jsonl("fault_sweep_loss.jsonl", &traces);

    banner("Scenario sweep (named deployment presets)");
    println!(
        "{:<10} {:<12} {:>12} {:>8} {:>6} {:>12} {:>12}",
        "algo", "scenario", "avg rounds", "std", "conv", "avg dropped", "avg offline"
    );
    let mut csv = Vec::new();
    let mut traces = Vec::new();
    for (name, algo) in &algos {
        for scenario in SCENARIOS {
            let cell = run_cell(algo, scenario.name(), n, runs, || scenario.fault_model());
            traces.extend(cell.trace.clone());
            println!(
                "{:<10} {:<12} {:>12.2} {:>8.2} {:>4}/{:<1} {:>12.0} {:>12.0}",
                name,
                scenario.name(),
                cell.avg_rounds,
                cell.std_rounds,
                cell.converged,
                runs,
                cell.avg_dropped,
                cell.avg_offline
            );
            csv.push(format!(
                "{name},{},{:.3},{:.3},{},{:.1},{:.1}",
                scenario.name(),
                cell.avg_rounds,
                cell.std_rounds,
                cell.converged,
                cell.avg_dropped,
                cell.avg_offline
            ));
        }
        println!();
    }
    write_csv(
        "fault_sweep_scenarios.csv",
        "algo,scenario,avg_rounds,std_rounds,converged,avg_dropped,avg_offline",
        &csv,
    );
    write_jsonl("fault_sweep_scenarios.jsonl", &traces);

    banner("Adversarial sweep (structured-failure presets)");
    println!(
        "{:<10} {:<12} {:>12} {:>6} {:>10} {:>10} {:>10}",
        "algo", "scenario", "avg rounds", "conv", "part.rnds", "byz.exp", "link cuts"
    );
    let mut csv = Vec::new();
    let mut traces = Vec::new();
    // Degradation counters summed per scenario across BOTH algorithms:
    // the per-cell samples can legitimately be tiny (low-load often
    // reaches its target in a round or two, leaving a correlated-outage
    // model little time to fire), so the graceful-degradation asserts
    // run on the aggregate.
    let mut agg: Vec<(&str, u64, u64, u64, f64)> = ADVERSARIAL
        .iter()
        .map(|s| (s.name(), 0, 0, 0, 0.0))
        .collect();
    for (name, algo) in &algos {
        for scenario in ADVERSARIAL {
            let cell = run_cell(algo, scenario.name(), n, runs, || scenario.fault_model());
            traces.extend(cell.trace.clone());
            let slot = agg
                .iter_mut()
                .find(|(s, ..)| *s == scenario.name())
                .expect("scenario in agg");
            slot.1 += cell.partitioned_rounds;
            slot.2 += cell.byzantine_exposures;
            slot.3 += cell.link_cuts;
            slot.4 += cell.avg_offline * runs as f64;
            println!(
                "{:<10} {:<12} {:>12.2} {:>4}/{:<1} {:>10} {:>10} {:>10}",
                name,
                scenario.name(),
                cell.avg_rounds,
                cell.converged,
                runs,
                cell.partitioned_rounds,
                cell.byzantine_exposures,
                cell.link_cuts
            );
            csv.push(format!(
                "{name},{},{:.3},{:.3},{},{:.1},{:.1},{},{},{}",
                scenario.name(),
                cell.avg_rounds,
                cell.std_rounds,
                cell.converged,
                cell.avg_dropped,
                cell.avg_offline,
                cell.partitioned_rounds,
                cell.byzantine_exposures,
                cell.link_cuts
            ));
            // Graceful degradation under *structured* failures: the
            // algorithms must still converge in every run.
            assert_eq!(
                cell.converged,
                runs,
                "{name} diverged under the {} preset",
                scenario.name()
            );
        }
        println!();
    }
    // ... and the degradation counters for each injected failure class
    // must actually have fired somewhere in the sweep (an all-zero
    // aggregate would mean the adversary never touched a run).
    for (scenario, partitioned, byz, cuts, offline) in agg {
        match scenario {
            "partition" => {
                assert!(partitioned > 0, "partition: no partitioned rounds");
                assert!(cuts > 0, "partition: no links cut");
            }
            "regional" => assert!(offline > 0.0, "regional: no correlated downtime"),
            "asymmetric" => assert!(cuts > 0, "asymmetric: no link cuts"),
            "byzantine" => assert!(byz > 0, "byzantine: no exposures"),
            other => unreachable!("unknown adversarial preset {other}"),
        }
    }
    write_csv(
        "fault_sweep_adversarial.csv",
        "algo,scenario,avg_rounds,std_rounds,converged,avg_dropped,avg_offline,\
         partitioned_rounds,byzantine_exposures,link_cuts",
        &csv,
    );
    write_jsonl("fault_sweep_adversarial.jsonl", &traces);
    println!(
        "graceful degradation verified: every loss rate ≤ 0.2 and every \
         adversarial preset converged in every run."
    );
}
