//! Topology sweep: convergence-round inflation of the Low- and
//! High-Load Clarkson algorithms on sparse overlays versus the paper's
//! complete graph.
//!
//! For every [`lpt_workloads::scenarios::TOPOLOGIES`] preset the sweep
//! measures rounds-to-first-solution (the paper's Section 5 metric) on
//! the same MED instances, reporting each overlay's round inflation
//! relative to `Complete`. Four environments per cell: the perfect
//! network, the `wan` scenario, and two adversarial presets (`partition`
//! and `byzantine`), so the sweep also shows how overlay sparsity
//! compounds with i.i.d. loss and with structured failures.
//!
//! Environment knobs: `LPT_MAX_I` (network size `n = 2^LPT_MAX_I`
//! capped at 2^12 here; default 10) and `LPT_RUNS` (seeds per cell,
//! default 5). CSV: `topology_sweep.csv`; full per-round traces (first
//! seed of each cell) as a JSONL frame stream: `topology_sweep.jsonl`.

use lpt::LpType;
use lpt_bench::{banner, max_i, mean, run_frames, runs, stddev, write_csv, write_jsonl, RunFrames};
use lpt_gossip::{Algorithm, Driver, StopCondition};
use lpt_problems::Med;
use lpt_workloads::med::duo_disk;
use lpt_workloads::scenarios::{Scenario, TopologyPreset, TOPOLOGIES};

struct CellOut {
    avg_rounds: f64,
    std_rounds: f64,
    avg_ops: f64,
    converged: u64,
    /// The first seed's full round trace, exported as JSONL.
    trace: Option<RunFrames>,
}

fn run_cell(
    algorithm: &Algorithm,
    n: usize,
    runs: u64,
    topology: TopologyPreset,
    scenario: Scenario,
) -> CellOut {
    let mut rounds = Vec::new();
    let mut ops = Vec::new();
    let mut converged = 0u64;
    let mut trace = None;
    for run in 0..runs {
        let seed = 0x7090 ^ (run.wrapping_mul(0x9E3779B9)) ^ ((n as u64) << 20);
        let points = duo_disk(n, seed);
        let target = Med.basis_of(&points).value;
        let report = Driver::new(Med)
            .nodes(n)
            .seed(seed)
            .algorithm(algorithm.clone())
            .topology(topology.topology())
            .fault_model(scenario.fault_model())
            .stop(StopCondition::FirstSolution(target))
            .max_rounds(10_000)
            .run(&points)
            .expect("sweep run");
        if report.reached() {
            converged += 1;
            rounds.push(report.rounds as f64);
            ops.push(report.metrics.total_ops() as f64);
        }
        if run == 0 {
            trace = Some(run_frames(
                format!(
                    "bench:topology_sweep topology={} scenario={} n={n}",
                    topology.name(),
                    scenario.name()
                ),
                algorithm.name(),
                n,
                seed,
                scenario.name(),
                &report,
            ));
        }
    }
    CellOut {
        avg_rounds: mean(&rounds),
        std_rounds: stddev(&rounds),
        avg_ops: mean(&ops),
        converged,
        trace,
    }
}

fn main() {
    let i = max_i(10).min(12);
    let n = 1usize << i;
    let runs = runs(5);
    banner(&format!(
        "Topology sweep: MED duo-disk rounds-to-first-solution, n = 2^{i} = {n}, {runs} seeds/cell"
    ));

    let algos = [
        ("low-load", Algorithm::low_load()),
        ("high-load", Algorithm::high_load()),
    ];
    // Perfect and WAN baselines plus two adversarial presets: the
    // healing partition (structured loss that ends) and the Byzantine
    // minority (structured corruption that doesn't).
    let scenarios = [
        Scenario::Perfect,
        Scenario::Wan,
        Scenario::PartitionScenario,
        Scenario::ByzantineScenario,
    ];

    println!(
        "{:<10} {:<10} {:<10} {:>12} {:>8} {:>9} {:>6} {:>14}",
        "algo", "scenario", "topology", "avg rounds", "std", "inflate", "conv", "avg ops"
    );
    let mut csv = Vec::new();
    let mut traces = Vec::new();
    for (name, algo) in &algos {
        for scenario in scenarios {
            let mut baseline = None;
            for topology in TOPOLOGIES {
                let cell = run_cell(algo, n, runs, topology, scenario);
                traces.extend(cell.trace.clone());
                let base = *baseline.get_or_insert(cell.avg_rounds.max(1.0));
                let inflation = cell.avg_rounds / base;
                println!(
                    "{:<10} {:<10} {:<10} {:>12.2} {:>8.2} {:>8.2}x {:>4}/{:<1} {:>14.0}",
                    name,
                    scenario.name(),
                    topology.name(),
                    cell.avg_rounds,
                    cell.std_rounds,
                    inflation,
                    cell.converged,
                    runs,
                    cell.avg_ops
                );
                csv.push(format!(
                    "{name},{},{},{:.3},{:.3},{:.3},{},{:.0}",
                    scenario.name(),
                    topology.name(),
                    cell.avg_rounds,
                    cell.std_rounds,
                    inflation,
                    cell.converged,
                    cell.avg_ops
                ));
                // Expander-like overlays (complete, hypercube,
                // random-regular) must still find the solution in
                // every run: there sparsity costs rounds, never
                // correctness. High-diameter overlays (ring, torus)
                // may legitimately outlive the budget — their
                // inflation is the measurement, not a failure.
                let expander = matches!(
                    topology,
                    TopologyPreset::Complete
                        | TopologyPreset::Hypercube
                        | TopologyPreset::RandomRegular8
                );
                if expander && scenario == Scenario::Perfect {
                    assert_eq!(
                        cell.converged,
                        runs,
                        "{name} on {} under {} diverged",
                        topology.name(),
                        scenario.name()
                    );
                }
                // Only meaningful when the baseline itself converged:
                // a 0-converged complete cell would make every ratio
                // in its block bogus, which the conv column reports.
                if topology == TopologyPreset::Complete && cell.converged > 0 {
                    assert!(
                        (0.99..=1.01).contains(&inflation),
                        "complete graph is its own baseline"
                    );
                }
            }
            println!();
        }
    }
    write_csv(
        "topology_sweep.csv",
        "algo,scenario,topology,avg_rounds,std_rounds,round_inflation,converged,avg_ops",
        &csv,
    );
    write_jsonl("topology_sweep.jsonl", &traces);
    println!(
        "expander overlays (hypercube, rr8) converged in every fault-free run; \
         high-diameter overlays and faulty networks report their inflation \
         (0-converged cells never reached the target within the budget)."
    );
}
