//! Theorems 3 and 4, empirically: maximum per-node communication work
//! per round and maximum per-node load across the `n = 2^i` sweep.
//!
//! * Low-Load: work `O(d² + log n)` — dominated by the `s = c(6d²+log n)`
//!   sampling pulls; load `O(|H₀|/n + log n)` per node (Lemma 9 keeps
//!   the global multiset linear in `|H₀|`).
//! * High-Load: work `O(d log n)` — basis pushes + violator pushes +
//!   termination entries; no filtering, load grows only additively.

use lpt::LpType;
use lpt_bench::{banner, max_i, runs, write_csv};
use lpt_gossip::{Algorithm, Driver, StopCondition};
use lpt_problems::Med;
use lpt_workloads::med::MedDataset;

fn main() {
    let max_i = max_i(12);
    let runs = runs(3);
    banner(&format!(
        "Theorems 3/4: work and load bounds (i = 4..={max_i}, {runs} runs)"
    ));

    println!(
        "{:>4} {:>8} | {:>14} {:>12} | {:>14} {:>12} | {:>10}",
        "i", "n", "low work", "low load", "high work", "high load", "d²+log2n"
    );
    let ds = MedDataset::TripleDisk;
    let mut rows = Vec::new();
    let mut low_work_per_bound = Vec::new();
    for i in 4..=max_i {
        let n = 1usize << i;
        let mut low_work = 0u64;
        let mut low_load = 0u64;
        let mut high_work = 0u64;
        let mut high_load = 0u64;
        for run in 0..runs {
            let seed = (u64::from(i) << 24) ^ run;
            let points = ds.generate(n, seed);
            let target = Med.basis_of(&points).value;
            let driver = Driver::new(Med)
                .nodes(n)
                .seed(seed)
                .stop(StopCondition::FirstSolution(target));
            let low = driver.clone().run(&points).expect("low-load run");
            assert!(low.reached());
            low_work = low_work.max(low.metrics.max_node_work());
            low_load = low_load.max(low.metrics.max_load());
            let high = driver
                .algorithm(Algorithm::high_load())
                .run(&points)
                .expect("high-load run");
            assert!(high.reached());
            high_work = high_work.max(high.metrics.max_node_work());
            high_load = high_load.max(high.metrics.max_load());
        }
        let d = 3.0f64;
        let bound_unit = d * d + f64::from(i);
        println!(
            "{:>4} {:>8} | {:>14} {:>12} | {:>14} {:>12} | {:>10.0}",
            i, n, low_work, low_load, high_work, high_load, bound_unit
        );
        rows.push(format!(
            "{i},{n},{low_work},{low_load},{high_work},{high_load}"
        ));
        low_work_per_bound.push(low_work as f64 / bound_unit);
    }
    write_csv(
        "work_bounds.csv",
        "i,n,low_work,low_load,high_work,high_load",
        &rows,
    );

    // The Theorem 3 shape: low-load work / (d² + log n) stays bounded
    // (no super-logarithmic growth).
    let first = low_work_per_bound.first().copied().unwrap_or(1.0);
    let last = low_work_per_bound.last().copied().unwrap_or(1.0);
    println!();
    println!(
        "low-load work / (d²+log2 n): first = {first:.1}, last = {last:.1} (flat ⇒ Theorem 3 shape)"
    );
    assert!(
        last <= first * 3.0 + 10.0,
        "low-load work grew super-logarithmically: {low_work_per_bound:?}"
    );
}
