//! Criterion micro-benchmarks for the computational kernels every
//! simulated round leans on: Welzl's MED, sequential Clarkson, the
//! violation test, Fenwick-backed multiset sampling, and one full
//! simulated gossip round of each algorithm.

use criterion::{criterion_group, criterion_main, BatchSize, BenchmarkId, Criterion};
use gossip_sim::{Network, NetworkConfig};
use lpt::{LpType, Multiset};
use lpt_gossip::driver::scatter;
use lpt_gossip::high_load::{HighLoadClarkson, HighLoadConfig};
use lpt_gossip::low_load::{LowLoadClarkson, LowLoadConfig};
use lpt_problems::Med;
use lpt_workloads::med::MedDataset;
use rand::Rng;
use rand_chacha::rand_core::SeedableRng;
use rand_chacha::ChaCha8Rng;
use std::hint::black_box;

fn bench_welzl(c: &mut Criterion) {
    let mut group = c.benchmark_group("welzl_med");
    for &n in &[100usize, 1_000, 10_000] {
        let points = MedDataset::Hull.generate(n, 1);
        group.bench_with_input(BenchmarkId::from_parameter(n), &points, |b, pts| {
            b.iter(|| black_box(Med.basis_of(pts)));
        });
    }
    group.finish();
}

fn bench_sequential_clarkson(c: &mut Criterion) {
    let mut group = c.benchmark_group("sequential_clarkson");
    for &n in &[1_000usize, 10_000] {
        let points = MedDataset::TripleDisk.generate(n, 2);
        group.bench_with_input(BenchmarkId::from_parameter(n), &points, |b, pts| {
            b.iter_batched(
                || ChaCha8Rng::seed_from_u64(3),
                |mut rng| black_box(lpt::clarkson(&Med, pts, &mut rng).unwrap()),
                BatchSize::SmallInput,
            );
        });
    }
    group.finish();
}

fn bench_violation_test(c: &mut Criterion) {
    let points = MedDataset::TripleDisk.generate(4096, 4);
    let basis = Med.basis_of(&points);
    c.bench_function("violation_test_4096", |b| {
        b.iter(|| {
            let mut count = 0usize;
            for p in &points {
                if Med.violates(black_box(&basis), p) {
                    count += 1;
                }
            }
            black_box(count)
        });
    });
}

fn bench_multiset_sampling(c: &mut Criterion) {
    let mut group = c.benchmark_group("multiset_sample_without_replacement");
    for &n in &[1_000usize, 100_000] {
        let weights: Vec<u128> = (0..n).map(|i| 1 + (i as u128 % 7)).collect();
        let items: Vec<u32> = (0..n as u32).collect();
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter_batched(
                || {
                    (
                        Multiset::with_weights(items.clone(), &weights),
                        ChaCha8Rng::seed_from_u64(5),
                    )
                },
                |(mut ms, mut rng)| black_box(ms.sample_without_replacement(54, &mut rng)),
                BatchSize::SmallInput,
            );
        });
    }
    group.finish();
}

fn bench_gossip_round(c: &mut Criterion) {
    let mut group = c.benchmark_group("one_gossip_round");
    group.sample_size(10);
    for &n in &[1_024usize, 8_192] {
        let points = MedDataset::TripleDisk.generate(n, 6);
        group.bench_with_input(BenchmarkId::new("low_load", n), &n, |b, _| {
            b.iter_batched(
                || {
                    let proto = LowLoadClarkson::new(Med, n, &LowLoadConfig::default());
                    let states: Vec<_> = scatter(&points, n, 7)
                        .expect("n > 0")
                        .into_iter()
                        .map(|h0| proto.initial_state(h0))
                        .collect();
                    Network::new(proto, states, NetworkConfig::with_seed(7))
                },
                |mut net| {
                    net.round();
                    black_box(net.round_index())
                },
                BatchSize::SmallInput,
            );
        });
        group.bench_with_input(BenchmarkId::new("high_load", n), &n, |b, _| {
            b.iter_batched(
                || {
                    let proto = HighLoadClarkson::new(Med, n, &HighLoadConfig::default());
                    let states: Vec<_> = scatter(&points, n, 8)
                        .expect("n > 0")
                        .into_iter()
                        .map(|h| proto.initial_state(h))
                        .collect();
                    Network::new(proto, states, NetworkConfig::with_seed(8))
                },
                |mut net| {
                    net.round();
                    black_box(net.round_index())
                },
                BatchSize::SmallInput,
            );
        });
    }
    group.finish();
}

fn bench_rng_derivation(c: &mut Criterion) {
    c.bench_function("derive_rng", |b| {
        b.iter(|| {
            let mut rng =
                gossip_sim::rng::derive_rng(black_box(1), black_box(2), black_box(3), black_box(4));
            black_box(rng.gen::<u64>())
        });
    });
}

criterion_group!(
    benches,
    bench_welzl,
    bench_sequential_clarkson,
    bench_violation_test,
    bench_multiset_sampling,
    bench_gossip_round,
    bench_rng_derivation
);
criterion_main!(benches);
