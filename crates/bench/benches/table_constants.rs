//! Section 5's headline numbers in one table: the fitted constants
//! `rounds / log2 n` of both algorithms on all four dataset families,
//! side by side with the constants the paper reports.

use lpt_bench::sweep::{fit_affine, fit_constant, sweep_dataset, Algo};
use lpt_bench::{banner, max_i, runs};
use lpt_workloads::med::{MedDataset, MED_DATASETS};

fn paper_constant(algo: &str, ds: MedDataset) -> f64 {
    match (algo, ds) {
        ("low", MedDataset::DuoDisk) => 1.2,
        ("low", _) => 1.7,
        (_, MedDataset::DuoDisk) => 0.9,
        _ => 1.1,
    }
}

fn main() {
    let max_i = max_i(11);
    let runs = runs(5);
    banner(&format!(
        "Table: fitted round constants vs the paper (i up to {max_i}, {runs} runs/cell)"
    ));

    println!(
        "{:<12} {:>16} {:>12} {:>17} {:>12}",
        "dataset", "low-load (ours)", "(paper)", "high-load (ours)", "(paper)"
    );
    let mut low_by_ds = Vec::new();
    let mut high_by_ds = Vec::new();
    for ds in MED_DATASETS {
        let low_cells = sweep_dataset(Algo::LowLoad, ds, 6, max_i, runs);
        let high_cells = sweep_dataset(Algo::HighLoad { push_count: 1 }, ds, 6, max_i, runs);
        let (low, _) = fit_affine(&low_cells);
        let (high, _) = fit_affine(&high_cells);
        println!(
            "{:<12} {:>16.2} {:>12.1} {:>17.2} {:>12.1}",
            ds.name(),
            low,
            paper_constant("low", ds),
            high,
            paper_constant("high", ds)
        );
        // The ordering check uses the through-origin fit: below paper
        // scale the affine slope over a handful of cells is dominated by
        // intercept noise (high-load finishes in single-digit rounds at
        // n <= 2^11), while rounds/log2 n is stable.
        low_by_ds.push((ds, fit_constant(&low_cells)));
        high_by_ds.push((ds, fit_constant(&high_cells)));
    }

    // Shape assertions (the reproduction criterion is the ordering, not
    // the absolute constants — our simulator's round semantics can shift
    // them by a constant factor).
    let duo_low = *low_by_ds
        .iter()
        .find_map(|(d, a)| (*d == MedDataset::DuoDisk).then_some(a))
        .unwrap();
    let duo_high = *high_by_ds
        .iter()
        .find_map(|(d, a)| (*d == MedDataset::DuoDisk).then_some(a))
        .unwrap();
    let others_low: Vec<f64> = low_by_ds
        .iter()
        .filter(|(d, _)| *d != MedDataset::DuoDisk)
        .map(|(_, a)| *a)
        .collect();
    let others_high: Vec<f64> = high_by_ds
        .iter()
        .filter(|(d, _)| *d != MedDataset::DuoDisk)
        .map(|(_, a)| *a)
        .collect();

    println!();
    println!("shape checks:");
    let duo_fastest_low = others_low.iter().all(|&a| a >= duo_low * 0.9);
    let duo_fastest_high = others_high.iter().all(|&a| a >= duo_high * 0.9);
    let others_cluster_low = {
        let lo = others_low.iter().cloned().fold(f64::INFINITY, f64::min);
        let hi = others_low.iter().cloned().fold(0.0f64, f64::max);
        hi <= lo * 1.6 + 0.3
    };
    println!("  duo-disk fastest under low-load : {duo_fastest_low}");
    println!("  duo-disk fastest under high-load: {duo_fastest_high}");
    println!("  basis-3 families cluster (low)  : {others_cluster_low}");
    assert!(
        duo_fastest_low && duo_fastest_high,
        "basis-size ordering must hold"
    );
}
