//! Ablation: the Low-Load filtering step (keep probability
//! `1/(1 + 1/(2d))`, Lemma 9). Sweeping the keep probability shows the
//! trade-off the paper's choice balances: keep too little and the
//! duplication signal (and hence convergence) weakens; keep too much
//! and `|H(V)|` — and with it the per-round work — grows without bound.

use lpt::LpType;
use lpt_bench::{banner, mean, runs, write_csv};
use lpt_gossip::low_load::LowLoadConfig;
use lpt_gossip::{Algorithm, Driver};
use lpt_problems::Med;
use lpt_workloads::med::MedDataset;

fn main() {
    let n = 1usize << 10;
    let runs = runs(5);
    let d = 3.0f64;
    let paper_keep = 1.0 / (1.0 + 1.0 / (2.0 * d));
    banner(&format!(
        "Ablation: filtering keep-probability (n = {n}, {runs} runs; paper value {paper_keep:.3})"
    ));

    println!(
        "{:>10} {:>12} {:>14} {:>14}",
        "keep prob", "term rounds", "max load", "max total load"
    );
    let mut rows = Vec::new();
    let keeps = [0.60, 0.75, paper_keep, 0.92, 0.98, 1.0];
    for &keep in &keeps {
        let mut rounds = Vec::new();
        let mut max_load = 0u64;
        let mut max_total = 0u64;
        for run in 0..runs {
            let seed = ((keep * 1000.0) as u64) << 20 ^ run ^ 0xF117;
            let points = MedDataset::TripleDisk.generate(n, seed);
            let oracle = Med.basis_of(&points);
            // Full-termination run: the load dynamics only diverge over
            // the whole O(log n)-round lifetime, not in the handful of
            // rounds to the first solution.
            let report = Driver::new(Med)
                .nodes(n)
                .seed(seed)
                .algorithm(Algorithm::LowLoad(LowLoadConfig {
                    keep_prob: Some(keep),
                    ..Default::default()
                }))
                .max_rounds(2_000)
                .run(&points)
                .expect("ablation run");
            assert!(report.all_halted, "keep = {keep}, run {run}");
            let basis = report.consensus_output().expect("consensus");
            assert!(Med.values_close(&basis.value, &oracle.value));
            rounds.push(report.rounds as f64);
            max_load = max_load.max(report.metrics.max_load());
            max_total = max_total.max(
                report
                    .metrics
                    .rounds
                    .iter()
                    .map(|r| r.total_load)
                    .max()
                    .unwrap_or(0),
            );
        }
        let avg = mean(&rounds);
        println!(
            "{:>10.3} {:>12.2} {:>14} {:>14}",
            keep, avg, max_load, max_total
        );
        rows.push(format!("{keep:.3},{avg:.3},{max_load},{max_total}"));
    }
    write_csv(
        "ablation_filtering.csv",
        "keep_prob,avg_rounds,max_load,max_total_load",
        &rows,
    );

    println!();
    println!("keep = 1.0 (no filtering) lets |H(V)| grow without bound over the run —");
    println!("exactly what Lemma 9's filter prevents; the paper's 1/(1+1/(2d)) keeps the");
    println!("total load pinned at O(|H0|) at no cost in rounds.");
}
