//! Figure 1: the four MED dataset families (duo-disk, triple-disk,
//! triangle, hull). Emits a CSV point-cloud snapshot per family and
//! verifies each family's designed optimal-basis structure across seeds.

use lpt::LpType;
use lpt_bench::{banner, write_csv};
use lpt_problems::Med;
use lpt_workloads::med::MED_DATASETS;

fn main() {
    banner("Figure 1: MED dataset families");
    let n = 512;
    println!(
        "{:<12} {:>8} {:>14} {:>14} {:>12}",
        "dataset", "points", "basis (goal)", "basis (found)", "radius"
    );
    for ds in MED_DATASETS {
        // Snapshot for plotting.
        let pts = ds.generate(n, 1);
        let rows: Vec<String> = pts
            .iter()
            .map(|p| format!("{},{:.6},{:.6}", p.id, p.p.x, p.p.y))
            .collect();
        write_csv(&format!("fig1_{}.csv", ds.name()), "id,x,y", &rows);

        // Structural verification across seeds.
        let mut basis_sizes = Vec::new();
        let mut radius = 0.0;
        for seed in 0..10u64 {
            let pts = ds.generate(n, seed);
            let b = Med.basis_of(&pts);
            basis_sizes.push(b.len());
            radius = b.value.r2.sqrt();
            // Every point must be inside the optimal disk.
            let disk = b.value.disk();
            assert!(
                pts.iter().all(|p| disk.contains(&p.p)),
                "{} seed {seed}",
                ds.name()
            );
        }
        let all_match = basis_sizes.iter().all(|&s| s == ds.designed_basis_size());
        println!(
            "{:<12} {:>8} {:>14} {:>14} {:>12.4}",
            ds.name(),
            n,
            ds.designed_basis_size(),
            if all_match {
                format!("{} (all seeds)", ds.designed_basis_size())
            } else {
                format!("{basis_sizes:?}")
            },
            radius
        );
    }
    println!();
    println!("duo-disk is the only family designed with optimal basis size 2;");
    println!("the paper attributes its faster convergence to exactly that.");
}
