//! Criterion micro-benchmark isolating a single `Network::round` call
//! at `n = 2^14` — the allocation-sensitive measurement behind the
//! zero-allocation round engine (scratch-buffer reuse, moved message
//! payloads, pooled delay queue).
//!
//! `rumor_step` is the acceptance cell: a saturated push-rumor network
//! where every round moves `n` messages through the full
//! pull/serve/compute/deliver/absorb path with trivial protocol work,
//! so the engine itself dominates. Ops/round is printed alongside so
//! throughput can be read as ops/sec. The measured numbers (before vs
//! after scratch reuse) are recorded in `BENCH_round_engine.json`.

use criterion::{criterion_group, criterion_main, BatchSize, BenchmarkId, Criterion};
use gossip_sim::{Network, NetworkConfig, NodeControl, PhaseRng, Protocol, Response, Served};
use lpt_gossip::driver::scatter;
use lpt_gossip::high_load::{HighLoadClarkson, HighLoadConfig};
use lpt_gossip::low_load::{LowLoadClarkson, LowLoadConfig};
use lpt_problems::Med;
use lpt_workloads::med::triple_disk;
use std::hint::black_box;

const N: usize = 1 << 14;

struct PushRumor;

#[derive(Clone)]
struct RumorState {
    informed: bool,
    token: u64,
}

impl Protocol for PushRumor {
    type State = RumorState;
    // A real rumor payload (non-zero-sized): delivery moves actual
    // bytes through the inboxes, which is the allocation-sensitive
    // case — a ZST rumor never allocates even without buffer reuse.
    type Msg = u64;
    type Query = ();

    fn pulls(&self, _: u32, _: &RumorState, _: &mut PhaseRng, _: &mut Vec<()>) {}

    fn serve(&self, _: u32, _: &RumorState, _: &(), _: &mut PhaseRng) -> Option<Served<u64>> {
        None
    }

    fn compute(
        &self,
        _: u32,
        state: &mut RumorState,
        _: &mut Vec<Option<Response<u64>>>,
        _: &mut PhaseRng,
        pushes: &mut Vec<u64>,
    ) -> NodeControl {
        if state.informed {
            pushes.push(state.token);
        }
        NodeControl::Continue
    }

    fn absorb(
        &self,
        _: u32,
        state: &mut RumorState,
        delivered: &mut Vec<u64>,
        _: &mut PhaseRng,
    ) -> NodeControl {
        if let Some(&t) = delivered.last() {
            state.informed = true;
            state.token = state.token.max(t);
        }
        NodeControl::Continue
    }
}

/// One steady-state rumor round: the network is pre-saturated, so every
/// timed iteration is a full `n`-message round on warm scratch buffers.
fn bench_rumor_step(c: &mut Criterion) {
    let states: Vec<_> = (0..N)
        .map(|i| RumorState {
            informed: i == 0,
            token: i as u64 + 1,
        })
        .collect();
    let mut net = Network::new(PushRumor, states, NetworkConfig::with_seed(7));
    for _ in 0..30 {
        net.round();
    }
    net.reserve_rounds(1 << 16);
    let ops = {
        let rm = net.round();
        rm.pulls + rm.pushes
    };
    eprintln!("round_engine/rumor_step/{N}: ops/round = {ops}");
    let mut group = c.benchmark_group("round_engine");
    group.sample_size(30);
    group.bench_with_input(BenchmarkId::new("rumor_step", N), &N, |b, _| {
        b.iter(|| black_box(net.round().pushes));
    });
    group.finish();
}

/// One warm Clarkson round at `n = 2^14`: each sample rebuilds a
/// network (setup, untimed), warms the scratch for three rounds, then
/// times round four.
fn bench_clarkson_step(c: &mut Criterion) {
    let points = triple_disk(N, 6);
    let mut group = c.benchmark_group("round_engine");
    group.sample_size(10);
    group.bench_with_input(BenchmarkId::new("low_load_step", N), &N, |b, _| {
        b.iter_batched(
            || {
                let proto = LowLoadClarkson::new(Med, N, &LowLoadConfig::default());
                let states: Vec<_> = scatter(&points, N, 7)
                    .expect("n > 0")
                    .into_iter()
                    .map(|h0| proto.initial_state(h0))
                    .collect();
                let mut net = Network::new(proto, states, NetworkConfig::with_seed(7));
                for _ in 0..3 {
                    net.round();
                }
                net
            },
            |mut net| {
                let rm = net.round();
                black_box(rm.pulls + rm.pushes)
            },
            BatchSize::LargeInput,
        );
    });
    group.bench_with_input(BenchmarkId::new("high_load_step", N), &N, |b, _| {
        b.iter_batched(
            || {
                let proto = HighLoadClarkson::new(Med, N, &HighLoadConfig::default());
                let states: Vec<_> = scatter(&points, N, 8)
                    .expect("n > 0")
                    .into_iter()
                    .map(|h| proto.initial_state(h))
                    .collect();
                let mut net = Network::new(proto, states, NetworkConfig::with_seed(8));
                for _ in 0..3 {
                    net.round();
                }
                net
            },
            |mut net| {
                let rm = net.round();
                black_box(rm.pulls + rm.pushes)
            },
            BatchSize::LargeInput,
        );
    });
    group.finish();
}

criterion_group!(benches, bench_rumor_step, bench_clarkson_step);
criterion_main!(benches);
