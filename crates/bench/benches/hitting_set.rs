//! Theorem 5: the distributed hitting-set algorithm finds a hitting set
//! of size `O(d log(ds))` in `O(d log n)` rounds. Sweeps `n`, `s`, and
//! `d` on planted instances and compares the found size against the
//! theorem's bound, the greedy baseline, and (where feasible) the exact
//! optimum; set cover is exercised via the dual reduction.

use lpt_bench::{banner, max_i, runs, write_csv};
use lpt_gossip::{Algorithm, Driver};
use lpt_problems::{greedy_hitting_set, min_hitting_set_exact};
use lpt_workloads::sets::{planted_hitting_set, planted_set_cover};
use std::sync::Arc;

fn main() {
    let max_i = max_i(12).min(13);
    let runs = runs(3);
    banner(&format!(
        "Theorem 5: distributed hitting set (runs/cell = {runs})"
    ));

    println!(
        "{:>8} {:>6} {:>4} | {:>10} {:>10} {:>8} {:>8} {:>8} {:>10}",
        "n", "s", "d", "avg rounds", "found size", "bound r", "greedy", "exact", "log2 n"
    );
    let mut rows = Vec::new();
    // Grid chosen so the Theorem 5 bound r = O(d log(ds)) stays well below
    // n — otherwise a single sample trivially hits everything in round 0.
    for i in (10..=max_i.max(10)).step_by(2) {
        let n = 1usize << i;
        for (s, d) in [(64usize, 2usize), (256, 3), (512, 4)] {
            let mut rounds_sum = 0.0;
            let mut size_sum = 0.0;
            let mut bound = 0usize;
            let mut greedy_size = 0usize;
            let mut exact_size = None;
            for run in 0..runs {
                let seed = (u64::from(i) << 40) ^ ((s as u64) << 8) ^ run;
                let (sys, _planted) = planted_hitting_set(n, s, d, 6, seed);
                let sys = Arc::new(sys);
                greedy_size = greedy_hitting_set(&sys).len();
                if n <= 256 {
                    exact_size = min_hitting_set_exact(&sys, d).map(|h| h.len());
                }
                let report = Driver::new(sys.clone())
                    .nodes(n)
                    .seed(seed)
                    .algorithm(Algorithm::hitting_set(d))
                    .max_rounds(10_000)
                    .run_ground()
                    .expect("hitting-set run");
                assert!(report.all_halted, "n={n} s={s} d={d} run={run}");
                let best = report.best_output().expect("solution").clone();
                assert!(sys.is_hitting_set(&best));
                bound = report.size_bound.expect("size bound");
                assert!(best.len() <= bound, "size {} > bound {bound}", best.len());
                rounds_sum += report.first_found_round().unwrap_or(report.rounds) as f64;
                size_sum += best.len() as f64;
            }
            let avg_rounds = rounds_sum / runs as f64;
            let avg_size = size_sum / runs as f64;
            println!(
                "{:>8} {:>6} {:>4} | {:>10.1} {:>10.1} {:>8} {:>8} {:>8} {:>10}",
                n,
                s,
                d,
                avg_rounds,
                avg_size,
                bound,
                greedy_size,
                exact_size.map_or("-".into(), |e| e.to_string()),
                i
            );
            rows.push(format!(
                "{n},{s},{d},{avg_rounds:.2},{avg_size:.2},{bound},{greedy_size}"
            ));
        }
    }
    write_csv(
        "hitting_set.csv",
        "n,s,d,avg_rounds,avg_size,bound,greedy",
        &rows,
    );

    // Set cover through the dual.
    println!();
    println!("set cover via dual reduction:");
    let sc = planted_set_cover(1 << 9, 64, 4, 7);
    let dual = Arc::new(sc.dual_hitting_set());
    let report = Driver::new(dual)
        .nodes(sc.n_elements())
        .seed(7)
        .algorithm(Algorithm::hitting_set(4))
        .max_rounds(10_000)
        .run_ground()
        .expect("set-cover run");
    assert!(report.all_halted);
    let cover = report.best_output().unwrap();
    assert!(sc.is_cover(cover));
    println!(
        "  |X| = {}, |S| = {}: cover of {} sets (bound {}) in {} rounds",
        sc.n_elements(),
        sc.num_sets(),
        cover.len(),
        report.size_bound.expect("size bound"),
        report.rounds
    );
}
