//! # `lpt-bench` — experiment harness
//!
//! Shared utilities for the benchmark targets under `benches/`, each of
//! which regenerates one table or figure of the paper (see `DESIGN.md`
//! for the experiment index and `EXPERIMENTS.md` for recorded results):
//!
//! | target | reproduces |
//! |---|---|
//! | `fig1_datasets` | Figure 1 (dataset families) |
//! | `fig2_low_load` | Figure 2 (Low-Load rounds vs `n`) |
//! | `fig3_high_load` | Figure 3 (High-Load rounds vs `n`) |
//! | `table_constants` | §5 fitted constants (1.2/1.7/0.9/1.1·log n) |
//! | `work_bounds` | Theorems 3–4 work/load bounds |
//! | `accelerated` | §3.1 accelerated variant |
//! | `hitting_set` | Theorem 5 |
//! | `baseline_comparison` | §1.1 hypercube baseline |
//! | `termination_latency` | Lemma 12 |
//! | `ablation_filtering`, `ablation_sample_size` | design-choice ablations |
//! | `fault_sweep` | robustness beyond the paper: loss/churn/delay sweeps |
//! | `micro` | Criterion micro-benchmarks |
//!
//! Environment knobs: `LPT_MAX_I` (largest `i` for the `n = 2^i` sweeps;
//! default 12, paper scale 14–16), `LPT_RUNS` (runs per cell; default 5,
//! paper 10). CSV copies of every series are written to
//! `target/experiments/`.

#![forbid(unsafe_code)]

pub mod sweep;

use std::fs;
use std::io::Write as _;
use std::path::PathBuf;

/// Largest exponent `i` of the `n = 2^i` sweeps (`LPT_MAX_I`, default 12).
pub fn max_i(default: u32) -> u32 {
    std::env::var("LPT_MAX_I")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

/// Runs per sweep cell (`LPT_RUNS`, default 5; the paper used 10).
pub fn runs(default: u64) -> u64 {
    std::env::var("LPT_RUNS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

/// Directory CSV outputs are written to (`target/experiments`).
pub fn experiments_dir() -> PathBuf {
    let dir = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../target/experiments");
    fs::create_dir_all(&dir).expect("create experiments dir");
    dir
}

/// One exportable run: the frames of a complete JSONL stream.
pub type RunFrames = (
    gossip_sim::export::RunHeader,
    Vec<gossip_sim::metrics::RoundMetrics>,
    gossip_sim::export::RunSummary,
);

/// Captures a finished [`RunReport`](lpt_gossip::RunReport) as JSONL
/// frames (`header · round* · summary`) for [`write_jsonl`]. `spec` is
/// a free-form identifier for the cell that produced the run.
pub fn run_frames<O>(
    spec: String,
    algorithm: &str,
    n: usize,
    seed: u64,
    fault: &str,
    report: &lpt_gossip::RunReport<O>,
) -> RunFrames {
    let header = gossip_sim::export::RunHeader {
        spec,
        algorithm: algorithm.to_string(),
        n: n as u64,
        seed,
        fault: fault.to_string(),
        topology: report.topology.to_string(),
        schedule: report.schedule.name().to_string(),
        engine: String::new(),
    };
    let summary = gossip_sim::export::RunSummary {
        rounds: report.rounds,
        all_halted: report.all_halted,
        stop_cause: report.stop_cause.name().to_string(),
        first_candidate_round: report.first_candidate_round,
        ..gossip_sim::export::RunSummary::from_metrics(&report.metrics)
    };
    (header, report.metrics.rounds.clone(), summary)
}

/// Writes a JSONL frame file into [`experiments_dir`] — one complete
/// run stream per entry, in the same wire format `lpt-server` speaks
/// (parse with [`gossip_sim::export::parse_frames`]).
pub fn write_jsonl(name: &str, runs: &[RunFrames]) {
    let path = experiments_dir().join(name);
    let file = fs::File::create(&path).expect("create jsonl");
    let mut w = gossip_sim::export::JsonlWriter::new(file);
    for (header, rounds, summary) in runs {
        w.write_run(header, rounds, summary).expect("write run");
    }
    w.into_inner().expect("flush jsonl");
    eprintln!("  [jsonl] wrote {}", path.display());
}

/// Writes a CSV file into [`experiments_dir`].
pub fn write_csv(name: &str, header: &str, rows: &[String]) {
    let path = experiments_dir().join(name);
    let mut f = fs::File::create(&path).expect("create csv");
    writeln!(f, "{header}").unwrap();
    for row in rows {
        writeln!(f, "{row}").unwrap();
    }
    eprintln!("  [csv] wrote {}", path.display());
}

/// Pulls `"key": "value"` out of a single-line JSON object (the
/// committed `BENCH_*.json` baselines keep one cell per line so the
/// gate checkers can parse them line-wise).
pub fn json_str_field(line: &str, key: &str) -> Option<String> {
    let tag = format!("\"{key}\": \"");
    let start = line.find(&tag)? + tag.len();
    let end = line[start..].find('"')? + start;
    Some(line[start..end].to_string())
}

/// Pulls a numeric `"key": value` out of a single-line JSON object.
pub fn json_num_field(line: &str, key: &str) -> Option<f64> {
    let tag = format!("\"{key}\": ");
    let start = line.find(&tag)? + tag.len();
    let rest = &line[start..];
    let end = rest
        .find(|c: char| !(c.is_ascii_digit() || c == '.' || c == '-'))
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

/// Least-squares slope of `y = a·x` through the origin (the paper
/// summarizes its curves as `rounds ≈ a·log2 n`).
pub fn fit_through_origin(points: &[(f64, f64)]) -> f64 {
    let num: f64 = points.iter().map(|(x, y)| x * y).sum();
    let den: f64 = points.iter().map(|(x, _)| x * x).sum();
    if den == 0.0 {
        0.0
    } else {
        num / den
    }
}

/// Mean of a slice.
pub fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        0.0
    } else {
        xs.iter().sum::<f64>() / xs.len() as f64
    }
}

/// Sample standard deviation.
pub fn stddev(xs: &[f64]) -> f64 {
    if xs.len() < 2 {
        return 0.0;
    }
    let m = mean(xs);
    (xs.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / (xs.len() - 1) as f64).sqrt()
}

/// Prints a markdown-style table row.
pub fn print_row(cells: &[String], widths: &[usize]) {
    let mut line = String::from("|");
    for (c, w) in cells.iter().zip(widths) {
        line.push_str(&format!(" {c:>w$} |", w = w));
    }
    println!("{line}");
}

/// A banner for bench output sections.
pub fn banner(title: &str) {
    println!();
    println!("=== {title} ===");
    println!();
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fit_recovers_exact_slope() {
        let pts: Vec<(f64, f64)> = (1..10).map(|i| (i as f64, 1.7 * i as f64)).collect();
        assert!((fit_through_origin(&pts) - 1.7).abs() < 1e-12);
    }

    #[test]
    fn fit_empty_is_zero() {
        assert_eq!(fit_through_origin(&[]), 0.0);
    }

    #[test]
    fn stats() {
        assert_eq!(mean(&[1.0, 2.0, 3.0]), 2.0);
        assert!((stddev(&[1.0, 2.0, 3.0]) - 1.0).abs() < 1e-12);
        assert_eq!(stddev(&[5.0]), 0.0);
    }
}
