//! # `lpt-bench` — experiment harness
//!
//! Shared utilities for the benchmark targets under `benches/`, each of
//! which regenerates one table or figure of the paper (see `DESIGN.md`
//! for the experiment index and `EXPERIMENTS.md` for recorded results):
//!
//! | target | reproduces |
//! |---|---|
//! | `fig1_datasets` | Figure 1 (dataset families) |
//! | `fig2_low_load` | Figure 2 (Low-Load rounds vs `n`) |
//! | `fig3_high_load` | Figure 3 (High-Load rounds vs `n`) |
//! | `table_constants` | §5 fitted constants (1.2/1.7/0.9/1.1·log n) |
//! | `work_bounds` | Theorems 3–4 work/load bounds |
//! | `accelerated` | §3.1 accelerated variant |
//! | `hitting_set` | Theorem 5 |
//! | `baseline_comparison` | §1.1 hypercube baseline |
//! | `termination_latency` | Lemma 12 |
//! | `ablation_filtering`, `ablation_sample_size` | design-choice ablations |
//! | `fault_sweep` | robustness beyond the paper: loss/churn/delay sweeps |
//! | `micro` | Criterion micro-benchmarks |
//!
//! Environment knobs: `LPT_MAX_I` (largest `i` for the `n = 2^i` sweeps;
//! default 12, paper scale 14–16), `LPT_RUNS` (runs per cell; default 5,
//! paper 10). CSV copies of every series are written to
//! `target/experiments/`.

#![forbid(unsafe_code)]

pub mod sweep;

use std::fs;
use std::io::Write as _;
use std::path::PathBuf;

/// Largest exponent `i` of the `n = 2^i` sweeps (`LPT_MAX_I`, default 12).
pub fn max_i(default: u32) -> u32 {
    std::env::var("LPT_MAX_I")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

/// Runs per sweep cell (`LPT_RUNS`, default 5; the paper used 10).
pub fn runs(default: u64) -> u64 {
    std::env::var("LPT_RUNS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

/// Directory CSV outputs are written to (`target/experiments`).
pub fn experiments_dir() -> PathBuf {
    let dir = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../target/experiments");
    fs::create_dir_all(&dir).expect("create experiments dir");
    dir
}

/// Writes a CSV file into [`experiments_dir`].
pub fn write_csv(name: &str, header: &str, rows: &[String]) {
    let path = experiments_dir().join(name);
    let mut f = fs::File::create(&path).expect("create csv");
    writeln!(f, "{header}").unwrap();
    for row in rows {
        writeln!(f, "{row}").unwrap();
    }
    eprintln!("  [csv] wrote {}", path.display());
}

/// Least-squares slope of `y = a·x` through the origin (the paper
/// summarizes its curves as `rounds ≈ a·log2 n`).
pub fn fit_through_origin(points: &[(f64, f64)]) -> f64 {
    let num: f64 = points.iter().map(|(x, y)| x * y).sum();
    let den: f64 = points.iter().map(|(x, _)| x * x).sum();
    if den == 0.0 {
        0.0
    } else {
        num / den
    }
}

/// Mean of a slice.
pub fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        0.0
    } else {
        xs.iter().sum::<f64>() / xs.len() as f64
    }
}

/// Sample standard deviation.
pub fn stddev(xs: &[f64]) -> f64 {
    if xs.len() < 2 {
        return 0.0;
    }
    let m = mean(xs);
    (xs.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / (xs.len() - 1) as f64).sqrt()
}

/// Prints a markdown-style table row.
pub fn print_row(cells: &[String], widths: &[usize]) {
    let mut line = String::from("|");
    for (c, w) in cells.iter().zip(widths) {
        line.push_str(&format!(" {c:>w$} |", w = w));
    }
    println!("{line}");
}

/// A banner for bench output sections.
pub fn banner(title: &str) {
    println!();
    println!("=== {title} ===");
    println!();
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fit_recovers_exact_slope() {
        let pts: Vec<(f64, f64)> = (1..10).map(|i| (i as f64, 1.7 * i as f64)).collect();
        assert!((fit_through_origin(&pts) - 1.7).abs() < 1e-12);
    }

    #[test]
    fn fit_empty_is_zero() {
        assert_eq!(fit_through_origin(&[]), 0.0);
    }

    #[test]
    fn stats() {
        assert_eq!(mean(&[1.0, 2.0, 3.0]), 2.0);
        assert!((stddev(&[1.0, 2.0, 3.0]) - 1.0).abs() < 1e-12);
        assert_eq!(stddev(&[5.0]), 0.0);
    }
}
