//! The Figure 2/3 sweep engine: rounds-to-first-solution of a gossip
//! algorithm on the four MED dataset families over `n = 2^i`.

use lpt::LpType;
use lpt_gossip::high_load::HighLoadConfig;
use lpt_gossip::{Algorithm, Driver, StopCondition};
use lpt_problems::Med;
use lpt_workloads::med::MedDataset;

/// Which algorithm a sweep drives.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Algo {
    /// Low-Load Clarkson (Figure 2).
    LowLoad,
    /// High-Load Clarkson (Figure 3), with acceleration parameter `C`.
    HighLoad {
        /// Basis copies pushed per round.
        push_count: usize,
    },
}

/// One sweep cell: a dataset family at one size.
#[derive(Clone, Debug)]
pub struct Cell {
    /// The exponent `i` (`n = 2^i`).
    pub i: u32,
    /// Network size = instance size.
    pub n: usize,
    /// Average rounds to first solution over the runs.
    pub avg_rounds: f64,
    /// Sample standard deviation of the rounds.
    pub std_rounds: f64,
    /// Maximum per-node work per round observed across the runs.
    pub max_work: u64,
    /// Maximum per-node load (|H(v)|) observed across the runs.
    pub max_load: u64,
}

/// Runs the sweep for one dataset family: `n = 2^i` for `i ∈ min_i..=max_i`,
/// `runs` seeds per cell. Every run is checked to actually reach the true
/// optimum of its instance.
pub fn sweep_dataset(algo: Algo, ds: MedDataset, min_i: u32, max_i: u32, runs: u64) -> Vec<Cell> {
    let mut out = Vec::new();
    for i in min_i..=max_i {
        let n = 1usize << i;
        let mut rounds: Vec<f64> = Vec::with_capacity(runs as usize);
        let mut max_work = 0u64;
        let mut max_load = 0u64;
        for run in 0..runs {
            let seed = (u64::from(i) << 32) ^ run.wrapping_mul(0x9E3779B9) ^ 0xF00D;
            let points = ds.generate(n, seed);
            let target = Med.basis_of(&points).value;
            let algorithm = match algo {
                Algo::LowLoad => Algorithm::low_load(),
                Algo::HighLoad { push_count } => Algorithm::HighLoad(HighLoadConfig {
                    push_count,
                    ..Default::default()
                }),
            };
            let report = Driver::new(Med)
                .nodes(n)
                .seed(seed)
                .algorithm(algorithm)
                .stop(StopCondition::FirstSolution(target))
                .run(&points)
                .expect("sweep run");
            assert!(
                report.reached(),
                "{} i={i} run={run}: did not reach the optimum",
                ds.name()
            );
            rounds.push(report.rounds as f64);
            max_work = max_work.max(report.metrics.max_node_work());
            max_load = max_load.max(report.metrics.max_load());
        }
        out.push(Cell {
            i,
            n,
            avg_rounds: crate::mean(&rounds),
            std_rounds: crate::stddev(&rounds),
            max_work,
            max_load,
        });
    }
    out
}

/// Fits `avg_rounds ≈ a · log2(n)` (through the origin) over the cells
/// with `n ≥ 2^8` (the paper notes smaller low-load instances finish in
/// one round, which would bias the fit).
pub fn fit_constant(cells: &[Cell]) -> f64 {
    let pts: Vec<(f64, f64)> = cells
        .iter()
        .filter(|c| c.i >= 8)
        .map(|c| (f64::from(c.i), c.avg_rounds))
        .collect();
    if pts.is_empty() {
        // Small sweep: fall back to everything.
        return crate::fit_through_origin(
            &cells
                .iter()
                .map(|c| (f64::from(c.i), c.avg_rounds))
                .collect::<Vec<_>>(),
        );
    }
    crate::fit_through_origin(&pts)
}

/// Affine fit `avg_rounds ≈ a·log2(n) + b` over the cells with `n ≥ 2^8`.
///
/// The duplication dynamics make the round count affine in `log n` with a
/// negative intercept (multiplicities must first grow to `Θ(m/r)` before
/// a sample is likely to contain the whole basis), so the *slope* is the
/// number comparable to the paper's "1.2·log n / 1.7·log n" curve
/// descriptions; a through-origin fit over a small range understates it.
pub fn fit_affine(cells: &[Cell]) -> (f64, f64) {
    let pts: Vec<(f64, f64)> = cells
        .iter()
        .filter(|c| c.i >= 8)
        .map(|c| (f64::from(c.i), c.avg_rounds))
        .collect();
    let pts = if pts.len() >= 2 {
        pts
    } else {
        cells
            .iter()
            .map(|c| (f64::from(c.i), c.avg_rounds))
            .collect()
    };
    let n = pts.len() as f64;
    if pts.len() < 2 {
        return (0.0, pts.first().map_or(0.0, |p| p.1));
    }
    let sx: f64 = pts.iter().map(|p| p.0).sum();
    let sy: f64 = pts.iter().map(|p| p.1).sum();
    let sxx: f64 = pts.iter().map(|p| p.0 * p.0).sum();
    let sxy: f64 = pts.iter().map(|p| p.0 * p.1).sum();
    let den = n * sxx - sx * sx;
    if den.abs() < 1e-12 {
        return (0.0, sy / n);
    }
    let a = (n * sxy - sx * sy) / den;
    let b = (sy - a * sx) / n;
    (a, b)
}
