//! `server_report` — the gossip-as-a-service throughput harness.
//!
//! Measures end-to-end requests/sec through a real `lpt-server`
//! instance (TCP loopback, ephemeral port) in two modes per network
//! size:
//!
//! - **cold** — distinct seeds, so every request misses the report
//!   cache and executes a driver run;
//! - **cached** — repeats of one spec, so every request replays the
//!   cold run's exact bytes without touching a driver.
//!
//! The cold/cached gap is the price of a run versus the price of a
//! socket round-trip, i.e. what the exact cache buys. Results go to
//! `BENCH_server.json`.
//!
//! Usage: `server_report [--smoke] [--out PATH] [--check BASELINE.json]`
//!
//! `--smoke` runs only the `n = 2^10` cells (CI uses this). `--check`
//! is the CI gate: each measured cell is compared against the
//! `smoke_baseline_v1` section of the given baseline file — the
//! counters (`requests`, `runs`, `hits`, `misses`) and the streamed
//! `reply_bytes` must match **exactly** (all are pure functions of the
//! request sequence; reply bytes drift only if the engine's output
//! changed, which must come with a baseline re-pin), and wall time
//! must not regress beyond +50% over the reference
//! (`PERF_SMOKE_WALL_TOL` overrides the fraction; cells under a 50 ms
//! noise floor are exempt; faster never fails).

use lpt_bench::{json_num_field, json_str_field};
use lpt_server::{Client, RunSpecKey, Server, ServerConfig, ServerStats, StopSpec};
use std::fmt::Write as _;
use std::time::Instant;

const SEED_BASE: u64 = 7100;

/// One measured cell: a batch of requests against one server phase.
struct Cell {
    mode: &'static str,
    n: u64,
    requests: u64,
    runs: u64,
    hits: u64,
    misses: u64,
    /// Total reply bytes streamed across the batch (exact-gateable:
    /// a pure function of the specs).
    reply_bytes: u64,
    wall_ms: f64,
    requests_per_sec: f64,
}

fn spec(n: u64, seed: u64) -> RunSpecKey {
    let mut key = RunSpecKey::new("duo-disk", 4 * n, n, seed);
    if n > 1 << 10 {
        // Big networks measure server throughput over a fixed round
        // budget; full termination there benchmarks the solver, not
        // the service.
        key.stop = StopSpec::RoundBudget(8);
    }
    key
}

fn delta(before: ServerStats, after: ServerStats) -> (u64, u64, u64, u64) {
    (
        after.requests - before.requests,
        after.runs - before.runs,
        after.hits - before.hits,
        after.misses - before.misses,
    )
}

/// Drives `specs` through `sessions` concurrent client sessions
/// (round-robin) and returns the measured cell.
fn run_batch(
    mode: &'static str,
    addr: std::net::SocketAddr,
    n: u64,
    specs: Vec<RunSpecKey>,
    sessions: usize,
    stats: &dyn Fn() -> ServerStats,
) -> Cell {
    let before = stats();
    let request_count = specs.len() as u64;
    let t = Instant::now();
    let mut handles = Vec::new();
    for s in 0..sessions {
        let mine: Vec<RunSpecKey> = specs.iter().skip(s).step_by(sessions).cloned().collect();
        handles.push(std::thread::spawn(move || {
            let mut client = Client::connect(addr).expect("connect");
            let mut bytes = 0u64;
            for key in &mine {
                let reply = client.solve(key).expect("solve");
                assert!(reply.error.is_none(), "run failed: {:?}", reply.error);
                bytes += reply.raw.len() as u64;
            }
            bytes
        }));
    }
    let reply_bytes: u64 = handles
        .into_iter()
        .map(|h| h.join().expect("session"))
        .sum();
    let wall = t.elapsed();
    let (requests, runs, hits, misses) = delta(before, stats());
    assert_eq!(requests, request_count, "every request must be counted");
    Cell {
        mode,
        n,
        requests,
        runs,
        hits,
        misses,
        reply_bytes,
        wall_ms: wall.as_secs_f64() * 1e3,
        requests_per_sec: requests as f64 / wall.as_secs_f64().max(1e-9),
    }
}

/// Cold + cached cells for one network size, on a fresh server.
fn run_size(n: u64, cold_requests: u64, cached_requests: u64) -> Vec<Cell> {
    let server = Server::bind("127.0.0.1:0", ServerConfig::default()).expect("bind");
    let addr = server.addr();
    let stats = || server.stats();
    let cold_specs: Vec<RunSpecKey> = (0..cold_requests).map(|i| spec(n, SEED_BASE + i)).collect();
    eprintln!("[server_report] cold   n={n}: {cold_requests} distinct specs");
    let cold = run_batch("cold", addr, n, cold_specs, 4, &stats);
    assert_eq!(cold.misses, cold_requests, "cold specs must all miss");
    assert_eq!(cold.runs, cold_requests, "every miss runs exactly once");
    let cached_specs: Vec<RunSpecKey> = (0..cached_requests).map(|_| spec(n, SEED_BASE)).collect();
    eprintln!("[server_report] cached n={n}: {cached_requests} repeats of one spec");
    let cached = run_batch("cached", addr, n, cached_specs, 4, &stats);
    assert_eq!(cached.hits, cached_requests, "repeats must all hit");
    assert_eq!(cached.runs, 0, "cache hits must not execute runs");
    server.shutdown();
    server.wait();
    vec![cold, cached]
}

struct BaselineCell {
    mode: String,
    n: u64,
    requests: u64,
    runs: u64,
    hits: u64,
    misses: u64,
    reply_bytes: u64,
    wall_ms: f64,
}

fn load_smoke_baseline(path: &str) -> Result<Vec<BaselineCell>, String> {
    let text =
        std::fs::read_to_string(path).map_err(|e| format!("cannot read baseline {path}: {e}"))?;
    let section_start = text
        .find("\"smoke_baseline_v1\"")
        .ok_or_else(|| format!("baseline {path} has no smoke_baseline_v1 section"))?;
    let section = &text[section_start..];
    let end = section
        .find(']')
        .ok_or_else(|| format!("baseline {path}: unterminated smoke_baseline_v1"))?;
    let mut cells = Vec::new();
    for line in section[..end].lines() {
        if !line.contains("\"mode\"") {
            continue;
        }
        let parse = || -> Option<BaselineCell> {
            Some(BaselineCell {
                mode: json_str_field(line, "mode")?,
                n: json_num_field(line, "n")? as u64,
                requests: json_num_field(line, "requests")? as u64,
                runs: json_num_field(line, "runs")? as u64,
                hits: json_num_field(line, "hits")? as u64,
                misses: json_num_field(line, "misses")? as u64,
                reply_bytes: json_num_field(line, "reply_bytes")? as u64,
                wall_ms: json_num_field(line, "wall_ms")?,
            })
        };
        cells.push(parse().ok_or_else(|| format!("unparseable baseline cell: {line}"))?);
    }
    if cells.is_empty() {
        return Err(format!("baseline {path}: smoke_baseline_v1 has no cells"));
    }
    Ok(cells)
}

/// Baseline cells faster than this are exempt from the wall-clock
/// check; the counters are always checked exactly.
const WALL_NOISE_FLOOR_MS: f64 = 50.0;

fn check_against_baseline(cells: &[Cell], baseline: &[BaselineCell], tol: f64) -> Vec<String> {
    let mut violations = Vec::new();
    for c in cells {
        let Some(b) = baseline.iter().find(|b| b.mode == c.mode && b.n == c.n) else {
            violations.push(format!(
                "cell ({}, n={}) missing from the committed smoke baseline — \
                 re-pin BENCH_server.json",
                c.mode, c.n
            ));
            continue;
        };
        let exact = [
            ("requests", b.requests, c.requests),
            ("runs", b.runs, c.runs),
            ("hits", b.hits, c.hits),
            ("misses", b.misses, c.misses),
            ("reply_bytes", b.reply_bytes, c.reply_bytes),
        ];
        for (name, want, got) in exact {
            if want != got {
                violations.push(format!(
                    "{name} drift in ({}, n={}): measured {got} vs baseline {want} — \
                     counters and reply bytes are deterministic; an intentional engine \
                     change must re-pin BENCH_server.json",
                    c.mode, c.n
                ));
            }
        }
        let ratio = c.wall_ms / b.wall_ms.max(1e-9);
        if b.wall_ms >= WALL_NOISE_FLOOR_MS && ratio > 1.0 + tol {
            violations.push(format!(
                "wall-clock regression beyond +{:.0}% in ({}, n={}): measured {:.1} ms vs \
                 baseline {:.1} ms (ratio {:.2})",
                tol * 100.0,
                c.mode,
                c.n,
                c.wall_ms,
                b.wall_ms,
                ratio
            ));
        }
    }
    violations
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let flag_value = |flag: &str| {
        args.iter()
            .position(|a| a == flag)
            .and_then(|i| args.get(i + 1))
            .cloned()
    };
    let out_path = flag_value("--out").unwrap_or_else(|| "BENCH_server.json".to_string());
    let check_path = flag_value("--check");

    let mut cells = Vec::new();
    cells.extend(run_size(1 << 10, 4, 64));
    if !smoke {
        cells.extend(run_size(1 << 14, 3, 16));
    }

    let mut json = String::new();
    json.push_str("{\n  \"bench\": \"server\",\n");
    let _ = writeln!(json, "  \"seed_base\": {SEED_BASE},");
    let _ = writeln!(json, "  \"smoke\": {smoke},");
    json.push_str("  \"cells\": [\n");
    for (i, c) in cells.iter().enumerate() {
        let _ = write!(
            json,
            "    {{\"mode\": \"{}\", \"n\": {}, \"requests\": {}, \"runs\": {}, \"hits\": {}, \"misses\": {}, \"reply_bytes\": {}, \"wall_ms\": {:.1}, \"requests_per_sec\": {:.2}}}",
            c.mode, c.n, c.requests, c.runs, c.hits, c.misses, c.reply_bytes, c.wall_ms, c.requests_per_sec
        );
        json.push_str(if i + 1 < cells.len() { ",\n" } else { "\n" });
    }
    json.push_str("  ]\n}\n");

    std::fs::write(&out_path, &json).expect("write report");
    println!("{json}");
    eprintln!("[server_report] wrote {out_path}");

    if let Some(baseline_path) = check_path {
        let tol = std::env::var("PERF_SMOKE_WALL_TOL")
            .ok()
            .and_then(|v| v.parse::<f64>().ok())
            .unwrap_or(0.5);
        let baseline = load_smoke_baseline(&baseline_path).unwrap_or_else(|e| {
            eprintln!("[server_report] {e}");
            std::process::exit(2);
        });
        let violations = check_against_baseline(&cells, &baseline, tol);
        if violations.is_empty() {
            eprintln!(
                "[server_report] gate PASSED: {} cells match the committed baseline \
                 (counters and reply bytes exact, wall within +{:.0}% above the noise floor)",
                cells.len(),
                tol * 100.0
            );
        } else {
            for v in &violations {
                eprintln!("[server_report] gate FAILED: {v}");
            }
            std::process::exit(1);
        }
    }
}
