//! `perf_report` — the round-engine performance harness.
//!
//! Runs a fixed scenario grid (Low-Load and High-Load Clarkson at
//! `n ∈ {2^10, 2^14, 2^17, 2^20}`, each under the Perfect network and
//! the `wan` scenario preset) plus rumor-spreading `Network::round`
//! steady-state cells at `n = 2^14` and `n = 2^20` and a Rayon
//! thread-scaling sweep (1/2/4/8 threads) over the `n = 2^14` rumor
//! cell, and writes the measurements to `BENCH_round_engine.json` — the
//! baseline every future round-engine optimisation is judged against.
//!
//! Usage: `perf_report [--smoke] [--schedule v1compat|v2batched]
//! [--engine NAME] [--topology] [--threads N] [--parallel-sweep]
//! [--phases] [--out PATH] [--trend-out PATH] [--check BASELINE.json]`
//!
//! `--phases` attaches a [`FlightRecorder`] to every cell's network and
//! emits the per-phase wall breakdown (`phases_us` map, one
//! `cell/phase` entry per non-zero phase) into the `--trend-out`
//! artifact. Recording is observational only — op counts are
//! byte-identical with or without it, which `--phases --check` proves
//! on every CI run.
//!
//! `--engine NAME` selects the execution engine for every cell (any
//! canonical [`Engine`] name: `round-sync` (default), `event-unit`,
//! `event-const-L`, `event-uniform-MIN-MAX`, with an optional
//! `-loss-PPM` suffix). Under `event-unit` op counts equal the
//! round-sync baseline by the unit-latency degeneracy contract, so
//! `--engine event-unit --check` gates the event scheduler against the
//! committed round-engine baseline with zero extra pinning.
//!
//! `--trend-out PATH` additionally writes a compact trend artifact
//! (cell key → wall ms) meant to be uploaded per CI run, so wall-clock
//! history can be charted across commits without parsing full reports.
//!
//! `--threads N` installs an `N`-worker rayon pool around the whole
//! grid and forces the engine's parallel stepping path (threshold 1);
//! op counts are thread-invariant by the engine's determinism
//! contract, so `--threads 2 --check` doubles as a concurrency
//! determinism gate. `--parallel-sweep` runs only the thread-scaling
//! sweeps (1/2/4/8 workers over the `n = 2^14` and `n = 2^17` rumor
//! steady-state cells) — the data behind the `real_parallel_v1`
//! section of the committed baseline.
//!
//! `--smoke` runs only the smallest grid point (CI uses this so the
//! harness cannot bit-rot) — including one `random-regular(8)` cell,
//! so the neighbor-bounded draw path is regression-gated exactly like
//! the complete-graph path; `--schedule` selects the versioned
//! [`RngSchedule`] the networks draw under (default: the engine
//! default, `v2batched`); `--topology` appends a topology grid
//! (low/high-load × every `lpt_workloads::scenarios::TOPOLOGIES`
//! preset at `n = 2^10`, run to termination) measuring the
//! convergence-round inflation sparse overlays cost versus `Complete`;
//! `--out` overrides the output path.
//!
//! `--check` is the CI determinism/perf gate: every measured cell is
//! compared against the `smoke_baseline_v1` section of the given
//! baseline file — the *op count must match exactly* (op counts are a
//! pure function of (schedule, seed), so any drift means the bitstream
//! moved without a schedule bump) and the wall time must not regress
//! beyond a generous +50% over the recorded reference (override the
//! fraction with the `PERF_SMOKE_WALL_TOL` env var; cells under a 50 ms
//! noise floor are exempt, and running *faster* never fails — the wall
//! check is a regression tripwire, the op check is the determinism
//! gate). Any violation exits non-zero.

use gossip_sim::obs::Phase;
use gossip_sim::{
    Engine, FlightRecorder, Network, NetworkConfig, NodeControl, ObsSummary, PhaseRng, Protocol,
    Response, RngSchedule, Served,
};
use lpt_gossip::driver::scatter;
use lpt_gossip::high_load::{HighLoadClarkson, HighLoadConfig};
use lpt_gossip::low_load::{LowLoadClarkson, LowLoadConfig};
use lpt_problems::Med;
use lpt_workloads::med::triple_disk;
use lpt_workloads::scenarios::{Scenario, TopologyPreset, TOPOLOGIES};
use std::fmt::Write as _;
use std::time::Instant;

/// One measured grid cell.
struct Cell {
    algo: &'static str,
    n: usize,
    scenario: &'static str,
    /// Communication overlay the cell gossiped over (a
    /// [`TopologyPreset`] name; `"complete"` outside topology cells).
    topology: &'static str,
    /// Effective engine parallelism for the cell: the ambient rayon
    /// pool's worker count when the parallel stepping path was taken,
    /// 1 when the cell ran sequentially.
    threads: usize,
    rounds: u64,
    ops: u64,
    wall_ms: f64,
    rounds_per_sec: f64,
    peak_rss_kb: Option<u64>,
    /// Per-phase wall breakdown, present only under `--phases`.
    obs: Option<ObsSummary>,
}

/// Peak resident set size in kB (`VmHWM`), Linux only. Monotone over
/// the process lifetime, so later cells inherit earlier peaks.
fn peak_rss_kb() -> Option<u64> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    let line = status.lines().find(|l| l.starts_with("VmHWM:"))?;
    line.split_whitespace().nth(1)?.parse().ok()
}

const SEED: u64 = 2024;

/// Set by `--threads`: force the parallel stepping path (threshold 1)
/// for every grid cell so the installed pool is actually exercised.
static FORCE_PARALLEL: std::sync::atomic::AtomicBool = std::sync::atomic::AtomicBool::new(false);

/// Set by `--phases`: attach a [`FlightRecorder`] to every cell and
/// emit the phase breakdown into the trend artifact.
static PHASES: std::sync::atomic::AtomicBool = std::sync::atomic::AtomicBool::new(false);

/// Set by `--engine`: the execution engine every grid cell runs under.
static ENGINE: std::sync::OnceLock<Engine> = std::sync::OnceLock::new();

/// Installs a flight recorder when `--phases` asked for one. Purely
/// observational: the recorder only reads values the engine computed
/// anyway, so ops and trajectories are unchanged.
fn instrument<P: Protocol>(net: &mut Network<P>) {
    if PHASES.load(std::sync::atomic::Ordering::Relaxed) {
        net.set_recorder(Box::new(FlightRecorder::new()));
    }
}

fn engine() -> Engine {
    ENGINE.get().cloned().unwrap_or_default()
}

fn tuned(cfg: NetworkConfig) -> NetworkConfig {
    let cfg = cfg.engine(engine());
    if FORCE_PARALLEL.load(std::sync::atomic::Ordering::Relaxed) {
        cfg.parallel_threshold(1)
    } else {
        cfg
    }
}

/// Round budget per cell: small networks run to termination; the big
/// cells measure steady-state throughput over a fixed window instead
/// (termination at n ≥ 2^17 takes tens of minutes and adds nothing to
/// a rounds/sec baseline).
fn round_cap(n: usize) -> u64 {
    if n >= 1 << 20 {
        3
    } else if n >= 1 << 17 {
        6
    } else if n >= 1 << 14 {
        30
    } else {
        500
    }
}

fn run_low_load(n: usize, scenario: Scenario, schedule: RngSchedule, topo: TopologyPreset) -> Cell {
    let points = triple_disk(n, SEED);
    let proto = LowLoadClarkson::new(Med, n, &LowLoadConfig::default());
    let states: Vec<_> = scatter(&points, n, SEED)
        .expect("n > 0")
        .into_iter()
        .map(|h0| proto.initial_state(h0))
        .collect();
    let cfg = tuned(
        NetworkConfig::with_seed(SEED)
            .fault(scenario.fault_model())
            .rng_schedule(schedule)
            .topology(topo.topology()),
    );
    let mut net = Network::new(proto, states, cfg);
    instrument(&mut net);
    let t = Instant::now();
    let outcome = net.run(round_cap(n));
    let wall = t.elapsed();
    cell("low_load", n, scenario, topo, outcome.rounds(), &net, wall)
}

fn run_high_load(
    n: usize,
    scenario: Scenario,
    schedule: RngSchedule,
    topo: TopologyPreset,
) -> Cell {
    // 4·n elements: the high-load regime the algorithm targets.
    let points = triple_disk(4 * n, SEED);
    let proto = HighLoadClarkson::new(Med, n, &HighLoadConfig::default());
    let states: Vec<_> = scatter(&points, n, SEED)
        .expect("n > 0")
        .into_iter()
        .map(|h| proto.initial_state(h))
        .collect();
    let cfg = tuned(
        NetworkConfig::with_seed(SEED)
            .fault(scenario.fault_model())
            .rng_schedule(schedule)
            .topology(topo.topology()),
    );
    let mut net = Network::new(proto, states, cfg);
    instrument(&mut net);
    let t = Instant::now();
    let outcome = net.run(round_cap(n));
    let wall = t.elapsed();
    cell("high_load", n, scenario, topo, outcome.rounds(), &net, wall)
}

fn cell<P: Protocol>(
    algo: &'static str,
    n: usize,
    scenario: Scenario,
    topo: TopologyPreset,
    rounds: u64,
    net: &Network<P>,
    wall: std::time::Duration,
) -> Cell {
    let wall_ms = wall.as_secs_f64() * 1e3;
    Cell {
        algo,
        n,
        scenario: scenario.name(),
        topology: topo.name(),
        threads: net.effective_parallelism(),
        rounds,
        ops: net.metrics().total_ops(),
        wall_ms,
        rounds_per_sec: rounds as f64 / wall.as_secs_f64().max(1e-9),
        peak_rss_kb: peak_rss_kb(),
        obs: net.recorder().summary(),
    }
}

// ---------------------------------------------------------------------------
// Rumor-spreading steady-state cell (the zero-allocation acceptance case)
// ---------------------------------------------------------------------------

/// Push-based rumor spreading, as in the simulator's own tests: the one
/// protocol whose per-round protocol work is trivial, so the cell
/// measures the round engine itself.
struct PushRumor;

#[derive(Clone)]
struct RumorState {
    informed: bool,
    token: u64,
}

impl Protocol for PushRumor {
    type State = RumorState;
    // A real rumor payload (non-zero-sized): delivery moves actual
    // bytes through the inboxes, which is the allocation-sensitive
    // case — a ZST rumor never allocates even without buffer reuse.
    type Msg = u64;
    type Query = ();

    fn pulls(&self, _: u32, _: &RumorState, _: &mut PhaseRng, _: &mut Vec<()>) {}

    fn serve(&self, _: u32, _: &RumorState, _: &(), _: &mut PhaseRng) -> Option<Served<u64>> {
        None
    }

    fn compute(
        &self,
        _: u32,
        state: &mut RumorState,
        _: &mut Vec<Option<Response<u64>>>,
        _: &mut PhaseRng,
        pushes: &mut Vec<u64>,
    ) -> NodeControl {
        if state.informed {
            pushes.push(state.token);
        }
        NodeControl::Continue
    }

    fn absorb(
        &self,
        _: u32,
        state: &mut RumorState,
        delivered: &mut Vec<u64>,
        _: &mut PhaseRng,
    ) -> NodeControl {
        if let Some(&t) = delivered.last() {
            state.informed = true;
            state.token = state.token.max(t);
        }
        NodeControl::Continue
    }
}

/// Steady-state rumor rounds/sec at the given `n`: warm the network to
/// full saturation (every node pushes every round), then time a fixed
/// window of rounds.
fn run_rumor_step(n: usize, warmup: u64, window: u64, schedule: RngSchedule) -> Cell {
    let states: Vec<_> = (0..n)
        .map(|i| RumorState {
            informed: i == 0,
            token: i as u64 + 1,
        })
        .collect();
    let cfg = tuned(NetworkConfig::with_seed(SEED).rng_schedule(schedule));
    let mut net = Network::new(PushRumor, states, cfg);
    instrument(&mut net);
    for _ in 0..warmup {
        net.round();
    }
    let t = Instant::now();
    for _ in 0..window {
        net.round();
    }
    let wall = t.elapsed();
    let ops: u64 = net
        .metrics()
        .rounds
        .iter()
        .rev()
        .take(window as usize)
        .map(|r| r.pulls + r.pushes)
        .sum();
    Cell {
        algo: "rumor_step",
        n,
        scenario: "perfect",
        topology: "complete",
        threads: net.effective_parallelism(),
        rounds: window,
        ops,
        wall_ms: wall.as_secs_f64() * 1e3,
        rounds_per_sec: window as f64 / wall.as_secs_f64().max(1e-9),
        peak_rss_kb: peak_rss_kb(),
        obs: net.recorder().summary(),
    }
}

/// Rayon thread-scaling sweep over a rumor steady-state cell: 1/2/4/8
/// worker threads (each its own installed pool — real OS threads),
/// parallel threshold forced to 1 so the engine always takes the
/// parallel stepping path. Results are bit-identical at every thread
/// count by the engine's determinism contract; only wall time may
/// move. How much it moves is hardware-bound: on a single-core host
/// the sweep measures dispatch overhead (expect ≤ 1.0×), on a
/// multi-core host it measures true scaling.
fn run_thread_sweep(schedule: RngSchedule, n: usize, warmup: u64, window: u64) -> Vec<Cell> {
    [1usize, 2, 4, 8]
        .iter()
        .map(|&threads| {
            let pool = rayon::ThreadPoolBuilder::new()
                .num_threads(threads)
                .build()
                .expect("thread pool");
            pool.install(|| {
                let states: Vec<_> = (0..n)
                    .map(|i| RumorState {
                        informed: i == 0,
                        token: i as u64 + 1,
                    })
                    .collect();
                let cfg = NetworkConfig::with_seed(SEED)
                    .parallel_threshold(1)
                    .rng_schedule(schedule)
                    .engine(engine());
                let mut net = Network::new(PushRumor, states, cfg);
                instrument(&mut net);
                for _ in 0..warmup {
                    net.round();
                }
                let t = Instant::now();
                for _ in 0..window {
                    net.round();
                }
                let wall = t.elapsed();
                let ops: u64 = net
                    .metrics()
                    .rounds
                    .iter()
                    .rev()
                    .take(window as usize)
                    .map(|r| r.pulls + r.pushes)
                    .sum();
                Cell {
                    algo: "rumor_step_threads",
                    n,
                    scenario: "perfect",
                    topology: "complete",
                    threads: net.effective_parallelism(),
                    rounds: window,
                    ops,
                    wall_ms: wall.as_secs_f64() * 1e3,
                    rounds_per_sec: window as f64 / wall.as_secs_f64().max(1e-9),
                    peak_rss_kb: peak_rss_kb(),
                    obs: net.recorder().summary(),
                }
            })
        })
        .collect()
}

// ---------------------------------------------------------------------------
// Baseline gate (--check)
// ---------------------------------------------------------------------------

use lpt_bench::{json_num_field, json_str_field};

struct BaselineCell {
    algo: String,
    n: u64,
    scenario: String,
    /// Overlay the cell gossiped over; pre-topology baseline lines
    /// omit the field and default to `"complete"`.
    topology: String,
    ops: u64,
    wall_ms: f64,
}

/// Extracts the `smoke_baseline_v1` cells from the committed baseline
/// file: every line holding an `"algo"` field inside that section is
/// one cell (the committed file keeps one cell per line for exactly
/// this reason).
fn load_smoke_baseline(path: &str) -> Result<Vec<BaselineCell>, String> {
    let text =
        std::fs::read_to_string(path).map_err(|e| format!("cannot read baseline {path}: {e}"))?;
    let section_start = text
        .find("\"smoke_baseline_v1\"")
        .ok_or_else(|| format!("baseline {path} has no smoke_baseline_v1 section"))?;
    // The section ends at the first `]` after its `cells` array opens.
    let section = &text[section_start..];
    let end = section
        .find(']')
        .ok_or_else(|| format!("baseline {path}: unterminated smoke_baseline_v1"))?;
    let mut cells = Vec::new();
    for line in section[..end].lines() {
        if !line.contains("\"algo\"") {
            continue;
        }
        let parse = || -> Option<BaselineCell> {
            Some(BaselineCell {
                algo: json_str_field(line, "algo")?,
                n: json_num_field(line, "n")? as u64,
                scenario: json_str_field(line, "scenario")?,
                topology: json_str_field(line, "topology")
                    .unwrap_or_else(|| "complete".to_string()),
                ops: json_num_field(line, "ops")? as u64,
                wall_ms: json_num_field(line, "wall_ms")?,
            })
        };
        cells.push(parse().ok_or_else(|| format!("unparseable baseline cell: {line}"))?);
    }
    if cells.is_empty() {
        return Err(format!("baseline {path}: smoke_baseline_v1 has no cells"));
    }
    Ok(cells)
}

/// The CI gate: op counts must match the baseline exactly; wall time
/// within ±`tol` (a fraction of the baseline value). Returns the list
/// of violations (empty = gate passes).
fn check_against_baseline(cells: &[Cell], baseline: &[BaselineCell], tol: f64) -> Vec<String> {
    let mut violations = Vec::new();
    for c in cells {
        let Some(b) = baseline.iter().find(|b| {
            b.algo == c.algo
                && b.n == c.n as u64
                && b.scenario == c.scenario
                && b.topology == c.topology
        }) else {
            violations.push(format!(
                "cell ({}, n={}, {}, {}) missing from the committed smoke baseline — \
                 re-pin BENCH_round_engine.json",
                c.algo, c.n, c.scenario, c.topology
            ));
            continue;
        };
        if b.ops != c.ops {
            violations.push(format!(
                "op-count drift in ({}, n={}, {}, {}): measured {} vs baseline {} — \
                 the V1Compat bitstream moved without a schedule bump",
                c.algo, c.n, c.scenario, c.topology, c.ops, b.ops
            ));
        }
        // Wall-clock is a regression tripwire, not a determinism check:
        // only *slower than tolerance* fails (a faster runner is never a
        // bug), and cells under the 50 ms noise floor are exempt (their
        // absolute time is within cross-machine scheduling jitter; their
        // op count is still checked exactly above).
        let ratio = c.wall_ms / b.wall_ms.max(1e-9);
        if b.wall_ms >= WALL_NOISE_FLOOR_MS && ratio > 1.0 + tol {
            violations.push(format!(
                "wall-clock regression beyond +{:.0}% in ({}, n={}, {}): measured {:.1} ms vs \
                 baseline {:.1} ms (ratio {:.2}); re-pin smoke_baseline_v1 wall_ms if the \
                 reference hardware changed",
                tol * 100.0,
                c.algo,
                c.n,
                c.scenario,
                c.wall_ms,
                b.wall_ms,
                ratio
            ));
        }
    }
    violations
}

/// Baseline cells faster than this are exempt from the wall-clock check
/// (pure scheduling jitter at that scale); op counts are always checked.
const WALL_NOISE_FLOOR_MS: f64 = 50.0;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let flag_value = |flag: &str| {
        args.iter()
            .position(|a| a == flag)
            .and_then(|i| args.get(i + 1))
            .cloned()
    };
    let out_path = flag_value("--out").unwrap_or_else(|| "BENCH_round_engine.json".to_string());
    let schedule = match flag_value("--schedule") {
        None => RngSchedule::default(),
        Some(s) => RngSchedule::parse(&s).unwrap_or_else(|| {
            eprintln!("[perf_report] unknown --schedule {s} (use v1compat or v2batched)");
            std::process::exit(2);
        }),
    };
    if let Some(e) = flag_value("--engine") {
        let engine = Engine::parse(&e).unwrap_or_else(|| {
            eprintln!(
                "[perf_report] unknown --engine {e} (use round-sync, event-unit, \
                 event-const-L, or event-uniform-MIN-MAX, optionally -loss-PPM)"
            );
            std::process::exit(2);
        });
        ENGINE.set(engine).expect("--engine parsed once");
    }
    let trend_path = flag_value("--trend-out");
    let check_path = flag_value("--check");
    if args.iter().any(|a| a == "--phases") {
        PHASES.store(true, std::sync::atomic::Ordering::Relaxed);
    }
    let topology_grid = args.iter().any(|a| a == "--topology");
    let parallel_sweep = args.iter().any(|a| a == "--parallel-sweep");
    let threads_override: Option<usize> = flag_value("--threads").map(|v| {
        v.parse().unwrap_or_else(|_| {
            eprintln!("[perf_report] --threads takes a positive integer, got {v}");
            std::process::exit(2);
        })
    });

    let sizes: &[usize] = if smoke {
        &[1 << 10]
    } else {
        &[1 << 10, 1 << 14, 1 << 17, 1 << 20]
    };
    let scenarios: &[Scenario] = if smoke {
        &[Scenario::Perfect]
    } else {
        &[Scenario::Perfect, Scenario::Wan]
    };

    let collect = || {
        let mut cells: Vec<Cell> = Vec::new();
        if parallel_sweep {
            // Just the thread-scaling sweeps (the `real_parallel_v1`
            // data): 1/2/4/8 real workers over the rumor steady-state
            // cells at n = 2^14 and n = 2^17.
            for (n, warmup, window) in [(1usize << 14, 30, 200), (1 << 17, 5, 25)] {
                eprintln!(
                    "[perf_report] thread sweep (1/2/4/8) n={n} {}",
                    schedule.name()
                );
                cells.extend(run_thread_sweep(schedule, n, warmup, window));
            }
            return cells;
        }
        run_grid(&mut cells, smoke, topology_grid, schedule, sizes, scenarios);
        cells
    };
    let cells: Vec<Cell> = match threads_override {
        Some(t) => {
            FORCE_PARALLEL.store(true, std::sync::atomic::Ordering::Relaxed);
            let pool = rayon::ThreadPoolBuilder::new()
                .num_threads(t)
                .build()
                .expect("thread pool");
            eprintln!(
                "[perf_report] running under a {}-worker pool, parallel threshold forced to 1",
                pool.current_num_threads()
            );
            pool.install(collect)
        }
        None => collect(),
    };

    let mut json = String::new();
    json.push_str("{\n  \"bench\": \"round_engine\",\n");
    let _ = writeln!(json, "  \"seed\": {SEED},");
    let _ = writeln!(json, "  \"smoke\": {smoke},");
    let _ = writeln!(json, "  \"schedule\": \"{}\",", schedule.name());
    let _ = writeln!(json, "  \"engine\": \"{}\",", engine().name());
    json.push_str("  \"cells\": [\n");
    for (i, c) in cells.iter().enumerate() {
        let rss = c
            .peak_rss_kb
            .map(|v| v.to_string())
            .unwrap_or_else(|| "null".to_string());
        let _ = write!(
            json,
            "    {{\"algo\": \"{}\", \"n\": {}, \"scenario\": \"{}\", \"topology\": \"{}\", \"threads\": {}, \"rounds\": {}, \"ops\": {}, \"wall_ms\": {:.1}, \"rounds_per_sec\": {:.2}, \"peak_rss_kb\": {}}}",
            c.algo, c.n, c.scenario, c.topology, c.threads, c.rounds, c.ops, c.wall_ms, c.rounds_per_sec, rss
        );
        json.push_str(if i + 1 < cells.len() { ",\n" } else { "\n" });
    }
    json.push_str("  ]\n}\n");

    // Load the baseline *before* writing the report: `--out` defaults
    // to the baseline's own path, and the gate must compare against
    // the committed content, never a file this run just overwrote.
    let baseline = check_path.as_deref().map(|baseline_path| {
        if schedule != RngSchedule::V1Compat {
            eprintln!(
                "[perf_report] --check compares against the V1Compat baseline; \
                 run with --schedule v1compat"
            );
            std::process::exit(2);
        }
        load_smoke_baseline(baseline_path).unwrap_or_else(|e| {
            eprintln!("[perf_report] {e}");
            std::process::exit(2);
        })
    });

    std::fs::write(&out_path, &json).expect("write report");
    println!("{json}");
    eprintln!("[perf_report] wrote {out_path}");

    // The per-run trend artifact: one flat `cell key → wall ms` map,
    // cheap enough to upload on every CI run and diff across commits.
    if let Some(trend_path) = trend_path {
        let mut trend = String::new();
        trend.push_str("{\n  \"bench\": \"perf-trend\",\n");
        let _ = writeln!(trend, "  \"schedule\": \"{}\",", schedule.name());
        let _ = writeln!(trend, "  \"engine\": \"{}\",", engine().name());
        trend.push_str("  \"wall_ms\": {\n");
        for (i, c) in cells.iter().enumerate() {
            let _ = write!(
                trend,
                "    \"{}/n={}/{}/{}/t{}\": {:.1}",
                c.algo, c.n, c.scenario, c.topology, c.threads, c.wall_ms
            );
            trend.push_str(if i + 1 < cells.len() { ",\n" } else { "\n" });
        }
        trend.push_str("  }");
        // Under --phases each cell carries its recorder summary: emit
        // the per-phase wall breakdown as a flat `cell/phase` map so
        // phase-level history charts from the same artifact.
        let phase_entries: Vec<String> = cells
            .iter()
            .filter_map(|c| c.obs.as_ref().map(|obs| (c, obs)))
            .flat_map(|(c, obs)| {
                Phase::ALL.iter().filter_map(move |&phase| {
                    let us = obs.phase_us(phase);
                    (us > 0).then(|| {
                        format!(
                            "    \"{}/n={}/{}/{}/t{}/{}\": {}",
                            c.algo,
                            c.n,
                            c.scenario,
                            c.topology,
                            c.threads,
                            phase.name(),
                            us
                        )
                    })
                })
            })
            .collect();
        if !phase_entries.is_empty() {
            trend.push_str(",\n  \"phases_us\": {\n");
            trend.push_str(&phase_entries.join(",\n"));
            trend.push_str("\n  }");
        }
        trend.push_str("\n}\n");
        std::fs::write(&trend_path, &trend).expect("write trend artifact");
        eprintln!("[perf_report] wrote {trend_path}");
    }

    if let Some(baseline) = baseline {
        let tol = std::env::var("PERF_SMOKE_WALL_TOL")
            .ok()
            .and_then(|v| v.parse::<f64>().ok())
            .unwrap_or(0.5);
        let violations = check_against_baseline(&cells, &baseline, tol);
        if violations.is_empty() {
            eprintln!(
                "[perf_report] gate PASSED: {} cells match the committed baseline \
                 (ops exact, wall within +{:.0}% above the noise floor)",
                cells.len(),
                tol * 100.0
            );
        } else {
            for v in &violations {
                eprintln!("[perf_report] gate FAILED: {v}");
            }
            std::process::exit(1);
        }
    }
}

/// The standard measurement grid (everything except the thread
/// sweeps): low/high-load cells over `sizes` × `scenarios`, the rumor
/// steady-state cells, and the optional topology grid.
fn run_grid(
    cells: &mut Vec<Cell>,
    smoke: bool,
    topology_grid: bool,
    schedule: RngSchedule,
    sizes: &[usize],
    scenarios: &[Scenario],
) {
    for &scenario in scenarios {
        for &n in sizes {
            let tag = scenario.name();
            eprintln!(
                "[perf_report] low_load  n={n} scenario={tag} {}",
                schedule.name()
            );
            cells.push(run_low_load(
                n,
                scenario,
                schedule,
                TopologyPreset::Complete,
            ));
            eprintln!(
                "[perf_report] high_load n={n} scenario={tag} {}",
                schedule.name()
            );
            cells.push(run_high_load(
                n,
                scenario,
                schedule,
                TopologyPreset::Complete,
            ));
        }
    }
    if smoke {
        // The Complete-vs-RandomRegular op-count pair: the
        // neighbor-bounded draw path is determinism-gated exactly like
        // the complete-graph path (its complete twin ran above).
        // High-Load is the cell that terminates crisply on the sparse
        // overlay (Low-Load's audit-based termination outlives the
        // round cap there).
        eprintln!(
            "[perf_report] high_load n={} scenario=perfect topology=rr8 {}",
            1 << 10,
            schedule.name()
        );
        cells.push(run_high_load(
            1 << 10,
            Scenario::Perfect,
            schedule,
            TopologyPreset::RandomRegular8,
        ));
        eprintln!("[perf_report] rumor_step n={} {}", 1 << 10, schedule.name());
        cells.push(run_rumor_step(1 << 10, 10, 50, schedule));
    } else {
        eprintln!("[perf_report] rumor_step n={} {}", 1 << 14, schedule.name());
        cells.push(run_rumor_step(1 << 14, 30, 200, schedule));
        eprintln!("[perf_report] rumor_step n={} {}", 1 << 20, schedule.name());
        cells.push(run_rumor_step(1 << 20, 30, 50, schedule));
        for (n, warmup, window) in [(1usize << 14, 30, 200), (1 << 17, 5, 25)] {
            eprintln!("[perf_report] thread sweep (1/2/4/8) n={n}");
            cells.extend(run_thread_sweep(schedule, n, warmup, window));
        }
    }
    if topology_grid {
        // Convergence-round inflation on sparse overlays: every
        // topology preset at n = 2^10, run to termination under the
        // perfect network (the round counts, not the wall clock, are
        // the measurement — compare each overlay's `rounds` against
        // the complete cell's).
        let n = 1 << 10;
        for topo in TOPOLOGIES {
            eprintln!(
                "[perf_report] low_load  n={n} topology={} {}",
                topo.name(),
                schedule.name()
            );
            cells.push(run_low_load(n, Scenario::Perfect, schedule, topo));
            eprintln!(
                "[perf_report] high_load n={n} topology={} {}",
                topo.name(),
                schedule.name()
            );
            cells.push(run_high_load(n, Scenario::Perfect, schedule, topo));
        }
    }
}
