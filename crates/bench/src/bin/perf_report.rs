//! `perf_report` — the round-engine performance harness.
//!
//! Runs a fixed scenario grid (Low-Load and High-Load Clarkson at
//! `n ∈ {2^10, 2^14, 2^17}`, each under the Perfect network and the
//! `wan` scenario preset) plus a rumor-spreading `Network::round`
//! steady-state cell at `n = 2^14`, and writes the measurements to
//! `BENCH_round_engine.json` — the baseline every future round-engine
//! optimisation is judged against.
//!
//! Usage: `perf_report [--smoke] [--out PATH]`
//!
//! `--smoke` runs only the smallest grid point (CI uses this so the
//! harness cannot bit-rot); `--out` overrides the output path.

use gossip_sim::{Network, NetworkConfig, NodeControl, PhaseRng, Protocol, Response, Served};
use lpt_gossip::driver::scatter;
use lpt_gossip::high_load::{HighLoadClarkson, HighLoadConfig};
use lpt_gossip::low_load::{LowLoadClarkson, LowLoadConfig};
use lpt_problems::Med;
use lpt_workloads::med::triple_disk;
use lpt_workloads::scenarios::Scenario;
use std::fmt::Write as _;
use std::time::Instant;

/// One measured grid cell.
struct Cell {
    algo: &'static str,
    n: usize,
    scenario: &'static str,
    rounds: u64,
    ops: u64,
    wall_ms: f64,
    rounds_per_sec: f64,
    peak_rss_kb: Option<u64>,
}

/// Peak resident set size in kB (`VmHWM`), Linux only. Monotone over
/// the process lifetime, so later cells inherit earlier peaks.
fn peak_rss_kb() -> Option<u64> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    let line = status.lines().find(|l| l.starts_with("VmHWM:"))?;
    line.split_whitespace().nth(1)?.parse().ok()
}

const SEED: u64 = 2024;

/// Round budget per cell: small networks run to termination; the big
/// cells measure steady-state throughput over a fixed window instead
/// (termination at n = 2^17 takes tens of minutes and adds nothing to
/// a rounds/sec baseline).
fn round_cap(n: usize) -> u64 {
    if n >= 1 << 17 {
        6
    } else if n >= 1 << 14 {
        30
    } else {
        500
    }
}

fn run_low_load(n: usize, scenario: Scenario) -> Cell {
    let points = triple_disk(n, SEED);
    let proto = LowLoadClarkson::new(Med, n, &LowLoadConfig::default());
    let states: Vec<_> = scatter(&points, n, SEED)
        .expect("n > 0")
        .into_iter()
        .map(|h0| proto.initial_state(h0))
        .collect();
    let cfg = NetworkConfig::with_seed(SEED).fault(scenario.fault_model());
    let mut net = Network::new(proto, states, cfg);
    let t = Instant::now();
    let outcome = net.run(round_cap(n));
    let wall = t.elapsed();
    cell("low_load", n, scenario, outcome.rounds(), &net, wall)
}

fn run_high_load(n: usize, scenario: Scenario) -> Cell {
    // 4·n elements: the high-load regime the algorithm targets.
    let points = triple_disk(4 * n, SEED);
    let proto = HighLoadClarkson::new(Med, n, &HighLoadConfig::default());
    let states: Vec<_> = scatter(&points, n, SEED)
        .expect("n > 0")
        .into_iter()
        .map(|h| proto.initial_state(h))
        .collect();
    let cfg = NetworkConfig::with_seed(SEED).fault(scenario.fault_model());
    let mut net = Network::new(proto, states, cfg);
    let t = Instant::now();
    let outcome = net.run(round_cap(n));
    let wall = t.elapsed();
    cell("high_load", n, scenario, outcome.rounds(), &net, wall)
}

fn cell<P: Protocol>(
    algo: &'static str,
    n: usize,
    scenario: Scenario,
    rounds: u64,
    net: &Network<P>,
    wall: std::time::Duration,
) -> Cell {
    let wall_ms = wall.as_secs_f64() * 1e3;
    Cell {
        algo,
        n,
        scenario: scenario.name(),
        rounds,
        ops: net.metrics().total_ops(),
        wall_ms,
        rounds_per_sec: rounds as f64 / wall.as_secs_f64().max(1e-9),
        peak_rss_kb: peak_rss_kb(),
    }
}

// ---------------------------------------------------------------------------
// Rumor-spreading steady-state cell (the zero-allocation acceptance case)
// ---------------------------------------------------------------------------

/// Push-based rumor spreading, as in the simulator's own tests: the one
/// protocol whose per-round protocol work is trivial, so the cell
/// measures the round engine itself.
struct PushRumor;

#[derive(Clone)]
struct RumorState {
    informed: bool,
    token: u64,
}

impl Protocol for PushRumor {
    type State = RumorState;
    // A real rumor payload (non-zero-sized): delivery moves actual
    // bytes through the inboxes, which is the allocation-sensitive
    // case — a ZST rumor never allocates even without buffer reuse.
    type Msg = u64;
    type Query = ();

    fn pulls(&self, _: u32, _: &RumorState, _: &mut PhaseRng, _: &mut Vec<()>) {}

    fn serve(&self, _: u32, _: &RumorState, _: &(), _: &mut PhaseRng) -> Option<Served<u64>> {
        None
    }

    fn compute(
        &self,
        _: u32,
        state: &mut RumorState,
        _: &mut Vec<Option<Response<u64>>>,
        _: &mut PhaseRng,
        pushes: &mut Vec<u64>,
    ) -> NodeControl {
        if state.informed {
            pushes.push(state.token);
        }
        NodeControl::Continue
    }

    fn absorb(
        &self,
        _: u32,
        state: &mut RumorState,
        delivered: &mut Vec<u64>,
        _: &mut PhaseRng,
    ) -> NodeControl {
        if let Some(&t) = delivered.last() {
            state.informed = true;
            state.token = state.token.max(t);
        }
        NodeControl::Continue
    }
}

/// Steady-state rumor rounds/sec at the given `n`: warm the network to
/// full saturation (every node pushes every round), then time a fixed
/// window of rounds.
fn run_rumor_step(n: usize, warmup: u64, window: u64) -> Cell {
    let states: Vec<_> = (0..n)
        .map(|i| RumorState {
            informed: i == 0,
            token: i as u64 + 1,
        })
        .collect();
    let mut net = Network::new(PushRumor, states, NetworkConfig::with_seed(SEED));
    for _ in 0..warmup {
        net.round();
    }
    let t = Instant::now();
    for _ in 0..window {
        net.round();
    }
    let wall = t.elapsed();
    let ops: u64 = net
        .metrics()
        .rounds
        .iter()
        .rev()
        .take(window as usize)
        .map(|r| r.pulls + r.pushes)
        .sum();
    Cell {
        algo: "rumor_step",
        n,
        scenario: "perfect",
        rounds: window,
        ops,
        wall_ms: wall.as_secs_f64() * 1e3,
        rounds_per_sec: window as f64 / wall.as_secs_f64().max(1e-9),
        peak_rss_kb: peak_rss_kb(),
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let out_path = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .cloned()
        .unwrap_or_else(|| "BENCH_round_engine.json".to_string());

    let sizes: &[usize] = if smoke {
        &[1 << 10]
    } else {
        &[1 << 10, 1 << 14, 1 << 17]
    };
    let scenarios: &[Scenario] = if smoke {
        &[Scenario::Perfect]
    } else {
        &[Scenario::Perfect, Scenario::Wan]
    };

    let mut cells: Vec<Cell> = Vec::new();
    for &scenario in scenarios {
        for &n in sizes {
            eprintln!("[perf_report] low_load  n={n} scenario={}", scenario.name());
            cells.push(run_low_load(n, scenario));
            eprintln!("[perf_report] high_load n={n} scenario={}", scenario.name());
            cells.push(run_high_load(n, scenario));
        }
    }
    let rumor_n = if smoke { 1 << 10 } else { 1 << 14 };
    eprintln!("[perf_report] rumor_step n={rumor_n}");
    let rumor = if smoke {
        run_rumor_step(rumor_n, 10, 50)
    } else {
        run_rumor_step(rumor_n, 30, 200)
    };
    cells.push(rumor);

    let mut json = String::new();
    json.push_str("{\n  \"bench\": \"round_engine\",\n");
    let _ = writeln!(json, "  \"seed\": {SEED},");
    let _ = writeln!(json, "  \"smoke\": {smoke},");
    json.push_str("  \"cells\": [\n");
    for (i, c) in cells.iter().enumerate() {
        let rss = c
            .peak_rss_kb
            .map(|v| v.to_string())
            .unwrap_or_else(|| "null".to_string());
        let _ = write!(
            json,
            "    {{\"algo\": \"{}\", \"n\": {}, \"scenario\": \"{}\", \"rounds\": {}, \"ops\": {}, \"wall_ms\": {:.1}, \"rounds_per_sec\": {:.2}, \"peak_rss_kb\": {}}}",
            c.algo, c.n, c.scenario, c.rounds, c.ops, c.wall_ms, c.rounds_per_sec, rss
        );
        json.push_str(if i + 1 < cells.len() { ",\n" } else { "\n" });
    }
    json.push_str("  ]\n}\n");

    std::fs::write(&out_path, &json).expect("write report");
    println!("{json}");
    eprintln!("[perf_report] wrote {out_path}");
}
