//! Brute-force reference solver, used as a correctness oracle in tests.
//!
//! By monotonicity, `f(B) ≤ f(H)` for every `B ⊆ H`, and some subset of
//! size at most `dim` (an optimal basis) attains `f(H)`. So the maximum of
//! `f` over all subsets of size ≤ `dim` equals `f(H)`, and any maximizing
//! subset's basis is an optimal basis of `H`. [`exhaustive_basis`]
//! enumerates all `O(n^dim)` such subsets — exponential in the dimension,
//! but the dimension is a constant (2–4) for every problem in this
//! workspace and the oracle is only ever run on small inputs.

use crate::problem::{cmp_basis, BasisOf, LpType};
use std::cmp::Ordering;

/// Errors from the exhaustive solver.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ExhaustiveError {
    /// The input slice was empty and the problem's `basis_of(&[])` is the
    /// only possible answer; exhaustive search has nothing to enumerate.
    EmptyInput,
}

impl std::fmt::Display for ExhaustiveError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ExhaustiveError::EmptyInput => write!(f, "exhaustive solver given empty input"),
        }
    }
}

impl std::error::Error for ExhaustiveError {}

/// Computes an optimal basis of `elements` by enumerating every subset of
/// size at most `problem.dim()` and taking the basis with the largest value
/// (ties broken canonically).
pub fn exhaustive_basis<P: LpType>(
    problem: &P,
    elements: &[P::Element],
) -> Result<BasisOf<P>, ExhaustiveError> {
    if elements.is_empty() {
        return Err(ExhaustiveError::EmptyInput);
    }
    let d = problem.dim().max(1).min(elements.len());
    let mut best: Option<BasisOf<P>> = None;
    let mut subset: Vec<P::Element> = Vec::with_capacity(d);
    enumerate(problem, elements, 0, d, &mut subset, &mut best);
    Ok(best.expect("at least one non-empty subset exists"))
}

fn enumerate<P: LpType>(
    problem: &P,
    elements: &[P::Element],
    start: usize,
    remaining: usize,
    subset: &mut Vec<P::Element>,
    best: &mut Option<BasisOf<P>>,
) {
    if !subset.is_empty() {
        let mut b = problem.basis_of(subset);
        problem.canonicalize(&mut b);
        let better = match best {
            None => true,
            // Prefer larger value; among equal values prefer the
            // lexicographically smallest canonical basis so the oracle is
            // deterministic.
            Some(cur) => match problem.cmp_value(&b.value, &cur.value) {
                Ordering::Greater => true,
                Ordering::Less => false,
                Ordering::Equal => cmp_basis(problem, &b, cur) == Ordering::Less,
            },
        };
        if better {
            *best = Some(b);
        }
    }
    if remaining == 0 {
        return;
    }
    for i in start..elements.len() {
        subset.push(elements[i].clone());
        enumerate(problem, elements, i + 1, remaining - 1, subset, best);
        subset.pop();
    }
}

/// Small self-contained LP-type problems used by unit tests across the
/// workspace. They are public (behind `#[doc(hidden)]`) so that other
/// crates' tests can reuse them.
#[doc(hidden)]
pub mod test_problems {
    use crate::problem::{Basis, LpType};
    use std::cmp::Ordering;

    /// "Smallest enclosing interval" over `i64` points: `f(S)` is the
    /// width of the smallest interval containing `S` (with the interval
    /// endpoints as tie-break). Dimension 2.
    #[derive(Clone, Copy, Debug)]
    pub struct Interval;

    impl LpType for Interval {
        type Element = i64;
        type Value = i64;

        fn dim(&self) -> usize {
            2
        }

        fn basis_of(&self, elems: &[i64]) -> Basis<i64, i64> {
            match (elems.iter().min(), elems.iter().max()) {
                (Some(&lo), Some(&hi)) if lo == hi => Basis::new(vec![lo], 0),
                (Some(&lo), Some(&hi)) => Basis::new(vec![lo, hi], hi - lo),
                _ => Basis::new(vec![], -1),
            }
        }

        fn violates(&self, basis: &Basis<i64, i64>, h: &i64) -> bool {
            match basis.elements.len() {
                0 => true,
                1 => *h != basis.elements[0],
                _ => {
                    let lo = *basis.elements.iter().min().unwrap();
                    let hi = *basis.elements.iter().max().unwrap();
                    *h < lo || *h > hi
                }
            }
        }

        fn cmp_value(&self, a: &i64, b: &i64) -> Ordering {
            a.cmp(b)
        }

        fn cmp_element(&self, a: &i64, b: &i64) -> Ordering {
            a.cmp(b)
        }
    }

    /// Maximum of a set of integers; the canonical dimension-1 LP-type
    /// problem.
    #[derive(Clone, Copy, Debug)]
    pub struct MaxProblem;

    impl LpType for MaxProblem {
        type Element = i64;
        type Value = i64;

        fn dim(&self) -> usize {
            1
        }

        fn basis_of(&self, elems: &[i64]) -> Basis<i64, i64> {
            match elems.iter().max() {
                Some(&m) => Basis::new(vec![m], m),
                None => Basis::new(vec![], i64::MIN),
            }
        }

        fn violates(&self, basis: &Basis<i64, i64>, h: &i64) -> bool {
            basis.elements.first().is_none_or(|&m| *h > m)
        }

        fn cmp_value(&self, a: &i64, b: &i64) -> Ordering {
            a.cmp(b)
        }

        fn cmp_element(&self, a: &i64, b: &i64) -> Ordering {
            a.cmp(b)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::test_problems::{Interval, MaxProblem};
    use super::*;

    #[test]
    fn empty_input_is_error() {
        assert_eq!(
            exhaustive_basis(&Interval, &[]),
            Err(ExhaustiveError::EmptyInput)
        );
    }

    #[test]
    fn interval_oracle() {
        let b = exhaustive_basis(&Interval, &[4, -2, 9, 0]).unwrap();
        assert_eq!(b.value, 11);
        assert_eq!(b.elements, vec![-2, 9]);
    }

    #[test]
    fn singleton_input() {
        let b = exhaustive_basis(&Interval, &[7]).unwrap();
        assert_eq!(b.value, 0);
        assert_eq!(b.elements, vec![7]);
    }

    #[test]
    fn max_oracle() {
        let b = exhaustive_basis(&MaxProblem, &[3, 1, 4, 1, 5]).unwrap();
        assert_eq!(b.value, 5);
    }

    #[test]
    fn oracle_matches_direct_solve() {
        let elems = [5, -3, 8, 8, 0, -3, 12];
        let direct = {
            let mut b = Interval.basis_of(&elems);
            Interval.canonicalize(&mut b);
            b
        };
        let oracle = exhaustive_basis(&Interval, &elems).unwrap();
        assert_eq!(direct.value, oracle.value);
        assert_eq!(direct.elements, oracle.elements);
    }
}
