//! Clarkson's sequential algorithm for LP-type problems (Algorithm 1).
//!
//! This is the multiplicative-weights ("iterative reweighting") algorithm
//! the paper builds on. Each element carries a multiplicity `µ_h` (initially
//! 1). Each iteration samples a random sub-multiset `R` of size `r = 6·dim²`
//! from `H(µ)`, computes an optimal basis of `R`, and collects the violators
//! `V = {h : f(R) < f(R ∪ {h})}`. If the violator *mass* `µ(V)` is at most
//! `|H(µ)| / (3·dim)` — a *successful* iteration — the multiplicity of every
//! violator is doubled. The loop ends when `V = ∅`, at which point `f(R) =
//! f(H)` (by locality) and the basis of `R` is an optimal basis of `H`.
//!
//! The expected number of iterations is `O(dim · log n)` (paper, Lemmas
//! 1–2): each iteration is successful with probability ≥ 1/2 (Lemma 1 +
//! Markov), and after `k·dim` successful iterations some element of an
//! optimal basis has multiplicity ≥ 2^k while the total mass is below
//! `n·e^{k/3}`, forcing termination once `k = Θ(log n)`.

use crate::problem::{BasisOf, LpType};
use crate::Multiset;
use rand::Rng;

/// Configuration knobs for [`clarkson_with_config`].
#[derive(Clone, Debug, Default)]
pub struct ClarksonConfig {
    /// Sample size per iteration; defaults to `6·dim²` as in the paper.
    pub sample_size: Option<usize>,
    /// Safety valve: abort after this many iterations. The default
    /// (100 + 200·dim·log2(n+2) iterations) is far beyond the expected
    /// `O(dim log n)` and only trips if the problem violates the axioms.
    pub max_iterations: Option<usize>,
    /// Below this input size the problem is solved directly by a single
    /// small-set basis computation; defaults to `6·dim²`.
    pub direct_threshold: Option<usize>,
}

/// Counters describing one [`clarkson`] run.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ClarksonStats {
    /// Total iterations of the repeat loop.
    pub iterations: usize,
    /// Iterations where `µ(V) ≤ |H(µ)| / (3·dim)` (weights were doubled).
    pub successful_iterations: usize,
    /// Total violation tests performed.
    pub violation_tests: usize,
    /// Total small-set basis computations performed.
    pub basis_computations: usize,
    /// Whether the input was small enough to solve directly.
    pub solved_directly: bool,
}

/// The result of a [`clarkson`] run: the optimal basis plus run statistics.
#[derive(Clone, Debug)]
pub struct ClarksonResult<P: LpType> {
    /// An optimal basis of the input, in canonical element order.
    pub basis: BasisOf<P>,
    /// Run statistics.
    pub stats: ClarksonStats,
}

/// Errors from the sequential solver.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ClarksonError {
    /// The iteration safety valve tripped; almost certainly the problem
    /// implementation violates the LP-type axioms or the basis contract.
    IterationLimit {
        /// Number of iterations performed before giving up.
        iterations: usize,
    },
}

impl std::fmt::Display for ClarksonError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClarksonError::IterationLimit { iterations } => write!(
                f,
                "Clarkson iteration limit reached after {iterations} iterations; \
                 the LpType implementation likely violates the axioms"
            ),
        }
    }
}

impl std::error::Error for ClarksonError {}

/// Runs Clarkson's algorithm with default configuration.
pub fn clarkson<P: LpType, R: Rng + ?Sized>(
    problem: &P,
    elements: &[P::Element],
    rng: &mut R,
) -> Result<ClarksonResult<P>, ClarksonError> {
    clarkson_with_config(problem, elements, &ClarksonConfig::default(), rng)
}

/// Runs Clarkson's algorithm with explicit configuration.
pub fn clarkson_with_config<P: LpType, R: Rng + ?Sized>(
    problem: &P,
    elements: &[P::Element],
    config: &ClarksonConfig,
    rng: &mut R,
) -> Result<ClarksonResult<P>, ClarksonError> {
    let d = problem.dim().max(1);
    let r = config.sample_size.unwrap_or(6 * d * d).max(1);
    let direct = config.direct_threshold.unwrap_or(6 * d * d);
    let mut stats = ClarksonStats::default();

    if elements.len() <= direct.max(r) {
        stats.solved_directly = true;
        stats.basis_computations = 1;
        let mut basis = problem.basis_of(elements);
        problem.canonicalize(&mut basis);
        return Ok(ClarksonResult { basis, stats });
    }

    let n = elements.len();
    let max_iters = config
        .max_iterations
        .unwrap_or(100 + 200 * d * (usize::BITS - (n + 2).leading_zeros()) as usize);

    let mut mu = Multiset::with_unit_weights(elements.to_vec());
    let mut scratch_sample: Vec<P::Element> = Vec::with_capacity(r);

    loop {
        stats.iterations += 1;
        if stats.iterations > max_iters {
            return Err(ClarksonError::IterationLimit {
                iterations: stats.iterations,
            });
        }

        let sample_idx = mu
            .sample_without_replacement(r, rng)
            .expect("|H(µ)| >= |H| > r by construction");
        scratch_sample.clear();
        scratch_sample.extend(sample_idx.iter().map(|&i| mu.item(i).clone()));

        stats.basis_computations += 1;
        let mut basis = problem.basis_of(&scratch_sample);
        problem.canonicalize(&mut basis);

        // Collect violators over *distinct* elements; the violator mass is
        // measured in multiplicities, matching the paper's |V| ≤ |H(µ)|/(3d).
        let mut violators: Vec<usize> = Vec::new();
        let mut violator_mass: u128 = 0;
        for i in 0..mu.distinct_len() {
            stats.violation_tests += 1;
            if problem.violates(&basis, mu.item(i)) {
                violator_mass = violator_mass.saturating_add(mu.multiplicity(i));
                violators.push(i);
            }
        }

        if violators.is_empty() {
            return Ok(ClarksonResult { basis, stats });
        }

        if violator_mass <= mu.total() / (3 * d as u128) {
            stats.successful_iterations += 1;
            for &i in &violators {
                mu.double(i);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exhaustive::test_problems::{Interval, MaxProblem};
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn small_input_solved_directly() {
        let mut rng = ChaCha8Rng::seed_from_u64(0);
        let res = clarkson(&Interval, &[3, -5, 7], &mut rng).unwrap();
        assert!(res.stats.solved_directly);
        assert_eq!(res.basis.value, 12);
        assert_eq!(res.basis.elements, vec![-5, 7]);
    }

    #[test]
    fn interval_large_input() {
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let points: Vec<i64> = (0..5000)
            .map(|i| (i * 2654435761_i64) % 1001 - 500)
            .collect();
        let res = clarkson(&Interval, &points, &mut rng).unwrap();
        assert!(!res.stats.solved_directly);
        let lo = *points.iter().min().unwrap();
        let hi = *points.iter().max().unwrap();
        assert_eq!(res.basis.value, hi - lo);
        assert_eq!(res.basis.elements, vec![lo, hi]);
    }

    #[test]
    fn max_problem_dimension_one() {
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        let xs: Vec<i64> = (0..10_000).map(|i| (i * 48271) % 7919).collect();
        let res = clarkson(&MaxProblem, &xs, &mut rng).unwrap();
        assert_eq!(res.basis.value, *xs.iter().max().unwrap());
        assert_eq!(res.basis.len(), 1);
    }

    #[test]
    fn iteration_count_is_logarithmic() {
        // O(d log n) expected iterations: for n = 2^16 and d = 2 the run
        // should finish well under 300 iterations.
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let points: Vec<i64> = (0..(1 << 16))
            .map(|i| (i * 1103515245_i64) % 99991)
            .collect();
        let res = clarkson(&Interval, &points, &mut rng).unwrap();
        assert!(
            res.stats.iterations < 300,
            "iterations = {}",
            res.stats.iterations
        );
        assert!(res.stats.successful_iterations >= 1);
    }

    #[test]
    fn custom_sample_size_still_correct() {
        let mut rng = ChaCha8Rng::seed_from_u64(4);
        let points: Vec<i64> = (0..2000).map(|i| (i * 69621) % 503 - 200).collect();
        let cfg = ClarksonConfig {
            sample_size: Some(8),
            ..Default::default()
        };
        let res = clarkson_with_config(&Interval, &points, &cfg, &mut rng).unwrap();
        let lo = *points.iter().min().unwrap();
        let hi = *points.iter().max().unwrap();
        assert_eq!(res.basis.value, hi - lo);
    }

    #[test]
    fn deterministic_under_fixed_seed() {
        let points: Vec<i64> = (0..3000).map(|i| (i * 7_i64) % 881 - 440).collect();
        let run = |seed: u64| {
            let mut rng = ChaCha8Rng::seed_from_u64(seed);
            clarkson(&Interval, &points, &mut rng).unwrap().stats
        };
        assert_eq!(run(42), run(42));
    }
}
