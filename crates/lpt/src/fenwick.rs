//! A Fenwick (binary indexed) tree over `u128` weights.
//!
//! Supports point updates, prefix sums, and — the operation the sampling
//! code actually needs — `O(log n)` *weighted search*: given a target
//! `t < total`, find the smallest index whose inclusive prefix sum exceeds
//! `t`. This turns a uniform draw from `[0, total)` into a draw from the
//! weighted distribution, which is how [`crate::Multiset`] samples from
//! Clarkson's multiplicity function `µ`.
//!
//! Weights are `u128` because Clarkson-style doubling can push individual
//! multiplicities past `2^64` before termination detection kicks in on
//! adversarial inputs; all arithmetic saturates rather than wrapping so a
//! pathological run degrades gracefully instead of panicking.

/// Fenwick tree over saturating `u128` weights.
#[derive(Clone, Debug)]
pub struct Fenwick {
    tree: Vec<u128>,
    len: usize,
}

impl Fenwick {
    /// Creates a tree of `len` zero weights.
    pub fn new(len: usize) -> Self {
        Fenwick {
            tree: vec![0; len + 1],
            len,
        }
    }

    /// Creates a tree from initial weights in `O(n)`.
    pub fn from_weights(weights: &[u128]) -> Self {
        let len = weights.len();
        let mut tree = vec![0u128; len + 1];
        for (i, &w) in weights.iter().enumerate() {
            let i = i + 1;
            tree[i] = tree[i].saturating_add(w);
            let j = i + (i & i.wrapping_neg());
            if j <= len {
                let v = tree[i];
                tree[j] = tree[j].saturating_add(v);
            }
        }
        Fenwick { tree, len }
    }

    /// Number of slots.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the tree has zero slots.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Adds `delta` to the weight at `idx` (saturating).
    pub fn add(&mut self, idx: usize, delta: u128) {
        debug_assert!(idx < self.len);
        let mut i = idx + 1;
        while i <= self.len {
            self.tree[i] = self.tree[i].saturating_add(delta);
            i += i & i.wrapping_neg();
        }
    }

    /// Subtracts `delta` from the weight at `idx`.
    ///
    /// The caller must ensure the weight at `idx` is at least `delta`;
    /// this is checked in debug builds via [`Fenwick::weight`].
    pub fn sub(&mut self, idx: usize, delta: u128) {
        debug_assert!(idx < self.len);
        debug_assert!(self.weight(idx) >= delta, "fenwick underflow at {idx}");
        let mut i = idx + 1;
        while i <= self.len {
            self.tree[i] -= delta;
            i += i & i.wrapping_neg();
        }
    }

    /// Inclusive prefix sum of weights `0..=idx`.
    pub fn prefix(&self, idx: usize) -> u128 {
        let mut i = (idx + 1).min(self.len);
        let mut s: u128 = 0;
        while i > 0 {
            s = s.saturating_add(self.tree[i]);
            i -= i & i.wrapping_neg();
        }
        s
    }

    /// Sum of all weights.
    pub fn total(&self) -> u128 {
        self.prefix(self.len.saturating_sub(1))
    }

    /// The individual weight at `idx`.
    pub fn weight(&self, idx: usize) -> u128 {
        let lo = if idx == 0 { 0 } else { self.prefix(idx - 1) };
        self.prefix(idx) - lo
    }

    /// Finds the smallest `idx` with `prefix(idx) > target`.
    ///
    /// Precondition: `target < total()`. This maps a uniform draw
    /// `target ∈ [0, total)` to index `i` with probability
    /// `weight(i) / total`, i.e. weighted sampling.
    pub fn search(&self, mut target: u128) -> usize {
        debug_assert!(target < self.total(), "fenwick search target out of range");
        let mut pos = 0usize;
        let mut step = self.len.next_power_of_two();
        while step > 0 {
            let next = pos + step;
            if next <= self.len && self.tree[next] <= target {
                target -= self.tree[next];
                pos = next;
            }
            step >>= 1;
        }
        debug_assert!(pos < self.len);
        pos
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{Rng, SeedableRng};
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn from_weights_matches_adds() {
        let w = [3u128, 0, 7, 1, 12, 5, 0, 2];
        let ft = Fenwick::from_weights(&w);
        let mut ft2 = Fenwick::new(w.len());
        for (i, &x) in w.iter().enumerate() {
            ft2.add(i, x);
        }
        for (i, &x) in w.iter().enumerate() {
            assert_eq!(ft.prefix(i), ft2.prefix(i), "prefix {i}");
            assert_eq!(ft.weight(i), x, "weight {i}");
        }
        assert_eq!(ft.total(), 30);
    }

    #[test]
    fn search_finds_owning_slot() {
        let w = [3u128, 0, 7, 1];
        let ft = Fenwick::from_weights(&w);
        // Cumulative: [3, 3, 10, 11]. Targets map as:
        for t in 0..3 {
            assert_eq!(ft.search(t), 0, "target {t}");
        }
        for t in 3..10 {
            assert_eq!(ft.search(t), 2, "target {t}");
        }
        assert_eq!(ft.search(10), 3);
    }

    #[test]
    fn search_never_returns_zero_weight_slot() {
        let w = [0u128, 5, 0, 0, 1, 0];
        let ft = Fenwick::from_weights(&w);
        for t in 0..6 {
            let idx = ft.search(t);
            assert!(ft.weight(idx) > 0, "target {t} hit zero-weight slot {idx}");
        }
    }

    #[test]
    fn add_sub_roundtrip() {
        let mut ft = Fenwick::new(10);
        ft.add(4, 100);
        ft.add(9, 1);
        ft.sub(4, 60);
        assert_eq!(ft.weight(4), 40);
        assert_eq!(ft.total(), 41);
    }

    #[test]
    fn saturating_add_does_not_wrap() {
        let mut ft = Fenwick::new(2);
        ft.add(0, u128::MAX - 1);
        ft.add(0, 5);
        assert_eq!(ft.weight(0), u128::MAX);
    }

    #[test]
    fn randomized_against_naive_prefix_sums() {
        let mut rng = ChaCha8Rng::seed_from_u64(7);
        for n in [1usize, 2, 3, 17, 64, 100] {
            let mut naive = vec![0u128; n];
            let mut ft = Fenwick::new(n);
            for _ in 0..200 {
                let i = rng.gen_range(0..n);
                let d = rng.gen_range(0..50u128);
                naive[i] += d;
                ft.add(i, d);
            }
            let mut acc = 0u128;
            for (i, &x) in naive.iter().enumerate() {
                acc += x;
                assert_eq!(ft.prefix(i), acc);
            }
            let total = ft.total();
            if total > 0 {
                for _ in 0..100 {
                    let t = rng.gen_range(0..total);
                    let idx = ft.search(t);
                    let lo = if idx == 0 { 0 } else { ft.prefix(idx - 1) };
                    assert!(lo <= t && t < ft.prefix(idx));
                }
            }
        }
    }
}
