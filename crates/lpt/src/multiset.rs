//! A weighted multiset `H(µ)` with `O(log n)` weighted sampling.
//!
//! Clarkson's algorithm maintains a multiplicity function `µ : H -> N` and
//! repeatedly samples random sub-multisets of `H(µ)` (the multiset in which
//! each `h` appears `µ_h` times). [`Multiset`] stores the distinct elements
//! once and their multiplicities in a [`crate::Fenwick`] tree, so that
//!
//! * sampling one element `∝ µ` costs `O(log n)`,
//! * sampling `r` elements *without replacement* (a uniform random
//!   sub-multiset of size `r`) costs `O(r log n)`, and
//! * the multiplicative-weights update "double `µ_h` for all `h ∈ V`"
//!   costs `O(|V| log n)`.

use crate::Fenwick;
use rand::Rng;

/// A multiset over elements of type `E` with `u128` multiplicities.
#[derive(Clone, Debug)]
pub struct Multiset<E> {
    items: Vec<E>,
    weights: Fenwick,
}

impl<E> Multiset<E> {
    /// Creates a multiset where every item has multiplicity 1.
    pub fn with_unit_weights(items: Vec<E>) -> Self {
        let weights = Fenwick::from_weights(&vec![1u128; items.len()]);
        Multiset { items, weights }
    }

    /// Creates a multiset with explicit multiplicities.
    ///
    /// # Panics
    /// Panics if `items` and `mults` have different lengths.
    pub fn with_weights(items: Vec<E>, mults: &[u128]) -> Self {
        assert_eq!(items.len(), mults.len(), "items/mults length mismatch");
        let weights = Fenwick::from_weights(mults);
        Multiset { items, weights }
    }

    /// Number of *distinct* elements.
    pub fn distinct_len(&self) -> usize {
        self.items.len()
    }

    /// Total multiset size `|H(µ)| = Σ µ_h` (saturating).
    pub fn total(&self) -> u128 {
        self.weights.total()
    }

    /// The element at a distinct-element index.
    pub fn item(&self, idx: usize) -> &E {
        &self.items[idx]
    }

    /// All distinct elements.
    pub fn items(&self) -> &[E] {
        &self.items
    }

    /// Multiplicity of the element at `idx`.
    pub fn multiplicity(&self, idx: usize) -> u128 {
        self.weights.weight(idx)
    }

    /// Doubles the multiplicity of the element at `idx` (saturating).
    pub fn double(&mut self, idx: usize) {
        let w = self.weights.weight(idx);
        self.weights.add(idx, w);
    }

    /// Samples the index of one element with probability `µ_h / |H(µ)|`.
    ///
    /// Returns `None` if the multiset is empty.
    pub fn sample_one<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<usize> {
        let total = self.total();
        if total == 0 {
            return None;
        }
        let t = rng.gen_range(0..total);
        Some(self.weights.search(t))
    }

    /// Samples a uniform random sub-multiset of size `r` *without
    /// replacement* and returns the distinct-element indices (with
    /// repetitions when an element is drawn more than once from its
    /// multiplicity budget).
    ///
    /// Returns `None` if `r > |H(µ)|`. The multiset is unchanged on return
    /// (weights are decremented during the draw and restored afterwards).
    pub fn sample_without_replacement<R: Rng + ?Sized>(
        &mut self,
        r: usize,
        rng: &mut R,
    ) -> Option<Vec<usize>> {
        let total = self.total();
        if (r as u128) > total {
            return None;
        }
        let mut drawn = Vec::with_capacity(r);
        let mut remaining = total;
        for _ in 0..r {
            let t = rng.gen_range(0..remaining);
            let idx = self.weights.search(t);
            self.weights.sub(idx, 1);
            remaining -= 1;
            drawn.push(idx);
        }
        // Restore the multiplicities.
        for &idx in &drawn {
            self.weights.add(idx, 1);
        }
        Some(drawn)
    }

    /// Samples `r` element indices *with replacement* (i.i.d. `∝ µ`).
    pub fn sample_with_replacement<R: Rng + ?Sized>(
        &self,
        r: usize,
        rng: &mut R,
    ) -> Option<Vec<usize>> {
        let total = self.total();
        if total == 0 {
            return None;
        }
        Some(
            (0..r)
                .map(|_| self.weights.search(rng.gen_range(0..total)))
                .collect(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn unit_weights() {
        let ms = Multiset::with_unit_weights(vec!['a', 'b', 'c']);
        assert_eq!(ms.total(), 3);
        assert_eq!(ms.distinct_len(), 3);
        assert_eq!(ms.multiplicity(1), 1);
    }

    #[test]
    fn double_grows_total() {
        let mut ms = Multiset::with_unit_weights(vec![0, 1, 2]);
        ms.double(2);
        ms.double(2);
        assert_eq!(ms.multiplicity(2), 4);
        assert_eq!(ms.total(), 6);
    }

    #[test]
    fn sample_without_replacement_respects_multiplicities() {
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let mut ms = Multiset::with_weights(vec!['x', 'y'], &[1, 3]);
        for _ in 0..100 {
            let s = ms.sample_without_replacement(4, &mut rng).unwrap();
            // Drawing the whole multiset must yield exactly the multiset.
            let xs = s.iter().filter(|&&i| i == 0).count();
            let ys = s.iter().filter(|&&i| i == 1).count();
            assert_eq!((xs, ys), (1, 3));
            // Weights restored.
            assert_eq!(ms.total(), 4);
        }
    }

    #[test]
    fn sample_without_replacement_too_large_fails() {
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        let mut ms = Multiset::with_unit_weights(vec![1, 2, 3]);
        assert!(ms.sample_without_replacement(4, &mut rng).is_none());
        assert!(ms.sample_without_replacement(3, &mut rng).is_some());
    }

    #[test]
    fn sample_one_empty_is_none() {
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let ms: Multiset<u8> = Multiset::with_unit_weights(vec![]);
        assert!(ms.sample_one(&mut rng).is_none());
    }

    #[test]
    fn sample_one_is_weight_proportional() {
        // Chi-squared style sanity check: weight-3 element should appear
        // about 3x as often as weight-1 element.
        let mut rng = ChaCha8Rng::seed_from_u64(4);
        let ms = Multiset::with_weights(vec!['x', 'y'], &[1, 3]);
        let n = 40_000;
        let mut hits = [0usize; 2];
        for _ in 0..n {
            hits[ms.sample_one(&mut rng).unwrap()] += 1;
        }
        let frac = hits[1] as f64 / n as f64;
        assert!((frac - 0.75).abs() < 0.02, "frac = {frac}");
    }

    #[test]
    fn with_replacement_only_positive_weights() {
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        let ms = Multiset::with_weights(vec![10, 20, 30], &[0, 5, 0]);
        let s = ms.sample_with_replacement(50, &mut rng).unwrap();
        assert!(s.iter().all(|&i| i == 1));
    }
}
