//! Randomized checkers for the LP-type axioms and the solver contract.
//!
//! Every `LpType` implementation in this workspace is validated against
//! these checkers in its test suite (both with hand-written cases and under
//! `proptest`). The checkers evaluate `f(S)` through the implementation's
//! own `basis_of`, so what they really verify is *self-consistency*: that
//! the (basis computation, violation test) pair behaves like a function
//! `f` satisfying monotonicity and locality. That self-consistency is
//! precisely the precondition for the correctness of Clarkson-style
//! algorithms.

use crate::problem::{BasisOf, LpType};
use rand::seq::SliceRandom;
use rand::Rng;
use std::cmp::Ordering;

/// A concrete counterexample to one of the axioms.
#[derive(Clone, Debug)]
pub enum AxiomViolation<E: std::fmt::Debug> {
    /// `f(F) > f(G)` for some `F ⊆ G`.
    Monotonicity {
        /// The smaller set.
        subset: Vec<E>,
        /// The larger set.
        superset: Vec<E>,
    },
    /// `f(F) = f(G)`, `h` violates `G` but not `F`, for some `F ⊆ G`.
    Locality {
        /// The smaller set.
        subset: Vec<E>,
        /// The larger set.
        superset: Vec<E>,
        /// The distinguishing element.
        element: E,
    },
    /// `basis_of` broke its contract.
    BasisContract {
        /// Human-readable description of the broken clause.
        reason: String,
        /// The input set.
        input: Vec<E>,
    },
}

impl<E: std::fmt::Debug> std::fmt::Display for AxiomViolation<E> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AxiomViolation::Monotonicity { subset, superset } => {
                write!(f, "monotonicity violated: f({subset:?}) > f({superset:?})")
            }
            AxiomViolation::Locality {
                subset,
                superset,
                element,
            } => write!(
                f,
                "locality violated: f({subset:?}) = f({superset:?}) but {element:?} \
                 violates only the superset"
            ),
            AxiomViolation::BasisContract { reason, input } => {
                write!(f, "basis contract violated on {input:?}: {reason}")
            }
        }
    }
}

fn value_of<P: LpType>(p: &P, s: &[P::Element]) -> BasisOf<P> {
    p.basis_of(s)
}

/// Checks monotonicity on `trials` random chains `F ⊆ G ⊆ elements`.
///
/// A violation is flagged only when `f(F) > f(G)` *clearly*, i.e. the
/// exact order says `Greater` and the values are not within the problem's
/// numerical tolerance ([`LpType::values_close`]).
pub fn check_monotonicity<P: LpType, R: Rng + ?Sized>(
    problem: &P,
    elements: &[P::Element],
    trials: usize,
    rng: &mut R,
) -> Result<(), AxiomViolation<P::Element>> {
    for _ in 0..trials {
        let (subset, superset) = random_chain(elements, rng);
        if subset.is_empty() {
            continue;
        }
        let fv = value_of(problem, &subset);
        let gv = value_of(problem, &superset);
        if problem.cmp_value(&fv.value, &gv.value) == Ordering::Greater
            && !problem.values_close(&fv.value, &gv.value)
        {
            return Err(AxiomViolation::Monotonicity { subset, superset });
        }
    }
    Ok(())
}

/// Checks locality on `trials` random chains `F ⊆ G` with `f(F) = f(G)`
/// and random probe elements `h`.
///
/// Semantic form of the axiom, evaluated through `basis_of` rather than
/// the violation test so that the check is meaningful even when the two
/// bases coincide: whenever `f(F) ≈ f(G)`, `f(G ∪ {h})` clearly exceeds
/// `f(G)`, and `f(F ∪ {h})` clearly does *not* exceed `f(F)`, locality is
/// broken. "Clearly" means beyond [`LpType::values_close`] tolerance.
pub fn check_locality<P: LpType, R: Rng + ?Sized>(
    problem: &P,
    elements: &[P::Element],
    trials: usize,
    rng: &mut R,
) -> Result<(), AxiomViolation<P::Element>> {
    if elements.is_empty() {
        return Ok(());
    }
    for _ in 0..trials {
        let (subset, superset) = random_chain(elements, rng);
        if subset.is_empty() {
            continue;
        }
        let fb = value_of(problem, &subset);
        let gb = value_of(problem, &superset);
        if !problem.values_close(&fb.value, &gb.value) {
            continue;
        }
        let h = elements.choose(rng).expect("non-empty").clone();
        let with = |base: &[P::Element]| {
            let mut v = base.to_vec();
            v.push(h.clone());
            v
        };
        let gvh = value_of(problem, &with(&superset));
        let g_clearly_violated = problem.cmp_value(&gvh.value, &gb.value) == Ordering::Greater
            && !problem.values_close(&gvh.value, &gb.value);
        if !g_clearly_violated {
            continue;
        }
        let fvh = value_of(problem, &with(&subset));
        let f_increased = problem.cmp_value(&fvh.value, &fb.value) == Ordering::Greater
            || problem.values_close(&fvh.value, &fb.value);
        if !f_increased {
            return Err(AxiomViolation::Locality {
                subset,
                superset,
                element: h,
            });
        }
    }
    Ok(())
}

/// Checks the `basis_of` contract on `trials` random subsets: the returned
/// basis must be a sub(multi)set of the input, have at most `dim` elements,
/// and have no violators within the input set.
pub fn check_basis_contract<P: LpType, R: Rng + ?Sized>(
    problem: &P,
    elements: &[P::Element],
    trials: usize,
    rng: &mut R,
) -> Result<(), AxiomViolation<P::Element>> {
    for _ in 0..trials {
        let mut input: Vec<P::Element> = elements
            .iter()
            .filter(|_| rng.gen_bool(0.5))
            .cloned()
            .collect();
        if input.is_empty() {
            if let Some(e) = elements.choose(rng) {
                input.push(e.clone());
            } else {
                return Ok(());
            }
        }
        let mut basis = problem.basis_of(&input);
        problem.canonicalize(&mut basis);
        if basis.len() > problem.dim() {
            return Err(AxiomViolation::BasisContract {
                reason: format!(
                    "basis size {} exceeds dimension {}",
                    basis.len(),
                    problem.dim()
                ),
                input,
            });
        }
        for b in &basis.elements {
            if !input.iter().any(|e| e == b) {
                return Err(AxiomViolation::BasisContract {
                    reason: format!("basis element {b:?} not in input"),
                    input,
                });
            }
        }
        for h in &input {
            if problem.violates(&basis, h) {
                return Err(AxiomViolation::BasisContract {
                    reason: format!("input element {h:?} violates own basis"),
                    input,
                });
            }
        }
    }
    Ok(())
}

/// Runs all three checks.
pub fn check_all<P: LpType, R: Rng + ?Sized>(
    problem: &P,
    elements: &[P::Element],
    trials: usize,
    rng: &mut R,
) -> Result<(), AxiomViolation<P::Element>> {
    check_monotonicity(problem, elements, trials, rng)?;
    check_locality(problem, elements, trials, rng)?;
    check_basis_contract(problem, elements, trials, rng)?;
    Ok(())
}

/// Draws a random chain `F ⊆ G ⊆ elements` by independent thinning.
fn random_chain<E: Clone, R: Rng + ?Sized>(elements: &[E], rng: &mut R) -> (Vec<E>, Vec<E>) {
    let superset: Vec<E> = elements
        .iter()
        .filter(|_| rng.gen_bool(0.7))
        .cloned()
        .collect();
    let subset: Vec<E> = superset
        .iter()
        .filter(|_| rng.gen_bool(0.6))
        .cloned()
        .collect();
    (subset, superset)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exhaustive::test_problems::{Interval, MaxProblem};
    use crate::problem::Basis;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn interval_satisfies_axioms() {
        let mut rng = ChaCha8Rng::seed_from_u64(11);
        let elems: Vec<i64> = (0..40).map(|i| (i * 37) % 101 - 50).collect();
        check_all(&Interval, &elems, 500, &mut rng).unwrap();
    }

    #[test]
    fn max_satisfies_axioms() {
        let mut rng = ChaCha8Rng::seed_from_u64(12);
        let elems: Vec<i64> = (0..40).map(|i| (i * 61) % 97).collect();
        check_all(&MaxProblem, &elems, 500, &mut rng).unwrap();
    }

    /// A deliberately broken problem: `f` = *minimum* of the set, which is
    /// anti-monotone, so the monotonicity checker must catch it.
    #[derive(Clone, Copy, Debug)]
    struct BrokenMin;

    impl LpType for BrokenMin {
        type Element = i64;
        type Value = i64;
        fn dim(&self) -> usize {
            1
        }
        fn basis_of(&self, elems: &[i64]) -> Basis<i64, i64> {
            match elems.iter().min() {
                Some(&m) => Basis::new(vec![m], m),
                None => Basis::new(vec![], i64::MAX),
            }
        }
        fn violates(&self, basis: &Basis<i64, i64>, h: &i64) -> bool {
            basis.elements.first().is_none_or(|&m| *h < m)
        }
        fn cmp_value(&self, a: &i64, b: &i64) -> std::cmp::Ordering {
            a.cmp(b)
        }
        fn cmp_element(&self, a: &i64, b: &i64) -> std::cmp::Ordering {
            a.cmp(b)
        }
    }

    #[test]
    fn broken_problem_is_caught() {
        let mut rng = ChaCha8Rng::seed_from_u64(13);
        let elems: Vec<i64> = (0..30).collect();
        let res = check_monotonicity(&BrokenMin, &elems, 2000, &mut rng);
        assert!(matches!(res, Err(AxiomViolation::Monotonicity { .. })));
    }
}
