//! # `lpt` — LP-type problem framework
//!
//! LP-type problems (also called *generalized linear programs*) were
//! introduced by Sharir and Welzl. An LP-type problem is a pair `(H, f)`
//! where `H` is a finite set of *constraints* (here: [`LpType::Element`]s)
//! and `f : 2^H -> T` maps subsets of `H` into a totally ordered set `T`
//! (here: [`LpType::Value`]s) such that
//!
//! * **Monotonicity**: for all `F ⊆ G ⊆ H`, `f(F) ≤ f(G)`;
//! * **Locality**: for all `F ⊆ G ⊆ H` with `f(F) = f(G)` and every
//!   `h ∈ H`: if `f(G) < f(G ∪ {h})` then `f(F) < f(F ∪ {h})`.
//!
//! A minimal subset `B ⊆ H` with `f(B') < f(B)` for every proper subset
//! `B'` is a *basis*; a basis with `f(B) = f(H)` is an *optimal basis*.
//! The maximum cardinality of a basis is the *combinatorial dimension*.
//!
//! This crate provides:
//!
//! * the [`LpType`] trait — the violator-space style computational
//!   interface (small-set basis computation + violation test) that every
//!   concrete problem implements (see the `lpt-problems` crate);
//! * [`mod@clarkson`] — Clarkson's sequential multiplicative-weights algorithm
//!   (Algorithm 1 of the paper), the baseline that all the distributed
//!   gossip algorithms in `lpt-gossip` are derived from;
//! * [`exhaustive_basis`] — a brute-force reference solver used as a test
//!   oracle;
//! * [`Multiset`] — a Fenwick-tree backed weighted multiset supporting the
//!   `O(log n)`-time weighted sampling that Clarkson-style algorithms need;
//! * [`axioms`] — randomized checkers for the monotonicity and locality
//!   axioms and for the basis-computation contract, used heavily by the
//!   property-based tests throughout the workspace.
//!
//! ## Example
//!
//! ```
//! use lpt::{Basis, LpType};
//! use std::cmp::Ordering;
//!
//! /// The "smallest interval containing all points" problem: a toy
//! /// 2-dimensional LP-type problem over `i64` points.
//! struct Interval;
//!
//! impl LpType for Interval {
//!     type Element = i64;
//!     type Value = i64; // interval width; -1 encodes f(∅) = -infinity
//!
//!     fn dim(&self) -> usize { 2 }
//!     fn basis_of(&self, elems: &[i64]) -> Basis<i64, i64> {
//!         match (elems.iter().min(), elems.iter().max()) {
//!             (Some(&lo), Some(&hi)) if lo == hi => Basis::new(vec![lo], 0),
//!             (Some(&lo), Some(&hi)) => Basis::new(vec![lo, hi], hi - lo),
//!             _ => Basis::new(vec![], -1),
//!         }
//!     }
//!     fn violates(&self, basis: &Basis<i64, i64>, h: &i64) -> bool {
//!         match basis.elements.len() {
//!             0 => true,
//!             1 => *h != basis.elements[0],
//!             _ => {
//!                 let lo = *basis.elements.iter().min().unwrap();
//!                 *h < lo || *h > lo + basis.value
//!             }
//!         }
//!     }
//!     fn cmp_value(&self, a: &i64, b: &i64) -> Ordering { a.cmp(b) }
//!     fn cmp_element(&self, a: &i64, b: &i64) -> Ordering { a.cmp(b) }
//! }
//!
//! use rand::SeedableRng;
//! let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(1);
//! let points: Vec<i64> = (0..1000).map(|i| (i * 37) % 501 - 250).collect();
//! let result = lpt::clarkson(&Interval, &points, &mut rng).unwrap();
//! assert_eq!(result.basis.value, 500);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod axioms;
pub mod clarkson;
pub mod exhaustive;
pub mod fenwick;
pub mod multiset;
pub mod problem;

pub use clarkson::{clarkson, clarkson_with_config, ClarksonConfig, ClarksonResult, ClarksonStats};
pub use exhaustive::{exhaustive_basis, ExhaustiveError};
pub use fenwick::Fenwick;
pub use multiset::Multiset;
pub use problem::{cmp_basis, cmp_elements_lex, Basis, BasisOf, LpType};
