//! The [`LpType`] trait: the computational interface to an LP-type problem.
//!
//! The interface follows the *violator space* view of LP-type problems
//! (Gärtner, Matoušek, Rüst, Škovroň): an algorithm never needs the raw
//! value `f(S)` for large `S`; it only needs
//!
//! 1. a *small-set solver* [`LpType::basis_of`] that, given a set of at
//!    most `O(dim²)` elements, returns an optimal basis of that set
//!    together with its value, and
//! 2. a *violation test* [`LpType::violates`] deciding whether
//!    `f(B ∪ {h}) > f(B)` for a basis `B` and a single element `h`.
//!
//! All solvers in this workspace (sequential Clarkson, the gossip
//! algorithms, the hypercube baseline) are generic over this trait.

use std::cmp::Ordering;

/// An optimal basis of some subset of constraints, together with its value.
///
/// Invariants (checked by [`crate::axioms::check_basis_contract`]):
/// * `elements` is a subset of the set it was computed from;
/// * `elements.len() <= dim` of the problem;
/// * no element of the originating set violates the basis;
/// * `value` equals `f(elements)` (= `f` of the originating set).
#[derive(Clone, Debug, PartialEq)]
pub struct Basis<E, V> {
    /// The basis elements, in the problem's canonical element order.
    pub elements: Vec<E>,
    /// The value `f(elements)`.
    pub value: V,
}

impl<E, V> Basis<E, V> {
    /// Creates a basis from elements and a value.
    pub fn new(elements: Vec<E>, value: V) -> Self {
        Basis { elements, value }
    }

    /// Number of elements in the basis.
    pub fn len(&self) -> usize {
        self.elements.len()
    }

    /// Whether the basis is empty (the basis of `∅`).
    pub fn is_empty(&self) -> bool {
        self.elements.is_empty()
    }
}

/// Shorthand for the basis type of a problem `P`.
pub type BasisOf<P> = Basis<<P as LpType>::Element, <P as LpType>::Value>;

/// An LP-type problem `(H, f)` of bounded combinatorial dimension.
///
/// Implementations must satisfy the monotonicity and locality axioms (see
/// the crate-level documentation); [`crate::axioms`] provides randomized
/// checkers. Implementations must also be *consistent*: `violates` must
/// agree with `basis_of` in the sense that `violates(basis_of(S), h)` holds
/// iff `f(S ∪ {h}) > f(S)`.
///
/// The trait object carries the problem *description* (e.g. the set system
/// of a hitting-set instance, or the objective direction of an LP), not the
/// constraint set `H` itself; constraints are passed around explicitly as
/// slices of [`LpType::Element`]. This split is what makes the distributed
/// algorithms possible: every node knows the description (`f`), while the
/// elements of `H` are scattered over the network.
pub trait LpType {
    /// A single constraint `h ∈ H`. Cloned freely; must be cheap to clone
    /// (the gossip algorithms ship elements in `O(log n)`-bit messages).
    type Element: Clone + Send + Sync + PartialEq + std::fmt::Debug;

    /// A value of `f`, an element of the totally ordered codomain `T`.
    type Value: Clone + Send + Sync + std::fmt::Debug;

    /// The combinatorial dimension of the problem: the maximum cardinality
    /// of any basis.
    fn dim(&self) -> usize;

    /// Computes an optimal basis of the (small) constraint set `elems`.
    ///
    /// `elems` may be a multiset (contain repeated elements); the result
    /// must not contain duplicates. Called with sets of size `O(dim²)`
    /// only, so quadratic or even exponential-in-`dim` implementations are
    /// acceptable.
    fn basis_of(&self, elems: &[Self::Element]) -> Basis<Self::Element, Self::Value>;

    /// The violation test: `true` iff `f(B ∪ {h}) > f(B)` where `B` is the
    /// constraint set represented by `basis`.
    fn violates(&self, basis: &Basis<Self::Element, Self::Value>, h: &Self::Element) -> bool;

    /// Total order on values. For floating-point values, implementations
    /// should use `f64::total_cmp` composed with any tie-breaking data
    /// embedded in the value so that the order is total and deterministic.
    fn cmp_value(&self, a: &Self::Value, b: &Self::Value) -> Ordering;

    /// A deterministic total order on elements, used to put bases into
    /// canonical form and to break ties between distinct bases of equal
    /// value (the paper's Algorithm 3 assumes such a tie-breaker).
    fn cmp_element(&self, a: &Self::Element, b: &Self::Element) -> Ordering;

    /// Whether two values are equal *up to the problem's numerical
    /// tolerance*. The total order [`LpType::cmp_value`] stays exact (it
    /// must be a total order for the protocols); this predicate is what
    /// the randomized axiom checkers use so that `f64` roundoff between
    /// two evaluations of the same subset is not reported as an axiom
    /// violation. Exact-arithmetic problems keep the default.
    fn values_close(&self, a: &Self::Value, b: &Self::Value) -> bool {
        self.cmp_value(a, b) == Ordering::Equal
    }

    /// Puts a basis into canonical form by sorting its elements with
    /// [`LpType::cmp_element`]. Solvers call this before comparing or
    /// transmitting bases.
    fn canonicalize(&self, basis: &mut Basis<Self::Element, Self::Value>) {
        basis.elements.sort_by(|a, b| self.cmp_element(a, b));
        basis
            .elements
            .dedup_by(|a, b| self.cmp_element(a, b) == Ordering::Equal);
    }
}

/// Lexicographic comparison of two element slices under the problem's
/// element order. Both slices are assumed canonical (sorted).
pub fn cmp_elements_lex<P: LpType + ?Sized>(p: &P, a: &[P::Element], b: &[P::Element]) -> Ordering {
    for (x, y) in a.iter().zip(b.iter()) {
        match p.cmp_element(x, y) {
            Ordering::Equal => continue,
            other => return other,
        }
    }
    a.len().cmp(&b.len())
}

/// The total order on bases used by the termination-detection protocol:
/// first by value, then lexicographically by (canonical) elements.
///
/// Two bases compare `Equal` under this order iff they represent the same
/// basis, which is exactly the property Algorithm 3 of the paper needs
/// from its tie-breaking rule ("`f(B') = f(B)` if and only if `B' = B`").
pub fn cmp_basis<P: LpType + ?Sized>(p: &P, a: &BasisOf<P>, b: &BasisOf<P>) -> Ordering {
    p.cmp_value(&a.value, &b.value)
        .then_with(|| cmp_elements_lex(p, &a.elements, &b.elements))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exhaustive::test_problems::Interval;

    #[test]
    fn basis_accessors() {
        let b: Basis<i64, i64> = Basis::new(vec![1, 5], 4);
        assert_eq!(b.len(), 2);
        assert!(!b.is_empty());
        let e: Basis<i64, i64> = Basis::new(vec![], -1);
        assert!(e.is_empty());
        assert_eq!(e.len(), 0);
    }

    #[test]
    fn canonicalize_sorts_and_dedups() {
        let p = Interval;
        let mut b = Basis::new(vec![5, 1, 5], 4);
        p.canonicalize(&mut b);
        assert_eq!(b.elements, vec![1, 5]);
    }

    #[test]
    fn cmp_basis_orders_by_value_then_elements() {
        let p = Interval;
        let small = Basis::new(vec![0, 3], 3);
        let big = Basis::new(vec![0, 7], 7);
        assert_eq!(cmp_basis(&p, &small, &big), Ordering::Less);
        let same_val_a = Basis::new(vec![0, 7], 7);
        let same_val_b = Basis::new(vec![1, 8], 7);
        assert_eq!(cmp_basis(&p, &same_val_a, &same_val_b), Ordering::Less);
        assert_eq!(
            cmp_basis(&p, &same_val_a, &same_val_a.clone()),
            Ordering::Equal
        );
    }

    #[test]
    fn cmp_elements_lex_prefix_is_smaller() {
        let p = Interval;
        assert_eq!(cmp_elements_lex(&p, &[1], &[1, 2]), Ordering::Less);
        assert_eq!(cmp_elements_lex(&p, &[1, 2], &[1, 2]), Ordering::Equal);
        assert_eq!(cmp_elements_lex(&p, &[2], &[1, 9, 9]), Ordering::Greater);
    }
}
