//! The hitting set problem (paper, Section 4).
//!
//! Given elements `X = {0, …, n−1}` and a collection `S` of subsets of
//! `X`, a *hitting set* is a subset `H ⊆ X` intersecting every `S ∈ S`;
//! the problem asks for a minimum-size one (NP-hard). Viewed as an
//! LP-type problem, `f(U)` = number of sets intersected by `U` — but its
//! combinatorial dimension can be as large as `|X|` even when a minimum
//! hitting set has constant size, which is why the paper (and this crate)
//! treats it with a dedicated algorithm instead of the generic `LpType`
//! machinery.
//!
//! [`SetSystem`] holds the shared problem description (every node of the
//! distributed algorithm knows `S`, paper Section 1.4) with bitset-backed
//! membership tests; [`greedy_hitting_set`] is the classical `ln s`
//! approximation baseline and [`min_hitting_set_exact`] a branch-and-bound
//! exact solver for small instances (used to measure approximation
//! ratios in the experiment harness).

/// A set system `(X, S)` with bitset-accelerated membership queries.
#[derive(Clone, Debug)]
pub struct SetSystem {
    n_elements: usize,
    sets: Vec<Vec<u32>>,
    /// Per-set bitmask over elements (`⌈n/64⌉` words each).
    masks: Vec<Vec<u64>>,
}

impl SetSystem {
    /// Builds a set system over elements `0..n_elements`.
    ///
    /// Sets are sorted and deduplicated; empty sets are rejected (they
    /// can never be hit).
    ///
    /// # Panics
    /// Panics if any set is empty or mentions an element `≥ n_elements`.
    pub fn new(n_elements: usize, sets: Vec<Vec<u32>>) -> Self {
        let words = n_elements.div_ceil(64);
        let mut norm_sets = Vec::with_capacity(sets.len());
        let mut masks = Vec::with_capacity(sets.len());
        for (si, mut s) in sets.into_iter().enumerate() {
            s.sort_unstable();
            s.dedup();
            assert!(!s.is_empty(), "set {si} is empty");
            assert!(
                (*s.last().unwrap() as usize) < n_elements,
                "set {si} mentions element out of range"
            );
            let mut mask = vec![0u64; words];
            for &x in &s {
                mask[(x as usize) / 64] |= 1u64 << (x % 64);
            }
            norm_sets.push(s);
            masks.push(mask);
        }
        SetSystem {
            n_elements,
            sets: norm_sets,
            masks,
        }
    }

    /// Number of ground elements `|X|`.
    pub fn n_elements(&self) -> usize {
        self.n_elements
    }

    /// Number of sets `|S|`.
    pub fn num_sets(&self) -> usize {
        self.sets.len()
    }

    /// The elements of set `si` (sorted).
    pub fn set(&self, si: usize) -> &[u32] {
        &self.sets[si]
    }

    /// Whether element `x` belongs to set `si`.
    pub fn set_contains(&self, si: usize, x: u32) -> bool {
        (x as usize) < self.n_elements
            && self.masks[si][(x as usize) / 64] & (1u64 << (x % 64)) != 0
    }

    /// Builds the bitmask of a sample of elements.
    pub fn sample_mask(&self, sample: &[u32]) -> Vec<u64> {
        let mut mask = vec![0u64; self.n_elements.div_ceil(64)];
        for &x in sample {
            debug_assert!((x as usize) < self.n_elements);
            mask[(x as usize) / 64] |= 1u64 << (x % 64);
        }
        mask
    }

    /// Whether set `si` is hit by the sample mask.
    pub fn is_hit_mask(&self, si: usize, mask: &[u64]) -> bool {
        self.masks[si].iter().zip(mask).any(|(a, b)| a & b != 0)
    }

    /// Indices of all sets *not* hit by `sample`.
    pub fn uncovered_sets(&self, sample: &[u32]) -> Vec<usize> {
        let mask = self.sample_mask(sample);
        (0..self.num_sets())
            .filter(|&si| !self.is_hit_mask(si, &mask))
            .collect()
    }

    /// `f(U)`: the number of sets hit by `sample`.
    pub fn hit_count(&self, sample: &[u32]) -> usize {
        let mask = self.sample_mask(sample);
        (0..self.num_sets())
            .filter(|&si| self.is_hit_mask(si, &mask))
            .count()
    }

    /// Whether `sample` hits every set.
    pub fn is_hitting_set(&self, sample: &[u32]) -> bool {
        let mask = self.sample_mask(sample);
        (0..self.num_sets()).all(|si| self.is_hit_mask(si, &mask))
    }
}

/// Greedy `O(ln s)`-approximate hitting set: repeatedly add the element
/// hitting the most uncovered sets.
pub fn greedy_hitting_set(sys: &SetSystem) -> Vec<u32> {
    let mut covered = vec![false; sys.num_sets()];
    let mut remaining = sys.num_sets();
    let mut result = Vec::new();
    while remaining > 0 {
        let mut counts = vec![0u32; sys.n_elements()];
        for (si, cov) in covered.iter().enumerate() {
            if !cov {
                for &x in sys.set(si) {
                    counts[x as usize] += 1;
                }
            }
        }
        let best = counts
            .iter()
            .enumerate()
            .max_by_key(|&(_, c)| *c)
            .map(|(x, _)| x as u32)
            .expect("nonempty ground set");
        result.push(best);
        for (si, cov) in covered.iter_mut().enumerate() {
            if !*cov && sys.set_contains(si, best) {
                *cov = true;
                remaining -= 1;
            }
        }
    }
    result.sort_unstable();
    result
}

/// Exact minimum hitting set by iterative-deepening branch and bound.
///
/// Branches on the elements of an (arbitrary) uncovered set, so the
/// branching factor is the maximum set size and the depth is the optimum
/// size. Practical for the small instances the test-suite and the
/// approximation-ratio experiments use.
pub fn min_hitting_set_exact(sys: &SetSystem, max_size: usize) -> Option<Vec<u32>> {
    for k in 0..=max_size {
        let mut chosen: Vec<u32> = Vec::with_capacity(k);
        if branch(sys, k, &mut chosen) {
            chosen.sort_unstable();
            return Some(chosen);
        }
    }
    None
}

fn branch(sys: &SetSystem, budget: usize, chosen: &mut Vec<u32>) -> bool {
    let uncovered = sys.uncovered_sets(chosen);
    let Some(&first) = uncovered.first() else {
        return true;
    };
    if budget == 0 {
        return false;
    }
    for &x in sys.set(first) {
        if chosen.contains(&x) {
            continue;
        }
        chosen.push(x);
        if branch(sys, budget - 1, chosen) {
            return true;
        }
        chosen.pop();
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_system() -> SetSystem {
        // Min hitting set is {1, 4}: 1 hits sets 0,1; 4 hits sets 2,3.
        SetSystem::new(6, vec![vec![0, 1], vec![1, 2], vec![3, 4], vec![4, 5]])
    }

    #[test]
    fn membership_queries() {
        let sys = small_system();
        assert!(sys.set_contains(0, 1));
        assert!(!sys.set_contains(0, 4));
        assert_eq!(sys.num_sets(), 4);
        assert_eq!(sys.n_elements(), 6);
    }

    #[test]
    fn hit_count_and_uncovered() {
        let sys = small_system();
        assert_eq!(sys.hit_count(&[1]), 2);
        assert_eq!(sys.uncovered_sets(&[1]), vec![2, 3]);
        assert!(sys.is_hitting_set(&[1, 4]));
        assert!(!sys.is_hitting_set(&[1, 3]));
    }

    #[test]
    fn hit_count_is_monotone() {
        let sys = small_system();
        // f(U) ≤ f(U ∪ {x}) — the LP-type monotonicity axiom.
        for x in 0..6u32 {
            assert!(sys.hit_count(&[0]) <= sys.hit_count(&[0, x]));
        }
    }

    #[test]
    fn greedy_finds_a_hitting_set() {
        let sys = small_system();
        let h = greedy_hitting_set(&sys);
        assert!(sys.is_hitting_set(&h));
        assert!(h.len() <= 4);
    }

    #[test]
    fn exact_finds_minimum() {
        let sys = small_system();
        let h = min_hitting_set_exact(&sys, 6).unwrap();
        assert!(sys.is_hitting_set(&h));
        assert_eq!(h.len(), 2);
    }

    #[test]
    fn exact_respects_budget() {
        let sys = small_system();
        assert!(min_hitting_set_exact(&sys, 1).is_none());
    }

    #[test]
    fn large_element_space_bitsets() {
        // Elements beyond one 64-bit word.
        let sys = SetSystem::new(200, vec![vec![0, 199], vec![130], vec![64, 65]]);
        assert!(sys.set_contains(0, 199));
        assert!(sys.set_contains(1, 130));
        assert!(sys.is_hitting_set(&[199, 130, 64]));
        assert!(!sys.is_hitting_set(&[199, 130]));
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn empty_set_rejected() {
        let _ = SetSystem::new(3, vec![vec![0], vec![]]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_rejected() {
        let _ = SetSystem::new(3, vec![vec![5]]);
    }

    #[test]
    fn greedy_vs_exact_ratio_on_random_instances() {
        use rand::Rng;
        use rand_chacha::rand_core::SeedableRng;
        use rand_chacha::ChaCha8Rng;
        for seed in 0..10u64 {
            let mut rng = ChaCha8Rng::seed_from_u64(80 + seed);
            let n = 30;
            let sets: Vec<Vec<u32>> = (0..15)
                .map(|_| {
                    let k = rng.gen_range(2..6);
                    (0..k)
                        .map(|_| rng.gen_range(0..n as u32))
                        .collect::<Vec<_>>()
                })
                .collect();
            let sets: Vec<Vec<u32>> = sets
                .into_iter()
                .map(|mut s| {
                    s.sort_unstable();
                    s.dedup();
                    s
                })
                .collect();
            let sys = SetSystem::new(n, sets);
            let greedy = greedy_hitting_set(&sys);
            let exact = min_hitting_set_exact(&sys, n).unwrap();
            assert!(sys.is_hitting_set(&greedy));
            assert!(sys.is_hitting_set(&exact));
            assert!(greedy.len() >= exact.len(), "greedy can't beat exact");
        }
    }
}
