//! # `lpt-problems` — concrete LP-type problem instances
//!
//! Implementations of [`lpt::LpType`] for every problem class the paper
//! names, built on the `lpt-geom` substrate:
//!
//! * [`Med`] — minimum enclosing disk in the plane (dimension 3), the
//!   problem of the paper's experimental evaluation (Section 5);
//! * [`Meb`] — minimum enclosing ball in dimension `d` (dimension `d+1`);
//! * [`FixedDimLp`] — linear programming with a constant number of
//!   variables (dimension = #variables; instances are kept bounded by an
//!   implicit box and are feasible by construction, see module docs);
//! * [`PolytopeDistance`] — distance between two convex polygons in the
//!   plane (dimension 4);
//! * [`hitting_set`] / [`set_cover`] — the two NP-hard set problems of
//!   Section 4. These are *not* exposed through `LpType` (their
//!   combinatorial dimension can be as large as `|X|`, which is exactly
//!   the paper's point); instead [`hitting_set::SetSystem`] provides the
//!   primitives Algorithm 6 needs, plus greedy and exact sequential
//!   baselines, and [`set_cover`] provides the classical dual reduction
//!   to hitting set.
//!
//! Every element type carries a small integer `id`. Ids make elements
//! `O(log n)`-bit messages, give the deterministic tie-breaking order the
//! termination protocol needs, and identify copies of the same element
//! created by the gossip algorithms' duplication steps.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod hitting_set;
pub mod lp;
pub mod meb;
pub mod med;
pub mod polydist;
pub mod set_cover;

pub use hitting_set::{greedy_hitting_set, min_hitting_set_exact, SetSystem};
pub use lp::{FixedDimLp, IdHalfspace, LpValue};
pub use meb::{IdPointD, Meb, MebValue};
pub use med::{IdPoint2, Med, MedValue};
pub use polydist::{PdValue, PolytopeDistance, Side, SidedPoint};
pub use set_cover::SetCover;
