//! Minimum enclosing ball in dimension `d` as an LP-type problem of
//! combinatorial dimension `d + 1` (paper, Section 1.1: "for `d`
//! dimensions, at most `d + 1` points are sufficient").

use lpt::{Basis, LpType};
use lpt_geom::ball::{min_enclosing_ball, BallD};
use lpt_geom::PointD;
use rand_chacha::rand_core::SeedableRng;
use rand_chacha::ChaCha8Rng;
use std::cmp::Ordering;

/// A `d`-dimensional point with an element id.
#[derive(Clone, Debug, PartialEq)]
pub struct IdPointD {
    /// Stable element identifier.
    pub id: u32,
    /// Coordinates.
    pub p: PointD,
}

impl IdPointD {
    /// Creates an id-tagged point.
    pub fn new(id: u32, coords: Vec<f64>) -> Self {
        IdPointD {
            id,
            p: PointD::new(coords),
        }
    }
}

/// Value of `f` for MEB: squared radius plus center coordinates as
/// deterministic tie-break.
#[derive(Clone, Debug, PartialEq)]
pub struct MebValue {
    /// Squared radius (negative for the empty ball).
    pub r2: f64,
    /// Center coordinates.
    pub center: Vec<f64>,
}

impl MebValue {
    /// Reconstructs the ball this value describes.
    pub fn ball(&self) -> BallD {
        BallD {
            center: PointD::new(self.center.clone()),
            radius: if self.r2 < 0.0 { -1.0 } else { self.r2.sqrt() },
        }
    }
}

/// The minimum-enclosing-ball problem in `space_dim` dimensions.
#[derive(Clone, Copy, Debug)]
pub struct Meb {
    /// Dimension of the ambient Euclidean space.
    pub space_dim: usize,
}

impl Meb {
    /// Creates the problem for the given ambient dimension.
    pub fn new(space_dim: usize) -> Self {
        assert!(space_dim >= 1);
        Meb { space_dim }
    }

    fn shuffle_seed(elems: &[IdPointD]) -> u64 {
        let mut acc: u64 = 0x452821E638D01377;
        for e in elems {
            let mut z = (e.id as u64).wrapping_add(0x9E3779B97F4A7C15);
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
            acc = acc.rotate_left(9) ^ z;
        }
        acc
    }
}

impl LpType for Meb {
    type Element = IdPointD;
    type Value = MebValue;

    fn dim(&self) -> usize {
        self.space_dim + 1
    }

    fn basis_of(&self, elems: &[IdPointD]) -> Basis<IdPointD, MebValue> {
        if elems.is_empty() {
            return Basis::new(
                vec![],
                MebValue {
                    r2: -1.0,
                    center: vec![0.0; self.space_dim],
                },
            );
        }
        // Solve over the distinct element set (duplicates change nothing).
        let mut elems: Vec<IdPointD> = elems.to_vec();
        elems.sort_by_key(|a| a.id);
        elems.dedup_by_key(|e| e.id);
        let elems = &elems[..];
        let pts: Vec<PointD> = elems.iter().map(|e| e.p.clone()).collect();
        let mut rng = ChaCha8Rng::seed_from_u64(Self::shuffle_seed(elems));
        let ball = min_enclosing_ball(&pts, &mut rng);
        // Support extraction: boundary points, then a minimal sub-basis by
        // greedy removal (re-solving the tiny boundary set each time).
        let mut support: Vec<IdPointD> = elems
            .iter()
            .filter(|e| ball.on_boundary(&e.p))
            .cloned()
            .collect();
        support.sort_by_key(|a| a.id);
        support.dedup_by_key(|e| e.id);
        // Greedy minimization, keeping the ball radius intact.
        let radius_of = |sup: &[IdPointD]| -> f64 {
            let pts: Vec<PointD> = sup.iter().map(|e| e.p.clone()).collect();
            let mut r = ChaCha8Rng::seed_from_u64(1);
            min_enclosing_ball(&pts, &mut r).radius
        };
        let target = ball.radius;
        let tol = 1e-6 * target.max(1.0);
        let mut i = 0;
        while i < support.len() && support.len() > 1 {
            let mut reduced = support.clone();
            reduced.remove(i);
            if (radius_of(&reduced) - target).abs() <= tol {
                support = reduced;
            } else {
                i += 1;
            }
        }
        Basis::new(
            support,
            MebValue {
                r2: ball.radius * ball.radius,
                center: ball.center.coords,
            },
        )
    }

    fn violates(&self, basis: &Basis<IdPointD, MebValue>, h: &IdPointD) -> bool {
        !basis.value.ball().contains(&h.p)
    }

    fn cmp_value(&self, a: &MebValue, b: &MebValue) -> Ordering {
        a.r2.total_cmp(&b.r2).then_with(|| {
            for (x, y) in a.center.iter().zip(&b.center) {
                match x.total_cmp(y) {
                    Ordering::Equal => continue,
                    ord => return ord,
                }
            }
            Ordering::Equal
        })
    }

    fn cmp_element(&self, a: &IdPointD, b: &IdPointD) -> Ordering {
        a.id.cmp(&b.id).then_with(|| a.p.total_cmp(&b.p))
    }

    fn values_close(&self, a: &MebValue, b: &MebValue) -> bool {
        let scale = a.r2.abs().max(b.r2.abs()).max(1.0);
        (a.r2 - b.r2).abs() <= 1e-7 * scale
            && a.center
                .iter()
                .zip(&b.center)
                .all(|(x, y)| (x - y).abs() <= 1e-6 * scale.sqrt())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lpt::axioms;
    use rand::Rng;

    fn random_points(n: usize, dim: usize, seed: u64) -> Vec<IdPointD> {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        (0..n)
            .map(|i| {
                IdPointD::new(
                    i as u32,
                    (0..dim).map(|_| rng.gen_range(-5.0..5.0)).collect(),
                )
            })
            .collect()
    }

    #[test]
    fn dim_is_space_dim_plus_one() {
        assert_eq!(Meb::new(3).dim(), 4);
    }

    #[test]
    fn antipodal_pair_4d() {
        let elems = vec![
            IdPointD::new(0, vec![2.0, 0.0, 0.0, 0.0]),
            IdPointD::new(1, vec![-2.0, 0.0, 0.0, 0.0]),
        ];
        let b = Meb::new(4).basis_of(&elems);
        assert!((b.value.r2 - 4.0).abs() < 1e-9);
        assert_eq!(b.len(), 2);
    }

    #[test]
    fn axioms_hold_3d() {
        let mut rng = ChaCha8Rng::seed_from_u64(31);
        let elems = random_points(18, 3, 32);
        axioms::check_all(&Meb::new(3), &elems, 250, &mut rng).unwrap();
    }

    #[test]
    fn clarkson_matches_direct_3d() {
        let problem = Meb::new(3);
        let elems = random_points(800, 3, 33);
        let mut rng = ChaCha8Rng::seed_from_u64(34);
        let res = lpt::clarkson(&problem, &elems, &mut rng).unwrap();
        let direct = problem.basis_of(&elems);
        assert!((res.basis.value.r2 - direct.value.r2).abs() <= 1e-6 * direct.value.r2.max(1.0));
    }

    #[test]
    fn support_minimization_drops_interior_boundary_ties() {
        // Square in 2D: all 4 corners are on the MEB boundary, but 3 (or
        // 2 diagonal) suffice. The basis must have ≤ dim = 3 elements.
        let elems = vec![
            IdPointD::new(0, vec![1.0, 1.0]),
            IdPointD::new(1, vec![-1.0, 1.0]),
            IdPointD::new(2, vec![-1.0, -1.0]),
            IdPointD::new(3, vec![1.0, -1.0]),
        ];
        let b = Meb::new(2).basis_of(&elems);
        assert!(b.len() <= 3, "basis len {}", b.len());
        assert!((b.value.r2 - 2.0).abs() < 1e-9);
    }
}
