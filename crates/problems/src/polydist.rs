//! Polytope distance as an LP-type problem of dimension 4 (in the plane).
//!
//! `H` is a set of points, each tagged with the polytope (`A` or `B`) it
//! belongs to; for two-sided subsets `f(S) = -dist(conv(S∩A), conv(S∩B))`,
//! i.e. larger `f` means *closer* polytopes, so adding points (growing
//! the hulls) can only increase `f` — monotonicity. A closest pair of
//! features is realized by at most 2 points per hull, so the
//! combinatorial dimension is 4.
//!
//! Subsets missing one or both sides need care: with the naive
//! convention `f = -∞` for all of them, locality fails (the basis of a
//! one-sided set would be `∅` and could not witness which side is
//! present). [`PdValue`] therefore grades values by the number of sides
//! present (`0 < 1 < 2`), and the basis of a one-sided set retains one
//! canonical witness point. Degenerate distance ties between distinct
//! closest-feature pairs are resolved by canonical element order;
//! workload generators produce instances in general position.

use lpt::{Basis, LpType};
use lpt_geom::hull::{
    convex_hull, point_in_convex_hull, polygon_distance, segment_segment_distance,
};
use lpt_geom::Point2;
use std::cmp::Ordering;

/// Which polytope a point belongs to.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum Side {
    /// First polytope.
    A,
    /// Second polytope.
    B,
}

/// A point tagged with its polytope and an element id.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct SidedPoint {
    /// Stable element identifier.
    pub id: u32,
    /// Which polytope the point belongs to.
    pub side: Side,
    /// Coordinates.
    pub p: Point2,
}

impl SidedPoint {
    /// Creates a tagged point.
    pub fn new(id: u32, side: Side, x: f64, y: f64) -> Self {
        SidedPoint {
            id,
            side,
            p: Point2::new(x, y),
        }
    }
}

/// Value of `f`, graded by how many polytopes are represented.
///
/// Ordered by `sides` ascending, then by `dist` *descending* (smaller
/// distance = larger `f`). `dist` is `+∞` unless both sides are present.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct PdValue {
    /// Number of sides present in the subset (0, 1 or 2).
    pub sides: u8,
    /// Distance between the hulls (finite iff `sides == 2`).
    pub dist: f64,
}

/// The polytope-distance problem description (stateless).
#[derive(Clone, Copy, Debug, Default)]
pub struct PolytopeDistance;

impl PolytopeDistance {
    fn split(elems: &[SidedPoint]) -> (Vec<Point2>, Vec<Point2>) {
        let a = elems
            .iter()
            .filter(|e| e.side == Side::A)
            .map(|e| e.p)
            .collect();
        let b = elems
            .iter()
            .filter(|e| e.side == Side::B)
            .map(|e| e.p)
            .collect();
        (a, b)
    }

    /// Hull distance of a subset (`+∞` when a side is missing).
    pub fn distance(elems: &[SidedPoint]) -> f64 {
        let (a, b) = Self::split(elems);
        polygon_distance(&a, &b)
    }

    fn sides_present(elems: &[SidedPoint]) -> u8 {
        let a = elems.iter().any(|e| e.side == Side::A);
        let b = elems.iter().any(|e| e.side == Side::B);
        u8::from(a) + u8::from(b)
    }

    /// Finds ≤ 4 witness elements realizing a finite distance.
    fn witnesses(elems: &[SidedPoint], dist: f64) -> Vec<SidedPoint> {
        let tol = 1e-7 * dist.max(1.0);
        let (pa, pb) = Self::split(elems);
        let ha = convex_hull(&pa);
        let hb = convex_hull(&pb);
        let find = |p: &Point2, side: Side| -> SidedPoint {
            *elems
                .iter()
                .find(|e| e.side == side && e.p.dist2(p) <= 1e-18)
                .expect("hull vertex must be an input point")
        };
        if dist <= tol {
            // Intersecting case: check containment witnesses first.
            for (inner, outer, si, so) in
                [(&ha, &hb, Side::A, Side::B), (&hb, &ha, Side::B, Side::A)]
            {
                for p in inner.iter() {
                    if point_in_convex_hull(p, outer) {
                        // p plus a containing triangle fan of the outer hull.
                        let mut w = vec![find(p, si)];
                        if outer.len() <= 3 {
                            w.extend(outer.iter().map(|q| find(q, so)));
                        } else {
                            for i in 1..outer.len() - 1 {
                                let tri = [outer[0], outer[i], outer[i + 1]];
                                if point_in_convex_hull(p, &tri) {
                                    w.extend(tri.iter().map(|q| find(q, so)));
                                    break;
                                }
                            }
                        }
                        w.truncate(4);
                        return w;
                    }
                }
            }
        }
        // Closest feature pair over hull edges (degenerate hulls become
        // zero-length segments).
        let edges = |h: &[Point2]| -> Vec<(Point2, Point2)> {
            match h.len() {
                0 => vec![],
                1 => vec![(h[0], h[0])],
                2 => vec![(h[0], h[1])],
                n => (0..n).map(|i| (h[i], h[(i + 1) % n])).collect(),
            }
        };
        let mut best: Option<((Point2, Point2), (Point2, Point2))> = None;
        let mut best_d = f64::INFINITY;
        for ea in edges(&ha) {
            for eb in edges(&hb) {
                let d = segment_segment_distance(&ea.0, &ea.1, &eb.0, &eb.1);
                if d < best_d {
                    best_d = d;
                    best = Some((ea, eb));
                }
            }
        }
        let Some((ea, eb)) = best else { return vec![] };
        let mut w: Vec<SidedPoint> = Vec::with_capacity(4);
        for (p, side) in [
            (ea.0, Side::A),
            (ea.1, Side::A),
            (eb.0, Side::B),
            (eb.1, Side::B),
        ] {
            let e = find(&p, side);
            if !w.iter().any(|x| x.id == e.id) {
                w.push(e);
            }
        }
        // Minimal subset among the witnesses reproducing the distance.
        for size in 2..=w.len() {
            let mut best_subset: Option<Vec<SidedPoint>> = None;
            subsets(&w, size, &mut |subset| {
                if best_subset.is_none() && (Self::distance(subset) - dist).abs() <= tol {
                    best_subset = Some(subset.to_vec());
                }
            });
            if let Some(s) = best_subset {
                return s;
            }
        }
        w
    }
}

fn subsets<T: Clone>(items: &[T], size: usize, f: &mut impl FnMut(&[T])) {
    fn rec<T: Clone>(
        items: &[T],
        size: usize,
        start: usize,
        cur: &mut Vec<T>,
        f: &mut impl FnMut(&[T]),
    ) {
        if cur.len() == size {
            f(cur);
            return;
        }
        for i in start..items.len() {
            cur.push(items[i].clone());
            rec(items, size, i + 1, cur, f);
            cur.pop();
        }
    }
    let mut cur = Vec::with_capacity(size);
    rec(items, size, 0, &mut cur, f);
}

impl LpType for PolytopeDistance {
    type Element = SidedPoint;
    type Value = PdValue;

    fn dim(&self) -> usize {
        4
    }

    fn basis_of(&self, elems: &[SidedPoint]) -> Basis<SidedPoint, PdValue> {
        match Self::sides_present(elems) {
            0 => Basis::new(
                vec![],
                PdValue {
                    sides: 0,
                    dist: f64::INFINITY,
                },
            ),
            1 => {
                // One canonical witness keeps the present side observable.
                let w = *elems
                    .iter()
                    .min_by(|a, b| a.id.cmp(&b.id))
                    .expect("non-empty by sides_present");
                Basis::new(
                    vec![w],
                    PdValue {
                        sides: 1,
                        dist: f64::INFINITY,
                    },
                )
            }
            _ => {
                let dist = Self::distance(elems);
                let mut w = Self::witnesses(elems, dist);
                w.sort_by_key(|a| a.id);
                w.dedup_by_key(|e| e.id);
                Basis::new(w, PdValue { sides: 2, dist })
            }
        }
    }

    fn violates(&self, basis: &Basis<SidedPoint, PdValue>, h: &SidedPoint) -> bool {
        match basis.value.sides {
            0 => true, // any point raises the grade
            1 => basis.elements[0].side != h.side,
            _ => {
                // Recompute-based test: does adding h strictly decrease
                // the distance?
                let mut with = basis.elements.clone();
                with.push(*h);
                let new = Self::distance(&with);
                new < basis.value.dist - 1e-7 * basis.value.dist.max(1.0)
            }
        }
    }

    fn cmp_value(&self, a: &PdValue, b: &PdValue) -> Ordering {
        // Grade ascending, then distance *descending*.
        a.sides
            .cmp(&b.sides)
            .then_with(|| b.dist.total_cmp(&a.dist))
    }

    fn cmp_element(&self, a: &SidedPoint, b: &SidedPoint) -> Ordering {
        a.id.cmp(&b.id)
    }

    fn values_close(&self, a: &PdValue, b: &PdValue) -> bool {
        if a.sides != b.sides {
            return false;
        }
        if a.sides < 2 {
            return true;
        }
        (a.dist - b.dist).abs() <= 1e-7 * a.dist.max(b.dist).max(1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;
    use rand_chacha::rand_core::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    /// Two separated clusters around (-5, 0) and (5, 0).
    fn separated_instance(n: usize, seed: u64) -> Vec<SidedPoint> {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let mut out = Vec::with_capacity(2 * n);
        for i in 0..n {
            out.push(SidedPoint::new(
                i as u32,
                Side::A,
                -5.0 + rng.gen_range(-2.0..2.0),
                rng.gen_range(-3.0..3.0),
            ));
            out.push(SidedPoint::new(
                (n + i) as u32,
                Side::B,
                5.0 + rng.gen_range(-2.0..2.0),
                rng.gen_range(-3.0..3.0),
            ));
        }
        out
    }

    #[test]
    fn graded_values_for_missing_sides() {
        let p = PolytopeDistance;
        let empty = p.basis_of(&[]);
        assert_eq!(empty.value.sides, 0);
        assert!(empty.is_empty());

        let one = p.basis_of(&[SidedPoint::new(0, Side::A, 0.0, 0.0)]);
        assert_eq!(one.value.sides, 1);
        assert_eq!(one.len(), 1);

        // Grade order: 0 < 1 < 2.
        let two = PdValue {
            sides: 2,
            dist: 3.0,
        };
        assert_eq!(p.cmp_value(&empty.value, &one.value), Ordering::Less);
        assert_eq!(p.cmp_value(&one.value, &two), Ordering::Less);
    }

    #[test]
    fn one_sided_violation_tests() {
        let p = PolytopeDistance;
        let b = p.basis_of(&[SidedPoint::new(0, Side::A, 0.0, 0.0)]);
        // Other side raises the grade: violation.
        assert!(p.violates(&b, &SidedPoint::new(1, Side::B, 3.0, 4.0)));
        // Same side keeps grade 1: no violation.
        assert!(!p.violates(&b, &SidedPoint::new(2, Side::A, 1.0, 1.0)));
        // Everything violates the empty basis.
        let e = p.basis_of(&[]);
        assert!(p.violates(&e, &SidedPoint::new(3, Side::A, 0.0, 0.0)));
    }

    #[test]
    fn point_pair_distance() {
        let elems = vec![
            SidedPoint::new(0, Side::A, 0.0, 0.0),
            SidedPoint::new(1, Side::B, 3.0, 4.0),
        ];
        let b = PolytopeDistance.basis_of(&elems);
        assert_eq!(b.value.sides, 2);
        assert!((b.value.dist - 5.0).abs() < 1e-12);
        assert_eq!(b.len(), 2);
    }

    #[test]
    fn basis_witnesses_reproduce_distance() {
        for seed in 0..10 {
            let elems = separated_instance(20, 60 + seed);
            let b = PolytopeDistance.basis_of(&elems);
            assert!(b.len() <= 4, "seed {seed}: basis len {}", b.len());
            let d = PolytopeDistance::distance(&b.elements);
            assert!(
                (d - b.value.dist).abs() <= 1e-6 * b.value.dist.max(1.0),
                "seed {seed}: {} vs {}",
                d,
                b.value.dist
            );
        }
    }

    #[test]
    fn closer_point_violates() {
        let elems = separated_instance(10, 70);
        let b = PolytopeDistance.basis_of(&elems);
        assert!(PolytopeDistance.violates(&b, &SidedPoint::new(999, Side::A, 4.9, 0.0)));
    }

    #[test]
    fn interior_point_does_not_violate() {
        let elems = separated_instance(10, 71);
        let b = PolytopeDistance.basis_of(&elems);
        assert!(!PolytopeDistance.violates(&b, &SidedPoint::new(999, Side::A, -9.0, 0.0)));
    }

    #[test]
    fn axioms_hold() {
        let mut rng = ChaCha8Rng::seed_from_u64(72);
        let elems = separated_instance(12, 73);
        lpt::axioms::check_all(&PolytopeDistance, &elems, 300, &mut rng).unwrap();
    }

    #[test]
    fn clarkson_matches_direct() {
        let elems = separated_instance(300, 74);
        let mut rng = ChaCha8Rng::seed_from_u64(75);
        let res = lpt::clarkson(&PolytopeDistance, &elems, &mut rng).unwrap();
        let direct = PolytopeDistance::distance(&elems);
        assert!(
            (res.basis.value.dist - direct).abs() <= 1e-6 * direct.max(1.0),
            "clarkson {} vs direct {}",
            res.basis.value.dist,
            direct
        );
    }

    #[test]
    fn intersecting_hulls_zero_distance() {
        let elems = vec![
            SidedPoint::new(0, Side::A, -1.0, -1.0),
            SidedPoint::new(1, Side::A, 1.0, -1.0),
            SidedPoint::new(2, Side::A, 0.0, 2.0),
            SidedPoint::new(3, Side::B, 0.0, 0.0),
            SidedPoint::new(4, Side::B, 5.0, 5.0),
        ];
        let b = PolytopeDistance.basis_of(&elems);
        assert!(b.value.dist <= 1e-9);
        assert!(b.len() <= 4);
        let d = PolytopeDistance::distance(&b.elements);
        assert!(d <= 1e-9, "witnesses must also intersect, got {d}");
    }
}
