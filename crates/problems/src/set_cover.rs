//! The set cover problem and its classical reduction to hitting set
//! (paper, Section 1.4).
//!
//! Given `X = {0, …, n−1}` and `S = {S₁, …, S_s}` with `∪S = X`, find a
//! minimum-size `C ⊆ S` with `∪C = X`. The paper solves set cover by
//! running the hitting-set algorithm on the *dual* system: ground set
//! `Y = {1, …, s}` (one element per set) and `M_i = {j : i ∈ S_j}` for
//! each original element `i`; a hitting set of `(Y, M)` is exactly a set
//! cover of `(X, S)`.

use crate::hitting_set::SetSystem;

/// A set cover instance.
#[derive(Clone, Debug)]
pub struct SetCover {
    n_elements: usize,
    sets: Vec<Vec<u32>>,
}

impl SetCover {
    /// Builds an instance over elements `0..n_elements`.
    ///
    /// # Panics
    /// Panics if the union of the sets does not cover `X`, if any set is
    /// empty, or if an element is out of range.
    pub fn new(n_elements: usize, sets: Vec<Vec<u32>>) -> Self {
        let mut covered = vec![false; n_elements];
        for (si, s) in sets.iter().enumerate() {
            assert!(!s.is_empty(), "set {si} is empty");
            for &x in s {
                assert!(
                    (x as usize) < n_elements,
                    "set {si}: element {x} out of range"
                );
                covered[x as usize] = true;
            }
        }
        assert!(covered.iter().all(|&c| c), "the sets do not cover X");
        SetCover { n_elements, sets }
    }

    /// Number of ground elements.
    pub fn n_elements(&self) -> usize {
        self.n_elements
    }

    /// Number of sets.
    pub fn num_sets(&self) -> usize {
        self.sets.len()
    }

    /// The elements of set `si`.
    pub fn set(&self, si: usize) -> &[u32] {
        &self.sets[si]
    }

    /// Whether the sets indexed by `cover` cover all of `X`.
    pub fn is_cover(&self, cover: &[u32]) -> bool {
        let mut covered = vec![false; self.n_elements];
        for &si in cover {
            for &x in &self.sets[si as usize] {
                covered[x as usize] = true;
            }
        }
        covered.iter().all(|&c| c)
    }

    /// The dual hitting-set system: ground set = set indices; one dual
    /// set `M_i = {j : i ∈ S_j}` per original element `i`. A hitting set
    /// of the dual is a set cover of `self` (and vice versa), so the
    /// distributed hitting-set algorithm solves set cover unchanged.
    pub fn dual_hitting_set(&self) -> SetSystem {
        let mut dual: Vec<Vec<u32>> = vec![Vec::new(); self.n_elements];
        for (j, s) in self.sets.iter().enumerate() {
            for &i in s {
                dual[i as usize].push(j as u32);
            }
        }
        SetSystem::new(self.num_sets(), dual)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hitting_set::{greedy_hitting_set, min_hitting_set_exact};

    fn instance() -> SetCover {
        // X = {0..5}; optimal cover = {S0, S2} (S0 = {0,1,2}, S2 = {3,4,5}).
        SetCover::new(
            6,
            vec![vec![0, 1, 2], vec![1, 3], vec![3, 4, 5], vec![0, 5]],
        )
    }

    #[test]
    fn is_cover_checks() {
        let sc = instance();
        assert!(sc.is_cover(&[0, 2]));
        assert!(sc.is_cover(&[0, 1, 2, 3]));
        assert!(!sc.is_cover(&[0, 1]));
    }

    #[test]
    fn dual_hitting_set_solves_cover() {
        let sc = instance();
        let dual = sc.dual_hitting_set();
        assert_eq!(dual.n_elements(), sc.num_sets());
        assert_eq!(dual.num_sets(), sc.n_elements());
        let hs = min_hitting_set_exact(&dual, sc.num_sets()).unwrap();
        assert!(sc.is_cover(&hs), "dual hitting set must be a cover");
        assert_eq!(hs.len(), 2, "optimal cover has 2 sets");
    }

    #[test]
    fn greedy_on_dual_is_a_cover() {
        let sc = instance();
        let hs = greedy_hitting_set(&sc.dual_hitting_set());
        assert!(sc.is_cover(&hs));
    }

    #[test]
    fn duality_both_directions() {
        // Every hitting set of the dual is a cover and vice versa, on a
        // couple of crafted instances.
        let sc = SetCover::new(4, vec![vec![0, 1], vec![2], vec![2, 3], vec![0, 3]]);
        let dual = sc.dual_hitting_set();
        // {S1, S3} covers? S1={2}, S3={0,3} -> missing 1 -> not a cover,
        // and indeed {1,3} must not hit dual set M_1 = {0}.
        assert!(!sc.is_cover(&[1, 3]));
        assert!(!dual.is_hitting_set(&[1, 3]));
        // {S0, S2} covers and hits.
        assert!(sc.is_cover(&[0, 2]));
        assert!(dual.is_hitting_set(&[0, 2]));
    }

    #[test]
    #[should_panic(expected = "do not cover")]
    fn non_covering_instance_rejected() {
        let _ = SetCover::new(3, vec![vec![0, 1]]);
    }
}
