//! Fixed-dimension linear programming as an LP-type problem.
//!
//! `H` is a set of halfspace constraints `a·x ≤ b` in `d` variables and
//! `f(G)` is the minimum of the objective `c·x` over `∩G`, intersected
//! with an implicit bounding box `|x_i| ≤ bound` that keeps every
//! subproblem bounded (the standard "big-M" device). The optimum point
//! with lexicographic tie-breaking makes `f` uniquely valued, which is
//! the paper's non-degeneracy convention (Section 1.1). Because every
//! subset of constraints (plus the box) is feasible whenever the full
//! instance is, and all workload generators in this workspace produce
//! feasible instances, the combinatorial dimension equals the number of
//! variables `d`.

use lpt::{Basis, LpType};
use lpt_geom::lp::{solve_lp_vertex_enum, Halfspace, LpOutcome};
use std::cmp::Ordering;

/// A halfspace constraint with an element id.
#[derive(Clone, Debug, PartialEq)]
pub struct IdHalfspace {
    /// Stable element identifier.
    pub id: u32,
    /// The constraint `a·x ≤ b`.
    pub h: Halfspace,
}

impl IdHalfspace {
    /// Creates an id-tagged constraint.
    pub fn new(id: u32, a: Vec<f64>, b: f64) -> Self {
        IdHalfspace {
            id,
            h: Halfspace::new(a, b),
        }
    }
}

/// Value of `f`: the objective value and the optimizing vertex
/// (lexicographic tie-break). `f64::INFINITY` objective encodes an
/// infeasible subproblem (cannot occur for feasible instances).
#[derive(Clone, Debug, PartialEq)]
pub struct LpValue {
    /// Objective value at the optimum.
    pub objective: f64,
    /// The optimal vertex.
    pub x: Vec<f64>,
}

/// The fixed-dimension LP problem description: objective and box bound.
#[derive(Clone, Debug)]
pub struct FixedDimLp {
    /// Objective coefficients (`minimize c·x`); length = #variables.
    pub c: Vec<f64>,
    /// Implicit bounding box half-width.
    pub bound: f64,
}

impl FixedDimLp {
    /// Creates an LP description; `bound` defaults to `1e4` via
    /// [`FixedDimLp::with_default_bound`].
    pub fn new(c: Vec<f64>, bound: f64) -> Self {
        assert!(!c.is_empty());
        assert!(bound > 0.0);
        FixedDimLp { c, bound }
    }

    /// Creates an LP description with the default box bound `1e4`.
    pub fn with_default_bound(c: Vec<f64>) -> Self {
        Self::new(c, 1e4)
    }

    /// Number of variables.
    pub fn vars(&self) -> usize {
        self.c.len()
    }

    fn solve(&self, elems: &[IdHalfspace]) -> LpValue {
        let constraints: Vec<Halfspace> = elems.iter().map(|e| e.h.clone()).collect();
        match solve_lp_vertex_enum(&self.c, &constraints, self.bound) {
            LpOutcome::Optimal(sol) => LpValue {
                objective: sol.value,
                x: sol.x,
            },
            LpOutcome::Infeasible => LpValue {
                objective: f64::INFINITY,
                x: vec![f64::INFINITY; self.vars()],
            },
        }
    }
}

impl LpType for FixedDimLp {
    type Element = IdHalfspace;
    type Value = LpValue;

    fn dim(&self) -> usize {
        self.vars()
    }

    fn basis_of(&self, elems: &[IdHalfspace]) -> Basis<IdHalfspace, LpValue> {
        let value = self.solve(elems);
        if !value.objective.is_finite() {
            // Infeasible subproblem (not produced by our generators):
            // return everything as a defensive certificate.
            let mut all = elems.to_vec();
            all.sort_by_key(|a| a.id);
            all.dedup_by_key(|e| e.id);
            return Basis::new(all, value);
        }
        // Tight constraints at the optimum are the basis candidates.
        let mut candidates: Vec<IdHalfspace> = elems
            .iter()
            .filter(|e| {
                let scale =
                    e.h.a
                        .iter()
                        .zip(&value.x)
                        .map(|(ai, xi)| (ai * xi).abs())
                        .fold(e.h.b.abs(), f64::max)
                        .max(1.0);
                e.h.slack(&value.x).abs() <= 1e-7 * scale
            })
            .cloned()
            .collect();
        candidates.sort_by_key(|a| a.id);
        candidates.dedup_by_key(|e| e.id);
        // Greedy minimization: drop candidates whose removal keeps the
        // optimum (value + vertex) unchanged.
        let same = |v: &LpValue| -> bool {
            (v.objective - value.objective).abs() <= 1e-7 * value.objective.abs().max(1.0)
                && v.x
                    .iter()
                    .zip(&value.x)
                    .all(|(a, b)| (a - b).abs() <= 1e-6 * b.abs().max(1.0))
        };
        let mut i = 0;
        while i < candidates.len() {
            let mut reduced = candidates.clone();
            reduced.remove(i);
            if same(&self.solve(&reduced)) {
                candidates = reduced;
            } else {
                i += 1;
            }
        }
        Basis::new(candidates, value)
    }

    fn violates(&self, basis: &Basis<IdHalfspace, LpValue>, h: &IdHalfspace) -> bool {
        // f(B ∪ {h}) > f(B) iff the current optimum breaks h: if the
        // optimum satisfies h the value is unchanged (the vertex stays
        // feasible and stays lexicographically minimal); otherwise it
        // strictly increases in the (objective, lex-x) order.
        !h.h.satisfied(&basis.value.x)
    }

    fn cmp_value(&self, a: &LpValue, b: &LpValue) -> Ordering {
        a.objective.total_cmp(&b.objective).then_with(|| {
            for (x, y) in a.x.iter().zip(&b.x) {
                match x.total_cmp(y) {
                    Ordering::Equal => continue,
                    ord => return ord,
                }
            }
            Ordering::Equal
        })
    }

    fn cmp_element(&self, a: &IdHalfspace, b: &IdHalfspace) -> Ordering {
        a.id.cmp(&b.id)
    }

    fn values_close(&self, a: &LpValue, b: &LpValue) -> bool {
        if a.objective == b.objective {
            // Covers the infinite (infeasible) sentinel too.
            return a
                .x
                .iter()
                .zip(&b.x)
                .all(|(x, y)| x == y || (x - y).abs() <= 1e-6);
        }
        let scale = a.objective.abs().max(b.objective.abs()).max(1.0);
        (a.objective - b.objective).abs() <= 1e-7 * scale
            && a.x
                .iter()
                .zip(&b.x)
                .all(|(x, y)| (x - y).abs() <= 1e-6 * x.abs().max(y.abs()).max(1.0))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lpt::axioms;
    use rand::Rng;
    use rand_chacha::rand_core::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    /// Random feasible 2D instance: constraints are tangent halfplanes of
    /// random directions pushed outward from the origin, so `x = 0` is
    /// always feasible.
    fn random_instance(n: usize, seed: u64) -> Vec<IdHalfspace> {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        (0..n)
            .map(|i| {
                let t: f64 = rng.gen_range(0.0..std::f64::consts::TAU);
                let r: f64 = rng.gen_range(1.0..5.0);
                IdHalfspace::new(i as u32, vec![t.cos(), t.sin()], r)
            })
            .collect()
    }

    #[test]
    fn dim_equals_vars() {
        assert_eq!(FixedDimLp::with_default_bound(vec![1.0, 1.0]).dim(), 2);
    }

    #[test]
    fn basis_of_simple_lp() {
        let p = FixedDimLp::with_default_bound(vec![-1.0, -1.0]);
        let elems = vec![
            IdHalfspace::new(0, vec![1.0, 2.0], 4.0),
            IdHalfspace::new(1, vec![3.0, 1.0], 6.0),
            IdHalfspace::new(2, vec![-1.0, 0.0], 0.0),
            IdHalfspace::new(3, vec![0.0, -1.0], 0.0),
        ];
        let b = p.basis_of(&elems);
        assert!((b.value.objective + 2.8).abs() < 1e-9);
        // The two binding constraints form the basis.
        let ids: Vec<u32> = b.elements.iter().map(|e| e.id).collect();
        assert_eq!(ids, vec![0, 1]);
    }

    #[test]
    fn violation_test_is_slack_sign() {
        let p = FixedDimLp::with_default_bound(vec![-1.0, 0.0]);
        let elems = vec![IdHalfspace::new(0, vec![1.0, 0.0], 2.0)];
        let b = p.basis_of(&elems); // optimum x = (2, -bound)
        assert!(p.violates(&b, &IdHalfspace::new(1, vec![1.0, 0.0], 1.0)));
        assert!(!p.violates(&b, &IdHalfspace::new(2, vec![1.0, 0.0], 3.0)));
    }

    #[test]
    fn axioms_hold_on_random_2d_instance() {
        let p = FixedDimLp::with_default_bound(vec![-1.0, -2.0]);
        let elems = random_instance(16, 40);
        let mut rng = ChaCha8Rng::seed_from_u64(41);
        axioms::check_all(&p, &elems, 200, &mut rng).unwrap();
    }

    #[test]
    fn clarkson_matches_direct_solve() {
        let p = FixedDimLp::with_default_bound(vec![-1.0, -1.0]);
        let elems = random_instance(400, 42);
        let mut rng = ChaCha8Rng::seed_from_u64(43);
        let res = lpt::clarkson(&p, &elems, &mut rng).unwrap();
        let direct = p.basis_of(&elems);
        assert!(
            (res.basis.value.objective - direct.value.objective).abs()
                <= 1e-7 * direct.value.objective.abs().max(1.0),
            "clarkson {} vs direct {}",
            res.basis.value.objective,
            direct.value.objective
        );
    }

    #[test]
    fn basis_size_at_most_dim() {
        let p = FixedDimLp::with_default_bound(vec![-1.0, -1.0]);
        for seed in 0..10 {
            let elems = random_instance(20, 50 + seed);
            let b = p.basis_of(&elems);
            assert!(b.len() <= p.dim(), "seed {seed}: basis {:?}", b.elements);
        }
    }
}
