//! Minimum enclosing disk (MED) as an LP-type problem of dimension 3.
//!
//! `H` is a set of points in the plane; `f(S)` is the radius of the
//! smallest disk enclosing `S`, with the disk center as deterministic
//! tie-break. At most 3 points determine the disk, so the combinatorial
//! dimension is 3 (paper, Section 1.1). This is the problem of the
//! paper's experimental evaluation (Section 5, Figures 1–3).

use lpt::{Basis, LpType};
use lpt_geom::welzl::min_enclosing_disk_with_support;
use lpt_geom::{Disk, Point2};
use rand_chacha::rand_core::SeedableRng;
use rand_chacha::ChaCha8Rng;
use std::cmp::Ordering;

/// A plane point with an element id.
///
/// The id is the element's identity for tie-breaking and for recognizing
/// gossip-created copies; coordinates are payload. One `IdPoint2` is one
/// `O(log n)`-bit message in the paper's accounting.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct IdPoint2 {
    /// Stable element identifier (index into the instance).
    pub id: u32,
    /// Coordinates.
    pub p: Point2,
}

impl IdPoint2 {
    /// Creates an id-tagged point.
    pub fn new(id: u32, x: f64, y: f64) -> Self {
        IdPoint2 {
            id,
            p: Point2::new(x, y),
        }
    }
}

/// The value of `f` for MED: squared radius plus the center coordinates
/// as deterministic tie-break, ordered lexicographically by
/// `(r², cx, cy)` under `total_cmp`.
///
/// The empty set maps to `r² = -1` (i.e. `f(∅) = -∞`).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct MedValue {
    /// Squared radius (negative for the empty disk).
    pub r2: f64,
    /// Center x.
    pub cx: f64,
    /// Center y.
    pub cy: f64,
}

impl MedValue {
    /// The disk this value describes.
    pub fn disk(&self) -> Disk {
        if self.r2 < 0.0 {
            Disk::EMPTY
        } else {
            Disk {
                center: Point2::new(self.cx, self.cy),
                radius: self.r2.sqrt(),
            }
        }
    }

    fn from_disk(d: &Disk) -> MedValue {
        MedValue {
            r2: d.radius2(),
            cx: d.center.x,
            cy: d.center.y,
        }
    }
}

/// The minimum-enclosing-disk LP-type problem (dimension 3).
#[derive(Clone, Copy, Debug, Default)]
pub struct Med;

impl Med {
    /// Derives the deterministic shuffle seed for a basis computation
    /// from the multiset of element ids, so `basis_of` is a pure function
    /// of its input (required for reproducible distributed runs).
    fn shuffle_seed(elems: &[IdPoint2]) -> u64 {
        let mut acc: u64 = 0x243F_6A88_85A3_08D3;
        for e in elems {
            let mut z = (e.id as u64).wrapping_add(0x9E37_79B9_7F4A_7C15);
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            acc = acc.rotate_left(7) ^ z;
        }
        acc ^ (elems.len() as u64).wrapping_mul(0xD1B5_4A32_D192_ED03)
    }
}

impl LpType for Med {
    type Element = IdPoint2;
    type Value = MedValue;

    fn dim(&self) -> usize {
        3
    }

    fn basis_of(&self, elems: &[IdPoint2]) -> Basis<IdPoint2, MedValue> {
        if elems.is_empty() {
            return Basis::new(
                vec![],
                MedValue {
                    r2: -1.0,
                    cx: 0.0,
                    cy: 0.0,
                },
            );
        }
        // Copies of the same element (gossip-created duplicates) change
        // neither the disk nor the basis: solve over the distinct set,
        // which also makes the result a pure function of that set.
        let mut distinct: Vec<IdPoint2> = elems.to_vec();
        distinct.sort_by_key(|a| a.id);
        distinct.dedup_by_key(|e| e.id);
        let pts: Vec<Point2> = distinct.iter().map(|e| e.p).collect();
        let mut rng = ChaCha8Rng::seed_from_u64(Self::shuffle_seed(&distinct));
        let (disk, support) = min_enclosing_disk_with_support(&pts, &mut rng);
        let mut elements: Vec<IdPoint2> = support.iter().map(|&i| distinct[i]).collect();
        elements.sort_by_key(|a| a.id);
        Basis::new(elements, MedValue::from_disk(&disk))
    }

    fn violates(&self, basis: &Basis<IdPoint2, MedValue>, h: &IdPoint2) -> bool {
        !basis.value.disk().contains(&h.p)
    }

    fn cmp_value(&self, a: &MedValue, b: &MedValue) -> Ordering {
        a.r2.total_cmp(&b.r2)
            .then_with(|| a.cx.total_cmp(&b.cx))
            .then_with(|| a.cy.total_cmp(&b.cy))
    }

    fn cmp_element(&self, a: &IdPoint2, b: &IdPoint2) -> Ordering {
        a.id.cmp(&b.id).then_with(|| a.p.total_cmp(&b.p))
    }

    fn values_close(&self, a: &MedValue, b: &MedValue) -> bool {
        let scale = a.r2.abs().max(b.r2.abs()).max(1.0);
        (a.r2 - b.r2).abs() <= 1e-7 * scale
            && (a.cx - b.cx).abs() <= 1e-6 * scale.sqrt()
            && (a.cy - b.cy).abs() <= 1e-6 * scale.sqrt()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lpt::axioms;
    use rand::Rng;

    fn random_points(n: usize, seed: u64) -> Vec<IdPoint2> {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        (0..n)
            .map(|i| {
                IdPoint2::new(
                    i as u32,
                    rng.gen_range(-10.0..10.0),
                    rng.gen_range(-10.0..10.0),
                )
            })
            .collect()
    }

    #[test]
    fn empty_set_has_minus_infinity_value() {
        let b = Med.basis_of(&[]);
        assert!(b.is_empty());
        assert!(b.value.r2 < 0.0);
        // Everything violates the empty basis.
        assert!(Med.violates(&b, &IdPoint2::new(0, 0.0, 0.0)));
    }

    #[test]
    fn basis_of_two_antipodal_points() {
        let elems = vec![IdPoint2::new(0, -3.0, 0.0), IdPoint2::new(1, 3.0, 0.0)];
        let b = Med.basis_of(&elems);
        assert_eq!(b.len(), 2);
        assert!((b.value.r2 - 9.0).abs() < 1e-9);
        assert!(!Med.violates(&b, &IdPoint2::new(9, 0.0, 2.9)));
        assert!(Med.violates(&b, &IdPoint2::new(9, 0.0, 3.1)));
    }

    #[test]
    fn basis_is_pure_function_of_input() {
        let elems = random_points(40, 7);
        let b1 = Med.basis_of(&elems);
        let b2 = Med.basis_of(&elems);
        assert_eq!(b1, b2);
    }

    #[test]
    fn satisfies_lp_type_axioms() {
        let mut rng = ChaCha8Rng::seed_from_u64(21);
        let elems = random_points(25, 8);
        axioms::check_all(&Med, &elems, 400, &mut rng).unwrap();
    }

    #[test]
    fn duplicated_copies_dedup_in_basis() {
        let p = IdPoint2::new(5, 1.0, 1.0);
        let q = IdPoint2::new(6, -1.0, -1.0);
        let elems = vec![p, q, p, p, q];
        let b = Med.basis_of(&elems);
        assert_eq!(b.len(), 2);
    }

    #[test]
    fn clarkson_matches_direct_welzl() {
        let elems = random_points(3000, 9);
        let mut rng = ChaCha8Rng::seed_from_u64(10);
        let res = lpt::clarkson(&Med, &elems, &mut rng).unwrap();
        let direct = Med.basis_of(&elems);
        assert!(
            (res.basis.value.r2 - direct.value.r2).abs() <= 1e-7 * direct.value.r2.max(1.0),
            "clarkson {} vs direct {}",
            res.basis.value.r2,
            direct.value.r2
        );
    }

    #[test]
    fn exhaustive_oracle_agrees_on_small_sets() {
        for seed in 0..20 {
            let elems = random_points(8, 100 + seed);
            let direct = Med.basis_of(&elems);
            let oracle = lpt::exhaustive_basis(&Med, &elems).unwrap();
            assert!(
                (direct.value.r2 - oracle.value.r2).abs() <= 1e-7 * direct.value.r2.max(1.0),
                "seed {seed}"
            );
        }
    }

    #[test]
    fn value_order_is_total_and_radius_first() {
        let small = MedValue {
            r2: 1.0,
            cx: 9.0,
            cy: 9.0,
        };
        let big = MedValue {
            r2: 2.0,
            cx: 0.0,
            cy: 0.0,
        };
        assert_eq!(Med.cmp_value(&small, &big), Ordering::Less);
        let tie_a = MedValue {
            r2: 1.0,
            cx: 0.0,
            cy: 0.0,
        };
        let tie_b = MedValue {
            r2: 1.0,
            cx: 0.0,
            cy: 1.0,
        };
        assert_eq!(Med.cmp_value(&tie_a, &tie_b), Ordering::Less);
    }
}
