//! The exact report cache: [`RunSpecKey`] → rendered reply bytes.
//!
//! Because a run is a pure function of its spec (seeded RNG schedule,
//! deterministic engine, field-ordered rendering), two requests with
//! equal keys *must* produce byte-identical reply streams — so the
//! cache can hand back the cold run's exact bytes and the client
//! cannot tell replay from re-execution. Driver errors are cached too:
//! they are just as deterministic as successes.
//!
//! The cache is **single-flight**: when several sessions ask for the
//! same uncached key concurrently, exactly one computes it (the one
//! that got [`Lookup::Miss`]) while the rest block inside
//! [`ReportCache::lookup`] on a condvar until the bytes land. If
//! the computing session dies (panic, disconnect) its [`PendingGuard`]
//! drops, the pending slot is removed, and one waiter is promoted to
//! compute instead — no request is ever lost to another session's
//! failure.
//!
//! Eviction is LRU over *ready* entries only, so an in-flight
//! computation can never be evicted out from under its waiters.

use lpt_gossip::spec::RunSpecKey;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};

enum Slot {
    /// A session is computing this entry right now.
    Pending,
    /// The entry is cached; `last_used` orders LRU eviction.
    Ready { bytes: Arc<Vec<u8>>, last_used: u64 },
}

struct Inner {
    slots: HashMap<RunSpecKey, Slot>,
    /// Monotonic use counter backing the LRU order.
    tick: u64,
    ready_count: usize,
    /// Total bytes held by ready entries (exact: adjusted on insert and
    /// evict, never estimated).
    bytes: usize,
}

/// A bounded single-flight LRU cache of rendered reply streams.
pub struct ReportCache {
    inner: Mutex<Inner>,
    ready: Condvar,
    capacity: usize,
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
}

/// The outcome of a cache probe.
pub enum Lookup {
    /// Cached bytes, ready to stream as-is.
    Hit {
        /// The cached reply stream.
        bytes: Arc<Vec<u8>>,
        /// Whether this probe blocked on another session's in-flight
        /// computation before the bytes landed (still counted as a hit
        /// — no run happened on our behalf — but latency-wise a
        /// different animal, which the server's metrics plane splits
        /// out).
        waited: bool,
    },
    /// Not cached; the caller must compute the entry and then call
    /// [`PendingGuard::fulfill`]. Other sessions asking for the same
    /// key will block until it does (or the guard drops).
    Miss(PendingGuard),
}

/// Held by the one session computing a missed entry. Dropping the
/// guard without [`fulfill`](PendingGuard::fulfill)ing releases the
/// slot and wakes waiters so one of them can take over.
pub struct PendingGuard {
    cache: Arc<ReportCache>,
    key: RunSpecKey,
    fulfilled: bool,
}

impl ReportCache {
    /// Creates a cache holding at most `capacity` ready entries
    /// (minimum 1).
    pub fn new(capacity: usize) -> Arc<Self> {
        Arc::new(ReportCache {
            inner: Mutex::new(Inner {
                slots: HashMap::new(),
                tick: 0,
                ready_count: 0,
                bytes: 0,
            }),
            ready: Condvar::new(),
            capacity: capacity.max(1),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
        })
    }

    /// Probes the cache. A `Hit` is counted and its entry touched; a
    /// key that is pending in another session blocks until it
    /// resolves (counted as a hit — no run happened on our behalf).
    pub fn lookup(self: &Arc<Self>, key: &RunSpecKey) -> Lookup {
        let mut inner = self.inner.lock().unwrap();
        let mut waited = false;
        loop {
            match inner.slots.get(key) {
                Some(Slot::Ready { .. }) => {
                    inner.tick += 1;
                    let tick = inner.tick;
                    let Some(Slot::Ready { bytes, last_used }) = inner.slots.get_mut(key) else {
                        unreachable!("entry vanished while locked");
                    };
                    *last_used = tick;
                    let bytes = bytes.clone();
                    self.hits.fetch_add(1, Ordering::Relaxed);
                    return Lookup::Hit { bytes, waited };
                }
                Some(Slot::Pending) => {
                    // Another session is computing this key; wait for
                    // it rather than running the same spec twice.
                    waited = true;
                    inner = self.ready.wait(inner).unwrap();
                }
                None => {
                    inner.slots.insert(key.clone(), Slot::Pending);
                    self.misses.fetch_add(1, Ordering::Relaxed);
                    return Lookup::Miss(PendingGuard {
                        cache: self.clone(),
                        key: key.clone(),
                        fulfilled: false,
                    });
                }
            }
        }
    }

    fn insert_ready(&self, key: &RunSpecKey, bytes: Arc<Vec<u8>>) {
        let mut inner = self.inner.lock().unwrap();
        inner.tick += 1;
        let tick = inner.tick;
        let len = bytes.len();
        let was_pending = matches!(
            inner.slots.insert(
                key.clone(),
                Slot::Ready {
                    bytes,
                    last_used: tick,
                },
            ),
            Some(Slot::Pending)
        );
        debug_assert!(was_pending, "fulfilled a slot nobody reserved");
        inner.ready_count += 1;
        inner.bytes += len;
        while inner.ready_count > self.capacity {
            let victim = inner
                .slots
                .iter()
                .filter_map(|(k, s)| match s {
                    Slot::Ready { last_used, .. } if k != key => Some((*last_used, k)),
                    _ => None,
                })
                .min_by_key(|(last_used, _)| *last_used)
                .map(|(_, k)| k.clone());
            match victim {
                Some(k) => {
                    if let Some(Slot::Ready { bytes, .. }) = inner.slots.remove(&k) {
                        inner.bytes -= bytes.len();
                    }
                    inner.ready_count -= 1;
                    self.evictions.fetch_add(1, Ordering::Relaxed);
                }
                None => break, // capacity 1 and only the fresh entry is ready
            }
        }
        drop(inner);
        self.ready.notify_all();
    }

    fn abandon(&self, key: &RunSpecKey) {
        let mut inner = self.inner.lock().unwrap();
        if matches!(inner.slots.get(key), Some(Slot::Pending)) {
            inner.slots.remove(key);
        }
        drop(inner);
        // Wake waiters: one of them will re-probe, find no slot, and
        // become the new computer.
        self.ready.notify_all();
    }

    /// Cache hits served so far (including waits on in-flight runs).
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Cache misses so far — each one caused exactly one computation.
    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }

    /// Number of ready (replayable) entries currently cached.
    pub fn len(&self) -> usize {
        self.inner.lock().unwrap().ready_count
    }

    /// Total bytes held by ready entries (exact accounting: adjusted
    /// on every insert and eviction).
    pub fn bytes_total(&self) -> u64 {
        self.inner.lock().unwrap().bytes as u64
    }

    /// Ready entries evicted by the LRU policy so far.
    pub fn evictions(&self) -> u64 {
        self.evictions.load(Ordering::Relaxed)
    }

    /// Whether the cache holds no ready entries.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl PendingGuard {
    /// Publishes the computed bytes, waking all sessions waiting on
    /// this key, and returns the shared bytes for the caller's own
    /// reply.
    pub fn fulfill(mut self, bytes: Vec<u8>) -> Arc<Vec<u8>> {
        let bytes = Arc::new(bytes);
        self.cache.insert_ready(&self.key, bytes.clone());
        self.fulfilled = true;
        bytes
    }
}

impl Drop for PendingGuard {
    fn drop(&mut self) {
        if !self.fulfilled {
            self.cache.abandon(&self.key);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;

    fn key(seed: u64) -> RunSpecKey {
        RunSpecKey::new("duo-disk", 64, 16, seed)
    }

    #[test]
    fn miss_then_hit_replays_exact_bytes() {
        let cache = ReportCache::new(4);
        let Lookup::Miss(guard) = cache.lookup(&key(1)) else {
            panic!("expected miss")
        };
        let published = guard.fulfill(b"reply".to_vec());
        let Lookup::Hit { bytes, waited } = cache.lookup(&key(1)) else {
            panic!("expected hit")
        };
        assert_eq!(bytes.as_slice(), b"reply");
        assert!(!waited, "entry was ready; no pending wait happened");
        assert!(Arc::ptr_eq(&published, &bytes), "hit shares the cold bytes");
        assert_eq!((cache.hits(), cache.misses()), (1, 1));
        assert_eq!(cache.bytes_total(), b"reply".len() as u64);
        assert_eq!(cache.evictions(), 0);
    }

    #[test]
    fn concurrent_lookups_single_flight() {
        let cache = ReportCache::new(4);
        let mut handles = Vec::new();
        for _ in 0..8 {
            let cache = cache.clone();
            handles.push(thread::spawn(move || match cache.lookup(&key(7)) {
                Lookup::Miss(guard) => {
                    // Simulate a slow run while the others wait.
                    thread::sleep(std::time::Duration::from_millis(30));
                    guard.fulfill(b"once".to_vec()).as_slice().to_vec()
                }
                Lookup::Hit { bytes, .. } => bytes.as_slice().to_vec(),
            }));
        }
        for h in handles {
            assert_eq!(h.join().unwrap(), b"once");
        }
        assert_eq!(cache.misses(), 1, "exactly one computation");
        assert_eq!(cache.hits(), 7);
    }

    #[test]
    fn dropped_guard_promotes_a_waiter() {
        let cache = ReportCache::new(4);
        let Lookup::Miss(guard) = cache.lookup(&key(3)) else {
            panic!("expected miss")
        };
        let waiter = {
            let cache = cache.clone();
            thread::spawn(move || match cache.lookup(&key(3)) {
                Lookup::Miss(g) => {
                    g.fulfill(b"rescued".to_vec());
                    true
                }
                Lookup::Hit { .. } => false,
            })
        };
        thread::sleep(std::time::Duration::from_millis(30));
        drop(guard); // computing session "dies"
        assert!(waiter.join().unwrap(), "waiter became the computer");
        assert_eq!(cache.misses(), 2);
    }

    #[test]
    fn lru_evicts_oldest_ready_entry() {
        let cache = ReportCache::new(2);
        for seed in 0..3 {
            let Lookup::Miss(g) = cache.lookup(&key(seed)) else {
                panic!("expected miss")
            };
            g.fulfill(vec![seed as u8]);
            if seed == 1 {
                // Touch seed 0 so seed 1 becomes the LRU victim.
                assert!(matches!(cache.lookup(&key(0)), Lookup::Hit { .. }));
            }
        }
        assert_eq!(cache.len(), 2);
        assert!(matches!(cache.lookup(&key(0)), Lookup::Hit { .. }));
        assert!(matches!(cache.lookup(&key(2)), Lookup::Hit { .. }));
        let Lookup::Miss(g) = cache.lookup(&key(1)) else {
            panic!("seed 1 should have been evicted")
        };
        drop(g);
        assert_eq!(cache.evictions(), 1, "one LRU eviction happened");
        assert_eq!(cache.bytes_total(), 2, "two one-byte entries remain");
    }

    #[test]
    fn pending_waiters_report_the_wait() {
        let cache = ReportCache::new(4);
        let Lookup::Miss(guard) = cache.lookup(&key(9)) else {
            panic!("expected miss")
        };
        let waiter = {
            let cache = cache.clone();
            thread::spawn(move || match cache.lookup(&key(9)) {
                Lookup::Hit { waited, .. } => waited,
                Lookup::Miss(_) => panic!("fulfilled entries must hit"),
            })
        };
        thread::sleep(std::time::Duration::from_millis(30));
        guard.fulfill(b"late".to_vec());
        assert!(
            waiter.join().unwrap(),
            "the waiter blocked on the pending slot"
        );
    }
}
