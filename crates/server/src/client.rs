//! A small blocking client for the wire protocol — used by the
//! example, the integration tests, and the benchmark harness.

use crate::request::solve_request_line;
use gossip_sim::export::{Frame, Json, RunHeader, RunSummary, WireError};
use gossip_sim::metrics::RoundMetrics;
use lpt_gossip::spec::RunSpecKey;
use std::io::{self, BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpStream, ToSocketAddrs};
use std::time::Duration;

use crate::server::ServerStats;

/// One session's connection to a running server.
pub struct Client {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
    peer: SocketAddr,
}

/// A deterministic capped exponential backoff schedule for connects
/// and idempotent resubmits.
///
/// Attempt `i` (0-based) sleeps `min(base_delay · 2^i, max_delay)`
/// before retrying. Deliberately **jitter-free**: the repo's contract
/// is that everything observable is a pure function of its inputs, and
/// retry schedules in tests and drills should replay exactly. (Herd
/// effects that jitter mitigates don't arise at this scale — revisit
/// if fleets of clients ever share a server.)
///
/// Retrying a `solve` is always safe: replies are pure functions of
/// the spec and cached by the server, so a duplicate submission either
/// replays bytes or recomputes the identical stream.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Total attempts (the first try included). Minimum 1.
    pub attempts: u32,
    /// Backoff before the first retry.
    pub base_delay: Duration,
    /// Backoff ceiling.
    pub max_delay: Duration,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            attempts: 4,
            base_delay: Duration::from_millis(50),
            max_delay: Duration::from_secs(2),
        }
    }
}

impl RetryPolicy {
    /// The delay before retry number `retry` (0-based):
    /// `min(base_delay · 2^retry, max_delay)`.
    pub fn delay(&self, retry: u32) -> Duration {
        let factor = 1u32.checked_shl(retry).unwrap_or(u32::MAX);
        self.base_delay
            .checked_mul(factor)
            .unwrap_or(self.max_delay)
            .min(self.max_delay)
    }
}

/// A fully received solve reply, frame by frame.
#[derive(Clone, Debug)]
pub struct SolveReply {
    /// The reply exactly as received (newline-terminated frames).
    /// Byte-equal across repeats of the same spec.
    pub raw: Vec<u8>,
    /// The header frame (absent if the reply is an error).
    pub header: Option<RunHeader>,
    /// One round frame per simulated round.
    pub rounds: Vec<RoundMetrics>,
    /// The summary frame (absent if the reply is an error).
    pub summary: Option<RunSummary>,
    /// The error frame, when the run or its resolution failed.
    pub error: Option<WireError>,
}

fn bad_data(msg: impl Into<String>) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg.into())
}

impl Client {
    /// Connects a new session.
    pub fn connect(addr: impl ToSocketAddrs) -> io::Result<Client> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        let peer = stream.peer_addr()?;
        Ok(Client {
            reader: BufReader::new(stream.try_clone()?),
            writer: stream,
            peer,
        })
    }

    /// Connects a new session, retrying refused/failed connects on the
    /// policy's backoff schedule. Returns the last error once the
    /// attempts are exhausted.
    pub fn connect_with_retry(
        addr: impl ToSocketAddrs,
        policy: &RetryPolicy,
    ) -> io::Result<Client> {
        let mut last_err = None;
        for attempt in 0..policy.attempts.max(1) {
            if attempt > 0 {
                std::thread::sleep(policy.delay(attempt - 1));
            }
            match Client::connect(&addr) {
                Ok(client) => return Ok(client),
                Err(e) => last_err = Some(e),
            }
        }
        Err(last_err.unwrap_or_else(|| io::Error::other("no connect attempts made")))
    }

    /// Tears the session down and dials the same peer again.
    fn reconnect(&mut self) -> io::Result<()> {
        *self = Client::connect(self.peer)?;
        Ok(())
    }

    fn send_line(&mut self, line: &str) -> io::Result<()> {
        self.writer.write_all(line.as_bytes())?;
        self.writer.write_all(b"\n")
    }

    fn read_line(&mut self) -> io::Result<String> {
        let mut line = String::new();
        if self.reader.read_line(&mut line)? == 0 {
            return Err(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "server closed the session",
            ));
        }
        Ok(line)
    }

    /// Sends a raw request line and returns the next reply line —
    /// escape hatch for protocol tests.
    pub fn raw_line(&mut self, line: &str) -> io::Result<String> {
        self.send_line(line)?;
        self.read_line()
    }

    /// Blocks until the server pushes a line unprompted (e.g. the
    /// terminal `idle-timeout` error frame) and returns it.
    pub fn raw_wait_line(&mut self) -> io::Result<String> {
        self.read_line()
    }

    /// Submits a solve request for `key` and receives the complete
    /// reply stream (header, every round frame, and summary — or a
    /// single error frame).
    pub fn solve(&mut self, key: &RunSpecKey) -> io::Result<SolveReply> {
        self.send_line(&solve_request_line(key))?;
        let mut reply = SolveReply {
            raw: Vec::new(),
            header: None,
            rounds: Vec::new(),
            summary: None,
            error: None,
        };
        loop {
            let line = self.read_line()?;
            reply.raw.extend_from_slice(line.as_bytes());
            let frame = Frame::parse(line.trim_end())
                .map_err(|e| bad_data(format!("bad frame from server: {e}")))?;
            match frame {
                Frame::Header(h) => reply.header = Some(h),
                Frame::Round(r) => reply.rounds.push(r),
                Frame::Summary(s) => {
                    reply.summary = Some(s);
                    return Ok(reply);
                }
                Frame::Error(e) => {
                    reply.error = Some(e);
                    return Ok(reply);
                }
            }
        }
    }

    /// [`solve`](Client::solve) with deterministic retry. Transport
    /// errors (server restart, torn-down socket) and session-terminal
    /// frames (`shutting-down` 208, `idle-timeout` 211 — the server
    /// closes the socket right after sending them) trigger a
    /// reconnect to the same peer and a resubmit, backing off on the
    /// policy's schedule. Resubmitting is idempotent: replies are pure
    /// functions of the spec and server-cached, so a retry either
    /// replays the bytes or recomputes the identical stream. Non-
    /// terminal error frames (bad requests, driver errors, worker
    /// panics, solve timeouts) are returned as-is — they are answers,
    /// not transport failures.
    pub fn solve_with_retry(
        &mut self,
        key: &RunSpecKey,
        policy: &RetryPolicy,
    ) -> io::Result<SolveReply> {
        let mut last_err: Option<io::Error> = None;
        for attempt in 0..policy.attempts.max(1) {
            if attempt > 0 {
                std::thread::sleep(policy.delay(attempt - 1));
                if let Err(e) = self.reconnect() {
                    last_err = Some(e);
                    continue;
                }
            }
            match self.solve(key) {
                Ok(reply) => {
                    let terminal = reply
                        .error
                        .as_ref()
                        .is_some_and(|e| e.code == 208 || e.code == 211);
                    if !terminal {
                        return Ok(reply);
                    }
                    last_err = Some(io::Error::new(
                        io::ErrorKind::ConnectionReset,
                        "session closed by the server; retrying on a fresh one",
                    ));
                }
                Err(e) => last_err = Some(e),
            }
        }
        Err(last_err.unwrap_or_else(|| io::Error::other("no solve attempts made")))
    }

    /// Fetches the server's counter snapshot.
    pub fn stats(&mut self) -> io::Result<ServerStats> {
        let line = self.raw_line("{\"cmd\":\"stats\"}")?;
        let v = Json::parse(line.trim_end()).map_err(|e| bad_data(format!("bad stats: {e}")))?;
        if v.get("frame").and_then(Json::as_str) != Some("stats") {
            return Err(bad_data(format!("expected a stats frame, got: {line}")));
        }
        let field = |name: &str| {
            v.get(name)
                .and_then(Json::as_u64)
                .ok_or_else(|| bad_data(format!("stats frame is missing {name}")))
        };
        Ok(ServerStats {
            hits: field("hits")?,
            misses: field("misses")?,
            runs: field("runs")?,
            requests: field("requests")?,
            cache_entries: field("cache_entries")?,
            open_sessions: field("open_sessions")?,
            workers: field("workers")?,
            worker_panics: field("worker_panics")?,
            queue_depth: field("queue_depth")?,
            cache_bytes: field("cache_bytes")?,
        })
    }

    /// Fetches the server's full metrics snapshot as the raw `metrics`
    /// frame line (flat Prometheus-style fields; parse with
    /// [`Json`]). The frame tag is verified before returning.
    pub fn metrics_line(&mut self) -> io::Result<String> {
        let line = self.raw_line("{\"cmd\":\"metrics\"}")?;
        let v = Json::parse(line.trim_end()).map_err(|e| bad_data(format!("bad metrics: {e}")))?;
        if v.get("frame").and_then(Json::as_str) != Some("metrics") {
            return Err(bad_data(format!("expected a metrics frame, got: {line}")));
        }
        Ok(line.trim_end().to_string())
    }

    /// Asks the server to shut down gracefully; returns once the
    /// server acknowledges with its `bye` frame.
    pub fn shutdown(&mut self) -> io::Result<()> {
        let line = self.raw_line("{\"cmd\":\"shutdown\"}")?;
        let v = Json::parse(line.trim_end()).map_err(|e| bad_data(format!("bad bye: {e}")))?;
        if v.get("frame").and_then(Json::as_str) != Some("bye") {
            return Err(bad_data(format!("expected a bye frame, got: {line}")));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backoff_doubles_then_caps_deterministically() {
        let policy = RetryPolicy {
            attempts: 8,
            base_delay: Duration::from_millis(50),
            max_delay: Duration::from_millis(300),
        };
        let delays: Vec<u64> = (0..5).map(|i| policy.delay(i).as_millis() as u64).collect();
        assert_eq!(delays, [50, 100, 200, 300, 300]);
        // Huge retry counts must not overflow.
        assert_eq!(policy.delay(u32::MAX), Duration::from_millis(300));
    }
}
