//! A small blocking client for the wire protocol — used by the
//! example, the integration tests, and the benchmark harness.

use crate::request::solve_request_line;
use gossip_sim::export::{Frame, Json, RunHeader, RunSummary, WireError};
use gossip_sim::metrics::RoundMetrics;
use lpt_gossip::spec::RunSpecKey;
use std::io::{self, BufRead, BufReader, Write};
use std::net::{TcpStream, ToSocketAddrs};

use crate::server::ServerStats;

/// One session's connection to a running server.
pub struct Client {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

/// A fully received solve reply, frame by frame.
#[derive(Clone, Debug)]
pub struct SolveReply {
    /// The reply exactly as received (newline-terminated frames).
    /// Byte-equal across repeats of the same spec.
    pub raw: Vec<u8>,
    /// The header frame (absent if the reply is an error).
    pub header: Option<RunHeader>,
    /// One round frame per simulated round.
    pub rounds: Vec<RoundMetrics>,
    /// The summary frame (absent if the reply is an error).
    pub summary: Option<RunSummary>,
    /// The error frame, when the run or its resolution failed.
    pub error: Option<WireError>,
}

fn bad_data(msg: impl Into<String>) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg.into())
}

impl Client {
    /// Connects a new session.
    pub fn connect(addr: impl ToSocketAddrs) -> io::Result<Client> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        Ok(Client {
            reader: BufReader::new(stream.try_clone()?),
            writer: stream,
        })
    }

    fn send_line(&mut self, line: &str) -> io::Result<()> {
        self.writer.write_all(line.as_bytes())?;
        self.writer.write_all(b"\n")
    }

    fn read_line(&mut self) -> io::Result<String> {
        let mut line = String::new();
        if self.reader.read_line(&mut line)? == 0 {
            return Err(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "server closed the session",
            ));
        }
        Ok(line)
    }

    /// Sends a raw request line and returns the next reply line —
    /// escape hatch for protocol tests.
    pub fn raw_line(&mut self, line: &str) -> io::Result<String> {
        self.send_line(line)?;
        self.read_line()
    }

    /// Blocks until the server pushes a line unprompted (e.g. the
    /// terminal `idle-timeout` error frame) and returns it.
    pub fn raw_wait_line(&mut self) -> io::Result<String> {
        self.read_line()
    }

    /// Submits a solve request for `key` and receives the complete
    /// reply stream (header, every round frame, and summary — or a
    /// single error frame).
    pub fn solve(&mut self, key: &RunSpecKey) -> io::Result<SolveReply> {
        self.send_line(&solve_request_line(key))?;
        let mut reply = SolveReply {
            raw: Vec::new(),
            header: None,
            rounds: Vec::new(),
            summary: None,
            error: None,
        };
        loop {
            let line = self.read_line()?;
            reply.raw.extend_from_slice(line.as_bytes());
            let frame = Frame::parse(line.trim_end())
                .map_err(|e| bad_data(format!("bad frame from server: {e}")))?;
            match frame {
                Frame::Header(h) => reply.header = Some(h),
                Frame::Round(r) => reply.rounds.push(r),
                Frame::Summary(s) => {
                    reply.summary = Some(s);
                    return Ok(reply);
                }
                Frame::Error(e) => {
                    reply.error = Some(e);
                    return Ok(reply);
                }
            }
        }
    }

    /// Fetches the server's counter snapshot.
    pub fn stats(&mut self) -> io::Result<ServerStats> {
        let line = self.raw_line("{\"cmd\":\"stats\"}")?;
        let v = Json::parse(line.trim_end()).map_err(|e| bad_data(format!("bad stats: {e}")))?;
        if v.get("frame").and_then(Json::as_str) != Some("stats") {
            return Err(bad_data(format!("expected a stats frame, got: {line}")));
        }
        let field = |name: &str| {
            v.get(name)
                .and_then(Json::as_u64)
                .ok_or_else(|| bad_data(format!("stats frame is missing {name}")))
        };
        Ok(ServerStats {
            hits: field("hits")?,
            misses: field("misses")?,
            runs: field("runs")?,
            requests: field("requests")?,
            cache_entries: field("cache_entries")?,
            open_sessions: field("open_sessions")?,
        })
    }

    /// Asks the server to shut down gracefully; returns once the
    /// server acknowledges with its `bye` frame.
    pub fn shutdown(&mut self) -> io::Result<()> {
        let line = self.raw_line("{\"cmd\":\"shutdown\"}")?;
        let v = Json::parse(line.trim_end()).map_err(|e| bad_data(format!("bad bye: {e}")))?;
        if v.get("frame").and_then(Json::as_str) != Some("bye") {
            return Err(bad_data(format!("expected a bye frame, got: {line}")));
        }
        Ok(())
    }
}
