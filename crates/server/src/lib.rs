//! # lpt-server — gossip-as-a-service
//!
//! A session-oriented TCP server exposing the [`lpt_gossip`] driver
//! over a newline-delimited JSON wire protocol (the
//! [`gossip_sim::export`] frame format). Clients open a session, send
//! `solve` requests naming a workload preset, an algorithm, fault and
//! topology scenarios, and an RNG schedule, and receive the run
//! streamed back as `header · round* · summary` frames.
//!
//! The architecture leans on one fact: **runs are deterministic**.
//! A run is a pure function of its canonical [`RunSpecKey`]
//! (`lpt_gossip::spec`), so the server can cache *rendered reply
//! bytes* keyed by the spec and replay them for repeat requests —
//! byte-identical to the cold run, with no driver execution. Misses
//! are single-flight (concurrent identical requests coalesce onto one
//! run) and execution is multiplexed over a bounded worker pool whose
//! full queue pushes back on submitting sessions.
//!
//! The service is crash-safe: worker jobs run under `catch_unwind`,
//! so a panicking run answers its session with a typed
//! `worker-panicked` frame (code 212) while the worker survives and
//! the pending cache key is released. An optional per-request solve
//! deadline ([`ServerConfig::solve_timeout`], `--solve-timeout-ms`)
//! cancels overrunning runs cooperatively at a round boundary and
//! answers with a typed `solve-timeout` frame (code 213). The
//! [`Client`] pairs this with a deterministic capped-backoff
//! [`RetryPolicy`] for connects and idempotent resubmits.
//!
//! An observability plane rides alongside without perturbing any of
//! the above: the `metrics` command snapshots per-outcome latency
//! histograms, queue and cache gauges, and per-engine run counts
//! ([`ServerObs`]), and a `"trace": true` solve field appends a
//! per-request `trace` frame after the reply stream. Wall-clock
//! timing is observational only — it never enters the cache key or
//! the cached reply bytes.
//!
//! ## Quick start
//!
//! ```no_run
//! use lpt_server::{Client, RunSpecKey, Server, ServerConfig};
//!
//! let server = Server::bind("127.0.0.1:0", ServerConfig::default())?;
//! let mut client = Client::connect(server.addr())?;
//! let reply = client.solve(&RunSpecKey::new("duo-disk", 1024, 256, 42))?;
//! println!("{} rounds", reply.summary.unwrap().rounds);
//! client.shutdown()?;
//! server.wait();
//! # Ok::<(), std::io::Error>(())
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod cache;
pub mod client;
pub mod error;
pub mod metrics;
pub mod pool;
pub mod registry;
pub mod request;
pub mod server;

pub use cache::{Lookup, PendingGuard, ReportCache};
pub use client::{Client, RetryPolicy, SolveReply};
pub use error::ServerError;
pub use metrics::{Outcome, ServerObs};
pub use pool::WorkerPool;
pub use registry::{
    execute, execute_with_cancel, execute_with_options, ExecOutcome, CHAOS_PANIC_WORKLOAD,
    WORKLOADS,
};
pub use request::{parse_request, solve_request_line, Request};
pub use server::{Server, ServerConfig, ServerHandle, ServerStats, MAX_REQUEST_LINE};

// Re-exported so client code can build specs without naming the core
// crate.
pub use lpt_gossip::spec::{AlgorithmSpec, F64Key, RunSpecKey, SpecError, StopSpec};
