//! Resolving a [`RunSpecKey`] to a concrete [`Driver`] run and
//! rendering the run as reply bytes.
//!
//! This is the only module that knows problem families: MED workloads
//! (the four `lpt_workloads::med` dataset families) run through
//! [`lpt_problems::Med`], the `planted-hs` workload through the
//! hitting-set driver on a planted `SetSystem`. Fault scenarios and
//! topologies resolve by preset name against
//! [`lpt_workloads::scenarios`].
//!
//! [`execute`] is **total**: resolution failures and driver errors
//! render as a single typed error frame, successful runs as
//! `header · round* · summary`. Either way the bytes are a pure
//! function of the key (runs are deterministic, rendering is
//! field-ordered), so the whole reply — errors included — is exactly
//! cacheable.

use crate::error::ServerError;
use gossip_sim::export::{Frame, RunHeader, RunSummary, WireError};
use gossip_sim::ObsSummary;
use lpt_gossip::driver::{Algorithm, Driver, RunReport, StopCondition};
use lpt_gossip::spec::{AlgorithmSpec, RunSpecKey, StopSpec};
use lpt_problems::Med;
use lpt_workloads::med::MedDataset;
use lpt_workloads::sets::planted_hitting_set;
use lpt_workloads::{Scenario, TopologyPreset};
use std::sync::atomic::AtomicBool;
use std::sync::Arc;

/// The workload presets a server resolves on the wire: the four MED
/// dataset families plus a planted hitting-set instance
/// (`planted_hitting_set(elements, max(elements/2, 4), 3, 6, seed)`).
pub const WORKLOADS: [&str; 5] = ["duo-disk", "triple-disk", "triangle", "hull", "planted-hs"];

/// Diagnostic workload that panics on execution — deliberately absent
/// from [`WORKLOADS`]. Chaos drills request it to prove the worker
/// pool contains panics (typed `worker-panicked` frame, full worker
/// width afterwards, pending key released). Never cached: the panic
/// escapes before any bytes are produced.
pub const CHAOS_PANIC_WORKLOAD: &str = "chaos-panic";

/// Planted hitting-set size used by the `planted-hs` workload.
pub const PLANTED_D: usize = 3;
/// Per-set size used by the `planted-hs` workload.
pub const PLANTED_SET_SIZE: usize = 6;

/// What one spec execution produced.
pub struct ExecOutcome {
    /// The complete reply byte stream (frames, newline-terminated).
    pub bytes: Vec<u8>,
    /// Whether a driver actually ran (false when resolution failed
    /// before reaching the driver). This feeds the server's run
    /// counter, which the smoke test uses to prove cache hits do not
    /// re-execute.
    pub ran_driver: bool,
    /// The run's recorder summary, when the execution was asked to
    /// record phases ([`execute_with_options`]) and the driver produced
    /// a report. Deliberately *outside* `bytes`: wall times are not a
    /// function of the spec, so they never enter the cacheable reply —
    /// the server renders them only into per-request `trace` frames.
    pub obs: Option<ObsSummary>,
}

fn error_reply(err: WireError) -> ExecOutcome {
    ExecOutcome {
        bytes: frame_bytes(&[Frame::Error(err)]),
        ran_driver: false,
        obs: None,
    }
}

fn frame_bytes(frames: &[Frame]) -> Vec<u8> {
    let mut out = Vec::new();
    for f in frames {
        out.extend_from_slice(f.to_line().as_bytes());
        out.push(b'\n');
    }
    out
}

fn header_for(key: &RunSpecKey) -> RunHeader {
    RunHeader {
        spec: key.canonical(),
        algorithm: key.algorithm.canonical(),
        n: key.n,
        seed: key.seed,
        fault: key.fault.clone(),
        topology: key.topology.clone(),
        schedule: key.schedule.name().to_string(),
        // Empty for the default engine, so historical header frames
        // stay byte-identical.
        engine: if key.engine.is_default() {
            String::new()
        } else {
            key.engine.name()
        },
    }
}

/// Renders a finished report as the reply stream. `consensus` is the
/// problem-specific rendering of the report's agreed output.
fn render_report<O>(key: &RunSpecKey, report: &RunReport<O>, consensus: Option<String>) -> Vec<u8> {
    let summary = RunSummary {
        rounds: report.rounds,
        all_halted: report.all_halted,
        stop_cause: report.stop_cause.name().to_string(),
        first_candidate_round: report.first_candidate_round,
        consensus,
        ..RunSummary::from_metrics(&report.metrics)
    };
    let mut frames = Vec::with_capacity(report.metrics.rounds.len() + 2);
    frames.push(Frame::Header(header_for(key)));
    frames.extend(report.metrics.rounds.iter().map(|r| Frame::Round(*r)));
    frames.push(Frame::Summary(summary));
    frame_bytes(&frames)
}

fn wire_algorithm(spec: AlgorithmSpec) -> Algorithm {
    match spec {
        AlgorithmSpec::LowLoad => Algorithm::low_load(),
        AlgorithmSpec::HighLoad => Algorithm::high_load(),
        AlgorithmSpec::Accelerated(eps) => Algorithm::accelerated(eps.value()),
        AlgorithmSpec::Hypercube => Algorithm::Hypercube,
        AlgorithmSpec::HittingSet { d } => Algorithm::hitting_set(d as usize),
    }
}

fn wire_stop<T>(spec: StopSpec) -> StopCondition<T> {
    match spec {
        StopSpec::FullTermination => StopCondition::FullTermination,
        StopSpec::RoundBudget(r) => StopCondition::RoundBudget(r),
    }
}

/// Runs the spec and renders the full reply byte stream. Total: every
/// failure mode becomes a typed error frame.
pub fn execute(key: &RunSpecKey) -> ExecOutcome {
    execute_with_options(key, None, false)
}

/// [`execute`] with a cooperative cancellation flag threaded into the
/// driver ([`Driver::cancel_flag`]): raising the flag makes the run
/// stop at the next round boundary with a typed `cancelled` error
/// frame (`DriverError::Cancelled`, code 111). The server's
/// per-request solve deadline raises it on timeout. A never-raised
/// flag is byte-invisible — the reply is identical to [`execute`]'s.
pub fn execute_with_cancel(key: &RunSpecKey, cancel: Option<Arc<AtomicBool>>) -> ExecOutcome {
    execute_with_options(key, cancel, false)
}

/// [`execute_with_cancel`] with an opt-in phase recorder
/// ([`Driver::record_phases`]): when `record_phases` is set the
/// outcome's [`obs`](ExecOutcome::obs) carries the run's
/// [`ObsSummary`]. Recording is observational by the engine's
/// contract, so `bytes` are byte-identical whatever the flag says —
/// the unit test below pins that.
pub fn execute_with_options(
    key: &RunSpecKey,
    cancel: Option<Arc<AtomicBool>>,
    record_phases: bool,
) -> ExecOutcome {
    if key.workload == CHAOS_PANIC_WORKLOAD {
        // Not an error reply: the whole point is an uncontrolled
        // panic for the pool's catch_unwind boundary to contain.
        panic!("chaos-panic workload executed: injected failure for crash-safety drills");
    }
    let scenario = match Scenario::parse(&key.fault) {
        Some(s) => s,
        None => {
            return error_reply(WireError::from_error(&ServerError::UnknownScenario(
                key.fault.clone(),
            )))
        }
    };
    let topology = match TopologyPreset::parse(&key.topology) {
        Some(t) => t,
        None => {
            return error_reply(WireError::from_error(&ServerError::UnknownTopology(
                key.topology.clone(),
            )))
        }
    };
    if key.workload == "planted-hs" {
        return execute_planted_hs(key, scenario, topology, cancel, record_phases);
    }
    match MedDataset::parse(&key.workload) {
        Some(ds) => execute_med(key, ds, scenario, topology, cancel, record_phases),
        None => error_reply(WireError::from_error(&ServerError::UnknownWorkload(
            key.workload.clone(),
        ))),
    }
}

fn execute_med(
    key: &RunSpecKey,
    dataset: MedDataset,
    scenario: Scenario,
    topology: TopologyPreset,
    cancel: Option<Arc<AtomicBool>>,
    record_phases: bool,
) -> ExecOutcome {
    if key.elements == 0 {
        return error_reply(WireError::from_error(&ServerError::BadField {
            field: "elements",
            detail: "MED workloads need at least one point".to_string(),
        }));
    }
    let points = dataset.generate(key.elements as usize, key.seed);
    let mut driver = Driver::new(Med)
        .nodes(key.n as usize)
        .seed(key.seed)
        .algorithm(wire_algorithm(key.algorithm))
        .stop(wire_stop(key.stop))
        .max_rounds(key.max_rounds)
        .fault_model(scenario.fault_model())
        .topology(topology.topology())
        .rng_schedule(key.schedule)
        .engine(key.engine.clone())
        .record_phases(record_phases);
    if let Some(flag) = cancel {
        driver = driver.cancel_flag(flag);
    }
    if let Some(f) = key.doubling {
        driver = driver.with_doubling_search(f.value());
    }
    match driver.run(&points) {
        Ok(report) => {
            // `{:?}` prints the shortest round-tripping decimal, so the
            // rendering is as deterministic as the bits.
            let consensus = report
                .consensus_output()
                .map(|b| format!("med:r2={:?}", b.value.r2));
            ExecOutcome {
                bytes: render_report(key, &report, consensus),
                ran_driver: true,
                obs: report.obs,
            }
        }
        Err(e) => ExecOutcome {
            bytes: frame_bytes(&[Frame::Error(WireError::from_error(&e))]),
            ran_driver: true,
            obs: None,
        },
    }
}

fn execute_planted_hs(
    key: &RunSpecKey,
    scenario: Scenario,
    topology: TopologyPreset,
    cancel: Option<Arc<AtomicBool>>,
    record_phases: bool,
) -> ExecOutcome {
    // The generator needs d ≤ elements and draws set fillers without
    // replacement, so tiny ground sets are rejected up front.
    if (key.elements as usize) < PLANTED_SET_SIZE {
        return error_reply(WireError::from_error(&ServerError::BadField {
            field: "elements",
            detail: format!("planted-hs needs at least {PLANTED_SET_SIZE} elements"),
        }));
    }
    let n_elements = key.elements as usize;
    let n_sets = (n_elements / 2).max(4);
    let (sys, _planted) =
        planted_hitting_set(n_elements, n_sets, PLANTED_D, PLANTED_SET_SIZE, key.seed);
    let mut driver = Driver::new(Arc::new(sys))
        .nodes(key.n as usize)
        .seed(key.seed)
        .algorithm(wire_algorithm(key.algorithm))
        .stop(wire_stop(key.stop))
        .max_rounds(key.max_rounds)
        .fault_model(scenario.fault_model())
        .topology(topology.topology())
        .rng_schedule(key.schedule)
        .engine(key.engine.clone())
        .record_phases(record_phases);
    if let Some(flag) = cancel {
        driver = driver.cancel_flag(flag);
    }
    if let Some(f) = key.doubling {
        driver = driver.with_doubling_search(f.value());
    }
    match driver.run_ground() {
        Ok(report) => {
            // Hitting-set nodes may halt on different (all valid) sets;
            // render the deterministic best output: smallest, then
            // lexicographically first.
            let consensus = report.best_output().map(|hs| {
                let ids: Vec<String> = hs.iter().map(u32::to_string).collect();
                format!("hs:{}:[{}]", hs.len(), ids.join(","))
            });
            ExecOutcome {
                bytes: render_report(key, &report, consensus),
                ran_driver: true,
                obs: report.obs,
            }
        }
        Err(e) => ExecOutcome {
            bytes: frame_bytes(&[Frame::Error(WireError::from_error(&e))]),
            ran_driver: true,
            obs: None,
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gossip_sim::export::parse_frames;

    fn frames_of(out: &ExecOutcome) -> Vec<Frame> {
        parse_frames(std::str::from_utf8(&out.bytes).unwrap()).unwrap()
    }

    #[test]
    fn med_run_renders_header_rounds_summary() {
        let key = RunSpecKey::new("duo-disk", 128, 32, 1);
        let out = execute(&key);
        assert!(out.ran_driver);
        let frames = frames_of(&out);
        let Frame::Header(h) = &frames[0] else {
            panic!("no header")
        };
        assert_eq!(h.spec, key.canonical());
        assert_eq!(h.topology, "complete");
        let Frame::Summary(s) = frames.last().unwrap() else {
            panic!("no summary")
        };
        assert!(s.all_halted);
        assert_eq!(s.stop_cause, "all-halted");
        assert_eq!(frames.len() as u64, s.rounds + 2, "one frame per round");
        assert!(s.consensus.as_deref().unwrap().starts_with("med:r2="));
        assert!(s.total_pulls + s.total_pushes > 0);
    }

    #[test]
    fn identical_keys_render_identical_bytes() {
        let mut key = RunSpecKey::new("triple-disk", 96, 24, 9);
        key.fault = "wan".to_string();
        key.topology = "rr8".to_string();
        let a = execute(&key);
        let b = execute(&key);
        assert!(!a.bytes.is_empty());
        assert_eq!(a.bytes, b.bytes, "runs must be byte-deterministic");
    }

    #[test]
    fn planted_hs_solves_and_renders_best_set() {
        let mut key = RunSpecKey::new("planted-hs", 64, 16, 3);
        key.algorithm = AlgorithmSpec::HittingSet {
            d: PLANTED_D as u64,
        };
        let out = execute(&key);
        assert!(out.ran_driver);
        let frames = frames_of(&out);
        let Frame::Summary(s) = frames.last().unwrap() else {
            panic!("no summary")
        };
        assert!(s.consensus.as_deref().unwrap().starts_with("hs:"));
    }

    /// The engine on the key must reach the driver, not just the cache
    /// key and header: a multi-tick link plan produces a genuinely
    /// different trajectory than round-sync, so a spec requesting it
    /// must render a different round count (a run that merely relabels
    /// the round-sync trajectory would pass every byte-determinism
    /// test while being wrong).
    #[test]
    fn requested_engine_drives_the_run() {
        use lpt_gossip::Engine;
        let sync_key = RunSpecKey::new("duo-disk", 128, 32, 1);
        let mut event_key = sync_key.clone();
        event_key.engine = Engine::parse("event-const-3").unwrap();
        let sync = execute(&sync_key);
        let event = execute(&event_key);
        let (sf, ef) = (frames_of(&sync), frames_of(&event));
        let Frame::Header(h) = &ef[0] else {
            panic!("no header")
        };
        assert_eq!(h.engine, "event-const-3", "header carries the engine");
        let (Frame::Summary(ss), Frame::Summary(es)) = (sf.last().unwrap(), ef.last().unwrap())
        else {
            panic!("no summaries")
        };
        assert!(
            es.rounds > ss.rounds,
            "latency-3 links must stretch the run over more rounds than \
             round-sync ({} vs {}); equal counts mean the engine never \
             reached the driver",
            es.rounds,
            ss.rounds
        );
        assert!(es.all_halted, "the event run must still converge");
    }

    #[test]
    fn resolution_failures_are_typed_error_frames() {
        let cases = [
            ("nope", "perfect", "complete", 204),
            ("duo-disk", "cosmic-rays", "complete", 205),
            ("duo-disk", "perfect", "moebius", 206),
        ];
        for (workload, fault, topology, code) in cases {
            let mut key = RunSpecKey::new(workload, 64, 16, 1);
            key.fault = fault.to_string();
            key.topology = topology.to_string();
            let out = execute(&key);
            assert!(!out.ran_driver);
            let frames = frames_of(&out);
            assert_eq!(frames.len(), 1);
            let Frame::Error(e) = &frames[0] else {
                panic!("expected error frame")
            };
            assert_eq!(e.code, code, "{workload}/{fault}/{topology}");
        }
    }

    #[test]
    fn recorded_execution_is_byte_identical_and_carries_obs() {
        let key = RunSpecKey::new("duo-disk", 96, 24, 4);
        let plain = execute(&key);
        let recorded = execute_with_options(&key, None, true);
        assert_eq!(
            plain.bytes, recorded.bytes,
            "phase recording must not perturb the reply bytes"
        );
        assert!(plain.obs.is_none(), "recording is opt-in");
        let obs = recorded.obs.expect("recorded run carries a summary");
        assert!(obs.phase_calls.iter().any(|&c| c > 0));
    }

    #[test]
    fn unraised_cancel_flag_is_byte_invisible() {
        let mut key = RunSpecKey::new("duo-disk", 96, 24, 5);
        key.fault = "byzantine".to_string();
        let plain = execute(&key);
        let flagged = execute_with_cancel(&key, Some(Arc::new(AtomicBool::new(false))));
        assert_eq!(plain.bytes, flagged.bytes);
    }

    #[test]
    fn raised_cancel_flag_renders_the_typed_cancelled_frame() {
        let key = RunSpecKey::new("duo-disk", 128, 32, 1);
        let out = execute_with_cancel(&key, Some(Arc::new(AtomicBool::new(true))));
        assert!(out.ran_driver);
        let frames = frames_of(&out);
        assert_eq!(frames.len(), 1);
        let Frame::Error(e) = &frames[0] else {
            panic!("expected error frame")
        };
        assert_eq!(e.code, 111);
        assert_eq!(e.kind, "cancelled");
    }

    #[test]
    fn driver_errors_pass_through_with_1xx_codes() {
        // Hitting-set algorithm on an LP-type workload.
        let mut key = RunSpecKey::new("duo-disk", 64, 16, 1);
        key.algorithm = AlgorithmSpec::HittingSet { d: 2 };
        let out = execute(&key);
        assert!(out.ran_driver);
        let frames = frames_of(&out);
        let Frame::Error(e) = &frames[0] else {
            panic!("expected error frame")
        };
        assert_eq!(e.code, 102);
        assert_eq!(e.kind, "unsupported-algorithm");
    }
}
