//! A bounded worker pool over `std::sync::mpsc::sync_channel`.
//!
//! The channel's capacity *is* the backpressure queue: when all
//! workers are busy and the queue is full, [`WorkerPool::execute`]
//! blocks the submitting session until a slot frees up, which in turn
//! slows the client feeding that session — demand propagates to the
//! socket instead of growing an unbounded queue.
//!
//! Per-run parallelism composes with cross-run concurrency: each
//! worker can own a private `engine_threads`-wide rayon pool,
//! installed for everything the worker runs, so a job's round engine
//! fans its phases out across that worker's pool while other workers
//! execute other jobs. Replies stay byte-identical either way — the
//! engine's seq/par byte-identity contract is what makes threading a
//! pure capacity knob here.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc::{sync_channel, Receiver, SyncSender};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;

type Job = Box<dyn FnOnce() + Send + 'static>;

/// A fixed-size pool of `std::thread` workers draining a bounded
/// job queue.
///
/// Workers are crash-safe: each job runs under
/// [`catch_unwind`], so a panicking job is counted (see
/// [`panics`](WorkerPool::panics)) and discarded while the worker
/// thread survives to drain the rest of the queue. The pool therefore
/// always retains its full configured width — no respawn is needed
/// because no worker ever dies to a job panic.
pub struct WorkerPool {
    sender: Mutex<Option<SyncSender<Job>>>,
    workers: Mutex<Vec<JoinHandle<()>>>,
    width: usize,
    panics: Arc<AtomicU64>,
}

impl WorkerPool {
    /// Spawns `workers` threads (minimum 1) sharing a queue of
    /// `queue_capacity` pending jobs (minimum 1). When
    /// `engine_threads > 1`, each worker builds and installs its own
    /// rayon pool of that width before draining jobs, so every solve
    /// run it executes steps nodes across `engine_threads` threads.
    pub fn new(workers: usize, queue_capacity: usize, engine_threads: usize) -> WorkerPool {
        let (tx, rx) = sync_channel::<Job>(queue_capacity.max(1));
        let rx = Arc::new(Mutex::new(rx));
        let panics = Arc::new(AtomicU64::new(0));
        let width = workers.max(1);
        let handles = (0..width)
            .map(|i| {
                let rx = rx.clone();
                let panics = panics.clone();
                std::thread::Builder::new()
                    .name(format!("lpt-worker-{i}"))
                    .spawn(move || {
                        if engine_threads > 1 {
                            let pool = rayon::ThreadPoolBuilder::new()
                                .num_threads(engine_threads)
                                .build()
                                .expect("build engine thread pool");
                            pool.install(|| worker_loop(&rx, &panics));
                        } else {
                            worker_loop(&rx, &panics);
                        }
                    })
                    .expect("spawn worker thread")
            })
            .collect();
        WorkerPool {
            sender: Mutex::new(Some(tx)),
            workers: Mutex::new(handles),
            width,
            panics,
        }
    }

    /// The configured worker width. Because job panics are caught at
    /// the job boundary, this is also the number of live workers at
    /// all times before [`shutdown`](WorkerPool::shutdown).
    pub fn width(&self) -> usize {
        self.width
    }

    /// Number of jobs that panicked (and were contained) so far.
    pub fn panics(&self) -> u64 {
        self.panics.load(Ordering::Relaxed)
    }

    /// Number of worker threads still running (not yet exited). Always
    /// equals [`width`](WorkerPool::width) while the pool is live —
    /// the crash-safety invariant the chaos tests assert.
    pub fn live_workers(&self) -> usize {
        self.workers
            .lock()
            .unwrap()
            .iter()
            .filter(|h| !h.is_finished())
            .count()
    }

    /// Submits a job, blocking while the queue is full. Returns
    /// `false` (job not run) if the pool has shut down.
    pub fn execute(&self, job: impl FnOnce() + Send + 'static) -> bool {
        // Clone the sender out of the lock so a full queue blocks only
        // this caller, not everyone else touching the pool.
        let sender = match self.sender.lock().unwrap().as_ref() {
            Some(tx) => tx.clone(),
            None => return false,
        };
        sender.send(Box::new(job)).is_ok()
    }

    /// Stops accepting jobs, drains the queue, and joins all workers.
    /// Idempotent.
    pub fn shutdown(&self) {
        drop(self.sender.lock().unwrap().take());
        let handles: Vec<_> = self.workers.lock().unwrap().drain(..).collect();
        for h in handles {
            let _ = h.join();
        }
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn worker_loop(rx: &Mutex<Receiver<Job>>, panics: &AtomicU64) {
    loop {
        // Hold the lock only while *receiving*, never while running a
        // job, so workers drain the queue concurrently.
        let job = match rx.lock().unwrap().recv() {
            Ok(job) => job,
            Err(_) => return, // all senders dropped: shutdown
        };
        // Contain job panics: the job is lost (its submitter notices
        // via its dropped reply channel) but the worker lives on.
        if catch_unwind(AssertUnwindSafe(job)).is_err() {
            panics.fetch_add(1, Ordering::Relaxed);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::mpsc::channel;

    #[test]
    fn runs_jobs_concurrently_and_drains_on_shutdown() {
        let pool = WorkerPool::new(4, 8, 1);
        let counter = Arc::new(AtomicUsize::new(0));
        for _ in 0..32 {
            let counter = counter.clone();
            assert!(pool.execute(move || {
                counter.fetch_add(1, Ordering::Relaxed);
            }));
        }
        pool.shutdown();
        assert_eq!(counter.load(Ordering::Relaxed), 32);
        assert!(!pool.execute(|| {}), "pool rejects jobs after shutdown");
    }

    #[test]
    fn engine_threads_install_a_per_worker_rayon_pool() {
        // Two workers × three engine threads: every job must observe a
        // 3-wide ambient pool, and concurrent jobs on different
        // workers must each see their own.
        let pool = WorkerPool::new(2, 8, 3);
        let (tx, rx) = channel();
        for _ in 0..8 {
            let tx = tx.clone();
            assert!(pool.execute(move || {
                tx.send(rayon::current_num_threads()).unwrap();
            }));
        }
        pool.shutdown();
        let widths: Vec<usize> = rx.try_iter().collect();
        assert_eq!(widths.len(), 8);
        assert!(
            widths.iter().all(|&w| w == 3),
            "every job should run under the worker's 3-wide engine pool, got {widths:?}"
        );
    }

    #[test]
    fn panicking_jobs_are_contained_and_counted() {
        let pool = WorkerPool::new(2, 8, 1);
        let survived = Arc::new(AtomicUsize::new(0));
        for i in 0..8 {
            let survived = survived.clone();
            assert!(pool.execute(move || {
                if i % 2 == 0 {
                    panic!("injected job panic {i}");
                }
                survived.fetch_add(1, Ordering::Relaxed);
            }));
        }
        // Queue order guarantees: by the time the non-panicking jobs
        // all ran, the panicking ones interleaved with them were
        // caught without killing either worker.
        while survived.load(Ordering::Relaxed) < 4 {
            std::thread::sleep(std::time::Duration::from_millis(5));
        }
        assert_eq!(pool.live_workers(), 2, "panics must not kill workers");
        assert_eq!(pool.width(), 2);
        pool.shutdown();
        assert_eq!(pool.panics(), 4);
        assert_eq!(survived.load(Ordering::Relaxed), 4);
    }

    #[test]
    fn full_queue_applies_backpressure() {
        let pool = WorkerPool::new(1, 1, 1);
        let (gate_tx, gate_rx) = channel::<()>();
        let gate_rx = Arc::new(Mutex::new(gate_rx));
        let started = Arc::new(AtomicUsize::new(0));
        // Job 1 occupies the worker until gated; job 2 fills the queue.
        for _ in 0..2 {
            let gate = gate_rx.clone();
            let started = started.clone();
            pool.execute(move || {
                started.fetch_add(1, Ordering::Relaxed);
                let _ = gate.lock().unwrap().recv();
            });
        }
        // Job 3 must block in execute() until a slot frees.
        let pool = Arc::new(pool);
        let submitter = {
            let pool = pool.clone();
            let started = started.clone();
            std::thread::spawn(move || {
                pool.execute(move || {
                    started.fetch_add(1, Ordering::Relaxed);
                })
            })
        };
        std::thread::sleep(std::time::Duration::from_millis(50));
        assert!(!submitter.is_finished(), "execute() should be blocked");
        gate_tx.send(()).unwrap();
        gate_tx.send(()).unwrap();
        assert!(submitter.join().unwrap());
        pool.shutdown();
        assert_eq!(started.load(Ordering::Relaxed), 3);
    }
}
