//! The TCP server: accept loop, session protocol, and graceful
//! shutdown.
//!
//! ## Session lifecycle
//!
//! Each accepted connection gets its own session thread. A session
//! reads newline-delimited JSON requests and answers each one with
//! one or more JSONL frames:
//!
//! - `solve` → either a single `error` frame, or
//!   `header · round* · summary` — streamed from the cache on a hit,
//!   computed on a worker thread on a miss. Replies for equal specs
//!   are byte-identical by construction.
//! - `stats` → one `stats` frame with the server counters.
//! - `metrics` → one `metrics` frame: the full observability snapshot
//!   (latency histograms split by outcome, queue and cache gauges,
//!   per-engine run counts) as flat Prometheus-style fields.
//! - `shutdown` → one `bye` frame, then the whole server drains and
//!   exits.
//!
//! A solve request carrying `"trace": true` additionally gets one
//! `trace` frame *after* its reply stream — the phase wall-clock
//! breakdown of that specific request. The trace flag is not part of
//! the cache key and the trace frame is never cached, so the reply
//! frames proper stay byte-identical to an untraced request.
//!
//! Malformed requests get an `error` frame and the session *stays
//! open*; oversized lines and idle timeouts get a terminal `error`
//! frame and a close. Sockets use a short read timeout as a tick so
//! sessions notice server shutdown and idle expiry promptly.
//!
//! ## Crash safety
//!
//! Worker jobs run under `catch_unwind`: a panicking run becomes a
//! typed `worker-panicked` error frame (code 212) on the requesting
//! session, the worker thread survives at full pool width, and the
//! pending cache slot is released so a resubmit re-executes instead of
//! wedging. With [`ServerConfig::solve_timeout`] set, runs that
//! outlive the deadline are cooperatively cancelled at a round
//! boundary (the driver's cancel flag) and answered with a typed
//! `solve-timeout` frame (code 213); timed-out and panicked runs are
//! never cached, so only pure-function-of-the-spec bytes ever enter
//! the replay path.

use crate::cache::{Lookup, ReportCache};
use crate::error::ServerError;
use crate::metrics::{Outcome, ServerObs};
use crate::pool::WorkerPool;
use crate::registry;
use crate::request::{parse_request, Request};
use gossip_sim::export::{metrics_line, trace_line, Frame, MetricsSnapshot, ObjBuilder, WireError};
use gossip_sim::ObsSummary;
use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc::RecvTimeoutError;
use std::sync::{mpsc, Arc};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Largest accepted request line, in bytes.
pub const MAX_REQUEST_LINE: usize = 64 * 1024;

/// How often blocked reads wake up to check shutdown and idle expiry.
const READ_TICK: Duration = Duration::from_millis(200);

/// Tunables for [`Server::bind`].
#[derive(Clone, Debug)]
pub struct ServerConfig {
    /// Worker threads executing solve runs.
    pub workers: usize,
    /// Pending solve jobs admitted before submitters block
    /// (backpressure).
    pub queue_capacity: usize,
    /// Maximum cached reply streams (LRU beyond this).
    pub cache_capacity: usize,
    /// Sessions idle longer than this are closed with an
    /// `idle-timeout` error frame.
    pub idle_timeout: Duration,
    /// Rayon threads per worker for the round engine's parallel node
    /// stepping (default 1 = sequential engine). Each worker owns a
    /// private pool of this width, so total engine threads scale as
    /// `workers × engine_threads`; replies are byte-identical at any
    /// setting by the engine's seq/par determinism contract.
    pub engine_threads: usize,
    /// Per-request solve deadline. A run still executing when it
    /// elapses is cooperatively cancelled at its next round boundary
    /// and the request answered with a `solve-timeout` error frame
    /// (code 213). `None` (the default) lets runs take as long as
    /// they need.
    pub solve_timeout: Option<Duration>,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            workers: 4,
            queue_capacity: 64,
            cache_capacity: 128,
            idle_timeout: Duration::from_secs(30),
            engine_threads: 1,
            solve_timeout: None,
        }
    }
}

/// Counter snapshot reported by the `stats` command.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ServerStats {
    /// Cache hits (replies replayed without running a driver).
    pub hits: u64,
    /// Cache misses (each caused exactly one computation).
    pub misses: u64,
    /// Driver executions performed. `hits` never move this counter —
    /// the gap between `requests` and `runs` is the cache working.
    pub runs: u64,
    /// Request lines accepted (parsed or not).
    pub requests: u64,
    /// Ready entries currently cached.
    pub cache_entries: u64,
    /// Currently connected sessions.
    pub open_sessions: u64,
    /// Live worker threads. Stays at the configured width even after
    /// panics: jobs are unwind-contained, workers never die to them.
    pub workers: u64,
    /// Worker jobs that panicked (each answered with a typed
    /// `worker-panicked` frame; the panic never killed a worker).
    pub worker_panics: u64,
    /// Solve jobs currently queued or executing.
    pub queue_depth: u64,
    /// Total bytes held by cached reply streams.
    pub cache_bytes: u64,
}

struct Shared {
    cache: Arc<ReportCache>,
    pool: WorkerPool,
    obs: ServerObs,
    shutdown: AtomicBool,
    runs: AtomicU64,
    requests: AtomicU64,
    open_sessions: AtomicU64,
    worker_panics: AtomicU64,
    idle_timeout: Duration,
    solve_timeout: Option<Duration>,
    addr: SocketAddr,
}

impl Shared {
    fn stats(&self) -> ServerStats {
        ServerStats {
            hits: self.cache.hits(),
            misses: self.cache.misses(),
            runs: self.runs.load(Ordering::Relaxed),
            requests: self.requests.load(Ordering::Relaxed),
            cache_entries: self.cache.len() as u64,
            open_sessions: self.open_sessions.load(Ordering::Relaxed),
            workers: self.pool.live_workers() as u64,
            // The job-boundary catch counts panics with their payload;
            // the pool's own catch is a backstop that should stay 0.
            worker_panics: self.worker_panics.load(Ordering::Relaxed) + self.pool.panics(),
            queue_depth: self.obs.queue_depth(),
            cache_bytes: self.cache.bytes_total(),
        }
    }

    fn metrics_snapshot(&self) -> MetricsSnapshot {
        let stats = self.stats();
        let mut snap = MetricsSnapshot {
            requests: stats.requests,
            hits: stats.hits,
            misses: stats.misses,
            runs: stats.runs,
            open_sessions: stats.open_sessions,
            workers: stats.workers,
            worker_panics: stats.worker_panics,
            cache_entries: stats.cache_entries,
            cache_bytes: stats.cache_bytes,
            cache_evictions: self.cache.evictions(),
            ..MetricsSnapshot::default()
        };
        self.obs.fill_snapshot(&mut snap);
        snap
    }

    /// Flips the shutdown flag and pokes the accept loop awake with a
    /// throwaway self-connection.
    fn begin_shutdown(&self) {
        if !self.shutdown.swap(true, Ordering::SeqCst) {
            let _ = TcpStream::connect(self.addr);
        }
    }
}

/// The gossip-as-a-service server. [`bind`](Server::bind) it and keep
/// the returned [`ServerHandle`].
pub struct Server;

impl Server {
    /// Binds `addr` (use port 0 for an ephemeral port) and starts
    /// accepting sessions on a background thread.
    pub fn bind(addr: impl ToSocketAddrs, config: ServerConfig) -> io::Result<ServerHandle> {
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        let shared = Arc::new(Shared {
            cache: ReportCache::new(config.cache_capacity),
            pool: WorkerPool::new(config.workers, config.queue_capacity, config.engine_threads),
            obs: ServerObs::new(),
            shutdown: AtomicBool::new(false),
            runs: AtomicU64::new(0),
            requests: AtomicU64::new(0),
            open_sessions: AtomicU64::new(0),
            worker_panics: AtomicU64::new(0),
            idle_timeout: config.idle_timeout,
            solve_timeout: config.solve_timeout,
            addr,
        });
        let accept = {
            let shared = shared.clone();
            std::thread::Builder::new()
                .name("lpt-accept".to_string())
                .spawn(move || accept_loop(&listener, &shared))?
        };
        Ok(ServerHandle {
            addr,
            shared,
            accept: Some(accept),
        })
    }
}

/// Owner's handle to a running server.
pub struct ServerHandle {
    addr: SocketAddr,
    shared: Arc<Shared>,
    accept: Option<JoinHandle<()>>,
}

impl ServerHandle {
    /// The bound address (with the real port when bound to port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Current counter snapshot (same numbers the `stats` command
    /// reports).
    pub fn stats(&self) -> ServerStats {
        self.shared.stats()
    }

    /// Requests a graceful shutdown: stop accepting, drain sessions
    /// and queued runs. Does not block; follow with
    /// [`wait`](ServerHandle::wait).
    pub fn shutdown(&self) {
        self.shared.begin_shutdown();
    }

    /// Blocks until the server has fully drained and all its threads
    /// have exited.
    pub fn wait(mut self) {
        if let Some(h) = self.accept.take() {
            let _ = h.join();
        }
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        self.shared.begin_shutdown();
        if let Some(h) = self.accept.take() {
            let _ = h.join();
        }
    }
}

fn accept_loop(listener: &TcpListener, shared: &Arc<Shared>) {
    let mut sessions: Vec<JoinHandle<()>> = Vec::new();
    for stream in listener.incoming() {
        if shared.shutdown.load(Ordering::SeqCst) {
            break;
        }
        let stream = match stream {
            Ok(s) => s,
            Err(_) => continue,
        };
        sessions.retain(|h| !h.is_finished());
        let shared = shared.clone();
        let handle = std::thread::Builder::new()
            .name("lpt-session".to_string())
            .spawn(move || {
                shared.open_sessions.fetch_add(1, Ordering::Relaxed);
                session_loop(&shared, stream);
                shared.open_sessions.fetch_sub(1, Ordering::Relaxed);
            });
        match handle {
            Ok(h) => sessions.push(h),
            Err(_) => continue,
        }
    }
    for h in sessions {
        let _ = h.join();
    }
    // Sessions are gone; drain any still-queued runs and stop the
    // workers. (A queued job can outlive its session if the client
    // disconnected mid-run.)
    shared.pool.shutdown();
}

fn write_error(stream: &mut TcpStream, err: &ServerError) -> io::Result<()> {
    let line = Frame::Error(WireError::from_error(err)).to_line();
    stream.write_all(line.as_bytes())?;
    stream.write_all(b"\n")
}

fn stats_line(stats: &ServerStats) -> String {
    ObjBuilder::new()
        .str("frame", "stats")
        .u64("hits", stats.hits)
        .u64("misses", stats.misses)
        .u64("runs", stats.runs)
        .u64("requests", stats.requests)
        .u64("cache_entries", stats.cache_entries)
        .u64("open_sessions", stats.open_sessions)
        .u64("workers", stats.workers)
        .u64("worker_panics", stats.worker_panics)
        // Appended after the original fields so historical readers that
        // pick fields by name keep working and the pinned field-order
        // test only extends.
        .u64("queue_depth", stats.queue_depth)
        .u64("cache_bytes", stats.cache_bytes)
        .finish()
}

enum After {
    KeepOpen,
    Close,
}

/// What a worker job reports back to its session.
enum JobResult {
    /// The run (or its typed error rendering) finished; bytes are a
    /// pure function of the spec and safe to cache. The observational
    /// extras (recorder summary, queue wait) ride alongside and never
    /// touch the cached bytes.
    Done {
        bytes: Vec<u8>,
        obs: Option<Box<ObsSummary>>,
        queue_us: u64,
    },
    /// The job panicked; `catch_unwind` contained it. Not cacheable —
    /// nothing was rendered.
    Panicked(String),
}

fn micros(d: Duration) -> u64 {
    d.as_micros() as u64
}

/// Best-effort extraction of a panic payload's message.
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

fn session_loop(shared: &Arc<Shared>, mut stream: TcpStream) {
    let _ = stream.set_nodelay(true);
    if stream.set_read_timeout(Some(READ_TICK)).is_err() {
        return;
    }
    let mut buf: Vec<u8> = Vec::new();
    let mut chunk = [0u8; 4096];
    let mut last_activity = Instant::now();
    loop {
        // Serve every complete line already buffered.
        while let Some(pos) = buf.iter().position(|&b| b == b'\n') {
            let line: Vec<u8> = buf.drain(..=pos).collect();
            last_activity = Instant::now();
            let line = String::from_utf8_lossy(&line[..line.len() - 1]).into_owned();
            let line = line.trim_end_matches('\r');
            if line.trim().is_empty() {
                continue;
            }
            match handle_line(shared, &mut stream, line) {
                Ok(After::KeepOpen) => {}
                Ok(After::Close) | Err(_) => return,
            }
        }
        if buf.len() > MAX_REQUEST_LINE {
            let _ = write_error(
                &mut stream,
                &ServerError::RequestTooLarge {
                    limit: MAX_REQUEST_LINE,
                },
            );
            return;
        }
        match stream.read(&mut chunk) {
            Ok(0) => return, // peer closed
            Ok(n) => buf.extend_from_slice(&chunk[..n]),
            Err(e)
                if e.kind() == io::ErrorKind::WouldBlock || e.kind() == io::ErrorKind::TimedOut =>
            {
                if shared.shutdown.load(Ordering::SeqCst) {
                    let _ = write_error(&mut stream, &ServerError::ShuttingDown);
                    return;
                }
                if last_activity.elapsed() >= shared.idle_timeout {
                    let _ = write_error(
                        &mut stream,
                        &ServerError::IdleTimeout {
                            millis: shared.idle_timeout.as_millis() as u64,
                        },
                    );
                    return;
                }
            }
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(_) => return,
        }
    }
}

fn handle_line(shared: &Arc<Shared>, stream: &mut TcpStream, line: &str) -> io::Result<After> {
    shared.requests.fetch_add(1, Ordering::Relaxed);
    let request = match parse_request(line) {
        Ok(r) => r,
        Err(wire_err) => {
            // Bad requests are survivable: answer with the typed error
            // and keep the session open.
            shared.obs.record_error();
            let line = Frame::Error(wire_err).to_line();
            stream.write_all(line.as_bytes())?;
            stream.write_all(b"\n")?;
            return Ok(After::KeepOpen);
        }
    };
    match request {
        Request::Stats => {
            stream.write_all(stats_line(&shared.stats()).as_bytes())?;
            stream.write_all(b"\n")?;
            Ok(After::KeepOpen)
        }
        Request::Shutdown => {
            stream.write_all(b"{\"frame\":\"bye\"}\n")?;
            shared.begin_shutdown();
            Ok(After::Close)
        }
        Request::Metrics => {
            stream.write_all(metrics_line(&shared.metrics_snapshot()).as_bytes())?;
            stream.write_all(b"\n")?;
            Ok(After::KeepOpen)
        }
        Request::Solve { key, trace } => {
            let started = Instant::now();
            if shared.shutdown.load(Ordering::SeqCst) {
                shared.obs.record_error();
                write_error(stream, &ServerError::ShuttingDown)?;
                return Ok(After::Close);
            }
            let (bytes, outcome, run_obs, queue_us) = match shared.cache.lookup(&key) {
                Lookup::Hit { bytes, waited } => {
                    // A plain hit replays instantly; a waited hit spent
                    // its wall time blocked on someone else's run. The
                    // latency histograms keep them apart.
                    let outcome = if waited { Outcome::Wait } else { Outcome::Hit };
                    (bytes, outcome, None, 0)
                }
                Lookup::Miss(guard) => {
                    let (tx, rx) = mpsc::channel();
                    let job_shared = shared.clone();
                    let job_key = key.clone();
                    let engine_name = key.engine.name();
                    let cancel = Arc::new(AtomicBool::new(false));
                    let job_cancel = cancel.clone();
                    let submitted = Instant::now();
                    shared.obs.job_submitted();
                    let accepted = shared.pool.execute(move || {
                        job_shared.obs.job_started();
                        let queued = submitted.elapsed();
                        let run_started = Instant::now();
                        // Contain panics at the job boundary so the
                        // session gets a typed frame (with the panic
                        // message) instead of a dead channel, and the
                        // worker keeps draining the queue.
                        let result = catch_unwind(AssertUnwindSafe(|| {
                            registry::execute_with_options(&job_key, Some(job_cancel), trace)
                        }));
                        job_shared
                            .obs
                            .record_job(micros(queued), micros(run_started.elapsed()));
                        let message = match result {
                            Ok(outcome) => {
                                if outcome.ran_driver {
                                    job_shared.runs.fetch_add(1, Ordering::Relaxed);
                                    job_shared.obs.record_engine_run(&engine_name);
                                }
                                JobResult::Done {
                                    bytes: outcome.bytes,
                                    obs: outcome.obs.map(Box::new),
                                    queue_us: micros(queued),
                                }
                            }
                            Err(payload) => {
                                job_shared.worker_panics.fetch_add(1, Ordering::Relaxed);
                                JobResult::Panicked(panic_message(payload.as_ref()))
                            }
                        };
                        let _ = tx.send(message);
                    });
                    if !accepted {
                        // The job never entered the queue: undo the
                        // submit so the depth gauge stays balanced.
                        // Guard drops here, releasing the pending slot.
                        shared.obs.job_started();
                        shared.obs.record_error();
                        write_error(stream, &ServerError::ShuttingDown)?;
                        return Ok(After::Close);
                    }
                    let received = match shared.solve_timeout {
                        Some(deadline) => rx.recv_timeout(deadline),
                        None => rx.recv().map_err(|_| RecvTimeoutError::Disconnected),
                    };
                    match received {
                        Ok(JobResult::Done {
                            bytes,
                            obs,
                            queue_us,
                        }) => (guard.fulfill(bytes), Outcome::Cold, obs, queue_us),
                        Ok(JobResult::Panicked(detail)) => {
                            // Guard drops unfulfilled: the pending slot
                            // is released and any waiter is promoted to
                            // re-run the key — no wedge.
                            shared.obs.record_error();
                            shared
                                .obs
                                .record_latency(Outcome::Error, micros(started.elapsed()));
                            write_error(stream, &ServerError::WorkerPanicked { detail })?;
                            return Ok(After::KeepOpen);
                        }
                        Err(RecvTimeoutError::Timeout) => {
                            // Ask the driver to stop at its next round
                            // boundary; its cancelled reply goes
                            // nowhere (rx drops below) and is never
                            // cached — timing is not part of the spec.
                            cancel.store(true, Ordering::Relaxed);
                            shared.obs.record_error();
                            shared
                                .obs
                                .record_latency(Outcome::Error, micros(started.elapsed()));
                            let millis = shared.solve_timeout.map_or(0, |d| d.as_millis() as u64);
                            write_error(stream, &ServerError::SolveTimeout { millis })?;
                            return Ok(After::KeepOpen);
                        }
                        Err(RecvTimeoutError::Disconnected) => {
                            shared.obs.record_error();
                            shared
                                .obs
                                .record_latency(Outcome::Error, micros(started.elapsed()));
                            write_error(
                                stream,
                                &ServerError::Internal("worker died mid-run".to_string()),
                            )?;
                            return Ok(After::KeepOpen);
                        }
                    }
                }
            };
            stream.write_all(&bytes)?;
            let wall_us = micros(started.elapsed());
            shared.obs.record_latency(outcome, wall_us);
            if trace {
                // Appended after the (possibly cached) reply bytes and
                // never cached itself, so the reply proper stays
                // byte-identical to an untraced request.
                let line = trace_line(outcome.name(), wall_us, queue_us, run_obs.as_deref());
                stream.write_all(line.as_bytes())?;
                stream.write_all(b"\n")?;
            }
            Ok(After::KeepOpen)
        }
    }
}

// Unit tests for the pure helpers; end-to-end behaviour (sessions,
// cache, shutdown) is covered by the crate's integration tests.
#[cfg(test)]
mod tests {
    use super::*;
    use gossip_sim::export::Json;

    #[test]
    fn stats_line_is_parseable_json_with_fixed_fields() {
        let line = stats_line(&ServerStats {
            hits: 1,
            misses: 2,
            runs: 3,
            requests: 4,
            cache_entries: 5,
            open_sessions: 6,
            workers: 7,
            worker_panics: 8,
            queue_depth: 9,
            cache_bytes: 10,
        });
        let v = Json::parse(&line).unwrap();
        assert_eq!(v.get("frame").and_then(Json::as_str), Some("stats"));
        assert_eq!(v.get("hits").and_then(Json::as_u64), Some(1));
        assert_eq!(v.get("open_sessions").and_then(Json::as_u64), Some(6));
        assert_eq!(v.get("workers").and_then(Json::as_u64), Some(7));
        assert_eq!(v.get("worker_panics").and_then(Json::as_u64), Some(8));
        // The PR-10 additions ride at the end of the frame: new fields
        // append, existing fields never move.
        assert_eq!(v.get("queue_depth").and_then(Json::as_u64), Some(9));
        assert_eq!(v.get("cache_bytes").and_then(Json::as_u64), Some(10));
        let panics_at = line.find("worker_panics").unwrap();
        assert!(
            line.find("queue_depth").unwrap() > panics_at
                && line.find("cache_bytes").unwrap() > line.find("queue_depth").unwrap(),
            "new stats fields must append after the historical ones"
        );
    }

    #[test]
    fn panic_messages_extract_str_and_string_payloads() {
        let p = catch_unwind(|| panic!("boom")).unwrap_err();
        assert_eq!(panic_message(p.as_ref()), "boom");
        let p = catch_unwind(|| panic!("{}", String::from("dynamic"))).unwrap_err();
        assert_eq!(panic_message(p.as_ref()), "dynamic");
        let p = catch_unwind(|| std::panic::panic_any(42_u8)).unwrap_err();
        assert_eq!(panic_message(p.as_ref()), "non-string panic payload");
    }
}
