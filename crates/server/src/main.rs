//! The `lpt-server` binary: bind a port and serve until a client
//! sends `{"cmd":"shutdown"}` (or the process is killed).

use lpt_server::{Server, ServerConfig};
use std::time::Duration;

const USAGE: &str = "usage: lpt-server [--addr HOST:PORT] [--workers N] [--engine-threads N] \
                     [--queue N] [--cache N] [--idle-ms N] [--solve-timeout-ms N]";

fn parse_args() -> Result<(String, ServerConfig), String> {
    let mut addr = "127.0.0.1:7420".to_string();
    let mut cfg = ServerConfig::default();
    let mut args = std::env::args().skip(1);
    while let Some(flag) = args.next() {
        let mut value = |flag: &str| {
            args.next()
                .ok_or_else(|| format!("{flag} needs a value\n{USAGE}"))
        };
        match flag.as_str() {
            "--addr" => addr = value("--addr")?,
            "--workers" => {
                cfg.workers = value("--workers")?
                    .parse()
                    .map_err(|e| format!("--workers: {e}"))?;
            }
            "--engine-threads" => {
                cfg.engine_threads = value("--engine-threads")?
                    .parse()
                    .map_err(|e| format!("--engine-threads: {e}"))?;
            }
            "--queue" => {
                cfg.queue_capacity = value("--queue")?
                    .parse()
                    .map_err(|e| format!("--queue: {e}"))?;
            }
            "--cache" => {
                cfg.cache_capacity = value("--cache")?
                    .parse()
                    .map_err(|e| format!("--cache: {e}"))?;
            }
            "--idle-ms" => {
                let ms: u64 = value("--idle-ms")?
                    .parse()
                    .map_err(|e| format!("--idle-ms: {e}"))?;
                cfg.idle_timeout = Duration::from_millis(ms);
            }
            "--solve-timeout-ms" => {
                let ms: u64 = value("--solve-timeout-ms")?
                    .parse()
                    .map_err(|e| format!("--solve-timeout-ms: {e}"))?;
                cfg.solve_timeout = Some(Duration::from_millis(ms));
            }
            "--help" | "-h" => {
                println!("{USAGE}");
                std::process::exit(0);
            }
            other => return Err(format!("unknown flag {other:?}\n{USAGE}")),
        }
    }
    Ok((addr, cfg))
}

fn main() {
    let (addr, cfg) = match parse_args() {
        Ok(parsed) => parsed,
        Err(msg) => {
            eprintln!("{msg}");
            std::process::exit(2);
        }
    };
    let server = match Server::bind(&addr[..], cfg) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("failed to bind {addr}: {e}");
            std::process::exit(1);
        }
    };
    println!("lpt-server listening on {}", server.addr());
    server.wait();
}
