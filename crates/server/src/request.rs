//! Wire requests: one JSON object per line, decoded into a typed
//! [`Request`].
//!
//! ## Grammar
//!
//! ```text
//! {"cmd":"solve","workload":"duo-disk","n":256,"seed":42, ...}
//! {"cmd":"stats"}
//! {"cmd":"metrics"}
//! {"cmd":"shutdown"}
//! ```
//!
//! Solve fields (beyond the required `workload` and `n`) are optional
//! and default to the driver's defaults: `elements` (instance size,
//! default `4·n`), `algorithm` (canonical [`AlgorithmSpec`] encoding,
//! default `low-load`), `seed` (0), `stop` (`full` or `budget:N`),
//! `max_rounds` (20 000), `doubling` (number or absent), `fault`
//! (`perfect`), `topology` (`complete`), `schedule` (`v2batched`),
//! `engine` (`round-sync`; any canonical `gossip_sim::event::Engine`
//! name, e.g. `event-unit` or `event-uniform-1-4`).
//! A solve request decodes into exactly the [`RunSpecKey`] that keys
//! the report cache, so "same request" and "same cache key" are the
//! same notion by construction.
//!
//! The one solve field *outside* the key is `trace` (boolean, default
//! `false`): it asks the server to append an observational `trace`
//! frame after the reply stream. Tracing never enters the cache key —
//! a traced and an untraced request for the same spec share one cache
//! entry and byte-identical reply frames; the trace frame is computed
//! per-request and appended after them, never cached.

use crate::error::ServerError;
use gossip_sim::event::Engine;
use gossip_sim::export::{ErrorCode, Json, ObjBuilder, WireError};
use lpt_gossip::spec::{is_name_token, AlgorithmSpec, RunSpecKey, StopSpec};
use lpt_gossip::RngSchedule;

/// A decoded request line.
#[derive(Clone, Debug, PartialEq)]
pub enum Request {
    /// Run (or replay from cache) the keyed spec and stream its report.
    Solve {
        /// The cache key the reply is a pure function of.
        key: RunSpecKey,
        /// Append an observational `trace` frame after the reply
        /// (never part of the key or the cached bytes).
        trace: bool,
    },
    /// Report server counters (cache hits/misses, runs, sessions).
    Stats,
    /// Report the full metrics snapshot (latency histograms, queue and
    /// cache gauges, per-engine run counts) as one `metrics` frame.
    Metrics,
    /// Gracefully shut the server down.
    Shutdown,
}

fn wire<E: ErrorCode>(e: E) -> WireError {
    WireError::from_error(&e)
}

fn opt_u64(obj: &Json, field: &'static str, default: u64) -> Result<u64, WireError> {
    match obj.get(field) {
        None => Ok(default),
        Some(v) => v.as_u64().ok_or_else(|| {
            wire(ServerError::BadField {
                field,
                detail: "expected an unsigned integer".to_string(),
            })
        }),
    }
}

fn opt_name(obj: &Json, field: &'static str, default: &str) -> Result<String, WireError> {
    match obj.get(field) {
        None => Ok(default.to_string()),
        Some(v) => {
            let s = v.as_str().ok_or_else(|| {
                wire(ServerError::BadField {
                    field,
                    detail: "expected a string".to_string(),
                })
            })?;
            if is_name_token(s) {
                Ok(s.to_string())
            } else {
                Err(wire(ServerError::BadField {
                    field,
                    detail: format!("{s:?} is not a lowercase name token"),
                }))
            }
        }
    }
}

/// Decodes one request line. Errors are returned as ready-to-send
/// [`WireError`]s (server `2xx` codes, spec `12x` codes).
pub fn parse_request(line: &str) -> Result<Request, WireError> {
    let v = Json::parse(line).map_err(|e| wire(ServerError::MalformedRequest(e.to_string())))?;
    if !matches!(v, Json::Obj(_)) {
        return Err(wire(ServerError::MalformedRequest(
            "request must be a JSON object".to_string(),
        )));
    }
    let cmd = v
        .get("cmd")
        .and_then(Json::as_str)
        .ok_or_else(|| wire(ServerError::MissingField("cmd")))?;
    match cmd {
        "stats" => Ok(Request::Stats),
        "metrics" => Ok(Request::Metrics),
        "shutdown" => Ok(Request::Shutdown),
        "solve" => {
            let workload = match v.get("workload") {
                Some(_) => opt_name(&v, "workload", "")?,
                None => return Err(wire(ServerError::MissingField("workload"))),
            };
            let n = v
                .get("n")
                .ok_or_else(|| wire(ServerError::MissingField("n")))?
                .as_u64()
                .ok_or_else(|| {
                    wire(ServerError::BadField {
                        field: "n",
                        detail: "expected an unsigned integer".to_string(),
                    })
                })?;
            let algorithm = match v.get("algorithm") {
                None => AlgorithmSpec::LowLoad,
                Some(a) => {
                    let s = a.as_str().ok_or_else(|| {
                        wire(ServerError::BadField {
                            field: "algorithm",
                            detail: "expected a string".to_string(),
                        })
                    })?;
                    AlgorithmSpec::parse(s).map_err(wire)?
                }
            };
            let stop = match v.get("stop") {
                None => StopSpec::FullTermination,
                Some(s) => {
                    let s = s.as_str().ok_or_else(|| {
                        wire(ServerError::BadField {
                            field: "stop",
                            detail: "expected a string".to_string(),
                        })
                    })?;
                    StopSpec::parse(s).map_err(wire)?
                }
            };
            let doubling = match v.get("doubling") {
                None => None,
                Some(d) if d.is_null() => None,
                Some(d) => {
                    let f = d.as_f64().ok_or_else(|| {
                        wire(ServerError::BadField {
                            field: "doubling",
                            detail: "expected a number".to_string(),
                        })
                    })?;
                    Some(lpt_gossip::F64Key::new(f).ok_or_else(|| {
                        wire(ServerError::BadField {
                            field: "doubling",
                            detail: "must be finite".to_string(),
                        })
                    })?)
                }
            };
            let schedule_name = opt_name(&v, "schedule", RngSchedule::default().name())?;
            let schedule = RngSchedule::parse(&schedule_name)
                .ok_or_else(|| wire(ServerError::UnknownSchedule(schedule_name.clone())))?;
            let engine_name = opt_name(&v, "engine", "round-sync")?;
            let engine = Engine::parse(&engine_name)
                .ok_or_else(|| wire(ServerError::UnknownEngine(engine_name.clone())))?;
            let trace = match v.get("trace") {
                None => false,
                Some(t) => t.as_bool().ok_or_else(|| {
                    wire(ServerError::BadField {
                        field: "trace",
                        detail: "expected a boolean".to_string(),
                    })
                })?,
            };
            Ok(Request::Solve {
                key: RunSpecKey {
                    workload,
                    elements: opt_u64(&v, "elements", n.saturating_mul(4))?,
                    algorithm,
                    n,
                    seed: opt_u64(&v, "seed", 0)?,
                    stop,
                    max_rounds: opt_u64(&v, "max_rounds", 20_000)?,
                    doubling,
                    fault: opt_name(&v, "fault", "perfect")?,
                    topology: opt_name(&v, "topology", "complete")?,
                    schedule,
                    engine,
                },
                trace,
            })
        }
        other => Err(wire(ServerError::UnknownCommand(other.to_string()))),
    }
}

/// Encodes a [`RunSpecKey`] as a solve request line (no trailing
/// newline) — the client side of [`parse_request`]. Every field is
/// written explicitly, so the line round-trips to exactly `key`.
pub fn solve_request_line(key: &RunSpecKey) -> String {
    let b = ObjBuilder::new()
        .str("cmd", "solve")
        .str("workload", &key.workload)
        .u64("n", key.n)
        .u64("elements", key.elements)
        .str("algorithm", &key.algorithm.canonical())
        .u64("seed", key.seed)
        .str("stop", &key.stop.canonical())
        .u64("max_rounds", key.max_rounds);
    let b = match key.doubling {
        Some(f) => b.f64("doubling", f.value()),
        None => b,
    };
    let b = b
        .str("fault", &key.fault)
        .str("topology", &key.topology)
        .str("schedule", key.schedule.name());
    // Like the canonical spec string: the default engine stays off the
    // line, so historical request bytes are reproduced exactly.
    if key.engine.is_default() {
        b.finish()
    } else {
        b.str("engine", &key.engine.name()).finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn minimal_solve_gets_defaults() {
        let req = parse_request(r#"{"cmd":"solve","workload":"duo-disk","n":64}"#).unwrap();
        let Request::Solve { key, trace } = req else {
            panic!("expected solve")
        };
        assert!(!trace, "tracing is opt-in");
        assert_eq!(key, {
            let mut k = RunSpecKey::new("duo-disk", 256, 64, 0);
            k.elements = 256; // 4·n
            k
        });
    }

    #[test]
    fn trace_flag_parses_without_touching_the_key() {
        let plain = parse_request(r#"{"cmd":"solve","workload":"duo-disk","n":64}"#).unwrap();
        let traced =
            parse_request(r#"{"cmd":"solve","workload":"duo-disk","n":64,"trace":true}"#).unwrap();
        let (Request::Solve { key: a, trace: ta }, Request::Solve { key: b, trace: tb }) =
            (plain, traced)
        else {
            panic!("expected solves")
        };
        assert_eq!(a, b, "trace must not enter the cache key");
        assert!(!ta);
        assert!(tb);
        assert_eq!(
            parse_request(r#"{"cmd":"solve","workload":"duo-disk","n":64,"trace":"yes"}"#)
                .unwrap_err()
                .code,
            203
        );
    }

    #[test]
    fn request_line_roundtrips_every_field() {
        let mut key = RunSpecKey::new("planted-hs", 512, 128, 7);
        key.algorithm = AlgorithmSpec::HittingSet { d: 3 };
        key.stop = StopSpec::RoundBudget(99);
        key.max_rounds = 500;
        key.doubling = lpt_gossip::F64Key::new(12.0);
        key.fault = "wan".to_string();
        key.topology = "rr8".to_string();
        key.schedule = RngSchedule::V1Compat;
        key.engine = Engine::parse("event-uniform-1-4-loss-2000").unwrap();
        let line = solve_request_line(&key);
        assert_eq!(
            parse_request(&line).unwrap(),
            Request::Solve { key, trace: false }
        );
    }

    #[test]
    fn malformed_and_unknown_are_typed() {
        assert_eq!(parse_request("not json").unwrap_err().code, 200);
        assert_eq!(parse_request("[1,2]").unwrap_err().code, 200);
        assert_eq!(parse_request(r#"{"x":1}"#).unwrap_err().code, 202);
        assert_eq!(
            parse_request(r#"{"cmd":"frobnicate"}"#).unwrap_err().code,
            201
        );
        assert_eq!(
            parse_request(r#"{"cmd":"solve","n":4}"#).unwrap_err().code,
            202
        );
        assert_eq!(
            parse_request(r#"{"cmd":"solve","workload":"duo-disk","n":"many"}"#)
                .unwrap_err()
                .code,
            203
        );
        assert_eq!(
            parse_request(r#"{"cmd":"solve","workload":"duo-disk","n":4,"algorithm":"magic"}"#)
                .unwrap_err()
                .code,
            122
        );
        assert_eq!(
            parse_request(r#"{"cmd":"solve","workload":"duo-disk","n":4,"schedule":"v9"}"#)
                .unwrap_err()
                .code,
            207
        );
        assert_eq!(
            parse_request(r#"{"cmd":"solve","workload":"duo-disk","n":4,"engine":"event-warp"}"#)
                .unwrap_err()
                .code,
            214
        );
        assert_eq!(parse_request(r#"{"cmd":"stats"}"#).unwrap(), Request::Stats);
        assert_eq!(
            parse_request(r#"{"cmd":"metrics"}"#).unwrap(),
            Request::Metrics
        );
        assert_eq!(
            parse_request(r#"{"cmd":"shutdown"}"#).unwrap(),
            Request::Shutdown
        );
    }
}
