//! Typed server errors with stable wire codes.
//!
//! Every failure a session can report on the wire is either a
//! [`ServerError`] (codes `2xx`, defined here), a
//! [`DriverError`](lpt_gossip::DriverError) (codes `101`–`112`), or a
//! [`SpecError`](lpt_gossip::SpecError) (codes `120`–`123`) — all
//! rendered through the same [`ErrorCode`] trait into
//! `{"frame":"error","code":...,"kind":...,"detail":...}` frames.
//! Codes and kinds are part of the wire contract: they are never
//! renumbered or renamed; new variants take fresh codes.

use gossip_sim::export::ErrorCode;
use std::fmt;

/// Why the server rejected a request or closed a session.
#[derive(Clone, Debug, PartialEq, Eq)]
#[non_exhaustive]
pub enum ServerError {
    /// The request line is not valid JSON (or not a JSON object).
    MalformedRequest(String),
    /// The request's `"cmd"` is missing or unknown.
    UnknownCommand(String),
    /// A required request field is missing.
    MissingField(&'static str),
    /// A request field has the wrong type or an invalid value.
    BadField {
        /// The offending field.
        field: &'static str,
        /// What was wrong with it.
        detail: String,
    },
    /// The requested workload preset does not exist.
    UnknownWorkload(String),
    /// The requested fault scenario preset does not exist.
    UnknownScenario(String),
    /// The requested topology preset does not exist.
    UnknownTopology(String),
    /// The requested RNG schedule does not exist.
    UnknownSchedule(String),
    /// The server is shutting down and no longer accepts work.
    ShuttingDown,
    /// An internal failure (e.g. a worker died mid-run).
    Internal(String),
    /// The request line exceeds the size limit.
    RequestTooLarge {
        /// The limit in bytes.
        limit: usize,
    },
    /// The session sat idle past the configured timeout and is being
    /// closed.
    IdleTimeout {
        /// The timeout that elapsed, in milliseconds.
        millis: u64,
    },
    /// The worker executing this request panicked. The pool survives
    /// (the panic is caught at the job boundary) and the key is
    /// released, so resubmitting is safe.
    WorkerPanicked {
        /// The panic payload, when it was a string.
        detail: String,
    },
    /// The run outlived the server's per-request solve deadline and
    /// was cancelled at a round boundary. Nothing was cached.
    SolveTimeout {
        /// The deadline that elapsed, in milliseconds.
        millis: u64,
    },
    /// The requested execution engine does not exist.
    UnknownEngine(String),
}

impl fmt::Display for ServerError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServerError::MalformedRequest(detail) => {
                write!(f, "malformed request: {detail}")
            }
            ServerError::UnknownCommand(cmd) => {
                write!(
                    f,
                    "unknown command {cmd:?} (expected solve, stats, metrics, shutdown)"
                )
            }
            ServerError::MissingField(field) => {
                write!(f, "request is missing required field {field:?}")
            }
            ServerError::BadField { field, detail } => {
                write!(f, "request field {field:?} is invalid: {detail}")
            }
            ServerError::UnknownWorkload(name) => {
                write!(f, "no workload preset named {name:?}")
            }
            ServerError::UnknownScenario(name) => {
                write!(f, "no fault scenario preset named {name:?}")
            }
            ServerError::UnknownTopology(name) => {
                write!(f, "no topology preset named {name:?}")
            }
            ServerError::UnknownSchedule(name) => {
                write!(f, "no RNG schedule named {name:?}")
            }
            ServerError::ShuttingDown => write!(f, "server is shutting down"),
            ServerError::Internal(detail) => write!(f, "internal server error: {detail}"),
            ServerError::RequestTooLarge { limit } => {
                write!(f, "request line exceeds the {limit}-byte limit")
            }
            ServerError::IdleTimeout { millis } => {
                write!(f, "session idle for more than {millis} ms; closing")
            }
            ServerError::WorkerPanicked { detail } => {
                write!(f, "worker panicked while executing the run: {detail}")
            }
            ServerError::SolveTimeout { millis } => {
                write!(
                    f,
                    "run exceeded the {millis} ms solve deadline and was cancelled"
                )
            }
            ServerError::UnknownEngine(name) => {
                write!(f, "no execution engine named {name:?}")
            }
        }
    }
}

impl std::error::Error for ServerError {}

impl ErrorCode for ServerError {
    fn code(&self) -> u16 {
        match self {
            ServerError::MalformedRequest(_) => 200,
            ServerError::UnknownCommand(_) => 201,
            ServerError::MissingField(_) => 202,
            ServerError::BadField { .. } => 203,
            ServerError::UnknownWorkload(_) => 204,
            ServerError::UnknownScenario(_) => 205,
            ServerError::UnknownTopology(_) => 206,
            ServerError::UnknownSchedule(_) => 207,
            ServerError::ShuttingDown => 208,
            ServerError::Internal(_) => 209,
            ServerError::RequestTooLarge { .. } => 210,
            ServerError::IdleTimeout { .. } => 211,
            ServerError::WorkerPanicked { .. } => 212,
            ServerError::SolveTimeout { .. } => 213,
            ServerError::UnknownEngine(_) => 214,
        }
    }

    fn kind(&self) -> &'static str {
        match self {
            ServerError::MalformedRequest(_) => "malformed-request",
            ServerError::UnknownCommand(_) => "unknown-command",
            ServerError::MissingField(_) => "missing-field",
            ServerError::BadField { .. } => "bad-field",
            ServerError::UnknownWorkload(_) => "unknown-workload",
            ServerError::UnknownScenario(_) => "unknown-scenario",
            ServerError::UnknownTopology(_) => "unknown-topology",
            ServerError::UnknownSchedule(_) => "unknown-schedule",
            ServerError::ShuttingDown => "shutting-down",
            ServerError::Internal(_) => "internal",
            ServerError::RequestTooLarge { .. } => "request-too-large",
            ServerError::IdleTimeout { .. } => "idle-timeout",
            ServerError::WorkerPanicked { .. } => "worker-panicked",
            ServerError::SolveTimeout { .. } => "solve-timeout",
            ServerError::UnknownEngine(_) => "unknown-engine",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn codes_are_stable_and_unique() {
        let all = [
            ServerError::MalformedRequest(String::new()),
            ServerError::UnknownCommand(String::new()),
            ServerError::MissingField("x"),
            ServerError::BadField {
                field: "x",
                detail: String::new(),
            },
            ServerError::UnknownWorkload(String::new()),
            ServerError::UnknownScenario(String::new()),
            ServerError::UnknownTopology(String::new()),
            ServerError::UnknownSchedule(String::new()),
            ServerError::ShuttingDown,
            ServerError::Internal(String::new()),
            ServerError::RequestTooLarge { limit: 0 },
            ServerError::IdleTimeout { millis: 0 },
            ServerError::WorkerPanicked {
                detail: String::new(),
            },
            ServerError::SolveTimeout { millis: 0 },
            ServerError::UnknownEngine(String::new()),
        ];
        let codes: Vec<u16> = all.iter().map(ErrorCode::code).collect();
        assert_eq!(codes, (200..215).collect::<Vec<u16>>());
        let mut kinds: Vec<&str> = all.iter().map(|e| e.kind()).collect();
        kinds.sort_unstable();
        kinds.dedup();
        assert_eq!(kinds.len(), all.len());
    }
}
