//! Server-side observability aggregation: latency, queue, and engine
//! counters behind one mutex, snapshotted into a
//! [`MetricsSnapshot`](gossip_sim::export::MetricsSnapshot) for the
//! `metrics` wire command.
//!
//! Everything here is strictly observational. None of these numbers
//! feed back into request handling, cache keys, or reply bytes — a
//! server with a busy metrics plane answers every request with the
//! same bytes as one whose counters were never read. That is why the
//! aggregation can afford a plain `Mutex`: it is touched once per
//! request (plus once per worker job), far off the reply hot path of
//! streaming cached bytes.

use gossip_sim::export::MetricsSnapshot;
use gossip_sim::Histogram;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// How a `solve` request was answered, for latency accounting.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Outcome {
    /// A cache miss that executed a driver run.
    Cold,
    /// Replayed from the cache with no waiting.
    Hit,
    /// Coalesced onto another session's in-flight run (single-flight
    /// wait; counted as a cache hit by the cache's own counters).
    Wait,
    /// Answered with an error frame the run machinery produced (worker
    /// panic, solve timeout, dead worker, shutdown rejection).
    Error,
}

impl Outcome {
    /// Stable wire name, used in `trace` frames.
    pub fn name(self) -> &'static str {
        match self {
            Outcome::Cold => "cold",
            Outcome::Hit => "hit",
            Outcome::Wait => "wait",
            Outcome::Error => "error",
        }
    }

    fn index(self) -> usize {
        match self {
            Outcome::Cold => 0,
            Outcome::Hit => 1,
            Outcome::Wait => 2,
            Outcome::Error => 3,
        }
    }
}

#[derive(Default)]
struct Inner {
    /// Per-outcome request latency, microseconds (indexed by
    /// [`Outcome::index`]).
    latency_us: [Histogram; 4],
    /// Time solve jobs sat in the worker queue, microseconds.
    queue_wait_us: Histogram,
    /// Time solve jobs spent executing on a worker, microseconds.
    worker_busy_us: Histogram,
    /// Driver executions per engine name, insertion-ordered (the
    /// snapshot renderer sorts).
    engine_runs: Vec<(String, u64)>,
}

/// The server's metrics plane: one instance per server, shared by all
/// sessions and workers.
pub struct ServerObs {
    inner: Mutex<Inner>,
    /// Requests answered with an error frame (parse failures included).
    errors: AtomicU64,
    /// Solve jobs submitted to the pool but not yet picked up.
    queue_depth: AtomicU64,
    queue_depth_high_water: AtomicU64,
}

impl ServerObs {
    /// A fresh metrics plane with every counter at zero.
    pub fn new() -> Self {
        ServerObs {
            inner: Mutex::new(Inner::default()),
            errors: AtomicU64::new(0),
            queue_depth: AtomicU64::new(0),
            queue_depth_high_water: AtomicU64::new(0),
        }
    }

    /// Records one answered `solve` request.
    pub fn record_latency(&self, outcome: Outcome, micros: u64) {
        self.inner.lock().unwrap().latency_us[outcome.index()].record(micros);
    }

    /// Records one request answered with an error frame (also feeds
    /// [`Outcome::Error`] latency when the request got that far — parse
    /// failures only move this counter).
    pub fn record_error(&self) {
        self.errors.fetch_add(1, Ordering::Relaxed);
    }

    /// Records a worker job's queue wait and on-worker execution time.
    pub fn record_job(&self, queue_wait_micros: u64, busy_micros: u64) {
        let mut inner = self.inner.lock().unwrap();
        inner.queue_wait_us.record(queue_wait_micros);
        inner.worker_busy_us.record(busy_micros);
    }

    /// Records one driver execution under `engine`.
    pub fn record_engine_run(&self, engine: &str) {
        let mut inner = self.inner.lock().unwrap();
        match inner
            .engine_runs
            .iter_mut()
            .find(|(name, _)| name == engine)
        {
            Some((_, count)) => *count += 1,
            None => inner.engine_runs.push((engine.to_string(), 1)),
        }
    }

    /// A solve job entered the worker queue.
    pub fn job_submitted(&self) {
        let depth = self.queue_depth.fetch_add(1, Ordering::Relaxed) + 1;
        self.queue_depth_high_water
            .fetch_max(depth, Ordering::Relaxed);
    }

    /// A worker picked the job up (it is no longer queued).
    pub fn job_started(&self) {
        self.queue_depth.fetch_sub(1, Ordering::Relaxed);
    }

    /// Jobs currently submitted but not yet picked up by a worker.
    pub fn queue_depth(&self) -> u64 {
        self.queue_depth.load(Ordering::Relaxed)
    }

    /// Requests answered with an error frame so far.
    pub fn errors(&self) -> u64 {
        self.errors.load(Ordering::Relaxed)
    }

    /// Copies the histogram state into a partially-filled snapshot.
    /// The caller owns the plain counters (requests, cache state,
    /// workers); this fills everything the metrics plane aggregates.
    pub fn fill_snapshot(&self, snap: &mut MetricsSnapshot) {
        snap.errors = self.errors();
        snap.queue_depth = self.queue_depth();
        snap.queue_depth_high_water = self.queue_depth_high_water.load(Ordering::Relaxed);
        let inner = self.inner.lock().unwrap();
        snap.latency_cold_us = inner.latency_us[Outcome::Cold.index()].clone();
        snap.latency_hit_us = inner.latency_us[Outcome::Hit.index()].clone();
        snap.latency_pending_us = inner.latency_us[Outcome::Wait.index()].clone();
        snap.latency_error_us = inner.latency_us[Outcome::Error.index()].clone();
        snap.queue_wait_us = inner.queue_wait_us.clone();
        snap.worker_busy_us = inner.worker_busy_us.clone();
        snap.engine_runs = inner.engine_runs.clone();
    }
}

impl Default for ServerObs {
    fn default() -> Self {
        ServerObs::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn outcomes_land_in_their_own_histograms() {
        let obs = ServerObs::new();
        obs.record_latency(Outcome::Cold, 900);
        obs.record_latency(Outcome::Hit, 40);
        obs.record_latency(Outcome::Hit, 60);
        obs.record_latency(Outcome::Wait, 500);
        obs.record_error();
        obs.record_latency(Outcome::Error, 10);
        let mut snap = MetricsSnapshot::default();
        obs.fill_snapshot(&mut snap);
        assert_eq!(snap.latency_cold_us.count(), 1);
        assert_eq!(snap.latency_hit_us.count(), 2);
        assert_eq!(snap.latency_pending_us.count(), 1);
        assert_eq!(snap.latency_error_us.count(), 1);
        assert_eq!(snap.errors, 1);
        assert_eq!(snap.latency_cold_us.max(), 900);
    }

    #[test]
    fn queue_depth_tracks_submit_start_and_high_water() {
        let obs = ServerObs::new();
        obs.job_submitted();
        obs.job_submitted();
        assert_eq!(obs.queue_depth(), 2);
        obs.job_started();
        assert_eq!(obs.queue_depth(), 1);
        obs.job_started();
        let mut snap = MetricsSnapshot::default();
        obs.fill_snapshot(&mut snap);
        assert_eq!(snap.queue_depth, 0);
        assert_eq!(snap.queue_depth_high_water, 2);
    }

    #[test]
    fn engine_runs_accumulate_per_name() {
        let obs = ServerObs::new();
        obs.record_engine_run("round-sync");
        obs.record_engine_run("event-unit");
        obs.record_engine_run("round-sync");
        let mut snap = MetricsSnapshot::default();
        obs.fill_snapshot(&mut snap);
        assert_eq!(
            snap.engine_runs,
            vec![("round-sync".to_string(), 2), ("event-unit".to_string(), 1)]
        );
    }
}
