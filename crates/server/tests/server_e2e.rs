//! End-to-end tests over real sockets: determinism under concurrency,
//! exact cache replay, protocol error handling, disconnect and
//! shutdown behaviour.

use lpt_server::{Client, RunSpecKey, Server, ServerConfig, ServerHandle};
use std::io::Write;
use std::net::TcpStream;
use std::time::Duration;

fn spawn(config: ServerConfig) -> ServerHandle {
    Server::bind("127.0.0.1:0", config).expect("bind ephemeral port")
}

fn small_cfg() -> ServerConfig {
    ServerConfig {
        workers: 3,
        queue_capacity: 8,
        cache_capacity: 16,
        idle_timeout: Duration::from_secs(30),
        engine_threads: 1,
    }
}

fn demo_key(seed: u64) -> RunSpecKey {
    RunSpecKey::new("duo-disk", 512, 64, seed)
}

#[test]
fn concurrent_identical_specs_stream_identical_bytes_from_one_run() {
    let server = spawn(small_cfg());
    let addr = server.addr();
    let handles: Vec<_> = (0..6)
        .map(|_| {
            std::thread::spawn(move || {
                let mut client = Client::connect(addr).unwrap();
                client.solve(&demo_key(42)).unwrap()
            })
        })
        .collect();
    let replies: Vec<_> = handles.into_iter().map(|h| h.join().unwrap()).collect();
    for reply in &replies {
        assert!(reply.error.is_none(), "unexpected error: {:?}", reply.error);
        assert_eq!(reply.raw, replies[0].raw, "streams must be byte-identical");
        let summary = reply.summary.as_ref().unwrap();
        assert_eq!(reply.rounds.len() as u64, summary.rounds);
    }
    let stats = server.stats();
    assert_eq!(stats.runs, 1, "six requests, exactly one driver run");
    assert_eq!(stats.misses, 1);
    assert_eq!(stats.hits, 5);
    server.shutdown();
    server.wait();
}

#[test]
fn cache_hit_replays_the_cold_bytes_without_rerunning() {
    let server = spawn(small_cfg());
    let mut client = Client::connect(server.addr()).unwrap();
    let cold = client.solve(&demo_key(7)).unwrap();
    assert!(cold.error.is_none());
    assert_eq!(server.stats().runs, 1);
    // Resubmit on the same session and on a fresh one.
    let warm = client.solve(&demo_key(7)).unwrap();
    let mut other = Client::connect(server.addr()).unwrap();
    let warm2 = other.solve(&demo_key(7)).unwrap();
    assert_eq!(warm.raw, cold.raw, "replayed bytes differ from cold run");
    assert_eq!(warm2.raw, cold.raw);
    let stats = server.stats();
    assert_eq!(stats.runs, 1, "cache hits must not re-execute");
    assert_eq!(stats.hits, 2);
    // A different seed is a different key: miss, new run.
    let other_reply = client.solve(&demo_key(8)).unwrap();
    assert_ne!(other_reply.raw, cold.raw);
    assert_eq!(server.stats().runs, 2);
}

/// Per-run parallelism composes with cross-run concurrency: a server
/// whose workers each install a multi-threaded engine pool must stream
/// the same bytes as a single-threaded cold run of the same specs.
/// The specs use `n = 4096` — the engine's default parallel threshold
/// — so the multi-threaded server's runs genuinely take the parallel
/// stepping path (the sequential reference server's one-wide pools
/// resolve to sequential execution for the same spec).
#[test]
fn threaded_engine_replies_match_single_threaded_cold_runs() {
    use lpt_server::StopSpec;
    let key = |seed: u64| {
        let mut k = RunSpecKey::new("duo-disk", 4096, 4096, seed);
        k.stop = StopSpec::RoundBudget(6);
        k
    };
    // Sequential reference: fresh server, engine_threads = 1.
    let reference = spawn(small_cfg());
    let mut ref_client = Client::connect(reference.addr()).unwrap();
    let expected: Vec<_> = (0..3).map(|s| ref_client.solve(&key(s)).unwrap()).collect();

    // Threaded server: 2 workers × 2 engine threads, hammered by 6
    // concurrent sessions (2 per spec, so hits and misses interleave
    // while both engine pools are busy).
    let threaded = spawn(ServerConfig {
        workers: 2,
        engine_threads: 2,
        ..small_cfg()
    });
    let addr = threaded.addr();
    let handles: Vec<_> = (0..6)
        .map(|i| {
            let key = key(i % 3);
            std::thread::spawn(move || {
                let mut client = Client::connect(addr).unwrap();
                client.solve(&key).unwrap()
            })
        })
        .collect();
    let replies: Vec<_> = handles.into_iter().map(|h| h.join().unwrap()).collect();
    for (i, reply) in replies.iter().enumerate() {
        assert!(reply.error.is_none(), "unexpected error: {:?}", reply.error);
        assert_eq!(
            reply.raw,
            expected[i % 3].raw,
            "threaded-engine reply for seed {} must be byte-identical to the \
             sequential cold run",
            i % 3
        );
    }
    assert_eq!(threaded.stats().runs, 3, "one driver run per distinct spec");
}

#[test]
fn independent_servers_agree_byte_for_byte() {
    let mut key = RunSpecKey::new("triple-disk", 256, 48, 11);
    key.fault = "datacenter".to_string();
    key.topology = "hypercube".to_string();
    let reply_from = |server: &ServerHandle| {
        let mut client = Client::connect(server.addr()).unwrap();
        client.solve(&key).unwrap()
    };
    let a = spawn(small_cfg());
    let b = spawn(small_cfg());
    let ra = reply_from(&a);
    let rb = reply_from(&b);
    assert!(ra.error.is_none());
    assert_eq!(
        ra.raw, rb.raw,
        "two fresh servers must render the same spec identically"
    );
}

#[test]
fn malformed_requests_get_typed_errors_and_the_session_survives() {
    let server = spawn(small_cfg());
    let mut client = Client::connect(server.addr()).unwrap();
    for (line, code) in [
        ("this is not json", "200"),
        ("{\"cmd\":\"dance\"}", "201"),
        ("{\"cmd\":\"solve\",\"n\":8}", "202"),
        (
            "{\"cmd\":\"solve\",\"workload\":\"duo-disk\",\"n\":-3}",
            "203",
        ),
    ] {
        let reply = client.raw_line(line).unwrap();
        assert!(
            reply.contains("\"frame\":\"error\"") && reply.contains(&format!("\"code\":{code}")),
            "line {line:?} should yield error code {code}, got: {reply}"
        );
    }
    // Unknown presets resolve server-side, also as typed errors.
    let mut key = demo_key(1);
    key.fault = "solar-flare".to_string();
    let reply = client.solve(&key).unwrap();
    assert_eq!(reply.error.as_ref().map(|e| e.code), Some(205));
    // The session is still usable after all those errors.
    let ok = client.solve(&demo_key(1)).unwrap();
    assert!(ok.error.is_none());
}

#[test]
fn mid_run_disconnect_leaves_the_server_healthy() {
    let server = spawn(small_cfg());
    // Fire a solve and slam the connection shut without reading.
    {
        let mut stream = TcpStream::connect(server.addr()).unwrap();
        let line = lpt_server::solve_request_line(&demo_key(99));
        stream.write_all(line.as_bytes()).unwrap();
        stream.write_all(b"\n").unwrap();
        // Drop: the session's reply write fails server-side.
    }
    // The server still serves other sessions, including that same spec.
    let mut client = Client::connect(server.addr()).unwrap();
    let reply = client.solve(&demo_key(99)).unwrap();
    assert!(reply.error.is_none());
    assert!(reply.summary.is_some());
    let reply2 = client.solve(&demo_key(100)).unwrap();
    assert!(reply2.error.is_none());
}

#[test]
fn idle_sessions_are_closed_with_a_typed_timeout_frame() {
    let server = spawn(ServerConfig {
        idle_timeout: Duration::from_millis(300),
        ..small_cfg()
    });
    let mut client = Client::connect(server.addr()).unwrap();
    // First request keeps the session alive…
    assert!(client.solve(&demo_key(5)).unwrap().error.is_none());
    // …then silence: the server must close us with code 211.
    let line = client.raw_wait_line().unwrap();
    assert!(
        line.contains("\"code\":211"),
        "expected idle-timeout frame, got: {line}"
    );
}

#[test]
fn oversized_request_lines_are_rejected() {
    let server = spawn(small_cfg());
    let mut client = Client::connect(server.addr()).unwrap();
    let huge = format!("{{\"cmd\":\"solve\",\"pad\":\"{}\"", "x".repeat(80 * 1024));
    let reply = client.raw_line(&huge).unwrap();
    assert!(
        reply.contains("\"code\":210"),
        "expected request-too-large, got: {reply}"
    );
}

#[test]
fn shutdown_acknowledges_then_drains_everything() {
    let server = spawn(small_cfg());
    let addr = server.addr();
    let mut client = Client::connect(addr).unwrap();
    assert!(client.solve(&demo_key(3)).unwrap().error.is_none());
    client.shutdown().unwrap();
    // wait() returning proves accept loop, sessions, and workers all
    // exited.
    server.wait();
    // New connections are refused (or immediately closed) afterwards.
    match Client::connect(addr) {
        Err(_) => {}
        Ok(mut c) => {
            assert!(c.solve(&demo_key(3)).is_err());
        }
    }
}
