//! End-to-end tests over real sockets: determinism under concurrency,
//! exact cache replay, protocol error handling, disconnect and
//! shutdown behaviour.

use lpt_server::{Client, RunSpecKey, Server, ServerConfig, ServerHandle};
use std::io::Write;
use std::net::TcpStream;
use std::time::Duration;

fn spawn(config: ServerConfig) -> ServerHandle {
    Server::bind("127.0.0.1:0", config).expect("bind ephemeral port")
}

fn small_cfg() -> ServerConfig {
    ServerConfig {
        workers: 3,
        queue_capacity: 8,
        cache_capacity: 16,
        idle_timeout: Duration::from_secs(30),
        engine_threads: 1,
        solve_timeout: None,
    }
}

fn demo_key(seed: u64) -> RunSpecKey {
    RunSpecKey::new("duo-disk", 512, 64, seed)
}

#[test]
fn concurrent_identical_specs_stream_identical_bytes_from_one_run() {
    let server = spawn(small_cfg());
    let addr = server.addr();
    let handles: Vec<_> = (0..6)
        .map(|_| {
            std::thread::spawn(move || {
                let mut client = Client::connect(addr).unwrap();
                client.solve(&demo_key(42)).unwrap()
            })
        })
        .collect();
    let replies: Vec<_> = handles.into_iter().map(|h| h.join().unwrap()).collect();
    for reply in &replies {
        assert!(reply.error.is_none(), "unexpected error: {:?}", reply.error);
        assert_eq!(reply.raw, replies[0].raw, "streams must be byte-identical");
        let summary = reply.summary.as_ref().unwrap();
        assert_eq!(reply.rounds.len() as u64, summary.rounds);
    }
    let stats = server.stats();
    assert_eq!(stats.runs, 1, "six requests, exactly one driver run");
    assert_eq!(stats.misses, 1);
    assert_eq!(stats.hits, 5);
    server.shutdown();
    server.wait();
}

#[test]
fn cache_hit_replays_the_cold_bytes_without_rerunning() {
    let server = spawn(small_cfg());
    let mut client = Client::connect(server.addr()).unwrap();
    let cold = client.solve(&demo_key(7)).unwrap();
    assert!(cold.error.is_none());
    assert_eq!(server.stats().runs, 1);
    // Resubmit on the same session and on a fresh one.
    let warm = client.solve(&demo_key(7)).unwrap();
    let mut other = Client::connect(server.addr()).unwrap();
    let warm2 = other.solve(&demo_key(7)).unwrap();
    assert_eq!(warm.raw, cold.raw, "replayed bytes differ from cold run");
    assert_eq!(warm2.raw, cold.raw);
    let stats = server.stats();
    assert_eq!(stats.runs, 1, "cache hits must not re-execute");
    assert_eq!(stats.hits, 2);
    // A different seed is a different key: miss, new run.
    let other_reply = client.solve(&demo_key(8)).unwrap();
    assert_ne!(other_reply.raw, cold.raw);
    assert_eq!(server.stats().runs, 2);
}

/// Per-run parallelism composes with cross-run concurrency: a server
/// whose workers each install a multi-threaded engine pool must stream
/// the same bytes as a single-threaded cold run of the same specs.
/// The specs use `n = 4096` — the engine's default parallel threshold
/// — so the multi-threaded server's runs genuinely take the parallel
/// stepping path (the sequential reference server's one-wide pools
/// resolve to sequential execution for the same spec).
#[test]
fn threaded_engine_replies_match_single_threaded_cold_runs() {
    use lpt_server::StopSpec;
    let key = |seed: u64| {
        let mut k = RunSpecKey::new("duo-disk", 4096, 4096, seed);
        k.stop = StopSpec::RoundBudget(6);
        k
    };
    // Sequential reference: fresh server, engine_threads = 1.
    let reference = spawn(small_cfg());
    let mut ref_client = Client::connect(reference.addr()).unwrap();
    let expected: Vec<_> = (0..3).map(|s| ref_client.solve(&key(s)).unwrap()).collect();

    // Threaded server: 2 workers × 2 engine threads, hammered by 6
    // concurrent sessions (2 per spec, so hits and misses interleave
    // while both engine pools are busy).
    let threaded = spawn(ServerConfig {
        workers: 2,
        engine_threads: 2,
        ..small_cfg()
    });
    let addr = threaded.addr();
    let handles: Vec<_> = (0..6)
        .map(|i| {
            let key = key(i % 3);
            std::thread::spawn(move || {
                let mut client = Client::connect(addr).unwrap();
                client.solve(&key).unwrap()
            })
        })
        .collect();
    let replies: Vec<_> = handles.into_iter().map(|h| h.join().unwrap()).collect();
    for (i, reply) in replies.iter().enumerate() {
        assert!(reply.error.is_none(), "unexpected error: {:?}", reply.error);
        assert_eq!(
            reply.raw,
            expected[i % 3].raw,
            "threaded-engine reply for seed {} must be byte-identical to the \
             sequential cold run",
            i % 3
        );
    }
    assert_eq!(threaded.stats().runs, 3, "one driver run per distinct spec");
}

#[test]
fn independent_servers_agree_byte_for_byte() {
    let mut key = RunSpecKey::new("triple-disk", 256, 48, 11);
    key.fault = "datacenter".to_string();
    key.topology = "hypercube".to_string();
    let reply_from = |server: &ServerHandle| {
        let mut client = Client::connect(server.addr()).unwrap();
        client.solve(&key).unwrap()
    };
    let a = spawn(small_cfg());
    let b = spawn(small_cfg());
    let ra = reply_from(&a);
    let rb = reply_from(&b);
    assert!(ra.error.is_none());
    assert_eq!(
        ra.raw, rb.raw,
        "two fresh servers must render the same spec identically"
    );
}

#[test]
fn malformed_requests_get_typed_errors_and_the_session_survives() {
    let server = spawn(small_cfg());
    let mut client = Client::connect(server.addr()).unwrap();
    for (line, code) in [
        ("this is not json", "200"),
        ("{\"cmd\":\"dance\"}", "201"),
        ("{\"cmd\":\"solve\",\"n\":8}", "202"),
        (
            "{\"cmd\":\"solve\",\"workload\":\"duo-disk\",\"n\":-3}",
            "203",
        ),
    ] {
        let reply = client.raw_line(line).unwrap();
        assert!(
            reply.contains("\"frame\":\"error\"") && reply.contains(&format!("\"code\":{code}")),
            "line {line:?} should yield error code {code}, got: {reply}"
        );
    }
    // Unknown presets resolve server-side, also as typed errors.
    let mut key = demo_key(1);
    key.fault = "solar-flare".to_string();
    let reply = client.solve(&key).unwrap();
    assert_eq!(reply.error.as_ref().map(|e| e.code), Some(205));
    // The session is still usable after all those errors.
    let ok = client.solve(&demo_key(1)).unwrap();
    assert!(ok.error.is_none());
}

#[test]
fn mid_run_disconnect_leaves_the_server_healthy() {
    let server = spawn(small_cfg());
    // Fire a solve and slam the connection shut without reading.
    {
        let mut stream = TcpStream::connect(server.addr()).unwrap();
        let line = lpt_server::solve_request_line(&demo_key(99));
        stream.write_all(line.as_bytes()).unwrap();
        stream.write_all(b"\n").unwrap();
        // Drop: the session's reply write fails server-side.
    }
    // The server still serves other sessions, including that same spec.
    let mut client = Client::connect(server.addr()).unwrap();
    let reply = client.solve(&demo_key(99)).unwrap();
    assert!(reply.error.is_none());
    assert!(reply.summary.is_some());
    let reply2 = client.solve(&demo_key(100)).unwrap();
    assert!(reply2.error.is_none());
}

#[test]
fn idle_sessions_are_closed_with_a_typed_timeout_frame() {
    let server = spawn(ServerConfig {
        idle_timeout: Duration::from_millis(300),
        ..small_cfg()
    });
    let mut client = Client::connect(server.addr()).unwrap();
    // First request keeps the session alive…
    assert!(client.solve(&demo_key(5)).unwrap().error.is_none());
    // …then silence: the server must close us with code 211.
    let line = client.raw_wait_line().unwrap();
    assert!(
        line.contains("\"code\":211"),
        "expected idle-timeout frame, got: {line}"
    );
}

#[test]
fn oversized_request_lines_are_rejected() {
    let server = spawn(small_cfg());
    let mut client = Client::connect(server.addr()).unwrap();
    let huge = format!("{{\"cmd\":\"solve\",\"pad\":\"{}\"", "x".repeat(80 * 1024));
    let reply = client.raw_line(&huge).unwrap();
    assert!(
        reply.contains("\"code\":210"),
        "expected request-too-large, got: {reply}"
    );
}

/// The crash-safety drill: a panicking workload must come back as a
/// typed `worker-panicked` frame, leave the pool at full width, and
/// release the pending cache key so nothing downstream wedges.
#[test]
fn worker_panic_yields_typed_frame_and_the_pool_survives() {
    let server = spawn(small_cfg());
    let mut client = Client::connect(server.addr()).unwrap();
    let chaos = RunSpecKey::new(lpt_server::CHAOS_PANIC_WORKLOAD, 64, 16, 1);

    let reply = client.solve(&chaos).unwrap();
    let err = reply.error.expect("panic must produce an error frame");
    assert_eq!(err.code, 212, "expected worker-panicked, got {err:?}");
    assert_eq!(err.kind, "worker-panicked");
    assert!(
        err.detail.contains("chaos-panic"),
        "panic payload should surface in the frame: {err:?}"
    );

    // The pool self-healed: full worker width, one contained panic.
    let stats = client.stats().unwrap();
    assert_eq!(stats.workers, 3, "panics must not shrink the pool");
    assert_eq!(stats.worker_panics, 1);
    assert_eq!(stats.runs, 0, "the panicking job never counts as a run");

    // The key is not wedged: resubmitting re-executes (and panics
    // again — a prompt typed answer, not a hang) on the same session.
    let again = client.solve(&chaos).unwrap();
    assert_eq!(again.error.as_ref().map(|e| e.code), Some(212));
    assert_eq!(client.stats().unwrap().worker_panics, 2);

    // And ordinary work still flows through the surviving workers.
    let ok = client.solve(&demo_key(21)).unwrap();
    assert!(ok.error.is_none(), "unexpected error: {:?}", ok.error);
    assert!(ok.summary.is_some());
    let stats = server.stats();
    assert_eq!(stats.workers, 3);
    assert_eq!(stats.runs, 1);
}

/// A run that outlives the solve deadline is cancelled cooperatively
/// and answered with a typed `solve-timeout` frame; the key stays
/// usable (re-asking gets a fresh answer, not a wedge) and nothing
/// timing-dependent lands in the cache.
#[test]
fn solve_timeout_cancels_overrunning_runs_with_a_typed_frame() {
    use lpt_server::StopSpec;
    let server = spawn(ServerConfig {
        solve_timeout: Some(Duration::from_millis(1)),
        ..small_cfg()
    });
    let mut client = Client::connect(server.addr()).unwrap();
    // Big enough that one round costs well over the 1 ms deadline.
    let mut slow = RunSpecKey::new("duo-disk", 4096, 4096, 1);
    slow.stop = StopSpec::RoundBudget(5_000);

    let reply = client.solve(&slow).unwrap();
    let err = reply.error.expect("deadline must produce an error frame");
    assert_eq!(err.code, 213, "expected solve-timeout, got {err:?}");
    assert_eq!(err.kind, "solve-timeout");

    // Not wedged, not cached: the same key answers again promptly
    // (timing out again — deterministically slow is still slow).
    let again = client.solve(&slow).unwrap();
    assert_eq!(again.error.as_ref().map(|e| e.code), Some(213));
    let stats = server.stats();
    assert_eq!(stats.cache_entries, 0, "timed-out runs must not be cached");
    assert_eq!(stats.workers, 3);

    // A generous deadline is byte-invisible: runs that finish inside
    // it stream the normal reply (the cancel flag exists but is never
    // raised, which the engine contract keeps byte-identical).
    let lenient = spawn(ServerConfig {
        solve_timeout: Some(Duration::from_secs(120)),
        ..small_cfg()
    });
    let mut client = Client::connect(lenient.addr()).unwrap();
    let reply = client.solve(&demo_key(2)).unwrap();
    assert!(reply.error.is_none(), "unexpected error: {:?}", reply.error);
    assert!(reply.summary.is_some());
}

/// The client's retry loop must survive the server tearing the session
/// down (idle timeout here): reconnect on backoff, resubmit, and get
/// the byte-exact cached reply.
#[test]
fn client_retry_reconnects_and_resubmits_idempotently() {
    use lpt_server::RetryPolicy;
    let server = spawn(ServerConfig {
        idle_timeout: Duration::from_millis(200),
        ..small_cfg()
    });
    let mut client = Client::connect(server.addr()).unwrap();
    let cold = client.solve(&demo_key(31)).unwrap();
    assert!(cold.error.is_none());

    // Let the server expire and close the session.
    std::thread::sleep(Duration::from_millis(600));

    let policy = RetryPolicy {
        attempts: 4,
        base_delay: Duration::from_millis(20),
        max_delay: Duration::from_millis(100),
    };
    let retried = client.solve_with_retry(&demo_key(31), &policy).unwrap();
    assert!(retried.error.is_none(), "retry should reconnect and solve");
    assert_eq!(
        retried.raw, cold.raw,
        "resubmitted solve must replay the cold run's exact bytes"
    );
    let stats = server.stats();
    assert_eq!(stats.runs, 1, "the resubmit must hit the cache, not re-run");

    // connect_with_retry against a live server succeeds immediately.
    let mut fresh = Client::connect_with_retry(server.addr(), &policy).unwrap();
    assert!(fresh.solve(&demo_key(31)).unwrap().error.is_none());
}

/// Adversarial-scenario runs are as cacheable as any other: the reply
/// is a pure function of the spec, so a resubmit is a byte-exact hit.
#[test]
fn adversarial_scenario_replies_are_cached_byte_exact() {
    let server = spawn(small_cfg());
    let mut client = Client::connect(server.addr()).unwrap();
    for (seed, fault, topology) in [(61, "partition", "rr8"), (62, "byzantine", "hypercube")] {
        let mut key = demo_key(seed);
        key.fault = fault.to_string();
        key.topology = topology.to_string();
        let cold = client.solve(&key).unwrap();
        assert!(cold.error.is_none(), "{fault}: {:?}", cold.error);
        let warm = client.solve(&key).unwrap();
        assert_eq!(warm.raw, cold.raw, "{fault} replay must be byte-exact");
    }
    let stats = server.stats();
    assert_eq!(stats.runs, 2, "one driver run per adversarial spec");
    assert_eq!(stats.hits, 2);
}

/// A non-default engine requested over the wire must actually drive
/// the run, not just relabel it: a latency-3 link plan stretches the
/// trajectory over more rounds than round-sync, the header echoes the
/// engine name, and each engine caches under its own key with
/// byte-exact replay. (The unit-latency plan is byte-identical to
/// round-sync by the degeneracy contract, so only a non-unit plan can
/// detect an engine that silently never reaches the driver.)
#[test]
fn non_default_engine_diverges_over_the_wire_and_caches_separately() {
    use lpt_gossip::Engine;
    let server = spawn(small_cfg());
    let mut client = Client::connect(server.addr()).unwrap();

    let sync_key = demo_key(13);
    let mut event_key = sync_key.clone();
    event_key.engine = Engine::parse("event-const-3").unwrap();

    let sync = client.solve(&sync_key).unwrap();
    let event = client.solve(&event_key).unwrap();
    assert!(sync.error.is_none(), "{:?}", sync.error);
    assert!(event.error.is_none(), "{:?}", event.error);

    let header = event.header.as_ref().unwrap();
    assert_eq!(header.engine, "event-const-3");
    assert_eq!(sync.header.as_ref().unwrap().engine, "");

    let (ss, es) = (
        sync.summary.as_ref().unwrap(),
        event.summary.as_ref().unwrap(),
    );
    assert!(
        es.rounds > ss.rounds,
        "latency-3 links must cost more rounds than round-sync \
         ({} vs {}); equal counts mean the engine was never applied",
        es.rounds,
        ss.rounds
    );
    assert!(es.all_halted, "the event run must still converge");
    assert_eq!(event.rounds.len() as u64, es.rounds);

    // Distinct engines are distinct cache keys; replays are byte-exact
    // and never re-execute.
    assert_eq!(server.stats().runs, 2, "one driver run per engine");
    let warm = client.solve(&event_key).unwrap();
    assert_eq!(warm.raw, event.raw, "event reply must replay byte-exact");
    let stats = server.stats();
    assert_eq!(stats.runs, 2, "the replay must hit the cache");
    assert_eq!(stats.hits, 1);
}

/// The metrics plane observes without perturbing: after a cold run and
/// a cache hit the snapshot shows both latency histograms populated,
/// the cold p50 at or above the hit p50 (a replay never costs more
/// than the run it replays), and the run attributed to its engine.
#[test]
fn metrics_snapshot_splits_cold_and_hit_latencies() {
    use gossip_sim::export::Json;
    let server = spawn(small_cfg());
    let mut client = Client::connect(server.addr()).unwrap();
    let cold = client.solve(&demo_key(71)).unwrap();
    assert!(cold.error.is_none());
    let warm = client.solve(&demo_key(71)).unwrap();
    assert_eq!(warm.raw, cold.raw);

    let line = client.metrics_line().unwrap();
    let v = Json::parse(&line).unwrap();
    let u = |name: &str| {
        v.get(name)
            .and_then(Json::as_u64)
            .unwrap_or_else(|| panic!("metrics frame is missing {name}: {line}"))
    };
    assert_eq!(u("requests_total"), 3, "two solves + this metrics call");
    assert_eq!(u("hits_total"), 1);
    assert_eq!(u("misses_total"), 1);
    assert_eq!(u("runs_total"), 1);
    assert_eq!(u("latency_cold_count"), 1);
    assert_eq!(u("latency_hit_count"), 1);
    assert!(
        u("latency_cold_p50_us") >= u("latency_hit_p50_us"),
        "a cache replay must not look slower than the run it replays: {line}"
    );
    assert_eq!(u("queue_wait_count"), 1, "one job crossed the queue");
    assert_eq!(u("worker_busy_count"), 1);
    assert_eq!(u("queue_depth"), 0, "nothing in flight at snapshot time");
    assert_eq!(u("cache_entries"), 1);
    assert!(u("cache_bytes") > 0, "the cached reply has bytes");
    assert_eq!(u("runs_engine_round_sync"), 1, "run attributed to engine");
}

/// `"trace": true` appends exactly one trace frame after the reply —
/// and the reply proper stays byte-identical to the untraced one, on
/// both the cold and the cached path.
#[test]
fn traced_solves_append_a_frame_without_touching_reply_bytes() {
    use gossip_sim::export::Json;
    let server = spawn(small_cfg());
    let mut client = Client::connect(server.addr()).unwrap();
    let key = demo_key(81);
    let untraced = client.solve(&key).unwrap();
    assert!(untraced.error.is_none());

    let traced_line = {
        let line = lpt_server::solve_request_line(&key);
        // Splice the trace flag into the canonical request line.
        format!("{},\"trace\":true}}", &line[..line.len() - 1])
    };
    let mut run_traced = || {
        let mut raw = Vec::new();
        let mut first = client.raw_line(&traced_line).unwrap();
        loop {
            let v = Json::parse(first.trim_end()).unwrap();
            if v.get("frame").and_then(Json::as_str) == Some("trace") {
                return (raw, v);
            }
            raw.extend_from_slice(first.as_bytes());
            first = client.raw_wait_line().unwrap();
        }
    };

    // Cached path (the cold run above populated the cache).
    let (hit_raw, hit_trace) = run_traced();
    assert_eq!(
        hit_raw, untraced.raw,
        "traced hit reply must be byte-identical before the trace frame"
    );
    assert_eq!(hit_trace.get("outcome").and_then(Json::as_str), Some("hit"));
    assert!(
        hit_trace.get("phase_serve_us").is_none(),
        "a replay has no phase breakdown — no run happened"
    );

    // Cold path: a fresh server recomputes with the recorder on; the
    // bytes still match the recorder-off run bit for bit.
    let cold_server = spawn(small_cfg());
    let mut client = Client::connect(cold_server.addr()).unwrap();
    let (cold_raw, cold_trace) = {
        let mut raw = Vec::new();
        let mut line = client.raw_line(&traced_line).unwrap();
        loop {
            let v = Json::parse(line.trim_end()).unwrap();
            if v.get("frame").and_then(Json::as_str) == Some("trace") {
                break (raw, v);
            }
            raw.extend_from_slice(line.as_bytes());
            line = client.raw_wait_line().unwrap();
        }
    };
    assert_eq!(
        cold_raw, untraced.raw,
        "recording phases must not change one reply byte"
    );
    assert_eq!(
        cold_trace.get("outcome").and_then(Json::as_str),
        Some("cold")
    );
    for phase in ["pull", "serve", "compute", "deliver", "absorb", "refill"] {
        assert!(
            cold_trace.get(&format!("phase_{phase}_us")).is_some(),
            "cold trace must carry the {phase} phase: {cold_trace:?}"
        );
    }
    assert!(
        cold_trace.get("wall_us").and_then(Json::as_u64).is_some(),
        "trace carries the request wall time"
    );
}

#[test]
fn shutdown_acknowledges_then_drains_everything() {
    let server = spawn(small_cfg());
    let addr = server.addr();
    let mut client = Client::connect(addr).unwrap();
    assert!(client.solve(&demo_key(3)).unwrap().error.is_none());
    client.shutdown().unwrap();
    // wait() returning proves accept loop, sessions, and workers all
    // exited.
    server.wait();
    // New connections are refused (or immediately closed) afterwards.
    match Client::connect(addr) {
        Err(_) => {}
        Ok(mut c) => {
            assert!(c.solve(&demo_key(3)).is_err());
        }
    }
}
