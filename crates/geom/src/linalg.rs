//! Dense Gaussian elimination for the tiny (`k ≤ 9`) linear systems used
//! by the circumsphere and LP-vertex solvers.

/// Solves `A x = b` for a square system given in row-major order,
/// destroying `a` and `b`. Returns `None` if the matrix is (numerically)
/// singular.
///
/// Partial pivoting; the relative pivot threshold is scaled by the largest
/// entry of the matrix so that well-conditioned systems of any magnitude
/// are accepted.
pub fn solve_in_place(a: &mut [Vec<f64>], b: &mut [f64]) -> Option<Vec<f64>> {
    let n = b.len();
    debug_assert_eq!(a.len(), n);
    debug_assert!(a.iter().all(|row| row.len() == n));
    let scale = a
        .iter()
        .flat_map(|r| r.iter())
        .fold(0.0f64, |m, &x| m.max(x.abs()))
        .max(1e-300);

    for col in 0..n {
        // Partial pivot.
        let mut piv = col;
        for row in col + 1..n {
            if a[row][col].abs() > a[piv][col].abs() {
                piv = row;
            }
        }
        if a[piv][col].abs() <= 1e-12 * scale {
            return None;
        }
        a.swap(col, piv);
        b.swap(col, piv);

        let inv = 1.0 / a[col][col];
        for row in col + 1..n {
            let factor = a[row][col] * inv;
            if factor == 0.0 {
                continue;
            }
            let (head, tail) = a.split_at_mut(row);
            let (pivot_row, this_row) = (&head[col], &mut tail[0]);
            for k in col..n {
                this_row[k] -= factor * pivot_row[k];
            }
            b[row] -= factor * b[col];
        }
    }

    let mut x = vec![0.0; n];
    for col in (0..n).rev() {
        let mut s = b[col];
        for k in col + 1..n {
            s -= a[col][k] * x[k];
        }
        x[col] = s / a[col][col];
    }
    Some(x)
}

/// Solves `A x = b` without destroying the inputs.
pub fn solve(a: &[Vec<f64>], b: &[f64]) -> Option<Vec<f64>> {
    let mut a = a.to_vec();
    let mut b = b.to_vec();
    solve_in_place(&mut a, &mut b)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn solves_2x2() {
        let a = vec![vec![2.0, 1.0], vec![1.0, 3.0]];
        let b = vec![5.0, 10.0];
        let x = solve(&a, &b).unwrap();
        assert!((x[0] - 1.0).abs() < 1e-12);
        assert!((x[1] - 3.0).abs() < 1e-12);
    }

    #[test]
    fn solves_3x3_with_pivoting() {
        // First pivot is zero; requires row swap.
        let a = vec![
            vec![0.0, 1.0, 1.0],
            vec![2.0, 0.0, 1.0],
            vec![1.0, 1.0, 0.0],
        ];
        let b = vec![5.0, 5.0, 3.0];
        let x = solve(&a, &b).unwrap();
        // Verify residual instead of hand-solving.
        for (row, &bi) in a.iter().zip(&b) {
            let r: f64 = row.iter().zip(&x).map(|(c, v)| c * v).sum();
            assert!((r - bi).abs() < 1e-10);
        }
    }

    #[test]
    fn singular_matrix_is_none() {
        let a = vec![vec![1.0, 2.0], vec![2.0, 4.0]];
        let b = vec![1.0, 2.0];
        assert!(solve(&a, &b).is_none());
    }

    #[test]
    fn scale_invariance() {
        let a = vec![vec![2e12, 1e12], vec![1e12, 3e12]];
        let b = vec![5e12, 10e12];
        let x = solve(&a, &b).unwrap();
        assert!((x[0] - 1.0).abs() < 1e-9);
        assert!((x[1] - 3.0).abs() < 1e-9);
    }

    #[test]
    fn identity_system() {
        let a = vec![
            vec![1.0, 0.0, 0.0],
            vec![0.0, 1.0, 0.0],
            vec![0.0, 0.0, 1.0],
        ];
        let b = vec![7.0, -2.0, 0.5];
        assert_eq!(solve(&a, &b).unwrap(), b);
    }
}
