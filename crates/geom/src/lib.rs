//! # `lpt-geom` — computational-geometry substrate
//!
//! Geometry primitives backing the concrete LP-type problems of the
//! `lpt-problems` crate:
//!
//! * [`Point2`] / [`PointD`] — 2D and small-`d` Euclidean points;
//! * [`Disk`] and the [`welzl`] module — minimum enclosing disk in the
//!   plane (Welzl's randomized algorithm with support-set extraction),
//!   the problem used in the paper's experimental evaluation (Section 5);
//! * [`ball`] — minimum enclosing ball in dimension `d` (generalized
//!   Welzl with a Gaussian-elimination circumsphere solver);
//! * [`hull`] — convex hulls (Andrew's monotone chain), segment
//!   distances, and the distance between two convex polygons (the
//!   *polytope distance* problem of the paper's introduction);
//! * [`lp`] — fixed-dimension linear programming: a Seidel-style
//!   randomized incremental solver for `d = 2` and a vertex-enumeration
//!   solver for small `d`, both over halfspace constraints;
//! * [`linalg`] — dense Gaussian elimination for the tiny linear systems
//!   the circumsphere and vertex solvers need.
//!
//! ## Robustness policy
//!
//! All predicates use `f64` with a single centralized *relative* slack
//! ([`EPS`]): a point is inside a disk/ball if its squared distance to the
//! center is at most `r²·(1 + EPS) + EPS`. Every violation test in the
//! workspace goes through the same containment predicates, so the solvers'
//! internal tests and the external violation tests can never disagree —
//! the property that guarantees termination of Clarkson-style algorithms.
//! Degeneracy (the paper's non-degeneracy assumption, Section 1.1) is
//! handled by deterministic lexicographic tie-breaking rather than by
//! input perturbation; see `DESIGN.md`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod ball;
pub mod disk;
pub mod hull;
pub mod linalg;
pub mod lp;
pub mod point;
pub mod welzl;

pub use ball::{min_enclosing_ball, BallD};
pub use disk::Disk;
pub use hull::{convex_hull, polygon_distance, segment_segment_distance};
pub use lp::{solve_lp_vertex_enum, Halfspace, LpOutcome, LpSolution};
pub use point::{Point2, PointD};
pub use welzl::{min_enclosing_disk, min_enclosing_disk_with_support};

/// Relative slack used by all containment predicates.
pub const EPS: f64 = 1e-9;

/// `true` iff `d2 <= bound2` up to the global slack; the single primitive
/// all containment predicates reduce to.
#[inline]
pub fn leq_with_slack(d2: f64, bound2: f64) -> bool {
    d2 <= bound2 * (1.0 + EPS) + EPS
}
