//! Fixed-dimension linear programming over halfspace constraints.
//!
//! Linear programming with a constant number `d` of variables is the
//! motivating special case of LP-type problems (paper, Section 1.1): `H`
//! is the set of constraints and `f(G)` the optimum of the objective over
//! the polytope `∩G`. This module provides the *small-set solver* that the
//! LP-type machinery needs: [`solve_lp_vertex_enum`] enumerates candidate
//! vertices (intersections of `d` constraint boundaries, including an
//! implicit bounding box that keeps every subproblem bounded) and returns
//! the optimum with deterministic lexicographic tie-breaking. It is
//! exponential in `d` but linear-ish in the constraint count for fixed
//! `d`, which is exactly the regime Clarkson-style algorithms call it in
//! (sets of size `O(d²)`).
//!
//! For full instances the sequential oracle is `lpt::clarkson` over the
//! `FixedDimLp` problem in `lpt-problems`, i.e. the paper's own framework;
//! a dedicated Seidel/Megiddo solver would be redundant here.

use crate::linalg;

/// A halfspace constraint `a · x ≤ b` in `d` variables.
#[derive(Clone, Debug, PartialEq)]
pub struct Halfspace {
    /// Constraint normal (length `d`).
    pub a: Vec<f64>,
    /// Right-hand side.
    pub b: f64,
}

impl Halfspace {
    /// Creates a constraint `a · x ≤ b`.
    pub fn new(a: Vec<f64>, b: f64) -> Self {
        Halfspace { a, b }
    }

    /// Signed slack `b - a·x`; nonnegative iff `x` satisfies the
    /// constraint exactly.
    pub fn slack(&self, x: &[f64]) -> f64 {
        debug_assert_eq!(self.a.len(), x.len());
        self.b - self.a.iter().zip(x).map(|(ai, xi)| ai * xi).sum::<f64>()
    }

    /// Whether `x` satisfies the constraint up to relative tolerance.
    pub fn satisfied(&self, x: &[f64]) -> bool {
        let scale = self
            .a
            .iter()
            .zip(x)
            .map(|(ai, xi)| (ai * xi).abs())
            .fold(self.b.abs(), f64::max)
            .max(1.0);
        self.slack(x) >= -1e-9 * scale
    }
}

/// An optimal solution: the optimizing point and its objective value.
#[derive(Clone, Debug, PartialEq)]
pub struct LpSolution {
    /// The optimal vertex (lexicographically smallest among optima).
    pub x: Vec<f64>,
    /// Objective value `c · x`.
    pub value: f64,
}

/// Outcome of an LP solve.
#[derive(Clone, Debug, PartialEq)]
pub enum LpOutcome {
    /// A bounded optimum was found.
    Optimal(LpSolution),
    /// The constraint set (plus bounding box) is infeasible.
    Infeasible,
}

/// Minimizes `c · x` subject to `constraints` and the implicit bounding
/// box `|x_i| ≤ bound` by vertex enumeration.
///
/// Runs in `O((m + 2d choose d) · poly)` time for `m = constraints.len()`,
/// intended for the small subproblems of LP-type solvers. Determinism: the
/// optimum is the lexicographically smallest optimal vertex under
/// `f64::total_cmp`.
pub fn solve_lp_vertex_enum(c: &[f64], constraints: &[Halfspace], bound: f64) -> LpOutcome {
    let d = c.len();
    assert!(d >= 1, "objective must have at least one variable");
    assert!(
        constraints.iter().all(|h| h.a.len() == d),
        "constraint dimension mismatch"
    );

    // All constraints including the 2d box walls.
    let mut all: Vec<Halfspace> = Vec::with_capacity(constraints.len() + 2 * d);
    all.extend(constraints.iter().cloned());
    for i in 0..d {
        let mut lo = vec![0.0; d];
        lo[i] = -1.0;
        all.push(Halfspace::new(lo, bound)); // -x_i <= bound
        let mut hi = vec![0.0; d];
        hi[i] = 1.0;
        all.push(Halfspace::new(hi, bound)); // x_i <= bound
    }

    let mut best: Option<LpSolution> = None;
    let m = all.len();
    let mut combo: Vec<usize> = (0..d).collect();

    // Enumerate all d-subsets of `all` (lexicographic combination walk).
    loop {
        if let Some(x) = vertex_of(&all, &combo, d) {
            if all.iter().all(|h| h.satisfied(&x)) {
                let value = c.iter().zip(&x).map(|(ci, xi)| ci * xi).sum::<f64>();
                let better = match &best {
                    None => true,
                    Some(cur) => match value.total_cmp(&cur.value) {
                        std::cmp::Ordering::Less => true,
                        std::cmp::Ordering::Greater => false,
                        std::cmp::Ordering::Equal => lex_less(&x, &cur.x),
                    },
                };
                if better {
                    best = Some(LpSolution { x, value });
                }
            }
        }
        // Next combination.
        let mut i = d;
        loop {
            if i == 0 {
                return match best {
                    Some(sol) => LpOutcome::Optimal(sol),
                    None => LpOutcome::Infeasible,
                };
            }
            i -= 1;
            if combo[i] != i + m - d {
                combo[i] += 1;
                for j in i + 1..d {
                    combo[j] = combo[j - 1] + 1;
                }
                break;
            }
        }
    }
}

fn vertex_of(all: &[Halfspace], combo: &[usize], d: usize) -> Option<Vec<f64>> {
    let mut a: Vec<Vec<f64>> = Vec::with_capacity(d);
    let mut b: Vec<f64> = Vec::with_capacity(d);
    for &i in combo {
        a.push(all[i].a.clone());
        b.push(all[i].b);
    }
    linalg::solve_in_place(&mut a, &mut b)
}

fn lex_less(a: &[f64], b: &[f64]) -> bool {
    for (x, y) in a.iter().zip(b) {
        match x.total_cmp(y) {
            std::cmp::Ordering::Less => return true,
            std::cmp::Ordering::Greater => return false,
            std::cmp::Ordering::Equal => continue,
        }
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;

    const BOUND: f64 = 1e4;

    #[test]
    fn unconstrained_hits_box_corner() {
        // minimize x + y with no constraints -> box corner (-B, -B).
        let out = solve_lp_vertex_enum(&[1.0, 1.0], &[], BOUND);
        match out {
            LpOutcome::Optimal(sol) => {
                assert_eq!(sol.x, vec![-BOUND, -BOUND]);
                assert_eq!(sol.value, -2.0 * BOUND);
            }
            _ => panic!("expected optimum"),
        }
    }

    #[test]
    fn simple_2d_lp() {
        // minimize -x - y  s.t. x + 2y <= 4, 3x + y <= 6, x,y >= 0.
        let cons = vec![
            Halfspace::new(vec![1.0, 2.0], 4.0),
            Halfspace::new(vec![3.0, 1.0], 6.0),
            Halfspace::new(vec![-1.0, 0.0], 0.0),
            Halfspace::new(vec![0.0, -1.0], 0.0),
        ];
        let out = solve_lp_vertex_enum(&[-1.0, -1.0], &cons, BOUND);
        match out {
            LpOutcome::Optimal(sol) => {
                // Optimal vertex: intersection of the two main constraints,
                // x = 8/5, y = 6/5.
                assert!((sol.x[0] - 1.6).abs() < 1e-9);
                assert!((sol.x[1] - 1.2).abs() < 1e-9);
                assert!((sol.value + 2.8).abs() < 1e-9);
            }
            _ => panic!("expected optimum"),
        }
    }

    #[test]
    fn infeasible_lp() {
        let cons = vec![
            Halfspace::new(vec![1.0], 0.0),   // x <= 0
            Halfspace::new(vec![-1.0], -1.0), // x >= 1
        ];
        assert_eq!(
            solve_lp_vertex_enum(&[1.0], &cons, BOUND),
            LpOutcome::Infeasible
        );
    }

    #[test]
    fn one_dimensional() {
        let cons = vec![Halfspace::new(vec![-1.0], -2.5)]; // x >= 2.5
        match solve_lp_vertex_enum(&[1.0], &cons, BOUND) {
            LpOutcome::Optimal(sol) => assert!((sol.x[0] - 2.5).abs() < 1e-9),
            _ => panic!(),
        }
    }

    #[test]
    fn three_dimensional_simplex() {
        // minimize -(x+y+z) s.t. x+y+z <= 1, x,y,z >= 0 -> value -1.
        let cons = vec![
            Halfspace::new(vec![1.0, 1.0, 1.0], 1.0),
            Halfspace::new(vec![-1.0, 0.0, 0.0], 0.0),
            Halfspace::new(vec![0.0, -1.0, 0.0], 0.0),
            Halfspace::new(vec![0.0, 0.0, -1.0], 0.0),
        ];
        match solve_lp_vertex_enum(&[-1.0, -1.0, -1.0], &cons, BOUND) {
            LpOutcome::Optimal(sol) => assert!((sol.value + 1.0).abs() < 1e-9),
            _ => panic!(),
        }
    }

    #[test]
    fn tie_break_is_lexicographic() {
        // minimize 0 over the unit square: optimum is lex-min vertex.
        let cons = vec![
            Halfspace::new(vec![-1.0, 0.0], 0.0),
            Halfspace::new(vec![0.0, -1.0], 0.0),
            Halfspace::new(vec![1.0, 0.0], 1.0),
            Halfspace::new(vec![0.0, 1.0], 1.0),
        ];
        match solve_lp_vertex_enum(&[0.0, 0.0], &cons, BOUND) {
            LpOutcome::Optimal(sol) => {
                assert_eq!(
                    sol.x,
                    [-BOUND, -BOUND]
                        .iter()
                        .map(|_| 0.0)
                        .collect::<Vec<_>>()
                        .clone()
                );
            }
            _ => panic!(),
        }
    }

    #[test]
    fn satisfied_has_tolerance() {
        let h = Halfspace::new(vec![1.0, 1.0], 1.0);
        assert!(h.satisfied(&[0.5, 0.5]));
        assert!(h.satisfied(&[0.5, 0.5 + 1e-12]));
        assert!(!h.satisfied(&[0.6, 0.6]));
    }
}
