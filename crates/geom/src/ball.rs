//! Minimum enclosing ball in dimension `d` (generalized Welzl).
//!
//! Same structure as the planar algorithm in [`crate::welzl`], but the
//! boundary set may hold up to `d + 1` points and the ball through a
//! boundary set is computed by solving a small linear system: with base
//! point `p₀` and boundary points `p₁ … p_k`, the circumcenter `c = p₀ +
//! Σ λⱼ (pⱼ − p₀)` satisfies `2 (pⱼ − p₀)·(c − p₀) = |pⱼ − p₀|²`, a
//! `k × k` system solved by Gaussian elimination.

use crate::leq_with_slack;
use crate::linalg;
use crate::point::PointD;
use rand::seq::SliceRandom;
use rand::Rng;

/// A closed ball in `d` dimensions; negative radius encodes the empty ball.
#[derive(Clone, Debug, PartialEq)]
pub struct BallD {
    /// Center.
    pub center: PointD,
    /// Radius; negative encodes the empty ball.
    pub radius: f64,
}

impl BallD {
    /// The empty ball in dimension `dim`.
    pub fn empty(dim: usize) -> BallD {
        BallD {
            center: PointD::new(vec![0.0; dim]),
            radius: -1.0,
        }
    }

    /// Closed containment with the global relative slack.
    pub fn contains(&self, p: &PointD) -> bool {
        if self.radius < 0.0 {
            return false;
        }
        leq_with_slack(self.center.dist2(p), self.radius * self.radius)
    }

    /// Whether `p` is numerically on the boundary sphere.
    pub fn on_boundary(&self, p: &PointD) -> bool {
        if self.radius < 0.0 {
            return false;
        }
        let d = self.center.dist(p);
        (d - self.radius).abs() <= 1e-7 * self.radius.max(1.0)
    }
}

/// Ball with all points of `boundary` on its sphere (the circumsphere of
/// the boundary set). Empty boundary gives the empty ball; returns `None`
/// when the boundary points are affinely dependent.
pub fn circumball(boundary: &[PointD]) -> Option<BallD> {
    let Some(p0) = boundary.first() else {
        return Some(BallD::empty(0));
    };
    let dim = p0.dim();
    let k = boundary.len() - 1;
    if k == 0 {
        return Some(BallD {
            center: p0.clone(),
            radius: 0.0,
        });
    }
    let mut a = vec![vec![0.0; k]; k];
    let mut b = vec![0.0; k];
    for j in 0..k {
        let pj = &boundary[j + 1];
        for l in 0..k {
            let pl = &boundary[l + 1];
            let mut dot = 0.0;
            for t in 0..dim {
                dot += (pj.coords[t] - p0.coords[t]) * (pl.coords[t] - p0.coords[t]);
            }
            a[j][l] = 2.0 * dot;
        }
        b[j] = pj.dist2(p0);
    }
    let lambda = linalg::solve_in_place(&mut a, &mut b)?;
    let mut center = p0.coords.clone();
    for j in 0..k {
        for (t, c) in center.iter_mut().enumerate() {
            *c += lambda[j] * (boundary[j + 1].coords[t] - p0.coords[t]);
        }
    }
    let center = PointD::new(center);
    let radius = center.dist(p0);
    Some(BallD { center, radius })
}

/// Computes the minimum enclosing ball of `points` (all of equal dimension).
///
/// Returns the empty ball for empty input.
pub fn min_enclosing_ball<R: Rng + ?Sized>(points: &[PointD], rng: &mut R) -> BallD {
    let Some(first) = points.first() else {
        return BallD::empty(0);
    };
    let dim = first.dim();
    let mut order: Vec<usize> = (0..points.len()).collect();
    order.shuffle(rng);
    let mut boundary: Vec<PointD> = Vec::with_capacity(dim + 1);
    meb_recurse(points, &order, &mut boundary, dim)
}

fn meb_recurse(
    points: &[PointD],
    order: &[usize],
    boundary: &mut Vec<PointD>,
    dim: usize,
) -> BallD {
    let mut ball = match circumball(boundary) {
        Some(b) if !boundary.is_empty() => b,
        _ => BallD::empty(dim),
    };
    if boundary.len() == dim + 1 {
        return ball;
    }
    for i in 0..order.len() {
        let p = &points[order[i]];
        if !ball.contains(p) {
            boundary.push(p.clone());
            ball = meb_recurse(points, &order[..i], boundary, dim);
            boundary.pop();
        }
    }
    ball
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn rng() -> ChaCha8Rng {
        ChaCha8Rng::seed_from_u64(17)
    }

    #[test]
    fn empty_input() {
        assert_eq!(min_enclosing_ball(&[], &mut rng()).radius, -1.0);
    }

    #[test]
    fn singleton() {
        let b = min_enclosing_ball(&[PointD::new(vec![1.0, 2.0, 3.0])], &mut rng());
        assert_eq!(b.radius, 0.0);
    }

    #[test]
    fn antipodal_pair_3d() {
        let pts = vec![
            PointD::new(vec![-2.0, 0.0, 0.0]),
            PointD::new(vec![2.0, 0.0, 0.0]),
        ];
        let b = min_enclosing_ball(&pts, &mut rng());
        assert!((b.radius - 2.0).abs() < 1e-9);
    }

    #[test]
    fn simplex_corners_3d() {
        // Unit-simplex corners plus the origin: the MEB is the circumcircle
        // of the face {e1, e2, e3} (radius sqrt(2/3)); the origin lies
        // strictly inside it.
        let pts = vec![
            PointD::new(vec![1.0, 0.0, 0.0]),
            PointD::new(vec![0.0, 1.0, 0.0]),
            PointD::new(vec![0.0, 0.0, 1.0]),
            PointD::new(vec![0.0, 0.0, 0.0]),
        ];
        let b = min_enclosing_ball(&pts, &mut rng());
        for p in &pts {
            assert!(b.contains(p));
        }
        assert!(
            (b.radius - (2f64 / 3.0).sqrt()).abs() < 1e-9,
            "radius {}",
            b.radius
        );
        assert!(b.on_boundary(&pts[0]));
        assert!(!b.on_boundary(&pts[3]), "origin is interior");
    }

    #[test]
    fn interior_points_ignored_5d() {
        let mut tr = rng();
        let mut pts = vec![
            PointD::new(vec![3.0, 0.0, 0.0, 0.0, 0.0]),
            PointD::new(vec![-3.0, 0.0, 0.0, 0.0, 0.0]),
        ];
        for _ in 0..200 {
            let v: Vec<f64> = (0..5)
                .map(|_| rand::Rng::gen_range(&mut tr, -1.0..1.0))
                .collect();
            pts.push(PointD::new(v));
        }
        let b = min_enclosing_ball(&pts, &mut rng());
        assert!((b.radius - 3.0).abs() < 1e-9, "radius {}", b.radius);
    }

    #[test]
    fn matches_2d_welzl() {
        use crate::point::Point2;
        let mut tr = rng();
        for trial in 0..50 {
            let n = 3 + trial % 20;
            let pts2: Vec<Point2> = (0..n)
                .map(|_| {
                    Point2::new(
                        rand::Rng::gen_range(&mut tr, -5.0..5.0),
                        rand::Rng::gen_range(&mut tr, -5.0..5.0),
                    )
                })
                .collect();
            let ptsd: Vec<PointD> = pts2.iter().map(|p| PointD::new(vec![p.x, p.y])).collect();
            let d2 = crate::welzl::min_enclosing_disk(&pts2, &mut rng());
            let bd = min_enclosing_ball(&ptsd, &mut rng());
            assert!(
                (d2.radius - bd.radius).abs() <= 1e-7 * d2.radius.max(1.0),
                "trial {trial}: {} vs {}",
                d2.radius,
                bd.radius
            );
        }
    }

    #[test]
    fn circumball_of_degenerate_boundary_is_none() {
        // Three collinear points in 2D have no circumscribed circle.
        let pts = vec![
            PointD::new(vec![0.0, 0.0]),
            PointD::new(vec![1.0, 0.0]),
            PointD::new(vec![2.0, 0.0]),
        ];
        assert!(circumball(&pts).is_none());
    }

    #[test]
    fn all_points_contained_randomized() {
        let mut tr = rng();
        for dim in [2usize, 3, 4, 6] {
            let pts: Vec<PointD> = (0..100)
                .map(|_| {
                    PointD::new(
                        (0..dim)
                            .map(|_| rand::Rng::gen_range(&mut tr, -8.0..8.0))
                            .collect(),
                    )
                })
                .collect();
            let b = min_enclosing_ball(&pts, &mut rng());
            for p in &pts {
                assert!(b.contains(p), "dim {dim}");
            }
        }
    }
}
