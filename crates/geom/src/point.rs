//! Euclidean points in 2 and `d` dimensions.

use std::cmp::Ordering;

/// A point in the plane.
#[derive(Clone, Copy, Debug, PartialEq, Default)]
pub struct Point2 {
    /// x coordinate.
    pub x: f64,
    /// y coordinate.
    pub y: f64,
}

impl Point2 {
    /// Creates a point.
    pub const fn new(x: f64, y: f64) -> Self {
        Point2 { x, y }
    }

    /// Squared Euclidean distance to `other`.
    #[inline]
    pub fn dist2(&self, other: &Point2) -> f64 {
        let dx = self.x - other.x;
        let dy = self.y - other.y;
        dx * dx + dy * dy
    }

    /// Euclidean distance to `other`.
    #[inline]
    pub fn dist(&self, other: &Point2) -> f64 {
        self.dist2(other).sqrt()
    }

    /// Midpoint of `self` and `other`.
    #[inline]
    pub fn midpoint(&self, other: &Point2) -> Point2 {
        Point2::new(0.5 * (self.x + other.x), 0.5 * (self.y + other.y))
    }

    /// Vector subtraction `self - other`.
    #[inline]
    pub fn sub(&self, other: &Point2) -> Point2 {
        Point2::new(self.x - other.x, self.y - other.y)
    }

    /// Dot product (treating points as vectors).
    #[inline]
    pub fn dot(&self, other: &Point2) -> f64 {
        self.x * other.x + self.y * other.y
    }

    /// 2D cross product `self.x * other.y - self.y * other.x`.
    #[inline]
    pub fn cross(&self, other: &Point2) -> f64 {
        self.x * other.y - self.y * other.x
    }

    /// Deterministic total order: lexicographic by `(x, y)` via
    /// `f64::total_cmp`. Used for canonical bases and tie-breaking.
    pub fn total_cmp(&self, other: &Point2) -> Ordering {
        self.x
            .total_cmp(&other.x)
            .then_with(|| self.y.total_cmp(&other.y))
    }
}

/// A point in `d`-dimensional Euclidean space (small `d`).
///
/// Stored as an owned coordinate vector; the workspace only ever uses
/// `d ≤ 8`, so the allocation cost is irrelevant next to the solver work.
#[derive(Clone, Debug, PartialEq, Default)]
pub struct PointD {
    /// Coordinates.
    pub coords: Vec<f64>,
}

impl PointD {
    /// Creates a point from coordinates.
    pub fn new(coords: Vec<f64>) -> Self {
        PointD { coords }
    }

    /// Dimension of the ambient space.
    pub fn dim(&self) -> usize {
        self.coords.len()
    }

    /// Squared Euclidean distance to `other`.
    pub fn dist2(&self, other: &PointD) -> f64 {
        debug_assert_eq!(self.dim(), other.dim());
        self.coords
            .iter()
            .zip(&other.coords)
            .map(|(a, b)| (a - b) * (a - b))
            .sum()
    }

    /// Euclidean distance to `other`.
    pub fn dist(&self, other: &PointD) -> f64 {
        self.dist2(other).sqrt()
    }

    /// Deterministic lexicographic total order via `f64::total_cmp`.
    pub fn total_cmp(&self, other: &PointD) -> Ordering {
        for (a, b) in self.coords.iter().zip(&other.coords) {
            match a.total_cmp(b) {
                Ordering::Equal => continue,
                ord => return ord,
            }
        }
        self.coords.len().cmp(&other.coords.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn point2_arithmetic() {
        let a = Point2::new(1.0, 2.0);
        let b = Point2::new(4.0, 6.0);
        assert_eq!(a.dist2(&b), 25.0);
        assert_eq!(a.dist(&b), 5.0);
        assert_eq!(a.midpoint(&b), Point2::new(2.5, 4.0));
        assert_eq!(b.sub(&a), Point2::new(3.0, 4.0));
        assert_eq!(a.dot(&b), 16.0);
        assert_eq!(a.cross(&b), -2.0);
    }

    #[test]
    fn point2_total_order() {
        let a = Point2::new(1.0, 2.0);
        let b = Point2::new(1.0, 3.0);
        let c = Point2::new(0.0, 9.0);
        assert_eq!(a.total_cmp(&b), Ordering::Less);
        assert_eq!(b.total_cmp(&a), Ordering::Greater);
        assert_eq!(c.total_cmp(&a), Ordering::Less);
        assert_eq!(a.total_cmp(&a), Ordering::Equal);
    }

    #[test]
    fn pointd_distance() {
        let a = PointD::new(vec![0.0, 0.0, 0.0]);
        let b = PointD::new(vec![1.0, 2.0, 2.0]);
        assert_eq!(a.dist2(&b), 9.0);
        assert_eq!(a.dist(&b), 3.0);
    }

    #[test]
    fn pointd_total_order_handles_nan_deterministically() {
        let a = PointD::new(vec![f64::NAN, 0.0]);
        let b = PointD::new(vec![0.0, 0.0]);
        // total_cmp puts NaN after all numbers; the point is determinism,
        // not a particular answer.
        assert_eq!(a.total_cmp(&b), Ordering::Greater);
        assert_eq!(a.total_cmp(&a), Ordering::Equal);
    }
}
