//! Convex hulls and distances between convex polygons.
//!
//! Supports the *polytope distance* LP-type problem from the paper's
//! introduction: given two point sets `P`, `Q`, find the Euclidean
//! distance between `conv(P)` and `conv(Q)`. All routines here are exact
//! up to `f64` arithmetic and are only called with the small point sets
//! that LP-type basis computations produce, so the quadratic edge-pair
//! scan in [`polygon_distance`] is deliberate simplicity, not an
//! oversight.

use crate::point::Point2;

/// Andrew's monotone-chain convex hull. Returns hull vertices in
/// counter-clockwise order, without repetition of the first vertex.
/// Collinear points on the hull boundary are dropped. Inputs of size
/// ≤ 2 are returned (deduplicated) as-is.
pub fn convex_hull(points: &[Point2]) -> Vec<Point2> {
    let mut pts: Vec<Point2> = points.to_vec();
    pts.sort_by(|a, b| a.total_cmp(b));
    pts.dedup_by(|a, b| a.total_cmp(b) == std::cmp::Ordering::Equal);
    let n = pts.len();
    if n <= 2 {
        return pts;
    }
    let cross = |o: &Point2, a: &Point2, b: &Point2| a.sub(o).cross(&b.sub(o));
    let mut hull: Vec<Point2> = Vec::with_capacity(2 * n);
    // Lower hull.
    for p in &pts {
        while hull.len() >= 2 && cross(&hull[hull.len() - 2], &hull[hull.len() - 1], p) <= 0.0 {
            hull.pop();
        }
        hull.push(*p);
    }
    // Upper hull.
    let lower_len = hull.len() + 1;
    for p in pts.iter().rev().skip(1) {
        while hull.len() >= lower_len
            && cross(&hull[hull.len() - 2], &hull[hull.len() - 1], p) <= 0.0
        {
            hull.pop();
        }
        hull.push(*p);
    }
    hull.pop();
    hull
}

/// Distance from point `p` to the closed segment `[a, b]`.
pub fn point_segment_distance(p: &Point2, a: &Point2, b: &Point2) -> f64 {
    let ab = b.sub(a);
    let len2 = ab.dot(&ab);
    if len2 <= 0.0 {
        return p.dist(a);
    }
    let t = (p.sub(a).dot(&ab) / len2).clamp(0.0, 1.0);
    let proj = Point2::new(a.x + t * ab.x, a.y + t * ab.y);
    p.dist(&proj)
}

/// Distance between closed segments `[a1, b1]` and `[a2, b2]`.
pub fn segment_segment_distance(a1: &Point2, b1: &Point2, a2: &Point2, b2: &Point2) -> f64 {
    if segments_intersect(a1, b1, a2, b2) {
        return 0.0;
    }
    point_segment_distance(a1, a2, b2)
        .min(point_segment_distance(b1, a2, b2))
        .min(point_segment_distance(a2, a1, b1))
        .min(point_segment_distance(b2, a1, b1))
}

fn orient(a: &Point2, b: &Point2, c: &Point2) -> f64 {
    b.sub(a).cross(&c.sub(a))
}

fn on_segment(a: &Point2, b: &Point2, p: &Point2) -> bool {
    p.x >= a.x.min(b.x) && p.x <= a.x.max(b.x) && p.y >= a.y.min(b.y) && p.y <= a.y.max(b.y)
}

/// Proper-or-touching intersection test for closed segments.
fn segments_intersect(a1: &Point2, b1: &Point2, a2: &Point2, b2: &Point2) -> bool {
    let d1 = orient(a2, b2, a1);
    let d2 = orient(a2, b2, b1);
    let d3 = orient(a1, b1, a2);
    let d4 = orient(a1, b1, b2);
    if ((d1 > 0.0 && d2 < 0.0) || (d1 < 0.0 && d2 > 0.0))
        && ((d3 > 0.0 && d4 < 0.0) || (d3 < 0.0 && d4 > 0.0))
    {
        return true;
    }
    (d1 == 0.0 && on_segment(a2, b2, a1))
        || (d2 == 0.0 && on_segment(a2, b2, b1))
        || (d3 == 0.0 && on_segment(a1, b1, a2))
        || (d4 == 0.0 && on_segment(a1, b1, b2))
}

/// Whether point `p` lies inside (or on) the convex polygon `hull`
/// (counter-clockwise vertex order, as produced by [`convex_hull`]).
pub fn point_in_convex_hull(p: &Point2, hull: &[Point2]) -> bool {
    match hull.len() {
        0 => false,
        1 => hull[0].dist2(p) <= 1e-18,
        2 => point_segment_distance(p, &hull[0], &hull[1]) <= 1e-9,
        n => {
            for i in 0..n {
                if orient(&hull[i], &hull[(i + 1) % n], p) < -1e-12 {
                    return false;
                }
            }
            true
        }
    }
}

/// Euclidean distance between the convex hulls of two point sets.
///
/// Returns `0.0` when the hulls intersect and `f64::INFINITY` when either
/// set is empty (matching the LP-type convention `f(∅) = -∞` after sign
/// flip).
pub fn polygon_distance(pa: &[Point2], pb: &[Point2]) -> f64 {
    if pa.is_empty() || pb.is_empty() {
        return f64::INFINITY;
    }
    let ha = convex_hull(pa);
    let hb = convex_hull(pb);
    // Containment covers the hull-inside-hull case the edge scan misses.
    if point_in_convex_hull(&ha[0], &hb) || point_in_convex_hull(&hb[0], &ha) {
        return 0.0;
    }
    let edges = |h: &[Point2]| -> Vec<(Point2, Point2)> {
        match h.len() {
            1 => vec![(h[0], h[0])],
            2 => vec![(h[0], h[1])],
            n => (0..n).map(|i| (h[i], h[(i + 1) % n])).collect(),
        }
    };
    let ea = edges(&ha);
    let eb = edges(&hb);
    let mut best = f64::INFINITY;
    for (a1, b1) in &ea {
        for (a2, b2) in &eb {
            best = best.min(segment_segment_distance(a1, b1, a2, b2));
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hull_of_square_with_interior() {
        let pts = [
            Point2::new(0.0, 0.0),
            Point2::new(2.0, 0.0),
            Point2::new(2.0, 2.0),
            Point2::new(0.0, 2.0),
            Point2::new(1.0, 1.0),
            Point2::new(0.5, 0.5),
        ];
        let h = convex_hull(&pts);
        assert_eq!(h.len(), 4);
    }

    #[test]
    fn hull_collinear_input() {
        let pts: Vec<Point2> = (0..5).map(|i| Point2::new(i as f64, i as f64)).collect();
        let h = convex_hull(&pts);
        assert_eq!(h.len(), 2);
        assert_eq!(h[0], Point2::new(0.0, 0.0));
        assert_eq!(h[1], Point2::new(4.0, 4.0));
    }

    #[test]
    fn hull_duplicates() {
        let pts = vec![Point2::new(1.0, 1.0); 10];
        assert_eq!(convex_hull(&pts).len(), 1);
    }

    #[test]
    fn point_segment_basic() {
        let a = Point2::new(0.0, 0.0);
        let b = Point2::new(2.0, 0.0);
        assert!((point_segment_distance(&Point2::new(1.0, 1.0), &a, &b) - 1.0).abs() < 1e-12);
        assert!((point_segment_distance(&Point2::new(3.0, 0.0), &a, &b) - 1.0).abs() < 1e-12);
        assert_eq!(point_segment_distance(&Point2::new(1.0, 0.0), &a, &b), 0.0);
    }

    #[test]
    fn segment_distance_crossing_is_zero() {
        let d = segment_segment_distance(
            &Point2::new(-1.0, 0.0),
            &Point2::new(1.0, 0.0),
            &Point2::new(0.0, -1.0),
            &Point2::new(0.0, 1.0),
        );
        assert_eq!(d, 0.0);
    }

    #[test]
    fn segment_distance_parallel() {
        let d = segment_segment_distance(
            &Point2::new(0.0, 0.0),
            &Point2::new(2.0, 0.0),
            &Point2::new(0.0, 3.0),
            &Point2::new(2.0, 3.0),
        );
        assert!((d - 3.0).abs() < 1e-12);
    }

    #[test]
    fn polygon_distance_separated_squares() {
        let a = [
            Point2::new(0.0, 0.0),
            Point2::new(1.0, 0.0),
            Point2::new(1.0, 1.0),
            Point2::new(0.0, 1.0),
        ];
        let b: Vec<Point2> = a.iter().map(|p| Point2::new(p.x + 3.0, p.y)).collect();
        assert!((polygon_distance(&a, &b) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn polygon_distance_overlapping_is_zero() {
        let a = [
            Point2::new(0.0, 0.0),
            Point2::new(2.0, 0.0),
            Point2::new(1.0, 2.0),
        ];
        let b = [
            Point2::new(1.0, 0.5),
            Point2::new(4.0, 0.0),
            Point2::new(4.0, 4.0),
        ];
        assert_eq!(polygon_distance(&a, &b), 0.0);
    }

    #[test]
    fn polygon_distance_nested_is_zero() {
        let outer = [
            Point2::new(-5.0, -5.0),
            Point2::new(5.0, -5.0),
            Point2::new(5.0, 5.0),
            Point2::new(-5.0, 5.0),
        ];
        let inner = [
            Point2::new(0.0, 0.0),
            Point2::new(1.0, 0.0),
            Point2::new(0.0, 1.0),
        ];
        assert_eq!(polygon_distance(&outer, &inner), 0.0);
    }

    #[test]
    fn polygon_distance_point_sets() {
        let a = [Point2::new(0.0, 0.0)];
        let b = [Point2::new(3.0, 4.0)];
        assert!((polygon_distance(&a, &b) - 5.0).abs() < 1e-12);
    }

    #[test]
    fn polygon_distance_empty_is_infinite() {
        assert_eq!(
            polygon_distance(&[], &[Point2::new(0.0, 0.0)]),
            f64::INFINITY
        );
    }

    #[test]
    fn point_in_hull_edge_cases() {
        let hull = convex_hull(&[
            Point2::new(0.0, 0.0),
            Point2::new(4.0, 0.0),
            Point2::new(4.0, 4.0),
            Point2::new(0.0, 4.0),
        ]);
        assert!(point_in_convex_hull(&Point2::new(2.0, 2.0), &hull));
        assert!(point_in_convex_hull(&Point2::new(0.0, 0.0), &hull));
        assert!(!point_in_convex_hull(&Point2::new(5.0, 2.0), &hull));
    }
}
