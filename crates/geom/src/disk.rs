//! Disks in the plane and the circumscribed disks of 1–3 points.

use crate::leq_with_slack;
use crate::point::Point2;

/// A closed disk in the plane.
///
/// The *empty* disk (enclosing nothing) is represented with a negative
/// radius so that every point is outside it; `Disk::EMPTY` compares below
/// every real disk by radius.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Disk {
    /// Center.
    pub center: Point2,
    /// Radius; negative encodes the empty disk.
    pub radius: f64,
}

impl Disk {
    /// The empty disk: contains no point, radius `-1`.
    pub const EMPTY: Disk = Disk {
        center: Point2::new(0.0, 0.0),
        radius: -1.0,
    };

    /// The degenerate disk consisting of a single point.
    pub fn point(p: Point2) -> Disk {
        Disk {
            center: p,
            radius: 0.0,
        }
    }

    /// The smallest disk through two points (diameter disk).
    pub fn from_two(a: Point2, b: Point2) -> Disk {
        let center = a.midpoint(&b);
        Disk {
            center,
            radius: 0.5 * a.dist(&b),
        }
    }

    /// The disk through three points (circumcircle). Returns `None` when
    /// the points are (numerically) collinear and no circumcircle exists.
    pub fn circumcircle(a: Point2, b: Point2, c: Point2) -> Option<Disk> {
        let ab = b.sub(&a);
        let ac = c.sub(&a);
        let det = 2.0 * ab.cross(&ac);
        // Relative collinearity threshold: |det| vanishes like the area.
        let scale = ab.dot(&ab).max(ac.dot(&ac));
        if det.abs() <= 1e-14 * scale.max(1.0) {
            return None;
        }
        let ab2 = ab.dot(&ab);
        let ac2 = ac.dot(&ac);
        let ux = (ac.y * ab2 - ab.y * ac2) / det;
        let uy = (ab.x * ac2 - ac.x * ab2) / det;
        let center = Point2::new(a.x + ux, a.y + uy);
        let radius = (ux * ux + uy * uy).sqrt();
        Some(Disk { center, radius })
    }

    /// The smallest disk enclosing three points: the circumcircle if the
    /// triangle is acute, otherwise the diameter disk of its longest side.
    /// (Used when three points must be *enclosed* rather than *on the
    /// boundary*.)
    pub fn enclosing_three(a: Point2, b: Point2, c: Point2) -> Disk {
        let mut best: Option<Disk> = None;
        for (p, q, r) in [(a, b, c), (a, c, b), (b, c, a)] {
            let d = Disk::from_two(p, q);
            if d.contains(&r) {
                best = Some(match best {
                    Some(cur) if cur.radius <= d.radius => cur,
                    _ => d,
                });
            }
        }
        if let Some(d) = best {
            return d;
        }
        Disk::circumcircle(a, b, c)
            // Collinear points are always covered by a two-point disk above.
            .expect("non-collinear points have a circumcircle")
    }

    /// Closed containment with the global relative slack.
    #[inline]
    pub fn contains(&self, p: &Point2) -> bool {
        if self.radius < 0.0 {
            return false;
        }
        leq_with_slack(self.center.dist2(p), self.radius * self.radius)
    }

    /// Whether `p` lies (numerically) on the boundary circle.
    pub fn on_boundary(&self, p: &Point2) -> bool {
        if self.radius < 0.0 {
            return false;
        }
        let d = self.center.dist(p);
        (d - self.radius).abs() <= 1e-7 * self.radius.max(1.0)
    }

    /// Squared radius (negative radius squares to a negative sentinel).
    #[inline]
    pub fn radius2(&self) -> f64 {
        if self.radius < 0.0 {
            -1.0
        } else {
            self.radius * self.radius
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_disk_contains_nothing() {
        assert!(!Disk::EMPTY.contains(&Point2::new(0.0, 0.0)));
    }

    #[test]
    fn point_disk_contains_itself_only() {
        let d = Disk::point(Point2::new(1.0, 1.0));
        assert!(d.contains(&Point2::new(1.0, 1.0)));
        assert!(!d.contains(&Point2::new(1.0, 1.1)));
    }

    #[test]
    fn two_point_disk() {
        let d = Disk::from_two(Point2::new(-1.0, 0.0), Point2::new(1.0, 0.0));
        assert_eq!(d.center, Point2::new(0.0, 0.0));
        assert_eq!(d.radius, 1.0);
        assert!(d.contains(&Point2::new(0.0, 1.0)));
        assert!(!d.contains(&Point2::new(0.0, 1.001)));
    }

    #[test]
    fn circumcircle_of_right_triangle() {
        let d = Disk::circumcircle(
            Point2::new(0.0, 0.0),
            Point2::new(2.0, 0.0),
            Point2::new(0.0, 2.0),
        )
        .unwrap();
        assert!((d.center.x - 1.0).abs() < 1e-12);
        assert!((d.center.y - 1.0).abs() < 1e-12);
        assert!((d.radius - 2f64.sqrt()).abs() < 1e-12);
    }

    #[test]
    fn circumcircle_collinear_is_none() {
        assert!(Disk::circumcircle(
            Point2::new(0.0, 0.0),
            Point2::new(1.0, 1.0),
            Point2::new(2.0, 2.0),
        )
        .is_none());
    }

    #[test]
    fn enclosing_three_obtuse_uses_diameter() {
        // Nearly collinear wide triangle: the longest side's diameter disk
        // covers the middle point.
        let d = Disk::enclosing_three(
            Point2::new(-1.0, 0.0),
            Point2::new(1.0, 0.0),
            Point2::new(0.0, 0.1),
        );
        assert!((d.radius - 1.0).abs() < 1e-12);
    }

    #[test]
    fn enclosing_three_acute_uses_circumcircle() {
        let d = Disk::enclosing_three(
            Point2::new(0.0, 1.0),
            Point2::new(-(3f64.sqrt()) / 2.0, -0.5),
            Point2::new(3f64.sqrt() / 2.0, -0.5),
        );
        assert!((d.radius - 1.0).abs() < 1e-9);
        assert!(d.center.dist(&Point2::new(0.0, 0.0)) < 1e-9);
    }

    #[test]
    fn boundary_predicate() {
        let d = Disk::from_two(Point2::new(-1.0, 0.0), Point2::new(1.0, 0.0));
        assert!(d.on_boundary(&Point2::new(1.0, 0.0)));
        assert!(d.on_boundary(&Point2::new(0.0, 1.0)));
        assert!(!d.on_boundary(&Point2::new(0.0, 0.0)));
    }
}
