//! Welzl's randomized algorithm for the minimum enclosing disk (MED).
//!
//! Expected linear time after a random shuffle; recursion depth is bounded
//! by the size of the boundary set (≤ 3), so the implementation is safe
//! for inputs of any size. [`min_enclosing_disk_with_support`]
//! additionally extracts a *support set* (an optimal basis in LP-type
//! terms): at most 3 input indices whose own minimum enclosing disk equals
//! the global one.

use crate::disk::Disk;
use crate::point::Point2;
use rand::seq::SliceRandom;
use rand::Rng;

/// Computes the minimum enclosing disk of `points`.
///
/// Returns [`Disk::EMPTY`] for an empty input. The `rng` drives the
/// shuffle that makes the expected running time linear; correctness does
/// not depend on it.
pub fn min_enclosing_disk<R: Rng + ?Sized>(points: &[Point2], rng: &mut R) -> Disk {
    let mut order: Vec<usize> = (0..points.len()).collect();
    order.shuffle(rng);
    med_indexed(points, &order)
}

/// As [`min_enclosing_disk`], but also returns the support set: indices
/// (into `points`, sorted ascending) of at most 3 points on the boundary
/// whose minimum enclosing disk equals the returned disk.
pub fn min_enclosing_disk_with_support<R: Rng + ?Sized>(
    points: &[Point2],
    rng: &mut R,
) -> (Disk, Vec<usize>) {
    let disk = min_enclosing_disk(points, rng);
    let support = extract_support(points, &disk);
    (disk, support)
}

/// Welzl's algorithm over an explicit index order.
fn med_indexed(points: &[Point2], order: &[usize]) -> Disk {
    let mut disk = Disk::EMPTY;
    for i in 0..order.len() {
        let p = points[order[i]];
        if !disk.contains(&p) {
            disk = med_with_one(points, &order[..i], p);
        }
    }
    disk
}

/// MED of `order`-points given that `q` is on the boundary.
fn med_with_one(points: &[Point2], order: &[usize], q: Point2) -> Disk {
    let mut disk = Disk::point(q);
    for i in 0..order.len() {
        let p = points[order[i]];
        if !disk.contains(&p) {
            disk = med_with_two(points, &order[..i], q, p);
        }
    }
    disk
}

/// MED of `order`-points given that `q1, q2` are on the boundary.
fn med_with_two(points: &[Point2], order: &[usize], q1: Point2, q2: Point2) -> Disk {
    let mut disk = Disk::from_two(q1, q2);
    for i in 0..order.len() {
        let p = points[order[i]];
        if !disk.contains(&p) {
            // Three boundary points determine the disk: the circumcircle.
            // Collinear triples cannot occur here in exact arithmetic (a
            // collinear third point inside neither two-point disk is
            // impossible); numerically we fall back to the largest
            // two-point disk to stay total.
            disk = Disk::circumcircle(q1, q2, p).unwrap_or_else(|| {
                let d12 = Disk::from_two(q1, q2);
                let d1p = Disk::from_two(q1, p);
                let d2p = Disk::from_two(q2, p);
                let mut best = d12;
                for d in [d1p, d2p] {
                    if d.radius > best.radius {
                        best = d;
                    }
                }
                best
            });
        }
    }
    disk
}

/// Extracts a minimal support set of the disk from the input points:
/// candidates are the points numerically on the boundary; among those we
/// search for a single point (r = 0), a diametral pair, or a triple whose
/// circumcircle reproduces the disk.
fn extract_support(points: &[Point2], disk: &Disk) -> Vec<usize> {
    if disk.radius < 0.0 {
        return vec![];
    }
    let mut cand: Vec<usize> = (0..points.len())
        .filter(|&i| disk.on_boundary(&points[i]))
        .collect();
    // Duplicate coordinates (copies of the same input point) contribute
    // nothing to a support set and can crowd out genuine support points;
    // keep only the first index per distinct location.
    {
        let mut seen: Vec<Point2> = Vec::new();
        cand.retain(|&i| {
            if seen
                .iter()
                .any(|p| p.x == points[i].x && p.y == points[i].y)
            {
                false
            } else {
                seen.push(points[i]);
                true
            }
        });
    }
    // Defensive cap: sort by boundary proximity and keep the closest few.
    // In non-adversarial inputs |cand| ≤ 3 + ties.
    if cand.len() > 16 {
        cand.sort_by(|&a, &b| {
            let da = (disk.center.dist(&points[a]) - disk.radius).abs();
            let db = (disk.center.dist(&points[b]) - disk.radius).abs();
            da.total_cmp(&db)
        });
        cand.truncate(16);
        cand.sort_unstable();
    }

    let close = |d: &Disk| -> bool {
        d.center.dist(&disk.center) <= 1e-6 * disk.radius.max(1.0)
            && (d.radius - disk.radius).abs() <= 1e-6 * disk.radius.max(1.0)
    };

    if disk.radius <= 1e-12 {
        if let Some(&i) = cand.first() {
            return vec![i];
        }
    }
    for (ai, &a) in cand.iter().enumerate() {
        for &b in cand.iter().skip(ai + 1) {
            if close(&Disk::from_two(points[a], points[b])) {
                return vec![a, b];
            }
        }
    }
    for (ai, &a) in cand.iter().enumerate() {
        for (bj, &b) in cand.iter().enumerate().skip(ai + 1) {
            for &c in cand.iter().skip(bj + 1) {
                if let Some(d) = Disk::circumcircle(points[a], points[b], points[c]) {
                    if close(&d) {
                        return vec![a, b, c];
                    }
                }
            }
        }
    }
    // Numerical fallback: return the (≤3) closest boundary candidates; the
    // caller treats the support as advisory.
    cand.truncate(3);
    cand
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn rng() -> ChaCha8Rng {
        ChaCha8Rng::seed_from_u64(99)
    }

    /// Brute-force MED for tiny inputs: try all 1-, 2-, 3-point disks.
    fn brute_med(points: &[Point2]) -> Disk {
        let n = points.len();
        let mut best: Option<Disk> = None;
        let mut consider = |d: Disk| {
            if points.iter().all(|p| d.contains(p)) {
                best = Some(match best {
                    Some(cur) if cur.radius <= d.radius => cur,
                    _ => d,
                });
            }
        };
        for i in 0..n {
            consider(Disk::point(points[i]));
            for j in i + 1..n {
                consider(Disk::from_two(points[i], points[j]));
                for k in j + 1..n {
                    if let Some(d) = Disk::circumcircle(points[i], points[j], points[k]) {
                        consider(d);
                    }
                }
            }
        }
        best.unwrap_or(Disk::EMPTY)
    }

    #[test]
    fn empty_and_singleton() {
        let mut r = rng();
        assert_eq!(min_enclosing_disk(&[], &mut r).radius, -1.0);
        let d = min_enclosing_disk(&[Point2::new(3.0, 4.0)], &mut r);
        assert_eq!(d.radius, 0.0);
        assert_eq!(d.center, Point2::new(3.0, 4.0));
    }

    #[test]
    fn two_points() {
        let mut r = rng();
        let d = min_enclosing_disk(&[Point2::new(0.0, 0.0), Point2::new(2.0, 0.0)], &mut r);
        assert!((d.radius - 1.0).abs() < 1e-12);
    }

    #[test]
    fn square_corners() {
        let mut r = rng();
        let pts = [
            Point2::new(0.0, 0.0),
            Point2::new(1.0, 0.0),
            Point2::new(0.0, 1.0),
            Point2::new(1.0, 1.0),
        ];
        let d = min_enclosing_disk(&pts, &mut r);
        assert!((d.radius - (0.5f64.sqrt())).abs() < 1e-9);
        for p in &pts {
            assert!(d.contains(p));
        }
    }

    #[test]
    fn interior_points_do_not_matter() {
        let mut r = rng();
        let mut pts = vec![Point2::new(-5.0, 0.0), Point2::new(5.0, 0.0)];
        for i in 0..100 {
            let a = i as f64 * 0.37;
            pts.push(Point2::new(3.0 * a.cos(), 2.0 * a.sin()));
        }
        let d = min_enclosing_disk(&pts, &mut r);
        assert!((d.radius - 5.0).abs() < 1e-9);
    }

    #[test]
    fn matches_brute_force_on_random_small_sets() {
        let mut r = rng();
        for trial in 0..200u64 {
            let mut tr = ChaCha8Rng::seed_from_u64(trial);
            let n = 1 + (trial as usize % 9);
            let pts: Vec<Point2> = (0..n)
                .map(|_| {
                    Point2::new(
                        rand::Rng::gen_range(&mut tr, -10.0..10.0),
                        rand::Rng::gen_range(&mut tr, -10.0..10.0),
                    )
                })
                .collect();
            let fast = min_enclosing_disk(&pts, &mut r);
            let brute = brute_med(&pts);
            assert!(
                (fast.radius - brute.radius).abs() <= 1e-7 * brute.radius.max(1.0),
                "trial {trial}: fast {} vs brute {}",
                fast.radius,
                brute.radius
            );
            for p in &pts {
                assert!(fast.contains(p), "trial {trial}: point outside");
            }
        }
    }

    #[test]
    fn support_set_reconstructs_disk() {
        let mut r = rng();
        for trial in 0..100u64 {
            let mut tr = ChaCha8Rng::seed_from_u64(1000 + trial);
            let n = 3 + (trial as usize % 30);
            let pts: Vec<Point2> = (0..n)
                .map(|_| {
                    Point2::new(
                        rand::Rng::gen_range(&mut tr, -10.0..10.0),
                        rand::Rng::gen_range(&mut tr, -10.0..10.0),
                    )
                })
                .collect();
            let (disk, support) = min_enclosing_disk_with_support(&pts, &mut r);
            assert!(
                !support.is_empty() && support.len() <= 3,
                "support {support:?}"
            );
            let sup_pts: Vec<Point2> = support.iter().map(|&i| pts[i]).collect();
            let sup_disk = min_enclosing_disk(&sup_pts, &mut r);
            assert!(
                (sup_disk.radius - disk.radius).abs() <= 1e-5 * disk.radius.max(1.0),
                "trial {trial}: support radius {} vs {}",
                sup_disk.radius,
                disk.radius
            );
        }
    }

    #[test]
    fn duplicate_points_are_fine() {
        let mut r = rng();
        let pts = vec![Point2::new(1.0, 1.0); 50];
        let d = min_enclosing_disk(&pts, &mut r);
        assert_eq!(d.radius, 0.0);
    }

    #[test]
    fn collinear_points() {
        let mut r = rng();
        let pts: Vec<Point2> = (0..50)
            .map(|i| Point2::new(i as f64, 2.0 * i as f64))
            .collect();
        let d = min_enclosing_disk(&pts, &mut r);
        let expect = 0.5 * pts[0].dist(&pts[49]);
        assert!((d.radius - expect).abs() < 1e-9 * expect);
    }

    #[test]
    fn deterministic_given_seed() {
        let pts: Vec<Point2> = (0..500)
            .map(|i| Point2::new((i as f64 * 0.7).sin() * 9.0, (i as f64 * 1.3).cos() * 9.0))
            .collect();
        let d1 = min_enclosing_disk(&pts, &mut ChaCha8Rng::seed_from_u64(5));
        let d2 = min_enclosing_disk(&pts, &mut ChaCha8Rng::seed_from_u64(5));
        assert_eq!(d1, d2);
    }
}
