//! # `lpt-gossip` — gossip-model distributed algorithms for LP-type
//! problems of bounded dimension
//!
//! Reproduction of the algorithms of Hinnenthal, Scheideler & Struijs,
//! *"Fast Distributed Algorithms for LP-Type Problems of Bounded
//! Dimension"* (SPAA 2019, arXiv:1904.10706), on top of the
//! [`gossip_sim`] network simulator:
//!
//! * [`low_load`] — the **Low-Load Clarkson Algorithm** (Algorithm 2)
//!   with the pull-phase extension for `|H| < n` (Algorithm 4):
//!   `O(d log n)` rounds, `O(d² + log n)` work per round (Theorem 3);
//! * [`high_load`] — the **High-Load Clarkson Algorithm** (Algorithm 5)
//!   and its accelerated variant (Section 3.1): `O(d log n)` rounds with
//!   `O(d log n)` work, or `O(d log n / log log n)` rounds with
//!   `O(d log^{1+ε} n)` work (Theorem 4);
//! * [`hitting_set`] — the **Distributed Hitting Set Algorithm**
//!   (Algorithm 6): an `O(d log(ds))`-size hitting set in `O(d log n)`
//!   rounds (Theorem 5); set cover runs through the dual reduction in
//!   `lpt_problems::set_cover`;
//! * [`termination`] — the gossip termination-detection protocol
//!   (Algorithm 3, Section 2.2) shared by the Clarkson protocols;
//! * [`sampling`] — the uniform-multiset sampling subroutine
//!   (Section 2.1);
//! * [`hypercube`] — the hypercube-emulated distributed Clarkson
//!   baseline the paper compares against (`O(d log² n)` rounds,
//!   Section 1.1);
//! * [`driver`] — the **unified entry point**: a builder-style
//!   [`Driver`] that scatters an instance over a simulated network,
//!   runs any of the five algorithms under a configurable
//!   [`StopCondition`] and [`FaultModel`]
//!   (message loss, churn, delivery delay), and returns one polymorphic
//!   [`RunReport`].
//!
//! ## Migrating off the removed `runner` shims
//!
//! The legacy `runner` free functions (`run_low_load`, `run_high_load`,
//! `run_hitting_set`, `run_hitting_set_unknown_d`, …) were
//! `#[deprecated]` shims over [`Driver`] in 0.2.0 and are removed in
//! 0.3.0. Each one maps to a short builder chain:
//!
//! | removed call | replacement |
//! |---|---|
//! | `run_low_load(problem, elems, n, cfg, seed)` | `Driver::new(problem).nodes(n).seed(seed).algorithm(Algorithm::LowLoad(cfg.protocol)).max_rounds(cfg.max_rounds).run(&elems)` |
//! | `run_high_load(...)` | same, with [`Algorithm::HighLoad`] |
//! | `rounds_to_first_solution_*(...)` | add `.stop(StopCondition::FirstSolution(target))` |
//! | `run_hitting_set(sys, n, cfg, max_rounds, seed)` | `Driver::new(sys).nodes(n).seed(seed).algorithm(Algorithm::HittingSet(cfg.clone())).run_ground()` |
//! | `run_hitting_set_unknown_d(...)` | add [`Driver::with_doubling_search`] |
//!
//! The legacy report fields all survive on [`RunReport`] under the same
//! names (plus new ones: [`RunReport::faults`], [`RunReport::schedule`],
//! stop causes, consensus).
//!
//! ## Quick start
//!
//! Every algorithm runs through the same four builder calls — pick the
//! problem, the network size, the algorithm, and when to stop:
//!
//! ```
//! use lpt_gossip::{Algorithm, Driver, StopCondition};
//! use lpt_problems::Med;
//! use lpt_workloads::med::duo_disk;
//!
//! let points = duo_disk(256, 42);
//!
//! // Low-Load Clarkson (the default algorithm), to full termination.
//! let report = Driver::new(Med).nodes(256).seed(42).run(&points).unwrap();
//! let basis = report.consensus_output().expect("all nodes agree");
//! assert!((basis.value.r2.sqrt() - 10.0).abs() < 1e-6);
//!
//! // High-Load Clarkson, measuring the paper's rounds-to-first-solution.
//! use lpt::LpType;
//! let target = Med.basis_of(&points).value;
//! let first = Driver::new(Med)
//!     .nodes(256)
//!     .seed(42)
//!     .algorithm(Algorithm::high_load())
//!     .stop(StopCondition::FirstSolution(target))
//!     .run(&points)
//!     .unwrap();
//! assert!(first.reached() && first.rounds <= report.rounds);
//! ```
//!
//! Hitting set drives the same API with a set system as the problem;
//! see [`driver`] for the full tour (acceleration, the hypercube
//! baseline, doubling search, custom stop predicates).

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod driver;
pub mod high_load;
pub mod hitting_set;
pub mod hypercube;
pub mod low_load;
pub mod sampling;
pub mod spec;
pub mod termination;

pub use driver::{
    Algorithm, DoublingReport, Driver, DriverError, DriverProblem, ExecInfo, FaultSummary, LpMode,
    Progress, RunReport, RunSpec, SetMode, StopCause, StopCondition,
};
pub use gossip_sim::event::{Engine, Link, LinkPlan};
pub use gossip_sim::fault::{
    Asymmetric, Bernoulli, Byzantine, Churn, Compose, Delay, FaultModel, IntoFaultModel, Partition,
    Perfect, Regional,
};
pub use gossip_sim::metrics::Degradation;
pub use gossip_sim::topology;
pub use gossip_sim::topology::{IntoTopology, Topology};
pub use gossip_sim::RngSchedule;
pub use high_load::{HighLoadClarkson, HighLoadConfig, HighLoadState};
pub use hitting_set::{HittingSetConfig, HittingSetGossip, HittingSetState};
pub use hypercube::{hypercube_clarkson, HypercubeReport};
pub use low_load::{LowLoadClarkson, LowLoadConfig, LowLoadState};
pub use spec::{AlgorithmSpec, F64Key, RunSpecKey, SpecError, StopSpec};
pub use termination::{TermEntry, TermState};
