//! # `lpt-gossip` — gossip-model distributed algorithms for LP-type
//! problems of bounded dimension
//!
//! Reproduction of the algorithms of Hinnenthal, Scheideler & Struijs,
//! *"Fast Distributed Algorithms for LP-Type Problems of Bounded
//! Dimension"* (SPAA 2019, arXiv:1904.10706), on top of the
//! [`gossip_sim`] network simulator:
//!
//! * [`low_load`] — the **Low-Load Clarkson Algorithm** (Algorithm 2)
//!   with the pull-phase extension for `|H| < n` (Algorithm 4):
//!   `O(d log n)` rounds, `O(d² + log n)` work per round (Theorem 3);
//! * [`high_load`] — the **High-Load Clarkson Algorithm** (Algorithm 5)
//!   and its accelerated variant (Section 3.1): `O(d log n)` rounds with
//!   `O(d log n)` work, or `O(d log n / log log n)` rounds with
//!   `O(d log^{1+ε} n)` work (Theorem 4);
//! * [`hitting_set`] — the **Distributed Hitting Set Algorithm**
//!   (Algorithm 6): an `O(d log(ds))`-size hitting set in `O(d log n)`
//!   rounds (Theorem 5); set cover runs through the dual reduction in
//!   `lpt_problems::set_cover`;
//! * [`termination`] — the gossip termination-detection protocol
//!   (Algorithm 3, Section 2.2) shared by the Clarkson protocols;
//! * [`sampling`] — the uniform-multiset sampling subroutine
//!   (Section 2.1);
//! * [`hypercube`] — the hypercube-emulated distributed Clarkson
//!   baseline the paper compares against (`O(d log² n)` rounds,
//!   Section 1.1);
//! * [`runner`] — one-call drivers that scatter an instance over a
//!   simulated network, run a protocol to completion, and return
//!   outputs + communication metrics.
//!
//! ## Quick start
//!
//! ```
//! use lpt_gossip::runner::{self, LowLoadRunConfig};
//! use lpt_problems::Med;
//! use lpt_workloads::med::duo_disk;
//!
//! let points = duo_disk(256, 42);
//! let report = runner::run_low_load(&Med, &points, 256, LowLoadRunConfig::default(), 42);
//! let basis = report.consensus_output().expect("all nodes agree");
//! assert!((basis.value.r2.sqrt() - 10.0).abs() < 1e-6);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod high_load;
pub mod hitting_set;
pub mod hypercube;
pub mod low_load;
pub mod runner;
pub mod sampling;
pub mod termination;

pub use high_load::{HighLoadClarkson, HighLoadConfig, HighLoadState};
pub use hitting_set::{HittingSetConfig, HittingSetGossip, HittingSetState};
pub use hypercube::{hypercube_clarkson, HypercubeReport};
pub use low_load::{LowLoadClarkson, LowLoadConfig, LowLoadState};
pub use termination::{TermEntry, TermState};
