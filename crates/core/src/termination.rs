//! Gossip termination detection (the paper's Algorithm 3, Section 2.2).
//!
//! When a node locally believes it has found the optimum (e.g. its
//! sampled basis has no violators among its own elements), it *injects*
//! an entry `(t, B, 1)`: round stamp, candidate basis, validity bit.
//! Entries spread epidemically — every node pushes one copy of each
//! stored entry per round — while being continuously *audited*: any node
//! holding an element that violates `B` clears the bit to `(t, B, 0)`.
//! Per round stamp `t`, only the entry with the largest `f(B)` survives
//! merging (ties broken by the canonical basis order, mirroring the
//! paper's assumption that `f(B') = f(B)` iff `B' = B`), and the validity
//! bit merges by minimum. After `maturity` rounds an entry is *mature*:
//! it is removed, and if its bit is still 1 the node outputs `f(B)` and
//! halts.
//!
//! With `maturity = c·log n` for a large enough constant `c`, Lemma 12
//! shows that (w.h.p.) every node outputs the same optimal value within
//! `O(log n)` rounds of the first genuine detection, and that no node
//! ever outputs a non-optimal value: an invalid entry needs `Θ(log n)`
//! rounds to spread, by which time the `(t, B, 0)` version — spreading
//! equally fast from the auditing nodes — has overwritten it everywhere.

use lpt::{cmp_basis, BasisOf, LpType};
use std::cmp::Ordering;
use std::collections::BTreeMap;
use std::sync::Arc;

/// One termination entry `(t, B, x)`.
///
/// The basis payload is behind an [`Arc`]: every node re-pushes each
/// live entry every round, so sharing one allocation per circulating
/// basis turns the dominant per-round clone of the termination protocol
/// into a reference-count bump.
#[derive(Debug)]
pub struct TermEntry<P: LpType> {
    /// Round stamp of the injection.
    pub t: u64,
    /// Candidate optimal basis (shared, immutable).
    pub basis: Arc<BasisOf<P>>,
    /// Validity bit: `true` until some node finds a violator.
    pub valid: bool,
}

impl<P: LpType> Clone for TermEntry<P> {
    fn clone(&self) -> Self {
        TermEntry {
            t: self.t,
            basis: Arc::clone(&self.basis),
            valid: self.valid,
        }
    }
}

/// Outcome of one termination step at one node.
#[derive(Debug, Default)]
pub struct TermStep<P: LpType> {
    /// Entries to push out this round (one copy per stored entry).
    pub pushes: Vec<TermEntry<P>>,
    /// If set, the node outputs this basis and halts.
    pub output: Option<BasisOf<P>>,
}

/// Per-node state of the termination protocol.
#[derive(Debug)]
pub struct TermState<P: LpType> {
    /// Live entries keyed by round stamp.
    entries: BTreeMap<u64, (Arc<BasisOf<P>>, bool)>,
    /// Entries received this round, merged at the next step.
    pending: Vec<TermEntry<P>>,
    /// Maturity window (`c·log n`).
    maturity: u64,
    /// The largest basis (by `cmp_basis`) this node has ever seen in any
    /// entry. Since every circulating basis is the basis of a subset of
    /// `H`, monotonicity gives `f(B) ≤ f(H)` for all of them — so a
    /// mature entry whose value is *below* `best_seen` is provably not
    /// optimal and must not be output, even if its audit bit survived.
    /// This is a safety net on top of the paper's audit: it turns "the
    /// invalidation spread in time, w.h.p." into "… or the node has seen
    /// any better candidate", which in practice removes the rare
    /// premature outputs at moderate maturity windows.
    best_seen: Option<Arc<BasisOf<P>>>,
}

impl<P: LpType> Clone for TermState<P> {
    fn clone(&self) -> Self {
        TermState {
            entries: self
                .entries
                .iter()
                .map(|(&t, (b, v))| (t, (Arc::clone(b), *v)))
                .collect(),
            pending: self.pending.clone(),
            maturity: self.maturity,
            best_seen: self.best_seen.clone(),
        }
    }
}

impl<P: LpType> TermState<P> {
    /// Creates a state with the given maturity window (rounds an entry
    /// must survive unchallenged before it is believed).
    pub fn new(maturity: u64) -> Self {
        TermState {
            entries: BTreeMap::new(),
            pending: Vec::new(),
            maturity: maturity.max(1),
            best_seen: None,
        }
    }

    /// The maturity window.
    pub fn maturity(&self) -> u64 {
        self.maturity
    }

    /// Number of live entries (bounded by the maturity window).
    pub fn live_entries(&self) -> usize {
        self.entries.len()
    }

    /// Buffers an entry received from the network.
    pub fn receive(&mut self, entry: TermEntry<P>) {
        self.pending.push(entry);
    }

    /// Injects a locally detected candidate (validity bit 1). Takes a
    /// shared handle so callers that also broadcast or store the same
    /// basis reuse one allocation.
    pub fn inject(&mut self, problem: &P, t: u64, basis: Arc<BasisOf<P>>) {
        self.merge(
            problem,
            TermEntry {
                t,
                basis,
                valid: true,
            },
        );
    }

    fn merge(&mut self, problem: &P, e: TermEntry<P>) {
        let improves = match &self.best_seen {
            None => true,
            Some(best) => cmp_basis(problem, &e.basis, best) == Ordering::Greater,
        };
        if improves {
            self.best_seen = Some(Arc::clone(&e.basis));
        }
        match self.entries.get_mut(&e.t) {
            None => {
                self.entries.insert(e.t, (e.basis, e.valid));
            }
            Some((stored, valid)) => match cmp_basis(problem, &e.basis, stored) {
                Ordering::Greater => {
                    *stored = e.basis;
                    *valid = e.valid;
                }
                Ordering::Equal => {
                    *valid = *valid && e.valid;
                }
                Ordering::Less => {}
            },
        }
    }

    /// One round of Algorithm 3 at this node.
    ///
    /// `now` is the current round; `has_violator(B)` must return whether
    /// any element currently held by this node violates `B` (the audit
    /// `f(B) < f(B ∪ H(v_i))`).
    pub fn step(
        &mut self,
        problem: &P,
        now: u64,
        mut has_violator: impl FnMut(&BasisOf<P>) -> bool,
    ) -> TermStep<P> {
        // Merge everything received since the last step.
        let pending = std::mem::take(&mut self.pending);
        for e in pending {
            self.merge(problem, e);
        }

        let mut out = TermStep {
            pushes: Vec::new(),
            output: None,
        };
        let mut mature: Vec<u64> = Vec::new();
        for (&t, (basis, valid)) in self.entries.iter_mut() {
            if *valid && has_violator(basis) {
                *valid = false;
            }
            if now.saturating_sub(t) >= self.maturity {
                mature.push(t);
            } else {
                // An Arc bump per re-push: the basis allocation is
                // shared by every copy of this entry in the network.
                out.pushes.push(TermEntry {
                    t,
                    basis: Arc::clone(basis),
                    valid: *valid,
                });
            }
        }
        for t in mature {
            let (basis, valid) = self.entries.remove(&t).expect("collected above");
            let not_dominated = match &self.best_seen {
                None => true,
                Some(best) => cmp_basis(problem, &basis, best) != Ordering::Less,
            };
            if valid && not_dominated && out.output.is_none() {
                out.output = Some(Arc::try_unwrap(basis).unwrap_or_else(|a| (*a).clone()));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lpt::exhaustive::test_problems::Interval;
    use lpt::Basis;

    fn basis(lo: i64, hi: i64) -> BasisOf<Interval> {
        Basis::new(vec![lo, hi], hi - lo)
    }

    #[test]
    fn valid_entry_matures_into_output() {
        let p = Interval;
        let mut st: TermState<Interval> = TermState::new(3);
        st.inject(&p, 0, Arc::new(basis(0, 10)));
        for now in 0..3 {
            let step = st.step(&p, now, |_| false);
            assert!(step.output.is_none(), "round {now}");
            assert_eq!(step.pushes.len(), 1);
        }
        let step = st.step(&p, 3, |_| false);
        assert_eq!(step.output.unwrap().value, 10);
        assert!(step.pushes.is_empty());
        assert_eq!(st.live_entries(), 0);
    }

    #[test]
    fn audited_entry_is_suppressed() {
        let p = Interval;
        let mut st: TermState<Interval> = TermState::new(2);
        st.inject(&p, 0, Arc::new(basis(0, 10)));
        // A node holding the element 99 (outside [0,10]) audits it away.
        let step = st.step(&p, 0, |b| Interval.violates(b, &99));
        assert_eq!(step.pushes.len(), 1);
        assert!(!step.pushes[0].valid);
        let step = st.step(&p, 2, |_| false);
        assert!(step.output.is_none(), "invalidated entry must not output");
    }

    #[test]
    fn merge_keeps_larger_value() {
        let p = Interval;
        let mut st: TermState<Interval> = TermState::new(5);
        st.inject(&p, 1, Arc::new(basis(0, 5)));
        st.receive(TermEntry {
            t: 1,
            basis: Arc::new(basis(0, 10)),
            valid: true,
        });
        let step = st.step(&p, 1, |_| false);
        assert_eq!(step.pushes.len(), 1);
        assert_eq!(step.pushes[0].basis.value, 10, "larger f(B) wins the slot");
    }

    #[test]
    fn merge_equal_basis_ands_validity() {
        let p = Interval;
        let mut st: TermState<Interval> = TermState::new(5);
        st.inject(&p, 1, Arc::new(basis(0, 10)));
        st.receive(TermEntry {
            t: 1,
            basis: Arc::new(basis(0, 10)),
            valid: false,
        });
        let step = st.step(&p, 1, |_| false);
        assert!(!step.pushes[0].valid, "x merges by minimum");
    }

    #[test]
    fn smaller_value_is_discarded() {
        let p = Interval;
        let mut st: TermState<Interval> = TermState::new(5);
        st.inject(&p, 1, Arc::new(basis(0, 10)));
        st.receive(TermEntry {
            t: 1,
            basis: Arc::new(basis(2, 7)),
            valid: false,
        });
        let step = st.step(&p, 1, |_| false);
        assert_eq!(step.pushes[0].basis.value, 10);
        assert!(
            step.pushes[0].valid,
            "discarded entry must not poison validity"
        );
    }

    #[test]
    fn entries_with_distinct_stamps_coexist() {
        let p = Interval;
        let mut st: TermState<Interval> = TermState::new(10);
        st.inject(&p, 1, Arc::new(basis(0, 10)));
        st.inject(&p, 2, Arc::new(basis(0, 12)));
        let step = st.step(&p, 2, |_| false);
        assert_eq!(step.pushes.len(), 2);
        assert_eq!(st.live_entries(), 2);
    }

    #[test]
    fn dominated_entry_defers_to_best_seen() {
        let p = Interval;
        let mut st: TermState<Interval> = TermState::new(1);
        st.receive(TermEntry {
            t: 0,
            basis: Arc::new(basis(0, 10)),
            valid: true,
        });
        st.receive(TermEntry {
            t: 1,
            basis: Arc::new(basis(0, 12)),
            valid: true,
        });
        // At now = 5 both are long mature; the t = 0 entry is dominated
        // by the best basis ever seen (value 12 > 10) and by
        // monotonicity cannot be optimal, so the better one is output.
        let step = st.step(&p, 5, |_| false);
        assert_eq!(
            step.output.unwrap().value,
            12,
            "dominated entries never output"
        );
    }

    #[test]
    fn dominated_then_better_arrives_later() {
        let p = Interval;
        let mut st: TermState<Interval> = TermState::new(3);
        st.inject(&p, 0, Arc::new(basis(0, 10)));
        // Before the weak entry matures, a strictly better candidate is
        // observed; the weak entry must be suppressed at maturity.
        st.receive(TermEntry {
            t: 2,
            basis: Arc::new(basis(0, 15)),
            valid: true,
        });
        let step = st.step(&p, 3, |_| false);
        assert!(step.output.is_none(), "weak entry suppressed");
        // The better entry matures (and equals best_seen): output.
        let step = st.step(&p, 5, |_| false);
        assert_eq!(step.output.unwrap().value, 15);
    }
}
