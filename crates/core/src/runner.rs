//! One-call drivers: scatter an instance over a simulated gossip
//! network, run a protocol, collect outputs and metrics.
//!
//! The paper's experiments (Section 5) measure *rounds until at least
//! one node found the solution*, excluding the (input-independent)
//! termination phase; [`rounds_to_first_solution_low_load`] and
//! [`rounds_to_first_solution_high_load`] reproduce exactly that
//! measurement, while [`run_low_load`] / [`run_high_load`] /
//! [`run_hitting_set`] run to full termination (all nodes output and
//! halt) and report consensus.

use crate::high_load::{HighLoadClarkson, HighLoadConfig, HighLoadState};
use crate::hitting_set::{HittingSetConfig, HittingSetGossip, HittingSetState};
use crate::low_load::{LowLoadClarkson, LowLoadConfig, LowLoadState};
use gossip_sim::{Metrics, Network, NetworkConfig, RunOutcome};
use lpt::{BasisOf, LpType};
use lpt_problems::SetSystem;
use rand::Rng;
use rand_chacha::rand_core::SeedableRng;
use rand_chacha::ChaCha8Rng;
use std::sync::Arc;

/// Scatters elements over `n` nodes uniformly and independently at
/// random (the paper's initial distribution assumption, Section 1.4).
pub fn scatter<E: Clone>(elements: &[E], n: usize, seed: u64) -> Vec<Vec<E>> {
    assert!(n >= 1);
    let mut rng = ChaCha8Rng::seed_from_u64(seed ^ 0x7363_6174_7465_72);
    let mut out = vec![Vec::new(); n];
    for e in elements {
        out[rng.gen_range(0..n)].push(e.clone());
    }
    out
}

/// Configuration of a full Low-Load run.
#[derive(Clone, Debug)]
pub struct LowLoadRunConfig {
    /// Protocol knobs.
    pub protocol: LowLoadConfig,
    /// Safety valve on simulated rounds.
    pub max_rounds: u64,
    /// Step nodes in parallel with Rayon for large networks.
    pub parallel: bool,
}

impl Default for LowLoadRunConfig {
    fn default() -> Self {
        LowLoadRunConfig { protocol: LowLoadConfig::default(), max_rounds: 20_000, parallel: true }
    }
}

/// Configuration of a full High-Load run.
#[derive(Clone, Debug)]
pub struct HighLoadRunConfig {
    /// Protocol knobs.
    pub protocol: HighLoadConfig,
    /// Safety valve on simulated rounds.
    pub max_rounds: u64,
    /// Step nodes in parallel with Rayon for large networks.
    pub parallel: bool,
}

impl Default for HighLoadRunConfig {
    fn default() -> Self {
        HighLoadRunConfig { protocol: HighLoadConfig::default(), max_rounds: 20_000, parallel: true }
    }
}

/// Report of a full distributed run.
#[derive(Clone, Debug)]
pub struct GossipReport<P: LpType> {
    /// Per-node outputs (`None` if a node never halted — only possible
    /// when the round budget was exhausted).
    pub outputs: Vec<Option<BasisOf<P>>>,
    /// Rounds simulated.
    pub rounds: u64,
    /// Whether every node output and halted.
    pub all_halted: bool,
    /// Earliest round at which any node first held an audited-candidate.
    pub first_candidate_round: Option<u64>,
    /// Communication metrics, one entry per round.
    pub metrics: Metrics,
    consensus: Option<BasisOf<P>>,
}

impl<P: LpType> GossipReport<P> {
    /// The common output of all nodes, if the run terminated and every
    /// node output a value equal (up to the problem's tolerance) to the
    /// first node's.
    pub fn consensus_output(&self) -> Option<&BasisOf<P>> {
        self.consensus.as_ref()
    }
}

fn consensus_of<P: LpType>(problem: &P, outputs: &[Option<BasisOf<P>>]) -> Option<BasisOf<P>> {
    let first = outputs.first()?.as_ref()?;
    for out in outputs {
        let b = out.as_ref()?;
        if !problem.values_close(&b.value, &first.value) {
            return None;
        }
    }
    Some(first.clone())
}

fn net_config(seed: u64, parallel: bool) -> NetworkConfig {
    let mut cfg = NetworkConfig::with_seed(seed);
    cfg.parallel = parallel;
    cfg
}

/// Runs the Low-Load Clarkson Algorithm to full termination.
pub fn run_low_load<P: LpType + Clone + Sync>(
    problem: &P,
    elements: &[P::Element],
    n: usize,
    cfg: LowLoadRunConfig,
    seed: u64,
) -> GossipReport<P> {
    let proto = LowLoadClarkson::new(problem.clone(), n, &cfg.protocol);
    let states: Vec<LowLoadState<P>> = scatter(elements, n, seed)
        .into_iter()
        .map(|h0| proto.initial_state(h0))
        .collect();
    let mut net = Network::new(proto, states, net_config(seed, cfg.parallel));
    let outcome = net.run(cfg.max_rounds);
    let outputs: Vec<_> = net.states().iter().map(|s| s.output.clone()).collect();
    let first_candidate_round = net.states().iter().filter_map(|s| s.candidate_round).min();
    GossipReport {
        consensus: consensus_of(problem, &outputs),
        outputs,
        rounds: outcome.rounds(),
        all_halted: outcome.all_halted(),
        first_candidate_round,
        metrics: net.metrics().clone(),
    }
}

/// Runs the High-Load Clarkson Algorithm to full termination.
pub fn run_high_load<P: LpType + Clone + Sync>(
    problem: &P,
    elements: &[P::Element],
    n: usize,
    cfg: HighLoadRunConfig,
    seed: u64,
) -> GossipReport<P> {
    let proto = HighLoadClarkson::new(problem.clone(), n, &cfg.protocol);
    let states: Vec<HighLoadState<P>> = scatter(elements, n, seed)
        .into_iter()
        .map(|h| proto.initial_state(h))
        .collect();
    let mut net = Network::new(proto, states, net_config(seed, cfg.parallel));
    let outcome = net.run(cfg.max_rounds);
    let outputs: Vec<_> = net.states().iter().map(|s| s.output.clone()).collect();
    GossipReport {
        consensus: consensus_of(problem, &outputs),
        outputs,
        rounds: outcome.rounds(),
        all_halted: outcome.all_halted(),
        first_candidate_round: None,
        metrics: net.metrics().clone(),
    }
}

/// Result of a first-solution measurement (the paper's Figures 2–3
/// metric: rounds until at least one node found the true optimum).
#[derive(Clone, Copy, Debug)]
pub struct FirstSolution {
    /// Rounds until some node's candidate matched the target value.
    pub rounds: u64,
    /// Whether the target was reached within the round budget.
    pub reached: bool,
}

/// Measures rounds-to-first-solution for the Low-Load algorithm: the run
/// stops as soon as any node's sampled basis (with no local violators)
/// has value equal — up to the problem's tolerance — to `target`.
pub fn rounds_to_first_solution_low_load<P: LpType + Clone + Sync>(
    problem: &P,
    elements: &[P::Element],
    n: usize,
    cfg: LowLoadRunConfig,
    seed: u64,
    target: &P::Value,
) -> (FirstSolution, Metrics) {
    let proto = LowLoadClarkson::new(problem.clone(), n, &cfg.protocol);
    let states: Vec<LowLoadState<P>> = scatter(elements, n, seed)
        .into_iter()
        .map(|h0| proto.initial_state(h0))
        .collect();
    let mut net = Network::new(proto, states, net_config(seed, cfg.parallel));
    let outcome = net.run_until(cfg.max_rounds, |net| {
        net.states().iter().any(|s| {
            s.candidate
                .as_ref()
                .is_some_and(|b| net.protocol().problem().values_close(&b.value, target))
        })
    });
    let reached = matches!(outcome, RunOutcome::Predicate { .. });
    (FirstSolution { rounds: outcome.rounds(), reached }, net.metrics().clone())
}

/// Measures rounds-to-first-solution for the High-Load algorithm: the
/// run stops as soon as any node's local basis `B_i = basis(H(v_i))`
/// matches `target` (the paper's `f(H(v_i)) = f(H)` condition).
pub fn rounds_to_first_solution_high_load<P: LpType + Clone + Sync>(
    problem: &P,
    elements: &[P::Element],
    n: usize,
    cfg: HighLoadRunConfig,
    seed: u64,
    target: &P::Value,
) -> (FirstSolution, Metrics) {
    let proto = HighLoadClarkson::new(problem.clone(), n, &cfg.protocol);
    let states: Vec<HighLoadState<P>> = scatter(elements, n, seed)
        .into_iter()
        .map(|h| proto.initial_state(h))
        .collect();
    let mut net = Network::new(proto, states, net_config(seed, cfg.parallel));
    let outcome = net.run_until(cfg.max_rounds, |net| {
        net.states().iter().any(|s| {
            s.local_basis
                .as_ref()
                .is_some_and(|b| net.protocol().problem().values_close(&b.value, target))
        })
    });
    let reached = matches!(outcome, RunOutcome::Predicate { .. });
    (FirstSolution { rounds: outcome.rounds(), reached }, net.metrics().clone())
}

/// Report of a distributed hitting-set run.
#[derive(Clone, Debug)]
pub struct HittingSetReport {
    /// Per-node outputs.
    pub outputs: Vec<Option<Vec<u32>>>,
    /// Rounds simulated.
    pub rounds: u64,
    /// Whether every node output and halted.
    pub all_halted: bool,
    /// The protocol's sample size `r` (the Theorem 5 size bound).
    pub size_bound: usize,
    /// Round at which the first node found a hitting set.
    pub first_found_round: Option<u64>,
    /// Communication metrics.
    pub metrics: Metrics,
}

impl HittingSetReport {
    /// The smallest output hitting set (all outputs are valid; they may
    /// differ across nodes).
    pub fn best_output(&self) -> Option<&Vec<u32>> {
        self.outputs
            .iter()
            .flatten()
            .min_by_key(|hs| (hs.len(), (*hs).clone()))
    }
}

/// Runs the distributed hitting-set algorithm (Algorithm 6) to full
/// termination. Ground elements `0..sys.n_elements()` are scattered over
/// the `n` nodes.
pub fn run_hitting_set(
    sys: Arc<SetSystem>,
    n: usize,
    cfg: &HittingSetConfig,
    max_rounds: u64,
    seed: u64,
) -> HittingSetReport {
    let proto = HittingSetGossip::new(sys.clone(), n, cfg);
    let size_bound = proto.sample_size();
    let elements: Vec<u32> = (0..sys.n_elements() as u32).collect();
    let states: Vec<HittingSetState> = scatter(&elements, n, seed)
        .into_iter()
        .map(|x0| proto.initial_state(x0))
        .collect();
    let mut net = Network::new(proto, states, net_config(seed, true));
    let outcome = net.run(max_rounds);
    HittingSetReport {
        outputs: net.states().iter().map(|s| s.output.clone()).collect(),
        rounds: outcome.rounds(),
        all_halted: outcome.all_halted(),
        size_bound,
        first_found_round: net.states().iter().filter_map(|s| s.found_round).min(),
        metrics: net.metrics().clone(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lpt::LpType;
    use lpt_problems::Med;
    use lpt_workloads::med::{duo_disk, triple_disk};

    #[test]
    fn scatter_preserves_elements() {
        let elements: Vec<i64> = (0..100).collect();
        let parts = scatter(&elements, 7, 5);
        assert_eq!(parts.len(), 7);
        let mut all: Vec<i64> = parts.into_iter().flatten().collect();
        all.sort_unstable();
        assert_eq!(all, elements);
    }

    #[test]
    fn low_load_med_duo_disk() {
        let points = duo_disk(128, 1);
        let report = run_low_load(&Med, &points, 128, LowLoadRunConfig::default(), 1);
        assert!(report.all_halted);
        let basis = report.consensus_output().expect("consensus");
        assert!((basis.value.r2.sqrt() - 10.0).abs() < 1e-6);
        assert_eq!(basis.len(), 2);
    }

    #[test]
    fn high_load_med_triple_disk() {
        let points = triple_disk(256, 2);
        let report = run_high_load(&Med, &points, 256, HighLoadRunConfig::default(), 2);
        assert!(report.all_halted);
        let basis = report.consensus_output().expect("consensus");
        assert!((basis.value.r2.sqrt() - 10.0).abs() < 1e-6);
        assert_eq!(basis.len(), 3);
    }

    #[test]
    fn first_solution_is_before_full_termination() {
        let points = duo_disk(256, 3);
        let target = Med.basis_of(&points).value;
        let (first, _) = rounds_to_first_solution_low_load(
            &Med,
            &points,
            256,
            LowLoadRunConfig::default(),
            3,
            &target,
        );
        assert!(first.reached);
        let full = run_low_load(&Med, &points, 256, LowLoadRunConfig::default(), 3);
        assert!(full.all_halted);
        assert!(first.rounds <= full.rounds);
    }

    #[test]
    fn first_solution_logarithmic_growth_smoke() {
        // One data point of Figure 2's shape: n = 2^6 vs n = 2^10 should
        // both solve in a handful of rounds, far below linear in n.
        for (n, limit) in [(64usize, 40u64), (1024, 60)] {
            let points = triple_disk(n, 4);
            let target = Med.basis_of(&points).value;
            let (first, _) = rounds_to_first_solution_low_load(
                &Med,
                &points,
                n,
                LowLoadRunConfig::default(),
                4,
                &target,
            );
            assert!(first.reached, "n = {n}");
            assert!(first.rounds <= limit, "n = {n}: rounds {}", first.rounds);
        }
    }
}

/// Result of the doubling search on the unknown minimum-hitting-set size
/// (the paper's Section 1.4 remark: "they may perform a binary search on
/// `d` by stopping the algorithm if it takes too long for some `d` to
/// switch to `2d`").
#[derive(Clone, Debug)]
pub struct UnknownDimReport {
    /// The report of the successful run.
    pub report: HittingSetReport,
    /// The `d` value that succeeded.
    pub d_used: usize,
    /// The `d` values that were tried, in order.
    pub attempts: Vec<usize>,
    /// Total simulated rounds across all attempts (failed ones included).
    pub total_rounds: u64,
}

/// Runs the distributed hitting-set algorithm with *unknown* minimum
/// hitting-set size: starts at `d = 1` and doubles whenever the run does
/// not terminate within `round_budget_factor · d · log2 n` rounds. Since
/// the bounds depend at least linearly on `d`, the doubling adds only a
/// constant factor (paper, Section 1.4).
pub fn run_hitting_set_unknown_d(
    sys: Arc<SetSystem>,
    n: usize,
    base_cfg: &HittingSetConfig,
    round_budget_factor: f64,
    seed: u64,
) -> UnknownDimReport {
    let log2n = (n.max(2) as f64).log2();
    let mut d = 1usize;
    let mut attempts = Vec::new();
    let mut total_rounds = 0u64;
    loop {
        attempts.push(d);
        let mut cfg = base_cfg.clone();
        cfg.d = d;
        let budget = (round_budget_factor * d as f64 * log2n).ceil().max(8.0) as u64;
        let report = run_hitting_set(sys.clone(), n, &cfg, budget, seed ^ (d as u64) << 48);
        total_rounds += report.rounds;
        if report.all_halted {
            return UnknownDimReport { report, d_used: d, attempts, total_rounds };
        }
        assert!(
            d <= 2 * sys.n_elements().max(1),
            "doubling search exceeded the ground-set size — no hitting set can need more"
        );
        d *= 2;
    }
}

#[cfg(test)]
mod unknown_d_tests {
    use super::*;
    use lpt_gossip_test_support::*;

    mod lpt_gossip_test_support {
        pub use lpt_workloads::sets::planted_hitting_set;
    }

    #[test]
    fn doubling_search_finds_d_without_being_told() {
        let (sys, planted) = planted_hitting_set(128, 32, 4, 6, 80);
        let sys = Arc::new(sys);
        let out = run_hitting_set_unknown_d(sys.clone(), 128, &HittingSetConfig::new(1), 12.0, 80);
        assert!(out.report.all_halted);
        let best = out.report.best_output().expect("solution");
        assert!(sys.is_hitting_set(best));
        assert!(out.d_used <= 2 * planted.len(), "d_used = {} overshot", out.d_used);
        assert!(!out.attempts.is_empty());
        // Attempts double: 1, 2, 4, ...
        for w in out.attempts.windows(2) {
            assert_eq!(w[1], w[0] * 2);
        }
    }

    #[test]
    fn doubling_search_on_trivial_instance_stops_at_one() {
        // A single common element hits everything: d = 1 must suffice.
        let sets: Vec<Vec<u32>> = (0..10).map(|i| vec![0u32, i + 1]).collect();
        let sys = Arc::new(lpt_problems::SetSystem::new(12, sets));
        let out = run_hitting_set_unknown_d(sys.clone(), 64, &HittingSetConfig::new(1), 20.0, 81);
        assert!(out.report.all_halted);
        assert_eq!(out.d_used, 1);
        assert!(sys.is_hitting_set(out.report.best_output().unwrap()));
    }
}
