//! Legacy one-call drivers, kept for one release as thin shims over the
//! unified [`crate::driver::Driver`] API.
//!
//! Every free function here delegates to a `Driver` run and repacks the
//! result into the legacy report type; new code should use
//! [`Driver`] directly (see the crate-level migration table and quick
//! start). The shims will be removed in the release after next.

#![allow(deprecated)]

use crate::driver::{Algorithm, Driver, DriverError, RunReport, StopCondition};
use crate::high_load::HighLoadConfig;
use crate::hitting_set::HittingSetConfig;
use crate::low_load::LowLoadConfig;
use gossip_sim::Metrics;
use lpt::{BasisOf, LpType};
use lpt_problems::SetSystem;
use std::sync::Arc;

pub use crate::driver::scatter;

/// Configuration of a full Low-Load run.
#[deprecated(
    since = "0.2.0",
    note = "use `driver::Driver` with `Algorithm::LowLoad`"
)]
#[derive(Clone, Debug)]
pub struct LowLoadRunConfig {
    /// Protocol knobs.
    pub protocol: LowLoadConfig,
    /// Safety valve on simulated rounds.
    pub max_rounds: u64,
    /// Step nodes in parallel with Rayon for large networks.
    pub parallel: bool,
}

impl Default for LowLoadRunConfig {
    fn default() -> Self {
        LowLoadRunConfig {
            protocol: LowLoadConfig::default(),
            max_rounds: 20_000,
            parallel: true,
        }
    }
}

/// Configuration of a full High-Load run.
#[deprecated(
    since = "0.2.0",
    note = "use `driver::Driver` with `Algorithm::HighLoad`"
)]
#[derive(Clone, Debug)]
pub struct HighLoadRunConfig {
    /// Protocol knobs.
    pub protocol: HighLoadConfig,
    /// Safety valve on simulated rounds.
    pub max_rounds: u64,
    /// Step nodes in parallel with Rayon for large networks.
    pub parallel: bool,
}

impl Default for HighLoadRunConfig {
    fn default() -> Self {
        HighLoadRunConfig {
            protocol: HighLoadConfig::default(),
            max_rounds: 20_000,
            parallel: true,
        }
    }
}

/// Report of a full distributed run.
#[deprecated(since = "0.2.0", note = "use `driver::RunReport`")]
#[derive(Clone, Debug)]
pub struct GossipReport<P: LpType> {
    /// Per-node outputs (`None` if a node never halted — only possible
    /// when the round budget was exhausted).
    pub outputs: Vec<Option<BasisOf<P>>>,
    /// Rounds simulated.
    pub rounds: u64,
    /// Whether every node output and halted.
    pub all_halted: bool,
    /// Earliest round at which any node first held an audited-candidate.
    pub first_candidate_round: Option<u64>,
    /// Communication metrics, one entry per round.
    pub metrics: Metrics,
    consensus: Option<BasisOf<P>>,
}

impl<P: LpType> GossipReport<P> {
    fn from_run(report: RunReport<BasisOf<P>>) -> Self {
        GossipReport {
            consensus: report.consensus_output().cloned(),
            outputs: report.outputs,
            rounds: report.rounds,
            all_halted: report.all_halted,
            first_candidate_round: report.first_candidate_round,
            metrics: report.metrics,
        }
    }

    /// The common output of all nodes, if the run terminated and every
    /// node output a value equal (up to the problem's tolerance) to the
    /// first node's.
    pub fn consensus_output(&self) -> Option<&BasisOf<P>> {
        self.consensus.as_ref()
    }
}

fn expect_run<O>(result: Result<RunReport<O>, DriverError>) -> RunReport<O> {
    result.unwrap_or_else(|e| panic!("legacy runner shim: {e}"))
}

/// Runs the Low-Load Clarkson Algorithm to full termination.
#[deprecated(
    since = "0.2.0",
    note = "use `driver::Driver` with `Algorithm::LowLoad`"
)]
pub fn run_low_load<P: LpType + Clone + Sync>(
    problem: &P,
    elements: &[P::Element],
    n: usize,
    cfg: LowLoadRunConfig,
    seed: u64,
) -> GossipReport<P> {
    GossipReport::from_run(expect_run(
        Driver::new(problem.clone())
            .nodes(n)
            .seed(seed)
            .algorithm(Algorithm::LowLoad(cfg.protocol))
            .max_rounds(cfg.max_rounds)
            .parallel(cfg.parallel)
            .run(elements),
    ))
}

/// Runs the High-Load Clarkson Algorithm to full termination.
#[deprecated(
    since = "0.2.0",
    note = "use `driver::Driver` with `Algorithm::HighLoad`"
)]
pub fn run_high_load<P: LpType + Clone + Sync>(
    problem: &P,
    elements: &[P::Element],
    n: usize,
    cfg: HighLoadRunConfig,
    seed: u64,
) -> GossipReport<P> {
    GossipReport::from_run(expect_run(
        Driver::new(problem.clone())
            .nodes(n)
            .seed(seed)
            .algorithm(Algorithm::HighLoad(cfg.protocol))
            .max_rounds(cfg.max_rounds)
            .parallel(cfg.parallel)
            .run(elements),
    ))
}

/// Result of a first-solution measurement (the paper's Figures 2–3
/// metric: rounds until at least one node found the true optimum).
#[deprecated(
    since = "0.2.0",
    note = "use `driver::StopCondition::FirstSolution` and `RunReport::reached`"
)]
#[derive(Clone, Copy, Debug)]
pub struct FirstSolution {
    /// Rounds until some node's candidate matched the target value.
    pub rounds: u64,
    /// Whether the target was reached within the round budget.
    pub reached: bool,
}

/// Measures rounds-to-first-solution for the Low-Load algorithm.
#[deprecated(
    since = "0.2.0",
    note = "use `driver::Driver` with `StopCondition::FirstSolution`"
)]
pub fn rounds_to_first_solution_low_load<P: LpType + Clone + Sync>(
    problem: &P,
    elements: &[P::Element],
    n: usize,
    cfg: LowLoadRunConfig,
    seed: u64,
    target: &P::Value,
) -> (FirstSolution, Metrics) {
    let report = expect_run(
        Driver::new(problem.clone())
            .nodes(n)
            .seed(seed)
            .algorithm(Algorithm::LowLoad(cfg.protocol))
            .max_rounds(cfg.max_rounds)
            .parallel(cfg.parallel)
            .stop(StopCondition::FirstSolution(target.clone()))
            .run(elements),
    );
    (
        FirstSolution {
            rounds: report.rounds,
            reached: report.reached(),
        },
        report.metrics,
    )
}

/// Measures rounds-to-first-solution for the High-Load algorithm.
#[deprecated(
    since = "0.2.0",
    note = "use `driver::Driver` with `StopCondition::FirstSolution`"
)]
pub fn rounds_to_first_solution_high_load<P: LpType + Clone + Sync>(
    problem: &P,
    elements: &[P::Element],
    n: usize,
    cfg: HighLoadRunConfig,
    seed: u64,
    target: &P::Value,
) -> (FirstSolution, Metrics) {
    let report = expect_run(
        Driver::new(problem.clone())
            .nodes(n)
            .seed(seed)
            .algorithm(Algorithm::HighLoad(cfg.protocol))
            .max_rounds(cfg.max_rounds)
            .parallel(cfg.parallel)
            .stop(StopCondition::FirstSolution(target.clone()))
            .run(elements),
    );
    (
        FirstSolution {
            rounds: report.rounds,
            reached: report.reached(),
        },
        report.metrics,
    )
}

/// Report of a distributed hitting-set run.
#[deprecated(since = "0.2.0", note = "use `driver::RunReport`")]
#[derive(Clone, Debug)]
pub struct HittingSetReport {
    /// Per-node outputs.
    pub outputs: Vec<Option<Vec<u32>>>,
    /// Rounds simulated.
    pub rounds: u64,
    /// Whether every node output and halted.
    pub all_halted: bool,
    /// The protocol's sample size `r` (the Theorem 5 size bound).
    pub size_bound: usize,
    /// Round at which the first node found a hitting set.
    pub first_found_round: Option<u64>,
    /// Communication metrics.
    pub metrics: Metrics,
}

impl HittingSetReport {
    fn from_run(report: RunReport<Vec<u32>>) -> Self {
        HittingSetReport {
            size_bound: report.size_bound.unwrap_or(0),
            first_found_round: report.first_found_round(),
            outputs: report.outputs,
            rounds: report.rounds,
            all_halted: report.all_halted,
            metrics: report.metrics,
        }
    }

    /// The smallest output hitting set (all outputs are valid; they may
    /// differ across nodes).
    pub fn best_output(&self) -> Option<&Vec<u32>> {
        self.outputs.iter().flatten().min_by(|a, b| {
            a.len()
                .cmp(&b.len())
                .then_with(|| a.as_slice().cmp(b.as_slice()))
        })
    }
}

/// Runs the distributed hitting-set algorithm (Algorithm 6) to full
/// termination. Ground elements `0..sys.n_elements()` are scattered over
/// the `n` nodes.
#[deprecated(
    since = "0.2.0",
    note = "use `driver::Driver` with `Algorithm::HittingSet`"
)]
pub fn run_hitting_set(
    sys: Arc<SetSystem>,
    n: usize,
    cfg: &HittingSetConfig,
    max_rounds: u64,
    seed: u64,
) -> HittingSetReport {
    HittingSetReport::from_run(expect_run(
        Driver::new(sys)
            .nodes(n)
            .seed(seed)
            .algorithm(Algorithm::HittingSet(cfg.clone()))
            .max_rounds(max_rounds)
            .run_ground(),
    ))
}

/// Result of the doubling search on the unknown minimum-hitting-set size.
#[deprecated(since = "0.2.0", note = "use `driver::Driver::with_doubling_search`")]
#[derive(Clone, Debug)]
pub struct UnknownDimReport {
    /// The report of the successful run.
    pub report: HittingSetReport,
    /// The `d` value that succeeded.
    pub d_used: usize,
    /// The `d` values that were tried, in order.
    pub attempts: Vec<usize>,
    /// Total simulated rounds across all attempts (failed ones included).
    pub total_rounds: u64,
}

/// Runs the distributed hitting-set algorithm with *unknown* minimum
/// hitting-set size via doubling search.
#[deprecated(since = "0.2.0", note = "use `driver::Driver::with_doubling_search`")]
pub fn run_hitting_set_unknown_d(
    sys: Arc<SetSystem>,
    n: usize,
    base_cfg: &HittingSetConfig,
    round_budget_factor: f64,
    seed: u64,
) -> UnknownDimReport {
    let report = expect_run(
        Driver::new(sys)
            .nodes(n)
            .seed(seed)
            .algorithm(Algorithm::HittingSet(base_cfg.clone()))
            .with_doubling_search(round_budget_factor)
            .run_ground(),
    );
    let doubling = report
        .doubling
        .clone()
        .expect("doubling driver returns a trace");
    UnknownDimReport {
        report: HittingSetReport::from_run(report),
        d_used: doubling.d_used,
        attempts: doubling.attempts,
        total_rounds: doubling.total_rounds,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lpt::LpType;
    use lpt_problems::Med;
    use lpt_workloads::med::duo_disk;
    use lpt_workloads::sets::planted_hitting_set;

    #[test]
    fn legacy_full_run_shims_delegate_to_driver() {
        let points = duo_disk(128, 1);
        let legacy = run_low_load(&Med, &points, 128, LowLoadRunConfig::default(), 1);
        let driver = Driver::new(Med)
            .nodes(128)
            .seed(1)
            .run(&points)
            .expect("driver");
        assert_eq!(legacy.rounds, driver.rounds);
        assert_eq!(legacy.all_halted, driver.all_halted);
        assert_eq!(
            legacy.consensus_output().map(|b| b.value.r2),
            driver.consensus_output().map(|b| b.value.r2)
        );
        assert_eq!(legacy.metrics.total_ops(), driver.metrics.total_ops());
    }

    #[test]
    fn legacy_first_solution_shim_matches_driver() {
        let points = duo_disk(256, 3);
        let target = Med.basis_of(&points).value;
        let (first, metrics) = rounds_to_first_solution_low_load(
            &Med,
            &points,
            256,
            LowLoadRunConfig::default(),
            3,
            &target,
        );
        assert!(first.reached);
        let report = Driver::new(Med)
            .nodes(256)
            .seed(3)
            .stop(StopCondition::FirstSolution(target))
            .run(&points)
            .expect("driver");
        assert!(report.reached());
        assert_eq!(first.rounds, report.rounds);
        assert_eq!(metrics.total_ops(), report.metrics.total_ops());
    }

    #[test]
    fn legacy_hitting_set_shims_delegate() {
        let (sys, _) = planted_hitting_set(96, 24, 2, 5, 64);
        let sys = Arc::new(sys);
        let legacy = run_hitting_set(sys.clone(), 96, &HittingSetConfig::new(2), 5_000, 64);
        assert!(legacy.all_halted);
        assert!(sys.is_hitting_set(legacy.best_output().expect("solution")));
        let unknown =
            run_hitting_set_unknown_d(sys.clone(), 96, &HittingSetConfig::new(1), 12.0, 64);
        assert!(unknown.report.all_halted);
        assert!(!unknown.attempts.is_empty());
        assert!(sys.is_hitting_set(unknown.report.best_output().expect("solution")));
    }
}
