//! The hypercube-emulated distributed Clarkson baseline.
//!
//! The paper (Section 1.1) observes that Clarkson's algorithm "can easily
//! be transformed into a distributed algorithm with expected runtime
//! `O(d log² n)` if `n` nodes are ... interconnected by a hypercube ...
//! because in that case every round of the algorithm can be executed in
//! `O(log n)` communication rounds w.h.p." — and poses beating that bound
//! as the open problem the gossip algorithms solve.
//!
//! This module provides that baseline with explicit round accounting:
//! the element multiset is distributed over `n` nodes, and each Clarkson
//! iteration is charged `3·⌈log₂ n⌉` hypercube communication rounds —
//! one tree traversal to sample `R` from the distributed multiset
//! (distributed prefix sums), one broadcast of the basis of `R`, and one
//! aggregation of the violator count for the success test. The Clarkson
//! iteration structure itself is executed faithfully (it is exactly
//! Algorithm 1 over the distributed multiset), so iteration counts are
//! real, not modeled; only the network cost per iteration is analytic.

use lpt::clarkson::{clarkson_with_config, ClarksonConfig, ClarksonError};
use lpt::{BasisOf, LpType};
use rand::Rng;

/// Result of a hypercube-baseline run.
#[derive(Clone, Debug)]
pub struct HypercubeReport<P: LpType> {
    /// The optimal basis found.
    pub basis: BasisOf<P>,
    /// Clarkson iterations executed.
    pub iterations: usize,
    /// Hypercube communication rounds charged per iteration.
    pub rounds_per_iteration: u64,
    /// Total communication rounds = iterations × per-iteration cost,
    /// plus a final `⌈log₂ n⌉` result broadcast.
    pub rounds: u64,
}

/// Runs the hypercube-emulated Clarkson baseline on `n` nodes.
pub fn hypercube_clarkson<P: LpType, R: Rng + ?Sized>(
    problem: &P,
    elements: &[P::Element],
    n: usize,
    rng: &mut R,
) -> Result<HypercubeReport<P>, ClarksonError> {
    let log2n = ((n.max(2) as f64).log2()).ceil() as u64;
    let rounds_per_iteration = 3 * log2n;
    let result = clarkson_with_config(problem, elements, &ClarksonConfig::default(), rng)?;
    let iterations = if result.stats.solved_directly {
        // Tiny instance: one gather suffices, but it still costs a tree
        // traversal.
        1
    } else {
        result.stats.iterations
    };
    Ok(HypercubeReport {
        basis: result.basis,
        iterations,
        rounds_per_iteration,
        rounds: iterations as u64 * rounds_per_iteration + log2n,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use lpt::exhaustive::test_problems::Interval;
    use rand_chacha::rand_core::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn produces_correct_answer_with_round_accounting() {
        let elements: Vec<i64> = (0..5000).map(|i| (i * 31) % 2003 - 1001).collect();
        let mut rng = ChaCha8Rng::seed_from_u64(41);
        let rep = hypercube_clarkson(&Interval, &elements, 1024, &mut rng).unwrap();
        let lo = *elements.iter().min().unwrap();
        let hi = *elements.iter().max().unwrap();
        assert_eq!(rep.basis.value, hi - lo);
        assert_eq!(rep.rounds_per_iteration, 30);
        assert_eq!(rep.rounds, rep.iterations as u64 * 30 + 10);
    }

    #[test]
    fn rounds_scale_log_squared() {
        // For fixed |H| per node, iterations grow with log |H| and the
        // per-iteration cost grows with log n: the product is Θ(log²).
        let mut rng = ChaCha8Rng::seed_from_u64(42);
        let small: Vec<i64> = (0..1 << 8).map(|i| (i * 7) % 251).collect();
        let large: Vec<i64> = (0..1 << 14).map(|i| (i * 7) % 16381).collect();
        let rep_small = hypercube_clarkson(&Interval, &small, 1 << 8, &mut rng).unwrap();
        let rep_large = hypercube_clarkson(&Interval, &large, 1 << 14, &mut rng).unwrap();
        assert!(rep_large.rounds > rep_small.rounds);
    }

    #[test]
    fn tiny_instance_single_gather() {
        let mut rng = ChaCha8Rng::seed_from_u64(43);
        let rep = hypercube_clarkson(&Interval, &[5, 9], 64, &mut rng).unwrap();
        assert_eq!(rep.iterations, 1);
        assert_eq!(rep.basis.value, 4);
    }
}
