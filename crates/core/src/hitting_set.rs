//! The Distributed Hitting Set Algorithm (paper, Section 4: Algorithm 6).
//!
//! Every node knows the set system `S` (it may be implicit, e.g. a
//! family of polygons); the ground elements `X` are scattered over the
//! network. Per round, every node samples a random multiset `R_i` of
//! size `r = ⌈6·d·ln(12·d·s)⌉` from the element multiset `X(V)`; if some
//! set is not hit by `R_i`, the node picks one uncovered set uniformly
//! at random and pushes its elements (capped at `c·d·log n` per round),
//! boosting the multiplicity of exactly the elements that can fix the
//! deficiency; non-original copies are filtered with keep probability
//! `1/(1 + 1/(2d))` as in the Low-Load algorithm. Once `R_i` hits every
//! set — which Lemma 18 shows happens within `O(d log n)` rounds w.h.p.
//! — `R_i` itself is a hitting set of size `r = O(d log(ds))`
//! (Theorem 5).
//!
//! Termination is simpler than for the Clarkson protocols: whether a
//! candidate is a hitting set is *locally checkable* (every node knows
//! `S`), so no distributed audit is needed; found solutions spread
//! epidemically and every node outputs after forwarding for a maturity
//! window. Set cover runs through the dual reduction
//! (`lpt_problems::SetCover::dual_hitting_set`).
//!
//! The paper assumes `|X| = n`; for `|X| < n` we bootstrap exactly like
//! the Low-Load extension (Section 2.3): nodes that start empty pull
//! until they receive one original element and re-scatter it as a new
//! `X₀` copy, after which `|X₀(V)| ≥ n` and sampling succeeds.

use crate::sampling::{extract_sample_from, SampleOutcome};
use gossip_sim::{NodeControl, PhaseRng, Protocol, Response, Served};
use lpt_problems::SetSystem;
use rand::Rng;
use std::sync::Arc;

/// Tuning knobs for the distributed hitting-set protocol.
#[derive(Clone, Debug)]
pub struct HittingSetConfig {
    /// The parameter `d`: (an upper bound on) the minimum hitting set
    /// size. The paper assumes it known (or found by doubling search).
    pub d: usize,
    /// Sample size override; `None` = the paper's `⌈6·d·ln(12·d·s)⌉`.
    pub sample_size: Option<usize>,
    /// Pull-count factor `c` in `s = c(r + log n)`.
    pub pull_factor: f64,
    /// Small-instance sampling relaxation threshold.
    pub relaxed_threshold: f64,
    /// Per-round push cap factor `c` in `c·d·log n`.
    pub push_cap_factor: f64,
    /// Keep probability of the filtering step; `None` = `1/(1+1/(2d))`.
    pub keep_prob: Option<f64>,
    /// Rounds a node forwards a found solution before outputting.
    pub maturity_factor: f64,
}

impl HittingSetConfig {
    /// Default configuration for minimum-hitting-set parameter `d`.
    pub fn new(d: usize) -> Self {
        HittingSetConfig {
            d: d.max(1),
            sample_size: None,
            pull_factor: 2.0,
            relaxed_threshold: 0.5,
            push_cap_factor: 4.0,
            keep_prob: None,
            maturity_factor: 2.0,
        }
    }
}

/// Messages: element copies and found-solution announcements.
#[derive(Clone, Debug)]
pub enum HsMsg {
    /// A duplicated element.
    Elem(u32),
    /// A re-scattered original element (pull-phase bootstrap; joins the
    /// receiver's `X₀`).
    Elem0(u32),
    /// A verified hitting set being disseminated. Arc-shared: every
    /// found node re-broadcasts its solution each round until maturity,
    /// so all copies in flight intern one allocation.
    Found(Arc<Vec<u32>>),
}

/// Pull queries.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum HsQuery {
    /// "Send me a uniformly random element copy of your `X(v)`."
    Sample,
    /// "Send me a uniformly random element of your `X₀(v)`" (pull phase).
    PullX0,
}

/// Per-node state.
#[derive(Clone, Debug)]
pub struct HittingSetState {
    /// Original elements (never deleted).
    pub x0: Vec<u32>,
    /// Whether the node is still bootstrapping (pull phase).
    pub pull_phase: bool,
    /// Filterable element copies.
    pub extra: Vec<u32>,
    /// Best verified hitting set known to this node (shared with the
    /// message copies disseminating it).
    pub best: Option<Arc<Vec<u32>>>,
    /// Round at which `best` was first set.
    pub found_round: Option<u64>,
    /// The node's final output.
    pub output: Option<Vec<u32>>,
    /// Local round counter.
    pub round: u64,
    /// Rounds in which sampling failed.
    pub sampling_failures: u64,
}

impl HittingSetState {
    /// Creates the state for a node initially holding `x0`.
    pub fn new(x0: Vec<u32>) -> Self {
        let pull_phase = x0.is_empty();
        HittingSetState {
            x0,
            pull_phase,
            extra: Vec::new(),
            best: None,
            found_round: None,
            output: None,
            round: 0,
            sampling_failures: 0,
        }
    }

    fn held(&self) -> usize {
        self.x0.len() + self.extra.len()
    }

    fn element_at(&self, idx: usize) -> u32 {
        if idx < self.x0.len() {
            self.x0[idx]
        } else {
            self.extra[idx - self.x0.len()]
        }
    }
}

/// The distributed hitting-set protocol (Algorithm 6).
#[derive(Clone, Debug)]
pub struct HittingSetGossip {
    sys: Arc<SetSystem>,
    r: usize,
    s: usize,
    push_cap: usize,
    keep_prob: f64,
    relaxed_threshold: f64,
    maturity: u64,
}

impl HittingSetGossip {
    /// Builds the protocol for a network of `n` nodes sharing `sys`.
    pub fn new(sys: Arc<SetSystem>, n: usize, cfg: &HittingSetConfig) -> Self {
        let d = cfg.d.max(1) as f64;
        let s_sets = sys.num_sets().max(1) as f64;
        let r = cfg
            .sample_size
            .unwrap_or_else(|| (6.0 * d * (12.0 * d * s_sets).ln()).ceil() as usize)
            .max(1);
        let log2n = (n.max(2) as f64).log2();
        let s = ((cfg.pull_factor * (r as f64 + log2n)).ceil() as usize).max(r);
        let push_cap = (cfg.push_cap_factor * d * log2n).ceil().max(1.0) as usize;
        let keep_prob = cfg.keep_prob.unwrap_or(1.0 / (1.0 + 1.0 / (2.0 * d)));
        let maturity = (cfg.maturity_factor * log2n).ceil().max(1.0) as u64;
        HittingSetGossip {
            sys,
            r,
            s,
            push_cap,
            keep_prob,
            relaxed_threshold: cfg.relaxed_threshold,
            maturity,
        }
    }

    /// The sample size `r` (also the size bound of the found hitting set).
    pub fn sample_size(&self) -> usize {
        self.r
    }

    /// The per-round pull count.
    pub fn pull_count(&self) -> usize {
        self.s
    }

    /// The shared set system.
    pub fn system(&self) -> &SetSystem {
        &self.sys
    }

    /// Builds the initial per-node state.
    pub fn initial_state(&self, x0: Vec<u32>) -> HittingSetState {
        HittingSetState::new(x0)
    }

    fn better(a: &[u32], b: &[u32]) -> bool {
        (a.len(), a) < (b.len(), b)
    }
}

impl Protocol for HittingSetGossip {
    type State = HittingSetState;
    type Msg = HsMsg;
    type Query = HsQuery;

    fn pulls(
        &self,
        _id: u32,
        state: &HittingSetState,
        _rng: &mut PhaseRng,
        out: &mut Vec<HsQuery>,
    ) {
        if state.pull_phase {
            out.push(HsQuery::PullX0);
        } else if state.best.is_none() {
            out.extend(std::iter::repeat_n(HsQuery::Sample, self.s));
        }
    }

    fn serve(
        &self,
        _id: u32,
        state: &HittingSetState,
        query: &HsQuery,
        rng: &mut PhaseRng,
    ) -> Option<Served<HsMsg>> {
        match query {
            HsQuery::Sample => {
                let held = state.held();
                if held == 0 {
                    return None;
                }
                let idx = rng.gen_range(0..held);
                Some(Served {
                    msg: HsMsg::Elem(state.element_at(idx)),
                    slot: idx as u64,
                })
            }
            HsQuery::PullX0 => {
                if state.x0.is_empty() {
                    return None;
                }
                let idx = rng.gen_range(0..state.x0.len());
                Some(Served {
                    msg: HsMsg::Elem(state.x0[idx]),
                    slot: idx as u64,
                })
            }
        }
    }

    fn compute(
        &self,
        _id: u32,
        state: &mut HittingSetState,
        responses: &mut Vec<Option<Response<HsMsg>>>,
        rng: &mut PhaseRng,
        pushes: &mut Vec<HsMsg>,
    ) -> NodeControl {
        let now = state.round;
        state.round += 1;

        if state.pull_phase {
            // Bootstrap (Section 2.3 analogue): re-scatter one original
            // element, then start participating.
            if let Some(resp) = responses.drain(..).flatten().next() {
                if let HsMsg::Elem(x) = resp.msg {
                    pushes.push(HsMsg::Elem0(x));
                    state.pull_phase = false;
                }
            }
            state.extra.retain(|_| rng.gen_bool(self.keep_prob));
            return NodeControl::Continue;
        }

        // --- Dissemination / output of found solutions. ------------------
        if let Some(best) = &state.best {
            pushes.push(HsMsg::Found(Arc::clone(best)));
            if now.saturating_sub(state.found_round.expect("set with best")) >= self.maturity {
                state.output = Some((**best).clone());
                return NodeControl::Halt;
            }
            // Found nodes stop sampling; they only forward.
            state.extra.retain(|_| rng.gen_bool(self.keep_prob));
            return NodeControl::Continue;
        }

        // --- Sampling (Algorithm 6 lines 3–9). ---------------------------
        // Responses are read in place; `Found` payloads cannot answer a
        // `Sample` pull, and the projection treats them as failed pulls.
        let sampled = extract_sample_from(
            responses,
            self.r,
            self.relaxed_threshold,
            rng,
            |m: &HsMsg| match m {
                HsMsg::Elem(x) | HsMsg::Elem0(x) => Some(x),
                HsMsg::Found(_) => None,
            },
        );
        match sampled {
            SampleOutcome::Sample(sample) => {
                let uncovered = self.sys.uncovered_sets(&sample);
                if uncovered.is_empty() {
                    // R_i is a hitting set: dedup, verify, disseminate.
                    let mut hs = sample;
                    hs.sort_unstable();
                    hs.dedup();
                    debug_assert!(self.sys.is_hitting_set(&hs));
                    let hs = Arc::new(hs);
                    state.best = Some(Arc::clone(&hs));
                    state.found_round = Some(now);
                    pushes.push(HsMsg::Found(hs));
                } else {
                    // Boost a random uncovered set's elements.
                    let si = uncovered[rng.gen_range(0..uncovered.len())];
                    let local_mask = {
                        let mut all: Vec<u32> = state.x0.clone();
                        all.extend_from_slice(&state.extra);
                        self.sys.sample_mask(&all)
                    };
                    let w: Vec<u32> = self
                        .sys
                        .set(si)
                        .iter()
                        .copied()
                        .filter(|&x| local_mask[(x as usize) / 64] & (1 << (x % 64)) == 0)
                        .collect();
                    if w.len() <= self.push_cap {
                        for x in w {
                            pushes.push(HsMsg::Elem(x));
                        }
                    }
                }
            }
            SampleOutcome::Failed => {
                state.sampling_failures += 1;
            }
        }

        // --- Filtering (never touches X₀). --------------------------------
        state.extra.retain(|_| rng.gen_bool(self.keep_prob));
        NodeControl::Continue
    }

    fn absorb(
        &self,
        _id: u32,
        state: &mut HittingSetState,
        delivered: &mut Vec<HsMsg>,
        _rng: &mut PhaseRng,
    ) -> NodeControl {
        for msg in delivered.drain(..) {
            match msg {
                HsMsg::Elem(x) => state.extra.push(x),
                HsMsg::Elem0(x) => state.x0.push(x),
                HsMsg::Found(hs) => {
                    // Verify before adopting (local knowledge of S makes
                    // Byzantine-free verification a single scan).
                    if !self.sys.is_hitting_set(&hs) {
                        continue;
                    }
                    match &state.best {
                        Some(cur) if !Self::better(&hs, cur) => {}
                        _ => {
                            if state.found_round.is_none() {
                                state.found_round = Some(state.round);
                            }
                            state.best = Some(hs);
                        }
                    }
                }
            }
        }
        NodeControl::Continue
    }

    fn msg_words(&self, msg: &HsMsg) -> usize {
        match msg {
            HsMsg::Elem(_) | HsMsg::Elem0(_) => 1,
            HsMsg::Found(hs) => hs.len().max(1),
        }
    }

    fn load(&self, state: &HittingSetState) -> usize {
        state.held()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gossip_sim::{Network, NetworkConfig};
    use lpt_workloads::sets::planted_hitting_set;
    use rand_chacha::rand_core::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn scatter(elements: &[u32], n: usize, seed: u64) -> Vec<Vec<u32>> {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let mut out = vec![Vec::new(); n];
        for &e in elements {
            out[rng.gen_range(0..n)].push(e);
        }
        out
    }

    fn run(
        sys: Arc<SetSystem>,
        n: usize,
        cfg: &HittingSetConfig,
        seed: u64,
    ) -> (Vec<Option<Vec<u32>>>, u64, usize) {
        let proto = HittingSetGossip::new(sys, n, cfg);
        let r = proto.sample_size();
        let elements: Vec<u32> = (0..proto.system().n_elements() as u32).collect();
        let states: Vec<_> = scatter(&elements, n, seed)
            .into_iter()
            .map(|x0| proto.initial_state(x0))
            .collect();
        let mut net = Network::new(proto, states, NetworkConfig::with_seed(seed));
        let outcome = net.run(3000);
        assert!(outcome.all_halted(), "did not terminate: {outcome:?}");
        (
            net.states().iter().map(|s| s.output.clone()).collect(),
            outcome.rounds(),
            r,
        )
    }

    #[test]
    fn finds_valid_hitting_set() {
        let (sys, _planted) = planted_hitting_set(256, 40, 3, 6, 31);
        let sys = Arc::new(sys);
        let (outputs, rounds, r) = run(sys.clone(), 256, &HittingSetConfig::new(3), 31);
        for out in &outputs {
            let hs = out.as_ref().expect("output");
            assert!(sys.is_hitting_set(hs));
            assert!(hs.len() <= r, "|HS| = {} > r = {r}", hs.len());
        }
        assert!(rounds < 400, "rounds {rounds}");
    }

    #[test]
    fn size_bound_is_theorem_5() {
        // r = O(d·log(d·s)): check the concrete formula.
        let (sys, _) = planted_hitting_set(128, 64, 2, 5, 32);
        let proto = HittingSetGossip::new(Arc::new(sys), 128, &HittingSetConfig::new(2));
        let d = 2.0f64;
        let s = 64.0f64;
        assert_eq!(
            proto.sample_size(),
            (6.0 * d * (12.0 * d * s).ln()).ceil() as usize
        );
    }

    #[test]
    fn works_when_elements_sparse() {
        // Fewer elements than nodes.
        let (sys, _) = planted_hitting_set(32, 10, 2, 4, 33);
        let sys = Arc::new(sys);
        let (outputs, _, _) = run(sys.clone(), 128, &HittingSetConfig::new(2), 33);
        for out in &outputs {
            assert!(sys.is_hitting_set(out.as_ref().unwrap()));
        }
    }

    #[test]
    fn deterministic_given_seed() {
        let (sys, _) = planted_hitting_set(64, 16, 2, 4, 34);
        let sys = Arc::new(sys);
        let (a, ra, _) = run(sys.clone(), 64, &HittingSetConfig::new(2), 34);
        let (b, rb, _) = run(sys, 64, &HittingSetConfig::new(2), 34);
        assert_eq!(ra, rb);
        assert_eq!(a, b);
    }

    #[test]
    fn solves_set_cover_via_dual() {
        use lpt_problems::SetCover;
        use lpt_workloads::sets::planted_set_cover;
        let sc: SetCover = planted_set_cover(96, 24, 3, 35);
        let dual = Arc::new(sc.dual_hitting_set());
        let (outputs, _, _) = run(dual, 96, &HittingSetConfig::new(3), 35);
        for out in &outputs {
            let cover = out.as_ref().unwrap();
            assert!(sc.is_cover(cover), "dual hitting set must be a set cover");
        }
    }
}
