//! Canonical, owned run specifications — the cache key and wire form
//! of a [`Driver`](crate::driver::Driver) run.
//!
//! The runtime [`RunSpec`](crate::driver::RunSpec) borrows trait
//! objects (fault models, topologies) and may carry closures (custom
//! stop predicates), so it can be neither hashed nor serialized. A
//! [`RunSpecKey`] is the owned, wire-expressible subset: every field is
//! plain data, presets are referenced *by name* (resolved against
//! `lpt_workloads::scenarios` by the consumer), and the whole key has
//! `Eq + Hash` plus a canonical string encoding that round-trips
//! exactly ([`RunSpecKey::canonical`] / [`RunSpecKey::parse`]).
//!
//! Because a run is a pure function of its spec (see the determinism
//! contract in `gossip-sim`), two equal keys denote byte-identical
//! reports — which is exactly the property that makes the `lpt-server`
//! report cache *exact* rather than heuristic. Anything that would make
//! two different runs compare equal (or one run encode two ways) is a
//! cache-poisoning bug, so the encoding is versioned (`spec-v1`),
//! field-ordered, and covered by round-trip tests.
//!
//! Floating-point parameters (the accelerated exponent, the doubling
//! budget factor) are keyed by their IEEE-754 **bit pattern**
//! ([`F64Key`]): bitwise identity is the only equality under which
//! "equal keys ⇒ identical runs" holds for floats.

use gossip_sim::event::Engine;
use gossip_sim::export::ErrorCode;
use gossip_sim::RngSchedule;
use std::fmt;

/// Version tag leading every canonical spec string. Bump (and keep the
/// old parser) whenever the grammar changes incompatibly.
pub const SPEC_VERSION: &str = "spec-v1";

// ---------------------------------------------------------------------------
// F64Key
// ---------------------------------------------------------------------------

/// An `f64` keyed by bit pattern, so it can sit in `Eq + Hash` spec
/// keys. Displays (and parses) as the shortest round-tripping decimal,
/// which Rust's `f64` formatter guarantees — the string form is as
/// stable as the bits.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct F64Key(u64);

impl F64Key {
    /// Keys a float (must be finite — NaN payloads and infinities have
    /// no canonical text form).
    pub fn new(v: f64) -> Option<F64Key> {
        if v.is_finite() {
            Some(F64Key(v.to_bits()))
        } else {
            None
        }
    }

    /// The keyed value.
    pub fn value(self) -> f64 {
        f64::from_bits(self.0)
    }
}

impl fmt::Display for F64Key {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:?}", self.value())
    }
}

impl std::str::FromStr for F64Key {
    type Err = SpecError;

    fn from_str(s: &str) -> Result<Self, SpecError> {
        s.parse::<f64>()
            .ok()
            .and_then(F64Key::new)
            .ok_or_else(|| SpecError::BadValue {
                field: "f64",
                value: s.to_string(),
            })
    }
}

// ---------------------------------------------------------------------------
// AlgorithmSpec / StopSpec
// ---------------------------------------------------------------------------

/// Wire-expressible algorithm selection (the paper-default knobs of
/// each family; bespoke `LowLoadConfig`/`HighLoadConfig` tuning stays
/// an in-process API).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum AlgorithmSpec {
    /// The Low-Load Clarkson Algorithm with default knobs.
    LowLoad,
    /// The High-Load Clarkson Algorithm with default knobs (`C = 1`).
    HighLoad,
    /// The accelerated High-Load variant with exponent `ε`.
    Accelerated(F64Key),
    /// The analytic hypercube-emulated baseline.
    Hypercube,
    /// The distributed hitting-set algorithm with size bound `d`.
    HittingSet {
        /// Upper bound on the optimum hitting-set size.
        d: u64,
    },
}

impl AlgorithmSpec {
    /// Canonical encoding (`low-load`, `accelerated:0.5`,
    /// `hitting-set:3`, ...).
    pub fn canonical(&self) -> String {
        match self {
            AlgorithmSpec::LowLoad => "low-load".to_string(),
            AlgorithmSpec::HighLoad => "high-load".to_string(),
            AlgorithmSpec::Accelerated(eps) => format!("accelerated:{eps}"),
            AlgorithmSpec::Hypercube => "hypercube".to_string(),
            AlgorithmSpec::HittingSet { d } => format!("hitting-set:{d}"),
        }
    }

    /// Parses the canonical encoding.
    pub fn parse(s: &str) -> Result<AlgorithmSpec, SpecError> {
        let bad = || SpecError::BadValue {
            field: "algorithm",
            value: s.to_string(),
        };
        match s.split_once(':') {
            None => match s {
                "low-load" => Ok(AlgorithmSpec::LowLoad),
                "high-load" => Ok(AlgorithmSpec::HighLoad),
                "hypercube" => Ok(AlgorithmSpec::Hypercube),
                _ => Err(bad()),
            },
            Some(("accelerated", eps)) => {
                Ok(AlgorithmSpec::Accelerated(eps.parse().map_err(|_| bad())?))
            }
            Some(("hitting-set", d)) => Ok(AlgorithmSpec::HittingSet {
                d: d.parse().map_err(|_| bad())?,
            }),
            Some(_) => Err(bad()),
        }
    }
}

/// Wire-expressible stop conditions.
///
/// [`StopCondition::FirstSolution`](crate::driver::StopCondition) and
/// custom predicates carry problem-typed values / closures and are
/// deliberately not encodable: a cache key must fully determine the
/// run from plain data.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum StopSpec {
    /// Run until every node has output and halted.
    FullTermination,
    /// Stop after exactly this many rounds.
    RoundBudget(u64),
}

impl StopSpec {
    /// Canonical encoding (`full` or `budget:N`).
    pub fn canonical(&self) -> String {
        match self {
            StopSpec::FullTermination => "full".to_string(),
            StopSpec::RoundBudget(r) => format!("budget:{r}"),
        }
    }

    /// Parses the canonical encoding.
    pub fn parse(s: &str) -> Result<StopSpec, SpecError> {
        let bad = || SpecError::BadValue {
            field: "stop",
            value: s.to_string(),
        };
        match s.split_once(':') {
            None if s == "full" => Ok(StopSpec::FullTermination),
            Some(("budget", r)) => Ok(StopSpec::RoundBudget(r.parse().map_err(|_| bad())?)),
            _ => Err(bad()),
        }
    }
}

// ---------------------------------------------------------------------------
// RunSpecKey
// ---------------------------------------------------------------------------

/// The canonical, owned key of one driver run: workload + algorithm +
/// network + stop + environment, all as plain data. See the
/// [module docs](self) for why `Eq` on this type certifies
/// byte-identical reports.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct RunSpecKey {
    /// Workload preset name (e.g. a `MedDataset` name like `duo-disk`,
    /// or `planted-hs`), resolved by the consumer. Must be a
    /// [`name token`](is_name_token).
    pub workload: String,
    /// Instance size handed to the workload generator (the instance
    /// itself derives deterministically from `(workload, elements,
    /// seed)`).
    pub elements: u64,
    /// Algorithm selection.
    pub algorithm: AlgorithmSpec,
    /// Network size.
    pub n: u64,
    /// Master seed.
    pub seed: u64,
    /// Stop condition.
    pub stop: StopSpec,
    /// Safety valve on simulated rounds.
    pub max_rounds: u64,
    /// Doubling-search budget factor (hitting set only).
    pub doubling: Option<F64Key>,
    /// Fault scenario preset name (see `lpt_workloads::Scenario`).
    pub fault: String,
    /// Topology preset name (see `lpt_workloads::TopologyPreset`).
    pub topology: String,
    /// Versioned randomness schedule.
    pub schedule: RngSchedule,
    /// Execution engine (round-synchronous by default; see
    /// `gossip_sim::event`). Encoded as a trailing `engine=` pair only
    /// when non-default, so every pre-engine canonical string stays
    /// valid and byte-identical.
    pub engine: Engine,
}

/// Whether `s` is a valid preset-name token: non-empty ASCII
/// lowercase/digit/hyphen. Name fields of a [`RunSpecKey`] must satisfy
/// this so the space-separated canonical encoding can never be
/// ambiguous.
pub fn is_name_token(s: &str) -> bool {
    !s.is_empty()
        && s.bytes()
            .all(|b| b.is_ascii_lowercase() || b.is_ascii_digit() || b == b'-')
}

impl RunSpecKey {
    /// A key with the driver's defaults for everything but the workload
    /// and network: full termination, 20 000-round safety valve, no
    /// doubling, the perfect fault scenario, the complete topology, and
    /// the default schedule.
    pub fn new(workload: &str, elements: u64, n: u64, seed: u64) -> RunSpecKey {
        RunSpecKey {
            workload: workload.to_string(),
            elements,
            algorithm: AlgorithmSpec::LowLoad,
            n,
            seed,
            stop: StopSpec::FullTermination,
            max_rounds: 20_000,
            doubling: None,
            fault: "perfect".to_string(),
            topology: "complete".to_string(),
            schedule: RngSchedule::default(),
            engine: Engine::default(),
        }
    }

    /// The canonical string encoding: one line, versioned, fixed field
    /// order, space-separated `key=value` pairs. Equal keys encode to
    /// equal strings and vice versa ([`RunSpecKey::parse`] round-trips).
    ///
    /// ```
    /// use lpt_gossip::spec::RunSpecKey;
    /// let key = RunSpecKey::new("duo-disk", 4096, 256, 42);
    /// let s = key.canonical();
    /// assert_eq!(RunSpecKey::parse(&s).unwrap(), key);
    /// ```
    pub fn canonical(&self) -> String {
        let doubling = match self.doubling {
            Some(f) => f.to_string(),
            None => "-".to_string(),
        };
        let mut s = format!(
            "{} workload={} elements={} alg={} n={} seed={} stop={} max_rounds={} \
             doubling={} fault={} topology={} schedule={}",
            SPEC_VERSION,
            self.workload,
            self.elements,
            self.algorithm.canonical(),
            self.n,
            self.seed,
            self.stop.canonical(),
            self.max_rounds,
            doubling,
            self.fault,
            self.topology,
            self.schedule.name(),
        );
        // Trailing optional field: the default engine stays off the
        // string, so pre-engine encodings (and their cached replies)
        // are bit-for-bit unchanged.
        if !self.engine.is_default() {
            s.push_str(" engine=");
            s.push_str(&self.engine.name());
        }
        s
    }

    /// Parses a [`RunSpecKey::canonical`] string.
    pub fn parse(s: &str) -> Result<RunSpecKey, SpecError> {
        let mut parts = s.split_ascii_whitespace();
        let version = parts.next().ok_or(SpecError::BadVersion)?;
        if version != SPEC_VERSION {
            return Err(SpecError::BadVersion);
        }
        // Fixed field order keeps the encoding canonical: the same key
        // can never encode two ways.
        const FIELDS: [&str; 11] = [
            "workload",
            "elements",
            "alg",
            "n",
            "seed",
            "stop",
            "max_rounds",
            "doubling",
            "fault",
            "topology",
            "schedule",
        ];
        let mut values = Vec::with_capacity(FIELDS.len());
        for field in FIELDS {
            let pair = parts.next().ok_or(SpecError::MissingField(field))?;
            let value = pair
                .strip_prefix(field)
                .and_then(|rest| rest.strip_prefix('='))
                .ok_or(SpecError::MissingField(field))?;
            values.push(value);
        }
        // Optional trailing `engine=` pair (absent on every pre-engine
        // string); anything else trailing is an error.
        let engine = match parts.next() {
            None => Engine::default(),
            Some(pair) => {
                let value = pair
                    .strip_prefix("engine")
                    .and_then(|rest| rest.strip_prefix('='))
                    .ok_or(SpecError::TrailingInput)?;
                let engine = Engine::parse(value).ok_or_else(|| SpecError::BadValue {
                    field: "engine",
                    value: value.to_string(),
                })?;
                if parts.next().is_some() {
                    return Err(SpecError::TrailingInput);
                }
                engine
            }
        };
        let uint = |field: &'static str, v: &str| {
            v.parse::<u64>().map_err(|_| SpecError::BadValue {
                field,
                value: v.to_string(),
            })
        };
        let name = |field: &'static str, v: &str| {
            if is_name_token(v) {
                Ok(v.to_string())
            } else {
                Err(SpecError::BadValue {
                    field,
                    value: v.to_string(),
                })
            }
        };
        let key = RunSpecKey {
            workload: name("workload", values[0])?,
            elements: uint("elements", values[1])?,
            algorithm: AlgorithmSpec::parse(values[2])?,
            n: uint("n", values[3])?,
            seed: uint("seed", values[4])?,
            stop: StopSpec::parse(values[5])?,
            max_rounds: uint("max_rounds", values[6])?,
            doubling: match values[7] {
                "-" => None,
                v => Some(v.parse::<F64Key>().map_err(|_| SpecError::BadValue {
                    field: "doubling",
                    value: v.to_string(),
                })?),
            },
            fault: name("fault", values[8])?,
            topology: name("topology", values[9])?,
            schedule: RngSchedule::parse(values[10]).ok_or_else(|| SpecError::BadValue {
                field: "schedule",
                value: values[10].to_string(),
            })?,
            engine,
        };
        Ok(key)
    }
}

// ---------------------------------------------------------------------------
// Errors
// ---------------------------------------------------------------------------

/// Why a canonical spec string could not be decoded.
#[derive(Clone, Debug, PartialEq, Eq)]
#[non_exhaustive]
pub enum SpecError {
    /// The leading version tag is missing or not [`SPEC_VERSION`].
    BadVersion,
    /// A required `key=value` pair is missing or out of order.
    MissingField(&'static str),
    /// A field's value does not parse.
    BadValue {
        /// The field.
        field: &'static str,
        /// The rejected value.
        value: String,
    },
    /// Extra input after the last field.
    TrailingInput,
}

impl fmt::Display for SpecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SpecError::BadVersion => {
                write!(f, "spec string must start with {SPEC_VERSION:?}")
            }
            SpecError::MissingField(field) => {
                write!(f, "spec string is missing field {field:?} (order is fixed)")
            }
            SpecError::BadValue { field, value } => {
                write!(f, "spec field {field:?} has invalid value {value:?}")
            }
            SpecError::TrailingInput => write!(f, "trailing input after the last spec field"),
        }
    }
}

impl std::error::Error for SpecError {}

impl ErrorCode for SpecError {
    fn code(&self) -> u16 {
        match self {
            SpecError::BadVersion => 120,
            SpecError::MissingField(_) => 121,
            SpecError::BadValue { .. } => 122,
            SpecError::TrailingInput => 123,
        }
    }

    fn kind(&self) -> &'static str {
        match self {
            SpecError::BadVersion => "spec-bad-version",
            SpecError::MissingField(_) => "spec-missing-field",
            SpecError::BadValue { .. } => "spec-bad-value",
            SpecError::TrailingInput => "spec-trailing-input",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::hash_map::DefaultHasher;
    use std::hash::{Hash, Hasher};

    fn full_key() -> RunSpecKey {
        RunSpecKey {
            workload: "planted-hs".to_string(),
            elements: 512,
            algorithm: AlgorithmSpec::HittingSet { d: 3 },
            n: 128,
            seed: u64::MAX,
            stop: StopSpec::RoundBudget(77),
            max_rounds: 5_000,
            doubling: Some(F64Key::new(12.5).unwrap()),
            fault: "hostile".to_string(),
            topology: "ring16".to_string(),
            schedule: RngSchedule::V1Compat,
            engine: Engine::parse("event-uniform-1-4").unwrap(),
        }
    }

    #[test]
    fn canonical_roundtrip_defaults() {
        let key = RunSpecKey::new("duo-disk", 4096, 256, 42);
        let s = key.canonical();
        assert_eq!(
            s,
            "spec-v1 workload=duo-disk elements=4096 alg=low-load n=256 seed=42 \
             stop=full max_rounds=20000 doubling=- fault=perfect topology=complete \
             schedule=v2batched"
        );
        assert_eq!(RunSpecKey::parse(&s).unwrap(), key);
    }

    #[test]
    fn canonical_roundtrip_all_fields() {
        let key = full_key();
        let parsed = RunSpecKey::parse(&key.canonical()).unwrap();
        assert_eq!(parsed, key);
        // Round-trip is idempotent at the string level too.
        assert_eq!(parsed.canonical(), key.canonical());
    }

    #[test]
    fn canonical_roundtrip_every_algorithm() {
        for alg in [
            AlgorithmSpec::LowLoad,
            AlgorithmSpec::HighLoad,
            AlgorithmSpec::Accelerated(F64Key::new(0.5).unwrap()),
            AlgorithmSpec::Accelerated(F64Key::new(1.0 / 3.0).unwrap()),
            AlgorithmSpec::Hypercube,
            AlgorithmSpec::HittingSet { d: 9 },
        ] {
            assert_eq!(AlgorithmSpec::parse(&alg.canonical()).unwrap(), alg);
        }
    }

    #[test]
    fn equal_keys_hash_equal_and_float_bits_matter() {
        let a = full_key();
        let b = RunSpecKey::parse(&a.canonical()).unwrap();
        let hash = |k: &RunSpecKey| {
            let mut h = DefaultHasher::new();
            k.hash(&mut h);
            h.finish()
        };
        assert_eq!(hash(&a), hash(&b));
        let mut c = a.clone();
        c.doubling = Some(F64Key::new(12.500000000000002).unwrap());
        assert_ne!(a, c, "different float bits must be different keys");
    }

    #[test]
    fn parse_rejects_malformed() {
        assert_eq!(RunSpecKey::parse(""), Err(SpecError::BadVersion));
        assert_eq!(
            RunSpecKey::parse("spec-v0 workload=a"),
            Err(SpecError::BadVersion)
        );
        assert_eq!(
            RunSpecKey::parse("spec-v1 elements=1"),
            Err(SpecError::MissingField("workload"))
        );
        let ok = RunSpecKey::new("duo-disk", 64, 8, 1).canonical();
        assert!(RunSpecKey::parse(&(ok.clone() + " extra=1")).is_err());
        assert!(RunSpecKey::parse(&ok.replace("seed=1", "seed=x")).is_err());
        assert!(RunSpecKey::parse(&ok.replace("fault=perfect", "fault=Perfect")).is_err());
        assert!(RunSpecKey::parse(&ok.replace("schedule=v2batched", "schedule=v9")).is_err());
        assert_eq!(
            RunSpecKey::parse(&(ok.clone() + " engine=event-warp")),
            Err(SpecError::BadValue {
                field: "engine",
                value: "event-warp".to_string(),
            })
        );
        assert!(RunSpecKey::parse(&(ok + " engine=event-unit extra=1")).is_err());
    }

    #[test]
    fn engine_field_is_trailing_and_default_invisible() {
        let mut key = RunSpecKey::new("duo-disk", 64, 8, 1);
        let default_encoding = key.canonical();
        assert!(
            !default_encoding.contains("engine="),
            "default engine must stay off the canonical string: {default_encoding}"
        );
        key.engine = Engine::parse("event-unit").unwrap();
        let s = key.canonical();
        assert!(s.ends_with(" engine=event-unit"), "{s}");
        assert_eq!(RunSpecKey::parse(&s).unwrap(), key);
        // An explicit default spelling parses to the same key the bare
        // string does (the cache is keyed by the struct, not the text).
        assert_eq!(
            RunSpecKey::parse(&(default_encoding.clone() + " engine=round-sync")).unwrap(),
            RunSpecKey::parse(&default_encoding).unwrap()
        );
    }

    #[test]
    fn name_tokens() {
        assert!(is_name_token("duo-disk"));
        assert!(is_name_token("rr8"));
        assert!(!is_name_token(""));
        assert!(!is_name_token("Duo"));
        assert!(!is_name_token("a b"));
        assert!(!is_name_token("a=b"));
    }

    #[test]
    fn f64_key_display_roundtrips_bits() {
        for v in [0.5, 1.0 / 3.0, 1e-300, 12.500000000000002, 0.0] {
            let k = F64Key::new(v).unwrap();
            let back: F64Key = k.to_string().parse().unwrap();
            assert_eq!(back, k, "{v}");
        }
        assert!(F64Key::new(f64::NAN).is_none());
        assert!(F64Key::new(f64::INFINITY).is_none());
    }
}
