//! The uniform-multiset sampling subroutine (paper, Section 2.1).
//!
//! A node samples a multiset `R_i` of size `r = 6d²` from the global
//! multiset `H(V)` by asking `s = c·(6d² + log n)` uniformly random nodes
//! (pull operations) for a uniformly random locally held element copy.
//! Responses that name the same *copy* — same serving node and same slot
//! — are deduplicated (Lemma 11 counts distinct returned elements); if at
//! least `r` distinct copies arrive, `r` of them chosen at random form
//! `R_i`, a uniform random sub-multiset of `H(V)`.
//!
//! **Small-instance relaxation.** When the global multiset itself has
//! fewer than `r` copies (the paper's experiments start at `n = 2`!), no
//! node can ever collect `r` distinct copies and the textbook rule would
//! deadlock. If a large fraction of the pulls succeeded but still fewer
//! than `r` distinct copies arrived, the global multiset is almost surely
//! tiny and almost entirely contained in the response set, so we accept
//! the distinct copies we got as `R_i`. This matches the paper's observed
//! behaviour that "test instances of size < 2⁸ finish within one round",
//! and it is *safe* regardless: an `R_i` that coincidentally misses part
//! of `H` can only inject a candidate that the termination protocol's
//! audit (Algorithm 3) then rejects.

use gossip_sim::Response;
use rand::seq::SliceRandom;
use rand::Rng;

/// Result of one sampling attempt.
#[derive(Clone, Debug)]
pub enum SampleOutcome<E> {
    /// A sample of the requested size (or of the whole visible multiset
    /// under the small-instance relaxation).
    Sample(Vec<E>),
    /// Not enough distinct copies; the round is skipped (the paper's
    /// "sampling fails").
    Failed,
}

impl<E> SampleOutcome<E> {
    /// The sample, if any.
    pub fn into_sample(self) -> Option<Vec<E>> {
        match self {
            SampleOutcome::Sample(s) => Some(s),
            SampleOutcome::Failed => None,
        }
    }
}

/// Extracts a sample of size `r` from pull responses, projecting each
/// response payload through `payload` (responses mapping to `None` are
/// treated as failed pulls).
///
/// This is the allocation-lean entry point used by the protocols: it
/// reads the engine-owned response buffer in place, so no intermediate
/// `Vec` of unwrapped payloads is built per node per round.
///
/// `responses` holds one entry per pull issued (`None` = the contacted
/// node had nothing to serve). `relaxed_threshold` is the fraction of
/// *successful* responses (among all pulls) above which the
/// small-instance relaxation applies; the paper-faithful strict rule is
/// recovered with `relaxed_threshold > 1.0`.
///
/// Copy-identity dedup — same serving node *and* same slot — is done by
/// sorting `(from, slot, position)` keys (`O(s log s)` instead of the
/// old `O(s²)` linear-scan `contains`), then restoring first-occurrence
/// order, so the selected sample is bit-identical to the scan version
/// for any RNG seed.
pub fn extract_sample_from<M, E: Clone, R: Rng + ?Sized>(
    responses: &[Option<Response<M>>],
    r: usize,
    relaxed_threshold: f64,
    rng: &mut R,
    payload: impl Fn(&M) -> Option<&E>,
) -> SampleOutcome<E> {
    // Dedup by copy identity (serving node, slot): sort the keys with
    // their positions, keep the earliest position per key, then re-sort
    // the survivors by position to recover first-occurrence order.
    let mut keyed: Vec<(u32, u64, u32)> = Vec::with_capacity(responses.len());
    let mut successful = 0usize;
    for (pos, resp) in responses.iter().enumerate() {
        if let Some(resp) = resp {
            if payload(&resp.msg).is_some() {
                successful += 1;
                keyed.push((resp.from, resp.slot, pos as u32));
            }
        }
    }
    keyed.sort_unstable();
    let mut distinct: Vec<u32> = Vec::with_capacity(keyed.len());
    let mut last: Option<(u32, u64)> = None;
    for &(from, slot, pos) in &keyed {
        if last != Some((from, slot)) {
            last = Some((from, slot));
            distinct.push(pos);
        }
    }
    distinct.sort_unstable();
    let msg_at = |pos: u32| -> E {
        let resp = responses[pos as usize].as_ref().expect("collected above");
        payload(&resp.msg).expect("collected above").clone()
    };
    if distinct.len() >= r {
        let mut idx: Vec<usize> = (0..distinct.len()).collect();
        idx.shuffle(rng);
        idx.truncate(r);
        return SampleOutcome::Sample(idx.into_iter().map(|i| msg_at(distinct[i])).collect());
    }
    if !responses.is_empty()
        && (successful as f64) >= relaxed_threshold * responses.len() as f64
        && !distinct.is_empty()
    {
        // Small-instance relaxation: take everything we saw.
        return SampleOutcome::Sample(distinct.into_iter().map(msg_at).collect());
    }
    SampleOutcome::Failed
}

/// Extracts a sample of size `r` from pull responses whose payloads are
/// the elements themselves. See [`extract_sample_from`].
pub fn extract_sample<E: Clone, R: Rng + ?Sized>(
    responses: &[Option<Response<E>>],
    r: usize,
    relaxed_threshold: f64,
    rng: &mut R,
) -> SampleOutcome<E> {
    extract_sample_from(responses, r, relaxed_threshold, rng, |m| Some(m))
}

/// The paper's pull count `s = c·(6d² + log2 n)`.
pub fn pull_count(d: usize, n: usize, c: f64) -> usize {
    let log2n = (n.max(2) as f64).log2();
    (c * (6.0 * (d * d) as f64 + log2n)).ceil() as usize
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn resp(from: u32, slot: u64, v: i32) -> Option<Response<i32>> {
        Some(Response { msg: v, from, slot })
    }

    #[test]
    fn collects_r_distinct() {
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let responses: Vec<_> = (0..20).map(|i| resp(i, 0, i as i32)).collect();
        match extract_sample(&responses, 10, 0.75, &mut rng) {
            SampleOutcome::Sample(s) => assert_eq!(s.len(), 10),
            SampleOutcome::Failed => panic!(),
        }
    }

    #[test]
    fn duplicate_copies_collapse() {
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        // 20 responses but only 5 distinct copies, 100% success: the
        // relaxation yields all 5.
        let responses: Vec<_> = (0..20).map(|i| resp(i % 5, 7, (i % 5) as i32)).collect();
        match extract_sample(&responses, 10, 0.75, &mut rng) {
            SampleOutcome::Sample(s) => {
                assert_eq!(s.len(), 5);
            }
            SampleOutcome::Failed => panic!(),
        }
    }

    #[test]
    fn strict_mode_fails_without_r_distinct() {
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let responses: Vec<_> = (0..20).map(|i| resp(i % 5, 7, 0)).collect();
        assert!(matches!(
            extract_sample(&responses, 10, 1.1, &mut rng),
            SampleOutcome::Failed
        ));
    }

    #[test]
    fn mostly_failed_pulls_fail_sampling() {
        let mut rng = ChaCha8Rng::seed_from_u64(4);
        let mut responses: Vec<Option<Response<i32>>> = vec![None; 18];
        responses.push(resp(0, 0, 1));
        responses.push(resp(1, 0, 2));
        assert!(matches!(
            extract_sample(&responses, 10, 0.75, &mut rng),
            SampleOutcome::Failed
        ));
    }

    #[test]
    fn same_node_different_slots_are_distinct() {
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        let responses: Vec<_> = (0..12).map(|i| resp(3, i as u64, i)).collect();
        match extract_sample(&responses, 12, 0.75, &mut rng) {
            SampleOutcome::Sample(s) => assert_eq!(s.len(), 12),
            SampleOutcome::Failed => panic!(),
        }
    }

    #[test]
    fn pull_count_formula() {
        // d = 3, n = 1024: s = c·(54 + 10).
        assert_eq!(pull_count(3, 1024, 1.0), 64);
        assert_eq!(pull_count(3, 1024, 2.0), 128);
        // Tiny n is clamped so log2 is nonnegative.
        assert!(pull_count(1, 1, 1.0) >= 6);
    }

    /// Pinned against the pre-sort (O(s²) `Vec::contains`) dedup: for a
    /// fixed seed and duplicate-laden response vector, the selected
    /// sample must be exactly what the old implementation chose, in the
    /// same order (captured on the seed engine, PR 3).
    #[test]
    fn sort_based_dedup_selects_the_same_sample() {
        let responses: Vec<Option<Response<i32>>> = (0..40)
            .map(|i| {
                if i % 7 == 3 {
                    None
                } else {
                    let from = (i % 9) as u32;
                    let slot = (i % 4) as u64;
                    Some(Response {
                        msg: (from as i32) * 100 + slot as i32,
                        from,
                        slot,
                    })
                }
            })
            .collect();
        let mut rng = ChaCha8Rng::seed_from_u64(4242);
        match extract_sample(&responses, 12, 0.5, &mut rng) {
            SampleOutcome::Sample(s) => assert_eq!(
                s,
                vec![200, 101, 803, 701, 503, 402, 500, 103, 601, 802, 602, 603]
            ),
            SampleOutcome::Failed => panic!(),
        }
        // Relaxed branch keeps first-occurrence order.
        let responses2: Vec<Option<Response<i32>>> = (0..20)
            .map(|i| {
                Some(Response {
                    msg: (i % 5) * 10,
                    from: (i % 5) as u32,
                    slot: 7,
                })
            })
            .collect();
        let mut rng2 = ChaCha8Rng::seed_from_u64(77);
        match extract_sample(&responses2, 10, 0.75, &mut rng2) {
            SampleOutcome::Sample(s) => assert_eq!(s, vec![0, 10, 20, 30, 40]),
            SampleOutcome::Failed => panic!(),
        }
    }

    #[test]
    fn projection_filters_count_as_failed_pulls() {
        // Payloads the projection rejects behave exactly like failed
        // pulls: they count against the relaxation threshold.
        let mut rng = ChaCha8Rng::seed_from_u64(9);
        let responses: Vec<Option<Response<(bool, i32)>>> = (0..20)
            .map(|i| {
                Some(Response {
                    msg: (i >= 4, i),
                    from: i as u32,
                    slot: 0,
                })
            })
            .collect();
        fn keep(m: &(bool, i32)) -> Option<&i32> {
            if m.0 {
                Some(&m.1)
            } else {
                None
            }
        }
        match extract_sample_from(&responses, 8, 0.75, &mut rng, keep) {
            SampleOutcome::Sample(s) => {
                assert_eq!(s.len(), 8);
                assert!(s.iter().all(|&v| v >= 4));
            }
            SampleOutcome::Failed => panic!(),
        }
        // Below the success threshold the sampling fails outright.
        fn mostly_rejected(m: &(bool, i32)) -> Option<&i32> {
            if m.1 == 0 {
                Some(&m.1)
            } else {
                None
            }
        }
        let mut rng = ChaCha8Rng::seed_from_u64(10);
        assert!(matches!(
            extract_sample_from(&responses, 8, 0.75, &mut rng, mostly_rejected),
            SampleOutcome::Failed
        ));
    }

    #[test]
    fn sample_is_subset_of_responses() {
        let mut rng = ChaCha8Rng::seed_from_u64(6);
        let responses: Vec<_> = (0..30).map(|i| resp(i, 0, 100 + i as i32)).collect();
        if let SampleOutcome::Sample(s) = extract_sample(&responses, 8, 0.75, &mut rng) {
            for v in s {
                assert!((100..130).contains(&v));
            }
        } else {
            panic!();
        }
    }
}
