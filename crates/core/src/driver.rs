//! The unified driver: one builder-style entry point for every
//! algorithm of the paper.
//!
//! The paper defines four algorithm families — the Low-Load Clarkson
//! Algorithm (Section 2), the High-Load Clarkson Algorithm and its
//! accelerated variant (Section 3), the distributed hitting-set
//! algorithm (Section 4), and the hypercube-emulated Clarkson baseline
//! (Section 1.1). [`Driver`] runs any of them behind a single API:
//!
//! ```
//! use lpt_gossip::driver::{Algorithm, Driver, StopCondition};
//! use lpt_problems::Med;
//! use lpt_workloads::med::duo_disk;
//!
//! let points = duo_disk(256, 42);
//! let report = Driver::new(Med)
//!     .nodes(256)
//!     .seed(42)
//!     .stop(StopCondition::FullTermination)
//!     .run(&points)
//!     .expect("driver run");
//! let basis = report.consensus_output().expect("all nodes agree");
//! assert!((basis.value.r2.sqrt() - 10.0).abs() < 1e-6);
//! ```
//!
//! Selecting an algorithm is one builder call
//! ([`Driver::algorithm`]); the instance scattering, network
//! construction, stop handling, and report assembly are shared. The
//! algorithm × problem compatibility matrix is enforced at run time
//! with a documented [`DriverError`]: LP-type problems accept
//! [`Algorithm::LowLoad`], [`Algorithm::HighLoad`],
//! [`Algorithm::Accelerated`], and [`Algorithm::Hypercube`]; set-system
//! problems (`Arc<SetSystem>`) accept [`Algorithm::HittingSet`].
//!
//! The two problem families are unified by the [`DriverProblem`] trait,
//! which is the seam where future backends (sharded networks, async
//! transports, new problem classes) plug in. A *mode* marker type
//! ([`LpMode`] / [`SetMode`]) keeps the blanket implementation for all
//! [`LpType`] problems coherent with the set-system implementation;
//! callers never name the mode — type inference resolves it from the
//! problem type.

use crate::high_load::{HighLoadClarkson, HighLoadConfig, HighLoadState};
use crate::hitting_set::{HittingSetConfig, HittingSetGossip, HittingSetState};
use crate::hypercube::hypercube_clarkson;
use crate::low_load::{LowLoadClarkson, LowLoadConfig, LowLoadState};
use gossip_sim::event::Engine;
use gossip_sim::fault::{FaultModel, IntoFaultModel, Perfect};
use gossip_sim::obs::{FlightRecorder, ObsSummary};
use gossip_sim::topology::{Complete, IntoTopology, Topology};
use gossip_sim::{Metrics, Network, NetworkConfig, Protocol, RngSchedule, RunOutcome};
use lpt::{BasisOf, LpType};
use lpt_problems::SetSystem;
use rand::Rng;
use rand_chacha::rand_core::SeedableRng;
use rand_chacha::ChaCha8Rng;
use std::fmt;
use std::marker::PhantomData;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

// ---------------------------------------------------------------------------
// Seed mixing
// ---------------------------------------------------------------------------

/// Mixed into the master seed before scattering an instance, so that the
/// scatter stream is independent of the simulator's per-round streams
/// derived from the same seed (ASCII `"scatter"`).
pub const SCATTER_SEED_MIX: u64 = 0x0073_6361_7474_6572;

/// Bit position at which the doubling search mixes the current `d` into
/// the master seed, giving every attempt an independent scatter and
/// simulation while keeping the whole search a function of one seed.
pub const DOUBLING_SEED_SHIFT: u32 = 48;

/// The seed used for the doubling-search attempt at dimension bound `d`.
pub fn doubling_attempt_seed(seed: u64, d: usize) -> u64 {
    seed ^ (d as u64) << DOUBLING_SEED_SHIFT
}

// ---------------------------------------------------------------------------
// Errors
// ---------------------------------------------------------------------------

/// Why a [`Driver`] run could not be performed.
#[derive(Clone, Debug, PartialEq, Eq)]
#[non_exhaustive]
pub enum DriverError {
    /// The network has zero nodes (see [`Driver::nodes`] / [`scatter`]).
    NoNodes,
    /// The selected algorithm cannot solve this problem family.
    UnsupportedAlgorithm {
        /// The algorithm that was selected.
        algorithm: &'static str,
        /// The problem family it was asked to solve.
        problem: &'static str,
    },
    /// The selected algorithm does not support this stop condition
    /// (the hypercube baseline always runs to completion).
    UnsupportedStop {
        /// The algorithm that was selected.
        algorithm: &'static str,
    },
    /// A non-perfect fault model was combined with an algorithm that is
    /// computed analytically rather than simulated (the hypercube
    /// baseline), so there is no network to inject faults into.
    UnsupportedFaults {
        /// The algorithm that was selected.
        algorithm: &'static str,
    },
    /// The selected algorithm assumes a specific overlay and cannot run
    /// on the configured topology (the analytic hypercube baseline
    /// charges its rounds against a hypercube, so it accepts only the
    /// default `Complete` or an explicit `Hypercube` topology).
    UnsupportedTopology {
        /// The algorithm that was selected.
        algorithm: &'static str,
        /// The topology it was asked to run on.
        topology: &'static str,
    },
    /// [`Driver::with_doubling_search`] is only meaningful for the
    /// hitting-set algorithm, whose config carries the searched `d`.
    UnsupportedDoubling {
        /// The algorithm that was selected.
        algorithm: &'static str,
    },
    /// The doubling search failed at a `d` beyond twice the ground-set
    /// size — no hitting set can need more elements, so larger `d`
    /// cannot help (the per-attempt round budget is too small for this
    /// instance).
    DoublingDiverged {
        /// The last `d` whose attempt failed.
        d: usize,
    },
    /// The doubling search was combined with
    /// [`StopCondition::RoundBudget`]: an attempt's success is judged
    /// by termination or a reached target, which a round budget never
    /// signals, so every attempt would count as a failure.
    DoublingNeedsTermination,
    /// [`Driver::run_ground`] was called on a problem family whose
    /// elements live outside the problem description (LP-type problems
    /// take their constraint set as an explicit argument to
    /// [`Driver::run`]).
    NoGroundElements {
        /// The problem family.
        problem: &'static str,
    },
    /// A sequential solver inside the run failed.
    Solver(String),
    /// A non-default execution engine was combined with an algorithm
    /// that is computed analytically rather than simulated (the
    /// hypercube baseline), so there is no network to schedule events
    /// for.
    UnsupportedEngine {
        /// The algorithm that was selected.
        algorithm: &'static str,
    },
    /// The run was cancelled cooperatively via [`Driver::cancel_flag`]
    /// (checked between rounds, so cancellation is prompt but never
    /// tears a round in half). The partial state is discarded — a
    /// cancelled run produces no report, which is what keeps every
    /// *emitted* report a pure function of its spec.
    Cancelled,
}

impl fmt::Display for DriverError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DriverError::NoNodes => write!(f, "the network must have at least one node"),
            DriverError::UnsupportedAlgorithm { algorithm, problem } => {
                write!(f, "algorithm {algorithm} cannot solve {problem} problems")
            }
            DriverError::UnsupportedStop { algorithm } => {
                write!(
                    f,
                    "algorithm {algorithm} only supports StopCondition::FullTermination"
                )
            }
            DriverError::UnsupportedFaults { algorithm } => {
                write!(
                    f,
                    "algorithm {algorithm} is computed analytically and cannot \
                     simulate a non-perfect fault model"
                )
            }
            DriverError::UnsupportedTopology {
                algorithm,
                topology,
            } => {
                write!(
                    f,
                    "algorithm {algorithm} assumes a hypercube overlay and cannot \
                     run on the {topology} topology"
                )
            }
            DriverError::UnsupportedDoubling { algorithm } => {
                write!(f, "doubling search is only supported for the hitting-set algorithm (got {algorithm})")
            }
            DriverError::DoublingDiverged { d } => {
                write!(
                    f,
                    "doubling search failed at d = {d}, beyond twice the ground-set size; \
                     increase the round budget factor"
                )
            }
            DriverError::DoublingNeedsTermination => {
                write!(
                    f,
                    "doubling search cannot run under StopCondition::RoundBudget — \
                     a budgeted attempt never signals whether d was large enough"
                )
            }
            DriverError::NoGroundElements { problem } => {
                write!(
                    f,
                    "{problem} problems have no intrinsic ground elements; use Driver::run"
                )
            }
            DriverError::Solver(msg) => write!(f, "sequential solver failed: {msg}"),
            DriverError::Cancelled => write!(f, "run cancelled before completion"),
            DriverError::UnsupportedEngine { algorithm } => {
                write!(
                    f,
                    "algorithm {algorithm} is computed analytically and cannot \
                     run under a non-default execution engine"
                )
            }
        }
    }
}

impl std::error::Error for DriverError {}

/// Stable wire identity (`specs/structured-errors` style): codes `101`
/// – `112`, kinds matching the variant names in kebab case. Codes are
/// part of the wire contract of `lpt-server` and are never renumbered;
/// new variants take fresh codes.
impl gossip_sim::export::ErrorCode for DriverError {
    fn code(&self) -> u16 {
        match self {
            DriverError::NoNodes => 101,
            DriverError::UnsupportedAlgorithm { .. } => 102,
            DriverError::UnsupportedStop { .. } => 103,
            DriverError::UnsupportedFaults { .. } => 104,
            DriverError::UnsupportedTopology { .. } => 105,
            DriverError::UnsupportedDoubling { .. } => 106,
            DriverError::DoublingDiverged { .. } => 107,
            DriverError::DoublingNeedsTermination => 108,
            DriverError::NoGroundElements { .. } => 109,
            DriverError::Solver(_) => 110,
            DriverError::Cancelled => 111,
            DriverError::UnsupportedEngine { .. } => 112,
        }
    }

    fn kind(&self) -> &'static str {
        match self {
            DriverError::NoNodes => "no-nodes",
            DriverError::UnsupportedAlgorithm { .. } => "unsupported-algorithm",
            DriverError::UnsupportedStop { .. } => "unsupported-stop",
            DriverError::UnsupportedFaults { .. } => "unsupported-faults",
            DriverError::UnsupportedTopology { .. } => "unsupported-topology",
            DriverError::UnsupportedDoubling { .. } => "unsupported-doubling",
            DriverError::DoublingDiverged { .. } => "doubling-diverged",
            DriverError::DoublingNeedsTermination => "doubling-needs-termination",
            DriverError::NoGroundElements { .. } => "no-ground-elements",
            DriverError::Solver(_) => "solver",
            DriverError::Cancelled => "cancelled",
            DriverError::UnsupportedEngine { .. } => "unsupported-engine",
        }
    }
}

// ---------------------------------------------------------------------------
// Scattering
// ---------------------------------------------------------------------------

/// Scatters elements over `n` nodes uniformly and independently at
/// random (the paper's initial distribution assumption, Section 1.4).
///
/// # Errors
/// Returns [`DriverError::NoNodes`] when `n == 0`: there is no node to
/// place elements on, and silently returning an empty partition would
/// hide the configuration mistake from the caller.
pub fn scatter<E: Clone>(elements: &[E], n: usize, seed: u64) -> Result<Vec<Vec<E>>, DriverError> {
    if n == 0 {
        return Err(DriverError::NoNodes);
    }
    let mut rng = ChaCha8Rng::seed_from_u64(seed ^ SCATTER_SEED_MIX);
    let mut out = vec![Vec::new(); n];
    for e in elements {
        out[rng.gen_range(0..n)].push(e.clone());
    }
    Ok(out)
}

// ---------------------------------------------------------------------------
// Algorithm selection
// ---------------------------------------------------------------------------

/// Which of the paper's algorithms a [`Driver`] runs.
#[derive(Clone, Debug)]
#[non_exhaustive]
pub enum Algorithm {
    /// The Low-Load Clarkson Algorithm (Algorithms 2–4, Theorem 3).
    LowLoad(LowLoadConfig),
    /// The High-Load Clarkson Algorithm (Algorithm 5, Theorem 4).
    HighLoad(HighLoadConfig),
    /// The accelerated High-Load variant (Section 3.1): `C = ⌈log^ε n⌉`
    /// basis pushes per round, resolved against the network size at run
    /// time.
    Accelerated {
        /// The exponent `ε` in `C = ⌈log2(n)^ε⌉`.
        epsilon: f64,
    },
    /// The hypercube-emulated Clarkson baseline (Section 1.1). Runs to
    /// completion analytically; only [`StopCondition::FullTermination`]
    /// is supported, and the report's metrics are empty (its round count
    /// is charged, not simulated).
    Hypercube,
    /// The distributed hitting-set algorithm (Algorithm 6, Theorem 5).
    HittingSet(HittingSetConfig),
}

impl Algorithm {
    /// Low-Load with the paper's default knobs.
    pub fn low_load() -> Self {
        Algorithm::LowLoad(LowLoadConfig::default())
    }

    /// High-Load with the paper's default knobs (`C = 1`).
    pub fn high_load() -> Self {
        Algorithm::HighLoad(HighLoadConfig::default())
    }

    /// The accelerated High-Load variant with exponent `epsilon`.
    pub fn accelerated(epsilon: f64) -> Self {
        Algorithm::Accelerated { epsilon }
    }

    /// Hitting set with (an upper bound on) the optimum size `d`.
    pub fn hitting_set(d: usize) -> Self {
        Algorithm::HittingSet(HittingSetConfig::new(d))
    }

    /// Short display name.
    pub fn name(&self) -> &'static str {
        match self {
            Algorithm::LowLoad(_) => "low-load",
            Algorithm::HighLoad(_) => "high-load",
            Algorithm::Accelerated { .. } => "accelerated",
            Algorithm::Hypercube => "hypercube",
            Algorithm::HittingSet(_) => "hitting-set",
        }
    }
}

// ---------------------------------------------------------------------------
// Stop conditions
// ---------------------------------------------------------------------------

/// A live view of the network handed to [`StopCondition::Custom`]
/// predicates after every simulated round.
#[derive(Clone, Copy, Debug)]
pub struct Progress {
    /// Rounds simulated so far.
    pub round: u64,
    /// Network size.
    pub n: usize,
    /// Nodes that have output and halted.
    pub halted: u64,
    /// Nodes currently holding a candidate solution (a sampled basis
    /// with no local violators, a local basis, or a verified hitting
    /// set, depending on the algorithm).
    pub with_candidate: usize,
}

/// When a [`Driver`] run stops.
pub enum StopCondition<T> {
    /// Run until every node has output and halted (the algorithms'
    /// actual termination, including the network-wide audit).
    FullTermination,
    /// Stop as soon as any node *holds* a candidate matching the target
    /// — the paper's Section 5 measurement ("rounds until at least one
    /// node found the solution", excluding the input-independent
    /// termination phase). For LP-type problems the target is a
    /// [`LpType::Value`] compared under the problem's tolerance; for
    /// hitting set it is a maximum acceptable set size.
    FirstSolution(T),
    /// Stop after exactly this many rounds (unless the network halts
    /// first). Unlike [`Driver::max_rounds`] — the safety valve that
    /// marks a run as incomplete — exhausting a round budget is an
    /// expected outcome ([`StopCause::RoundBudget`]).
    RoundBudget(u64),
    /// Stop when the predicate returns `true` (checked after every
    /// round).
    Custom(Arc<dyn Fn(&Progress) -> bool + Send + Sync>),
}

impl<T: Clone> Clone for StopCondition<T> {
    fn clone(&self) -> Self {
        match self {
            StopCondition::FullTermination => StopCondition::FullTermination,
            StopCondition::FirstSolution(t) => StopCondition::FirstSolution(t.clone()),
            StopCondition::RoundBudget(r) => StopCondition::RoundBudget(*r),
            StopCondition::Custom(f) => StopCondition::Custom(f.clone()),
        }
    }
}

impl<T: fmt::Debug> fmt::Debug for StopCondition<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StopCondition::FullTermination => write!(f, "FullTermination"),
            StopCondition::FirstSolution(t) => f.debug_tuple("FirstSolution").field(t).finish(),
            StopCondition::RoundBudget(r) => f.debug_tuple("RoundBudget").field(r).finish(),
            StopCondition::Custom(_) => write!(f, "Custom(..)"),
        }
    }
}

/// Why a run ended (recorded in [`RunReport::stop_cause`]).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum StopCause {
    /// Every node output and halted.
    AllHalted,
    /// A [`StopCondition::FirstSolution`] target was reached.
    TargetReached,
    /// A [`StopCondition::RoundBudget`] was used up.
    RoundBudget,
    /// A [`StopCondition::Custom`] predicate fired.
    CustomStop,
    /// The [`Driver::max_rounds`] safety valve tripped before the stop
    /// condition was satisfied.
    MaxRounds,
}

impl StopCause {
    /// Stable kebab-case name, used verbatim in exported summaries and
    /// on the server wire (never renamed).
    pub fn name(self) -> &'static str {
        match self {
            StopCause::AllHalted => "all-halted",
            StopCause::TargetReached => "target-reached",
            StopCause::RoundBudget => "round-budget",
            StopCause::CustomStop => "custom-stop",
            StopCause::MaxRounds => "max-rounds",
        }
    }
}

// ---------------------------------------------------------------------------
// Reports
// ---------------------------------------------------------------------------

/// Trace of a [`Driver::with_doubling_search`] run.
#[derive(Clone, Debug)]
pub struct DoublingReport {
    /// The `d` value that succeeded.
    pub d_used: usize,
    /// The `d` values that were tried, in order.
    pub attempts: Vec<usize>,
    /// Total simulated rounds across all attempts (failed ones
    /// included); the successful attempt's own rounds are
    /// [`RunReport::rounds`].
    pub total_rounds: u64,
}

/// What the fault model cost a run (all zeros under the default
/// [`Perfect`] network); the per-round breakdown is in
/// [`RunReport::metrics`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct FaultSummary {
    /// Name of the fault model the run was simulated under.
    pub model: &'static str,
    /// Messages lost to the fault model (dropped responses, dropped
    /// pushes, and deliveries to offline nodes).
    pub messages_dropped: u64,
    /// Pushes the fault model delivered late.
    pub messages_delayed: u64,
    /// Node-rounds lost to downtime (one per node per round offline).
    pub offline_node_rounds: u64,
}

impl Default for FaultSummary {
    fn default() -> Self {
        FaultSummary {
            model: "perfect",
            messages_dropped: 0,
            messages_delayed: 0,
            offline_node_rounds: 0,
        }
    }
}

impl FaultSummary {
    fn from_metrics(model: &dyn FaultModel, metrics: &Metrics) -> Self {
        FaultSummary {
            model: model.name(),
            messages_dropped: metrics.total_dropped(),
            messages_delayed: metrics.total_delayed(),
            offline_node_rounds: metrics.offline_node_rounds(),
        }
    }
}

/// How a run was *executed*: the explicit record of the engine's
/// seq/par decision.
///
/// Execution metadata only — by the engine's byte-identity contract
/// the same spec produces the same outputs, metrics, and wire bytes
/// whatever this says, so it is deliberately excluded from the
/// server's reply rendering and cache key. It exists to make the
/// decision auditable: `parallel(true)` with a one-worker pool (or
/// `n` under the threshold) used to be silently indistinguishable
/// from real parallel execution.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ExecInfo {
    /// Threads the round engine's parallel path actually used
    /// (the ambient rayon pool's size, or 1 on the sequential path).
    pub threads: usize,
    /// Whether the parallel path was taken at all: requested by the
    /// spec, `n` at or above the threshold, *and* a multi-thread pool.
    pub parallel: bool,
}

impl ExecInfo {
    /// Execution with `threads` effective threads (`parallel` iff more
    /// than one).
    pub fn from_threads(threads: usize) -> Self {
        ExecInfo {
            threads,
            parallel: threads > 1,
        }
    }

    /// Sequential execution (also the analytic hypercube baseline,
    /// which steps no network at all).
    pub fn sequential() -> Self {
        ExecInfo::from_threads(1)
    }
}

/// Report of a [`Driver`] run, polymorphic over the per-node output
/// type: [`BasisOf<P>`] for LP-type problems, `Vec<u32>` for hitting
/// set.
#[derive(Clone, Debug)]
pub struct RunReport<O> {
    /// Per-node outputs (`None` if a node never halted — possible only
    /// when the run stopped before full termination).
    pub outputs: Vec<Option<O>>,
    /// Rounds simulated.
    pub rounds: u64,
    /// Whether every node output and halted.
    pub all_halted: bool,
    /// Why the run ended.
    pub stop_cause: StopCause,
    /// Earliest round at which any node first held a candidate solution
    /// (Low-Load: an audited-candidate basis; hitting set: a verified
    /// hitting set, also exposed as [`RunReport::first_found_round`];
    /// High-Load and hypercube: `None`).
    pub first_candidate_round: Option<u64>,
    /// The hitting-set protocol's sample size `r` (the Theorem 5 size
    /// bound); `None` for the other algorithms.
    pub size_bound: Option<usize>,
    /// Doubling-search trace, when [`Driver::with_doubling_search`] was
    /// used.
    pub doubling: Option<DoublingReport>,
    /// What the fault model cost the run (zeros under [`Perfect`]; for
    /// a doubling search, the successful attempt's costs).
    pub faults: FaultSummary,
    /// Communication metrics, one entry per simulated round (empty for
    /// the analytic hypercube baseline).
    pub metrics: Metrics,
    /// The versioned randomness schedule that produced this run.
    /// Trajectory-level numbers (rounds, op counts, metrics) are only
    /// comparable between reports carrying the same schedule tag;
    /// outcome-level facts (solution validity, termination) are
    /// schedule-invariant.
    pub schedule: RngSchedule,
    /// Name of the communication topology the run gossiped over
    /// (`"complete"` unless [`Driver::topology`] installed an overlay);
    /// recorded like `schedule` and `faults` so reports are only
    /// compared within one topology.
    pub topology: &'static str,
    /// How the run executed (effective thread count and whether the
    /// parallel path was taken). Unlike every field above, this is
    /// *not* part of the deterministic payload: reports for the same
    /// spec differ only here across pool sizes, and the server never
    /// renders it on the wire (cache exactness).
    pub exec: ExecInfo,
    /// Observability summary of the run — per-phase wall-clock spans and
    /// engine counters from an attached [`FlightRecorder`] — when the
    /// run was built with [`Driver::record_phases`] (`None` otherwise,
    /// and always `None` for the analytic hypercube baseline, which
    /// steps no network). Like [`RunReport::exec`], this is *not* part
    /// of the deterministic payload: wall times vary across machines,
    /// so the server never renders them into cached reply bytes — they
    /// travel only in explicitly requested `trace` frames.
    pub obs: Option<ObsSummary>,
    consensus: Option<O>,
}

impl<O> RunReport<O> {
    /// The common output of all nodes, if the run terminated and every
    /// node output a value equal (up to the problem's tolerance) to the
    /// first node's.
    pub fn consensus_output(&self) -> Option<&O> {
        self.consensus.as_ref()
    }

    /// Whether a [`StopCondition::FirstSolution`] target was reached.
    pub fn reached(&self) -> bool {
        matches!(self.stop_cause, StopCause::TargetReached)
    }

    /// Alias of [`RunReport::first_candidate_round`] under the
    /// hitting-set algorithm's vocabulary.
    pub fn first_found_round(&self) -> Option<u64> {
        self.first_candidate_round
    }
}

impl RunReport<Vec<u32>> {
    /// The smallest output hitting set (all outputs are valid; they may
    /// differ across nodes). Ties break lexicographically so the choice
    /// is deterministic.
    pub fn best_output(&self) -> Option<&Vec<u32>> {
        self.outputs.iter().flatten().min_by(|a, b| {
            a.len()
                .cmp(&b.len())
                .then_with(|| a.as_slice().cmp(b.as_slice()))
        })
    }
}

// ---------------------------------------------------------------------------
// The DriverProblem seam
// ---------------------------------------------------------------------------

/// Mode marker: the problem is an [`LpType`] instance solved by the
/// Clarkson-style algorithms.
#[derive(Clone, Copy, Debug)]
pub struct LpMode;

/// Mode marker: the problem is a set system solved by the hitting-set
/// algorithm.
#[derive(Clone, Copy, Debug)]
pub struct SetMode;

/// Everything a [`Driver`] needs from a run, mode-independent.
#[derive(Clone, Copy)]
pub struct RunSpec<'a, T> {
    /// Network size.
    pub n: usize,
    /// Master seed.
    pub seed: u64,
    /// The selected algorithm.
    pub algorithm: &'a Algorithm,
    /// The stop condition.
    pub stop: &'a StopCondition<T>,
    /// Safety valve on simulated rounds.
    pub max_rounds: u64,
    /// Step nodes in parallel when the simulator supports it.
    pub parallel: bool,
    /// Minimum network size for parallel stepping (`None` = simulator
    /// default).
    pub parallel_threshold: Option<usize>,
    /// Doubling-search budget factor, if enabled.
    pub doubling: Option<f64>,
    /// The fault model the network is simulated under.
    pub fault: &'a Arc<dyn FaultModel>,
    /// The versioned randomness schedule the network draws under.
    pub schedule: RngSchedule,
    /// The communication topology destinations are drawn from.
    pub topology: &'a Arc<dyn Topology>,
    /// The execution engine the network is stepped with (round-sync or
    /// event-driven; see [`gossip_sim::event`]).
    pub engine: &'a Engine,
    /// Attach a [`FlightRecorder`] to the network and surface its
    /// summary in [`RunReport::obs`]. Observational only: the recorder
    /// reads values the engine computed anyway, so this flag cannot
    /// change a trajectory (and is excluded from every cache key).
    pub record_phases: bool,
    /// Cooperative cancellation flag, checked between simulated rounds
    /// (`None` = not cancellable). See [`Driver::cancel_flag`].
    pub cancel: Option<&'a AtomicBool>,
}

/// A problem family the unified [`Driver`] can run.
///
/// `M` is a mode marker ([`LpMode`] or [`SetMode`]) that exists only to
/// keep the blanket implementation for all [`LpType`] problems coherent
/// with the set-system implementation; exactly one implementation
/// applies to any problem type, so inference always resolves `M`.
///
/// This trait is the extension seam of the crate: a sharded or async
/// backend implements `execute` differently; a new problem family adds
/// a mode.
pub trait DriverProblem<M>: Sized {
    /// The element type scattered over the network.
    type Element: Clone + Send + Sync;
    /// The per-node output type carried by [`RunReport`].
    type Output: Clone;
    /// The [`StopCondition::FirstSolution`] target type.
    type Target: Clone;

    /// Display name of the problem family (used in errors).
    fn problem_kind(&self) -> &'static str;

    /// The algorithm a [`Driver`] runs when none was selected with
    /// [`Driver::algorithm`].
    fn default_algorithm(&self) -> Algorithm;

    /// The doubling-search budget factor a [`Driver`] uses when none of
    /// [`Driver::algorithm`] / [`Driver::with_doubling_search`] was
    /// called. Set systems default to the doubling search (the optimum
    /// size is rarely known up front; a fixed `d = 1` would silently
    /// burn the whole round budget on most instances); `None` elsewhere.
    fn default_doubling(&self) -> Option<f64> {
        None
    }

    /// The problem's intrinsic ground-element set, if it has one
    /// (hitting set: `0..n_elements`). Used by [`Driver::run_ground`].
    fn ground_elements(&self) -> Option<Vec<Self::Element>> {
        None
    }

    /// Runs the spec on the given elements.
    fn execute(
        &self,
        spec: &RunSpec<'_, Self::Target>,
        elements: &[Self::Element],
    ) -> Result<RunReport<Self::Output>, DriverError>;
}

// ---------------------------------------------------------------------------
// The Driver builder
// ---------------------------------------------------------------------------

/// Builder-style driver for one distributed run. See the
/// [module docs](self) for an example, and [`DriverProblem`] for the
/// problem families it accepts.
pub struct Driver<P: DriverProblem<M>, M = LpMode> {
    problem: P,
    n: usize,
    seed: u64,
    /// `None` until [`Driver::algorithm`] is called; resolved against
    /// the problem family's default at run time.
    algorithm: Option<Algorithm>,
    stop: StopCondition<P::Target>,
    max_rounds: u64,
    parallel: bool,
    parallel_threshold: Option<usize>,
    doubling: Option<f64>,
    fault: Arc<dyn FaultModel>,
    schedule: RngSchedule,
    topology: Arc<dyn Topology>,
    engine: Engine,
    record_phases: bool,
    cancel: Option<Arc<AtomicBool>>,
    _mode: PhantomData<fn() -> M>,
}

impl<M, P: DriverProblem<M> + Clone> Clone for Driver<P, M> {
    fn clone(&self) -> Self {
        Driver {
            problem: self.problem.clone(),
            n: self.n,
            seed: self.seed,
            algorithm: self.algorithm.clone(),
            stop: self.stop.clone(),
            max_rounds: self.max_rounds,
            parallel: self.parallel,
            parallel_threshold: self.parallel_threshold,
            doubling: self.doubling,
            fault: self.fault.clone(),
            schedule: self.schedule,
            topology: self.topology.clone(),
            engine: self.engine.clone(),
            record_phases: self.record_phases,
            cancel: self.cancel.clone(),
            _mode: PhantomData,
        }
    }
}

impl<M, P: DriverProblem<M>> fmt::Debug for Driver<P, M> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Driver")
            .field("problem", &self.problem.problem_kind())
            .field("n", &self.n)
            .field("seed", &self.seed)
            .field("algorithm", &self.algorithm)
            .field("max_rounds", &self.max_rounds)
            .field("parallel", &self.parallel)
            .field("parallel_threshold", &self.parallel_threshold)
            .field("doubling", &self.doubling)
            .field("fault", &self.fault)
            .field("schedule", &self.schedule)
            .field("topology", &self.topology)
            .field("engine", &self.engine)
            .field("record_phases", &self.record_phases)
            .finish_non_exhaustive()
    }
}

impl<M, P: DriverProblem<M>> Driver<P, M> {
    /// Creates a driver for `problem` with the defaults: 1 node, seed 0,
    /// the problem family's default algorithm (LP-type: Low-Load;
    /// set system: hitting set under the doubling search), full
    /// termination, a 20 000-round safety valve, parallel stepping
    /// enabled, the perfect (fault-free) network, the default
    /// [`RngSchedule`], and the complete topology.
    pub fn new(problem: P) -> Self {
        Driver {
            problem,
            n: 1,
            seed: 0,
            algorithm: None,
            stop: StopCondition::FullTermination,
            max_rounds: 20_000,
            parallel: true,
            parallel_threshold: None,
            doubling: None,
            fault: Arc::new(Perfect),
            schedule: RngSchedule::default(),
            topology: Arc::new(Complete),
            engine: Engine::default(),
            record_phases: false,
            cancel: None,
            _mode: PhantomData,
        }
    }

    /// Sets the network size.
    #[must_use = "builder methods return the updated driver"]
    pub fn nodes(mut self, n: usize) -> Self {
        self.n = n;
        self
    }

    /// Sets the master seed; the run is a deterministic function of
    /// (problem, elements, nodes, algorithm, stop, seed).
    #[must_use = "builder methods return the updated driver"]
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Selects the algorithm.
    #[must_use = "builder methods return the updated driver"]
    pub fn algorithm(mut self, algorithm: Algorithm) -> Self {
        self.algorithm = Some(algorithm);
        self
    }

    /// Sets the stop condition.
    #[must_use = "builder methods return the updated driver"]
    pub fn stop(mut self, stop: StopCondition<P::Target>) -> Self {
        self.stop = stop;
        self
    }

    /// Sets the safety valve on simulated rounds (default 20 000).
    #[must_use = "builder methods return the updated driver"]
    pub fn max_rounds(mut self, max_rounds: u64) -> Self {
        self.max_rounds = max_rounds;
        self
    }

    /// Enables or disables Rayon-parallel node stepping (default on;
    /// results are identical either way).
    #[must_use = "builder methods return the updated driver"]
    pub fn parallel(mut self, parallel: bool) -> Self {
        self.parallel = parallel;
        self
    }

    /// Sets the minimum network size at which nodes are stepped with
    /// Rayon (default: the simulator's 4096). Results are identical at
    /// any threshold; tune it when profiling shows the fork/join
    /// overhead dominating small networks.
    #[must_use = "builder methods return the updated driver"]
    pub fn parallel_threshold(mut self, threshold: usize) -> Self {
        self.parallel_threshold = Some(threshold);
        self
    }

    /// Simulates the run under a fault model (message loss, churn,
    /// delivery delay — see [`gossip_sim::fault`] for the built-ins;
    /// default: the perfect network). The run stays a deterministic
    /// function of (problem, elements, nodes, algorithm, stop, seed,
    /// fault model), and [`RunReport::faults`] reports what the model
    /// cost. Not supported by the analytic [`Algorithm::Hypercube`]
    /// baseline ([`DriverError::UnsupportedFaults`]).
    #[must_use = "builder methods return the updated driver"]
    pub fn fault_model(mut self, fault: impl IntoFaultModel) -> Self {
        self.fault = fault.into_fault_model();
        self
    }

    /// Gossips over a communication topology instead of the paper's
    /// complete graph (see [`gossip_sim::topology`] for the built-ins:
    /// hypercube, seeded random-regular, ring, 2-D torus). Every pull
    /// target and push destination is then drawn uniformly from the
    /// drawing node's neighbor set; the run stays a deterministic
    /// function of (problem, elements, nodes, algorithm, stop, seed,
    /// fault model, schedule, topology), and [`RunReport::topology`]
    /// records the overlay. The analytic [`Algorithm::Hypercube`]
    /// baseline accepts only the default complete topology or an
    /// explicit [`gossip_sim::topology::Hypercube`]
    /// ([`DriverError::UnsupportedTopology`] otherwise).
    #[must_use = "builder methods return the updated driver"]
    pub fn topology(mut self, topology: impl IntoTopology) -> Self {
        self.topology = topology.into_topology();
        self
    }

    /// Selects the versioned randomness schedule the simulated network
    /// draws under (default: [`RngSchedule::V2Batched`]).
    ///
    /// [`RngSchedule::V1Compat`] reproduces pre-schedule trajectories
    /// bit-for-bit (the pinned-trajectory tests run under it); the
    /// default batched schedule is faster and equally deterministic but
    /// follows a different bitstream. [`RunReport::schedule`] records
    /// which schedule produced a report.
    #[must_use = "builder methods return the updated driver"]
    pub fn rng_schedule(mut self, schedule: RngSchedule) -> Self {
        self.schedule = schedule;
        self
    }

    /// Enables the doubling search on the unknown minimum-hitting-set
    /// size (the paper's Section 1.4 remark): the run starts at `d = 1`
    /// and doubles whenever it does not terminate within
    /// `round_budget_factor · d · log2 n` rounds. Since the bounds
    /// depend at least linearly on `d`, the doubling adds only a
    /// constant factor. Only meaningful with [`Algorithm::HittingSet`]
    /// (other algorithms report [`DriverError::UnsupportedDoubling`]),
    /// and incompatible with [`StopCondition::RoundBudget`]
    /// ([`DriverError::DoublingNeedsTermination`]). The per-attempt
    /// budget is derived from this factor alone — [`Driver::max_rounds`]
    /// does not cap attempts, since freezing the budget would make
    /// doubling `d` useless.
    #[must_use = "builder methods return the updated driver"]
    pub fn with_doubling_search(mut self, round_budget_factor: f64) -> Self {
        self.doubling = Some(round_budget_factor);
        self
    }

    /// Selects the execution engine the simulated network is stepped
    /// with (default: [`Engine::RoundSync`], the paper's synchronous
    /// model). `Engine::EventDriven(LinkPlan::unit())` runs the
    /// discrete-event scheduler in its degenerate unit-latency schedule
    /// and is byte-identical to the default; other link plans give
    /// every edge its own latency/loss and make rounds genuinely
    /// asynchronous (see [`gossip_sim::event`]). Not supported by the
    /// analytic [`Algorithm::Hypercube`] baseline
    /// ([`DriverError::UnsupportedEngine`]).
    #[must_use = "builder methods return the updated driver"]
    pub fn engine(mut self, engine: Engine) -> Self {
        self.engine = engine;
        self
    }

    /// Attaches a [`FlightRecorder`] to the simulated network and
    /// surfaces its summary (per-phase wall-clock histograms, engine
    /// counters, heap high-water marks) in [`RunReport::obs`]. Off by
    /// default — the no-op recorder path is provably free (the
    /// steady-state allocation test runs through it) and the pinned
    /// trajectories are byte-identical either way, because the recorder
    /// only *reads* values the engine computed anyway and its wall
    /// times never feed back into protocol state. The analytic
    /// [`Algorithm::Hypercube`] baseline steps no network and reports
    /// `obs: None` regardless of this flag.
    #[must_use = "builder methods return the updated driver"]
    pub fn record_phases(mut self, record: bool) -> Self {
        self.record_phases = record;
        self
    }

    /// Installs a cooperative cancellation flag: the run loop checks it
    /// between simulated rounds and, once it reads `true`, abandons the
    /// run with [`DriverError::Cancelled`] instead of producing a
    /// report. The flag is typically set from another thread (a request
    /// deadline, a shutdown path); a run whose flag is never set is
    /// byte-identical to one configured without a flag, so installing
    /// one costs nothing deterministically. The analytic
    /// [`Algorithm::Hypercube`] baseline checks the flag only once,
    /// before solving.
    #[must_use = "builder methods return the updated driver"]
    pub fn cancel_flag(mut self, flag: Arc<AtomicBool>) -> Self {
        self.cancel = Some(flag);
        self
    }

    /// The problem this driver runs.
    pub fn problem(&self) -> &P {
        &self.problem
    }

    /// Runs the configured algorithm on `elements`.
    pub fn run(&self, elements: &[P::Element]) -> Result<RunReport<P::Output>, DriverError> {
        let algorithm = match &self.algorithm {
            Some(a) => a.clone(),
            None => self.problem.default_algorithm(),
        };
        // Out of the box (no explicit algorithm or doubling choice),
        // problem families may opt into the doubling search.
        let doubling = self.doubling.or_else(|| {
            if self.algorithm.is_none() {
                self.problem.default_doubling()
            } else {
                None
            }
        });
        let spec = RunSpec {
            n: self.n,
            seed: self.seed,
            algorithm: &algorithm,
            stop: &self.stop,
            max_rounds: self.max_rounds,
            parallel: self.parallel,
            parallel_threshold: self.parallel_threshold,
            doubling,
            fault: &self.fault,
            schedule: self.schedule,
            topology: &self.topology,
            engine: &self.engine,
            record_phases: self.record_phases,
            cancel: self.cancel.as_deref(),
        };
        self.problem.execute(&spec, elements)
    }

    /// Runs on the problem's intrinsic ground-element set (hitting set:
    /// the elements `0..n_elements`). Errors with
    /// [`DriverError::NoGroundElements`] for problem families whose
    /// elements live outside the problem description.
    pub fn run_ground(&self) -> Result<RunReport<P::Output>, DriverError> {
        let ground = self
            .problem
            .ground_elements()
            .ok_or(DriverError::NoGroundElements {
                problem: self.problem.problem_kind(),
            })?;
        self.run(&ground)
    }
}

// ---------------------------------------------------------------------------
// Shared run-loop machinery
// ---------------------------------------------------------------------------

fn net_config<T>(spec: &RunSpec<'_, T>) -> NetworkConfig {
    let mut cfg = NetworkConfig::with_seed(spec.seed);
    cfg.parallel = spec.parallel;
    if let Some(threshold) = spec.parallel_threshold {
        cfg.parallel_threshold = threshold;
    }
    cfg.fault = spec.fault.clone();
    cfg.schedule = spec.schedule;
    cfg.topology = spec.topology.clone();
    cfg.engine = spec.engine.clone();
    cfg
}

/// Steps `net` under `stop`, returning the outcome and its cause, or
/// [`DriverError::Cancelled`] if `cancel` was raised mid-run.
///
/// Cancellation is cooperative: the flag is checked between rounds
/// (folded into the engine's stop predicate), so a raised flag ends the
/// run at the next round boundary. An installed-but-never-raised flag
/// cannot perturb the trajectory — the engine's RNG streams are derived
/// from (seed, round, node, phase) alone and the predicate only reads
/// network state — so the `None` and unraised-`Some` paths are
/// byte-identical.
fn drive<Pr: Protocol, T>(
    net: &mut Network<Pr>,
    stop: &StopCondition<T>,
    max_rounds: u64,
    cancel: Option<&AtomicBool>,
    target_hit: impl Fn(&Network<Pr>, &T) -> bool,
    candidates: impl Fn(&Network<Pr>) -> usize,
) -> Result<(RunOutcome, StopCause), DriverError> {
    let cancelled = || cancel.is_some_and(|c| c.load(Ordering::Relaxed));
    if cancelled() {
        return Err(DriverError::Cancelled);
    }
    // Pre-reserve the per-round metrics log (the only engine container
    // that grows while running) so driver runs stay allocation-free in
    // steady state; capped so absurd round budgets cannot pre-allocate
    // unbounded memory.
    net.reserve_rounds(max_rounds.min(4096) as usize);
    match stop {
        StopCondition::FullTermination => {
            let outcome = match cancel {
                None => net.run(max_rounds),
                Some(c) => net.run_until(max_rounds, |_| c.load(Ordering::Relaxed)),
            };
            let cause = match outcome {
                RunOutcome::Predicate { .. } => return Err(DriverError::Cancelled),
                _ if outcome.all_halted() => StopCause::AllHalted,
                _ => StopCause::MaxRounds,
            };
            Ok((outcome, cause))
        }
        StopCondition::FirstSolution(target) => {
            let outcome = net.run_until(max_rounds, |net| cancelled() || target_hit(net, target));
            let cause = match outcome {
                RunOutcome::AllHalted { .. } => StopCause::AllHalted,
                RunOutcome::Predicate { .. } => {
                    if cancelled() {
                        return Err(DriverError::Cancelled);
                    }
                    StopCause::TargetReached
                }
                RunOutcome::MaxRounds { .. } => StopCause::MaxRounds,
            };
            Ok((outcome, cause))
        }
        StopCondition::RoundBudget(budget) => {
            let capped = (*budget).min(max_rounds);
            let outcome = match cancel {
                None => net.run(capped),
                Some(c) => net.run_until(capped, |_| c.load(Ordering::Relaxed)),
            };
            let cause = match outcome {
                RunOutcome::Predicate { .. } => return Err(DriverError::Cancelled),
                _ if outcome.all_halted() => StopCause::AllHalted,
                _ if outcome.rounds() >= *budget => StopCause::RoundBudget,
                // The max_rounds safety valve cut the run before the
                // user's budget was reached.
                _ => StopCause::MaxRounds,
            };
            Ok((outcome, cause))
        }
        StopCondition::Custom(pred) => {
            let outcome = net.run_until(max_rounds, |net| {
                cancelled()
                    || pred(&Progress {
                        round: net.round_index(),
                        n: net.n(),
                        halted: net.halted_count(),
                        with_candidate: candidates(net),
                    })
            });
            let cause = match outcome {
                RunOutcome::AllHalted { .. } => StopCause::AllHalted,
                RunOutcome::Predicate { .. } => {
                    if cancelled() {
                        return Err(DriverError::Cancelled);
                    }
                    StopCause::CustomStop
                }
                RunOutcome::MaxRounds { .. } => StopCause::MaxRounds,
            };
            Ok((outcome, cause))
        }
    }
}

/// The run's metrics with
/// [`rounds_over_budget`](gossip_sim::metrics::Degradation::rounds_over_budget)
/// stamped:
/// a run that burned its whole round budget without halting or reaching
/// its target degrades by every round it consumed; any other stop cause
/// stamps zero.
fn stamped_metrics(metrics: &Metrics, outcome: &RunOutcome, cause: StopCause) -> Metrics {
    let mut metrics = metrics.clone();
    metrics.degradation.rounds_over_budget = if cause == StopCause::MaxRounds {
        outcome.rounds()
    } else {
        0
    };
    metrics
}

/// Consensus under the problem's value tolerance: the first node's
/// output, if every node output a value close to it.
fn lp_consensus<P: LpType>(problem: &P, outputs: &[Option<BasisOf<P>>]) -> Option<BasisOf<P>> {
    let first = outputs.first()?.as_ref()?;
    for out in outputs {
        let b = out.as_ref()?;
        if !problem.values_close(&b.value, &first.value) {
            return None;
        }
    }
    Some(first.clone())
}

/// Consensus for hitting sets: exact agreement of every output.
fn hs_consensus(outputs: &[Option<Vec<u32>>]) -> Option<Vec<u32>> {
    let first = outputs.first()?.as_ref()?;
    for out in outputs {
        if out.as_ref()? != first {
            return None;
        }
    }
    Some(first.clone())
}

// ---------------------------------------------------------------------------
// LP-type problems
// ---------------------------------------------------------------------------

impl<P: LpType + Clone + Sync> DriverProblem<LpMode> for P {
    type Element = P::Element;
    type Output = BasisOf<P>;
    type Target = P::Value;

    fn problem_kind(&self) -> &'static str {
        "LP-type"
    }

    fn default_algorithm(&self) -> Algorithm {
        Algorithm::low_load()
    }

    fn execute(
        &self,
        spec: &RunSpec<'_, P::Value>,
        elements: &[P::Element],
    ) -> Result<RunReport<BasisOf<P>>, DriverError> {
        if spec.n == 0 {
            return Err(DriverError::NoNodes);
        }
        if spec.doubling.is_some() {
            return Err(DriverError::UnsupportedDoubling {
                algorithm: spec.algorithm.name(),
            });
        }
        match spec.algorithm {
            Algorithm::LowLoad(cfg) => run_low_load_driver(self, cfg, spec, elements),
            Algorithm::HighLoad(cfg) => run_high_load_driver(self, cfg.clone(), spec, elements),
            Algorithm::Accelerated { epsilon } => {
                let cfg = HighLoadConfig::accelerated(spec.n, *epsilon);
                run_high_load_driver(self, cfg, spec, elements)
            }
            Algorithm::Hypercube => run_hypercube_driver(self, spec, elements),
            Algorithm::HittingSet(_) => Err(DriverError::UnsupportedAlgorithm {
                algorithm: spec.algorithm.name(),
                problem: self.problem_kind(),
            }),
        }
    }
}

fn run_low_load_driver<P: LpType + Clone + Sync>(
    problem: &P,
    cfg: &LowLoadConfig,
    spec: &RunSpec<'_, P::Value>,
    elements: &[P::Element],
) -> Result<RunReport<BasisOf<P>>, DriverError> {
    let proto = LowLoadClarkson::new(problem.clone(), spec.n, cfg);
    let states: Vec<LowLoadState<P>> = scatter(elements, spec.n, spec.seed)?
        .into_iter()
        .map(|h0| proto.initial_state(h0))
        .collect();
    let mut net = Network::new(proto, states, net_config(spec));
    if spec.record_phases {
        net.set_recorder(Box::new(FlightRecorder::new()));
    }
    let (outcome, cause) = drive(
        &mut net,
        spec.stop,
        spec.max_rounds,
        spec.cancel,
        |net, target| {
            net.states().iter().any(|s| {
                s.candidate
                    .as_ref()
                    .is_some_and(|b| net.protocol().problem().values_close(&b.value, target))
            })
        },
        |net| {
            net.states()
                .iter()
                .filter(|s| s.candidate.is_some())
                .count()
        },
    )?;
    let outputs: Vec<_> = net.states().iter().map(|s| s.output.clone()).collect();
    Ok(RunReport {
        consensus: lp_consensus(problem, &outputs),
        outputs,
        rounds: outcome.rounds(),
        all_halted: outcome.all_halted(),
        stop_cause: cause,
        first_candidate_round: net.states().iter().filter_map(|s| s.candidate_round).min(),
        size_bound: None,
        doubling: None,
        faults: FaultSummary::from_metrics(spec.fault.as_ref(), net.metrics()),
        metrics: stamped_metrics(net.metrics(), &outcome, cause),
        schedule: spec.schedule,
        topology: spec.topology.name(),
        exec: ExecInfo::from_threads(net.effective_parallelism()),
        obs: net.recorder().summary(),
    })
}

fn run_high_load_driver<P: LpType + Clone + Sync>(
    problem: &P,
    cfg: HighLoadConfig,
    spec: &RunSpec<'_, P::Value>,
    elements: &[P::Element],
) -> Result<RunReport<BasisOf<P>>, DriverError> {
    let proto = HighLoadClarkson::new(problem.clone(), spec.n, &cfg);
    let states: Vec<HighLoadState<P>> = scatter(elements, spec.n, spec.seed)?
        .into_iter()
        .map(|h| proto.initial_state(h))
        .collect();
    let mut net = Network::new(proto, states, net_config(spec));
    if spec.record_phases {
        net.set_recorder(Box::new(FlightRecorder::new()));
    }
    let (outcome, cause) = drive(
        &mut net,
        spec.stop,
        spec.max_rounds,
        spec.cancel,
        |net, target| {
            net.states().iter().any(|s| {
                s.local_basis
                    .as_ref()
                    .is_some_and(|b| net.protocol().problem().values_close(&b.value, target))
            })
        },
        |net| {
            net.states()
                .iter()
                .filter(|s| s.local_basis.is_some())
                .count()
        },
    )?;
    let outputs: Vec<_> = net.states().iter().map(|s| s.output.clone()).collect();
    Ok(RunReport {
        consensus: lp_consensus(problem, &outputs),
        outputs,
        rounds: outcome.rounds(),
        all_halted: outcome.all_halted(),
        stop_cause: cause,
        first_candidate_round: None,
        size_bound: None,
        doubling: None,
        faults: FaultSummary::from_metrics(spec.fault.as_ref(), net.metrics()),
        metrics: stamped_metrics(net.metrics(), &outcome, cause),
        schedule: spec.schedule,
        topology: spec.topology.name(),
        exec: ExecInfo::from_threads(net.effective_parallelism()),
        obs: net.recorder().summary(),
    })
}

fn run_hypercube_driver<P: LpType + Clone + Sync>(
    problem: &P,
    spec: &RunSpec<'_, P::Value>,
    elements: &[P::Element],
) -> Result<RunReport<BasisOf<P>>, DriverError> {
    if !matches!(spec.stop, StopCondition::FullTermination) {
        return Err(DriverError::UnsupportedStop {
            algorithm: "hypercube",
        });
    }
    if !spec.fault.is_perfect() {
        return Err(DriverError::UnsupportedFaults {
            algorithm: "hypercube",
        });
    }
    // Likewise for the execution engine: there is no network whose
    // events could be scheduled, so only the default engine fits.
    if !spec.engine.is_default() {
        return Err(DriverError::UnsupportedEngine {
            algorithm: "hypercube",
        });
    }
    // Analytic baseline — no rounds to check between, so the cancel
    // flag is honoured once, up front.
    if spec.cancel.is_some_and(|c| c.load(Ordering::Relaxed)) {
        return Err(DriverError::Cancelled);
    }
    // The baseline charges its per-iteration rounds against a hypercube
    // overlay; only the default complete topology (compatibility — the
    // run is analytic either way) or an explicit hypercube matches the
    // model being charged.
    if !spec.topology.is_complete() && spec.topology.name() != "hypercube" {
        return Err(DriverError::UnsupportedTopology {
            algorithm: "hypercube",
            topology: spec.topology.name(),
        });
    }
    let mut rng = ChaCha8Rng::seed_from_u64(spec.seed);
    let rep = hypercube_clarkson(problem, elements, spec.n, &mut rng)
        .map_err(|e| DriverError::Solver(e.to_string()))?;
    let outputs: Vec<Option<BasisOf<P>>> = vec![Some(rep.basis.clone()); spec.n];
    Ok(RunReport {
        consensus: Some(rep.basis),
        outputs,
        rounds: rep.rounds,
        all_halted: true,
        stop_cause: StopCause::AllHalted,
        first_candidate_round: None,
        size_bound: None,
        doubling: None,
        faults: FaultSummary::default(),
        metrics: Metrics::default(),
        // The hypercube baseline is computed analytically (no gossip
        // network, no destination draws), but the report still records
        // the spec's schedule for uniformity.
        schedule: spec.schedule,
        topology: spec.topology.name(),
        exec: ExecInfo::sequential(),
        obs: None,
    })
}

// ---------------------------------------------------------------------------
// Set-system problems (hitting set)
// ---------------------------------------------------------------------------

impl DriverProblem<SetMode> for Arc<SetSystem> {
    type Element = u32;
    type Output = Vec<u32>;
    /// Maximum acceptable hitting-set size for
    /// [`StopCondition::FirstSolution`]; use `usize::MAX` for "any
    /// verified hitting set".
    type Target = usize;

    fn problem_kind(&self) -> &'static str {
        "set-system"
    }

    fn default_algorithm(&self) -> Algorithm {
        Algorithm::hitting_set(1)
    }

    fn default_doubling(&self) -> Option<f64> {
        Some(12.0)
    }

    fn ground_elements(&self) -> Option<Vec<u32>> {
        Some((0..self.n_elements() as u32).collect())
    }

    fn execute(
        &self,
        spec: &RunSpec<'_, usize>,
        elements: &[u32],
    ) -> Result<RunReport<Vec<u32>>, DriverError> {
        if spec.n == 0 {
            return Err(DriverError::NoNodes);
        }
        let cfg = match spec.algorithm {
            Algorithm::HittingSet(cfg) => cfg,
            other => {
                return Err(DriverError::UnsupportedAlgorithm {
                    algorithm: other.name(),
                    problem: self.problem_kind(),
                })
            }
        };
        match spec.doubling {
            None => run_hitting_set_driver(self, cfg, spec, elements, spec.max_rounds),
            Some(factor) => run_doubling_search(self, cfg, spec, elements, factor),
        }
    }
}

fn run_hitting_set_driver(
    sys: &Arc<SetSystem>,
    cfg: &HittingSetConfig,
    spec: &RunSpec<'_, usize>,
    elements: &[u32],
    max_rounds: u64,
) -> Result<RunReport<Vec<u32>>, DriverError> {
    let proto = HittingSetGossip::new(sys.clone(), spec.n, cfg);
    let size_bound = proto.sample_size();
    let states: Vec<HittingSetState> = scatter(elements, spec.n, spec.seed)?
        .into_iter()
        .map(|x0| proto.initial_state(x0))
        .collect();
    let mut net = Network::new(proto, states, net_config(spec));
    if spec.record_phases {
        net.set_recorder(Box::new(FlightRecorder::new()));
    }
    let (outcome, cause) = drive(
        &mut net,
        spec.stop,
        max_rounds,
        spec.cancel,
        |net, target| {
            net.states()
                .iter()
                .any(|s| s.best.as_ref().is_some_and(|hs| hs.len() <= *target))
        },
        |net| net.states().iter().filter(|s| s.best.is_some()).count(),
    )?;
    let outputs: Vec<_> = net.states().iter().map(|s| s.output.clone()).collect();
    Ok(RunReport {
        consensus: hs_consensus(&outputs),
        outputs,
        rounds: outcome.rounds(),
        all_halted: outcome.all_halted(),
        stop_cause: cause,
        first_candidate_round: net.states().iter().filter_map(|s| s.found_round).min(),
        size_bound: Some(size_bound),
        doubling: None,
        faults: FaultSummary::from_metrics(spec.fault.as_ref(), net.metrics()),
        metrics: stamped_metrics(net.metrics(), &outcome, cause),
        schedule: spec.schedule,
        topology: spec.topology.name(),
        exec: ExecInfo::from_threads(net.effective_parallelism()),
        obs: net.recorder().summary(),
    })
}

/// The doubling search on the unknown minimum-hitting-set size: each
/// attempt runs with `d` doubled and an independent seed
/// ([`doubling_attempt_seed`]) under a `factor · d · log2 n` round
/// budget, until an attempt satisfies the stop condition.
fn run_doubling_search(
    sys: &Arc<SetSystem>,
    base_cfg: &HittingSetConfig,
    spec: &RunSpec<'_, usize>,
    elements: &[u32],
    factor: f64,
) -> Result<RunReport<Vec<u32>>, DriverError> {
    // An attempt's success is judged by termination (or a reached
    // target); a round budget stops every attempt without signalling
    // either, so the search could never distinguish "d too small" from
    // "budget hit" and would always diverge.
    if matches!(spec.stop, StopCondition::RoundBudget(_)) {
        return Err(DriverError::DoublingNeedsTermination);
    }
    let log2n = (spec.n.max(2) as f64).log2();
    let mut d = 1usize;
    let mut attempts = Vec::new();
    let mut total_rounds = 0u64;
    loop {
        attempts.push(d);
        let mut cfg = base_cfg.clone();
        cfg.d = d;
        // The per-attempt budget grows with d by design — capping it at
        // max_rounds would freeze the budget and make larger d useless,
        // so the doubling search deliberately ignores the safety valve
        // (divergence is bounded by the ground-set-size check below).
        let budget = (factor * d as f64 * log2n).ceil().max(8.0) as u64;
        let attempt_spec = RunSpec {
            seed: doubling_attempt_seed(spec.seed, d),
            ..*spec
        };
        let report = run_hitting_set_driver(sys, &cfg, &attempt_spec, elements, budget)?;
        total_rounds += report.rounds;
        let succeeded = report.all_halted
            || matches!(
                report.stop_cause,
                StopCause::TargetReached | StopCause::CustomStop
            );
        if succeeded {
            return Ok(RunReport {
                doubling: Some(DoublingReport {
                    d_used: d,
                    attempts,
                    total_rounds,
                }),
                ..report
            });
        }
        if d > 2 * sys.n_elements().max(1) {
            return Err(DriverError::DoublingDiverged { d });
        }
        d *= 2;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lpt::exhaustive::test_problems::Interval;
    use lpt_problems::{Med, MedValue};
    use lpt_workloads::med::{duo_disk, triple_disk};
    use lpt_workloads::sets::planted_hitting_set;

    #[test]
    fn scatter_preserves_elements() {
        let elements: Vec<i64> = (0..100).collect();
        let parts = scatter(&elements, 7, 5).expect("n > 0");
        assert_eq!(parts.len(), 7);
        let mut all: Vec<i64> = parts.into_iter().flatten().collect();
        all.sort_unstable();
        assert_eq!(all, elements);
    }

    #[test]
    fn scatter_rejects_zero_nodes() {
        assert_eq!(scatter(&[1, 2, 3], 0, 1).unwrap_err(), DriverError::NoNodes);
    }

    #[test]
    fn low_load_med_duo_disk() {
        let points = duo_disk(128, 1);
        let report = Driver::new(Med)
            .nodes(128)
            .seed(1)
            .run(&points)
            .expect("run");
        assert!(report.all_halted);
        assert_eq!(report.stop_cause, StopCause::AllHalted);
        let basis = report.consensus_output().expect("consensus");
        assert!((basis.value.r2.sqrt() - 10.0).abs() < 1e-6);
        assert_eq!(basis.len(), 2);
    }

    #[test]
    fn high_load_med_triple_disk() {
        let points = triple_disk(256, 2);
        let report = Driver::new(Med)
            .nodes(256)
            .seed(2)
            .algorithm(Algorithm::high_load())
            .run(&points)
            .expect("run");
        assert!(report.all_halted);
        let basis = report.consensus_output().expect("consensus");
        assert!((basis.value.r2.sqrt() - 10.0).abs() < 1e-6);
        assert_eq!(basis.len(), 3);
    }

    #[test]
    fn first_solution_is_before_full_termination() {
        let points = duo_disk(256, 3);
        let target = lpt::LpType::basis_of(&Med, &points).value;
        let driver = Driver::new(Med).nodes(256).seed(3);
        let first = driver
            .clone()
            .stop(StopCondition::FirstSolution(target))
            .run(&points)
            .expect("run");
        assert!(first.reached());
        let full = driver.run(&points).expect("run");
        assert!(full.all_halted);
        assert!(first.rounds <= full.rounds);
    }

    #[test]
    fn accelerated_resolves_push_count_at_run_time() {
        let points = triple_disk(128, 9);
        let report = Driver::new(Med)
            .nodes(128)
            .seed(9)
            .algorithm(Algorithm::accelerated(0.5))
            .run(&points)
            .expect("run");
        assert!(report.all_halted);
        let basis = report.consensus_output().expect("consensus");
        assert!((basis.value.r2.sqrt() - 10.0).abs() < 1e-6);
    }

    #[test]
    fn hypercube_baseline_reports_charged_rounds() {
        let points = triple_disk(200, 5);
        let report = Driver::new(Med)
            .nodes(200)
            .seed(5)
            .algorithm(Algorithm::Hypercube)
            .run(&points)
            .expect("run");
        assert!(report.all_halted);
        assert!(report.rounds > 0);
        assert!(
            report.metrics.rounds.is_empty(),
            "hypercube rounds are analytic"
        );
        let basis = report.consensus_output().expect("consensus");
        assert!((basis.value.r2.sqrt() - 10.0).abs() < 1e-6);
    }

    #[test]
    fn hypercube_rejects_partial_stops() {
        let points = duo_disk(64, 6);
        let err = Driver::new(Med)
            .nodes(64)
            .algorithm(Algorithm::Hypercube)
            .stop(StopCondition::RoundBudget(5))
            .run(&points)
            .unwrap_err();
        assert_eq!(
            err,
            DriverError::UnsupportedStop {
                algorithm: "hypercube"
            }
        );
    }

    #[test]
    fn round_budget_stops_exactly() {
        let points = triple_disk(256, 7);
        let report = Driver::new(Med)
            .nodes(256)
            .seed(7)
            .stop(StopCondition::RoundBudget(3))
            .run(&points)
            .expect("run");
        assert_eq!(report.rounds, 3);
        assert_eq!(report.stop_cause, StopCause::RoundBudget);
        assert!(!report.all_halted);
    }

    #[test]
    fn custom_stop_sees_progress() {
        let points = triple_disk(256, 8);
        let report = Driver::new(Med)
            .nodes(256)
            .seed(8)
            .stop(StopCondition::Custom(Arc::new(|p: &Progress| {
                p.round >= 2 && p.with_candidate * 2 >= p.n
            })))
            .run(&points)
            .expect("run");
        assert_eq!(report.stop_cause, StopCause::CustomStop);
        assert!(report.rounds >= 2);
        let full = Driver::new(Med)
            .nodes(256)
            .seed(8)
            .run(&points)
            .expect("run");
        assert!(report.rounds <= full.rounds);
    }

    #[test]
    fn lp_problems_reject_hitting_set_algorithm() {
        let err = Driver::new(Med)
            .nodes(16)
            .algorithm(Algorithm::hitting_set(2))
            .run(&duo_disk(16, 1))
            .unwrap_err();
        assert_eq!(
            err,
            DriverError::UnsupportedAlgorithm {
                algorithm: "hitting-set",
                problem: "LP-type"
            }
        );
    }

    #[test]
    fn zero_node_driver_errors() {
        let err = Driver::new(Med).nodes(0).run(&duo_disk(8, 1)).unwrap_err();
        assert_eq!(err, DriverError::NoNodes);
    }

    #[test]
    fn hitting_set_end_to_end_with_ground_elements() {
        let (sys, _) = planted_hitting_set(128, 32, 3, 6, 31);
        let sys = Arc::new(sys);
        let report = Driver::new(sys.clone())
            .nodes(128)
            .seed(31)
            .algorithm(Algorithm::hitting_set(3))
            .run_ground()
            .expect("run");
        assert!(report.all_halted);
        let bound = report.size_bound.expect("hitting set reports its bound");
        for out in &report.outputs {
            let hs = out.as_ref().expect("output");
            assert!(sys.is_hitting_set(hs));
            assert!(hs.len() <= bound);
        }
        let best = report.best_output().expect("solution");
        assert!(best.len() <= bound);
        assert!(report.first_found_round().is_some());
    }

    #[test]
    fn set_systems_reject_clarkson_algorithms() {
        let (sys, _) = planted_hitting_set(32, 8, 2, 4, 3);
        let err = Driver::new(Arc::new(sys))
            .nodes(32)
            .algorithm(Algorithm::low_load())
            .run_ground()
            .unwrap_err();
        assert_eq!(
            err,
            DriverError::UnsupportedAlgorithm {
                algorithm: "low-load",
                problem: "set-system"
            }
        );
    }

    #[test]
    fn doubling_search_finds_d_without_being_told() {
        let (sys, planted) = planted_hitting_set(128, 32, 4, 6, 80);
        let sys = Arc::new(sys);
        let report = Driver::new(sys.clone())
            .nodes(128)
            .seed(80)
            .algorithm(Algorithm::hitting_set(1))
            .with_doubling_search(12.0)
            .run_ground()
            .expect("run");
        assert!(report.all_halted);
        let best = report.best_output().expect("solution");
        assert!(sys.is_hitting_set(best));
        let doubling = report.doubling.expect("doubling trace");
        assert!(
            doubling.d_used <= 2 * planted.len(),
            "d_used = {} overshot",
            doubling.d_used
        );
        assert!(!doubling.attempts.is_empty());
        for w in doubling.attempts.windows(2) {
            assert_eq!(w[1], w[0] * 2);
        }
        assert!(doubling.total_rounds >= report.rounds);
    }

    #[test]
    fn doubling_search_on_trivial_instance_stops_at_one() {
        let sets: Vec<Vec<u32>> = (0..10).map(|i| vec![0u32, i + 1]).collect();
        let sys = Arc::new(SetSystem::new(12, sets));
        let report = Driver::new(sys.clone())
            .nodes(64)
            .seed(81)
            .algorithm(Algorithm::hitting_set(1))
            .with_doubling_search(20.0)
            .run_ground()
            .expect("run");
        assert!(report.all_halted);
        assert_eq!(report.doubling.as_ref().expect("trace").d_used, 1);
        assert!(sys.is_hitting_set(report.best_output().unwrap()));
    }

    #[test]
    fn round_budget_beyond_max_rounds_reports_the_safety_valve() {
        let points = triple_disk(256, 7);
        let report = Driver::new(Med)
            .nodes(256)
            .seed(7)
            .max_rounds(3)
            .stop(StopCondition::RoundBudget(1_000))
            .run(&points)
            .expect("run");
        assert_eq!(report.rounds, 3);
        assert_eq!(report.stop_cause, StopCause::MaxRounds);
    }

    #[test]
    fn set_system_default_is_the_doubling_search() {
        let (sys, _) = planted_hitting_set(96, 24, 3, 5, 66);
        let sys = Arc::new(sys);
        // No .algorithm() / .with_doubling_search(): the set-system
        // default must still terminate on an instance whose optimum
        // exceeds d = 1.
        let report = Driver::new(sys.clone())
            .nodes(96)
            .seed(66)
            .run_ground()
            .expect("run");
        assert!(report.all_halted);
        assert!(
            report.doubling.is_some(),
            "default runs the doubling search"
        );
        assert!(sys.is_hitting_set(report.best_output().expect("solution")));
        // An explicit algorithm choice opts out of the implicit doubling.
        let explicit = Driver::new(sys)
            .nodes(96)
            .seed(66)
            .algorithm(Algorithm::hitting_set(3))
            .run_ground()
            .expect("run");
        assert!(explicit.doubling.is_none());
    }

    #[test]
    fn doubling_rejects_round_budget_stop() {
        let (sys, _) = planted_hitting_set(32, 8, 2, 4, 5);
        let err = Driver::new(Arc::new(sys))
            .nodes(32)
            .algorithm(Algorithm::hitting_set(1))
            .with_doubling_search(12.0)
            .stop(StopCondition::RoundBudget(5))
            .run_ground()
            .unwrap_err();
        assert_eq!(err, DriverError::DoublingNeedsTermination);
    }

    #[test]
    fn doubling_rejected_for_lp_problems() {
        let err = Driver::new(Med)
            .nodes(16)
            .with_doubling_search(8.0)
            .run(&duo_disk(16, 2))
            .unwrap_err();
        assert_eq!(
            err,
            DriverError::UnsupportedDoubling {
                algorithm: "low-load"
            }
        );
    }

    #[test]
    fn consensus_tolerates_float_roundoff_within_values_close() {
        // Outputs that differ by less than Med's 1e-7 relative tolerance
        // still count as consensus...
        let base = MedValue {
            r2: 100.0,
            cx: 1.0,
            cy: -2.0,
        };
        let wobble = MedValue {
            r2: 100.0 + 3e-6,
            cx: 1.0 + 1e-8,
            cy: -2.0,
        };
        assert!(
            Med.values_close(&base, &wobble),
            "premise: within tolerance"
        );
        let mk = |v: MedValue| Some(lpt::Basis::new(Vec::new(), v));
        let outputs = vec![mk(base), mk(wobble), mk(base)];
        let consensus = lp_consensus(&Med, &outputs).expect("tolerant consensus");
        assert!(Med.values_close(&consensus.value, &base));
        // ...while a genuine disagreement yields None.
        let far = MedValue {
            r2: 101.0,
            cx: 1.0,
            cy: -2.0,
        };
        assert!(!Med.values_close(&base, &far), "premise: outside tolerance");
        let disagreeing = vec![mk(base), mk(far)];
        assert!(lp_consensus(&Med, &disagreeing).is_none());
        // ...and a missing output (node never halted) also yields None.
        let partial = vec![mk(base), None];
        assert!(lp_consensus(&Med, &partial).is_none());
    }

    #[test]
    fn interval_consensus_through_driver() {
        let elements: Vec<i64> = (0..200).map(|i| (i * 53) % 301).collect();
        let lo = *elements.iter().min().unwrap();
        let hi = *elements.iter().max().unwrap();
        for algorithm in [Algorithm::low_load(), Algorithm::high_load()] {
            let report = Driver::new(Interval)
                .nodes(64)
                .seed(99)
                .algorithm(algorithm.clone())
                .run(&elements)
                .unwrap_or_else(|e| panic!("{}: {e}", algorithm.name()));
            assert!(report.all_halted, "{}", algorithm.name());
            assert_eq!(report.consensus_output().expect("consensus").value, hi - lo);
        }
    }

    #[test]
    fn deterministic_given_seed() {
        let points = triple_disk(128, 70);
        let driver = Driver::new(Med).nodes(128).seed(70);
        let a = driver.run(&points).expect("run");
        let b = driver.run(&points).expect("run");
        assert_eq!(a.rounds, b.rounds);
        assert_eq!(a.metrics.total_ops(), b.metrics.total_ops());
        for (x, y) in a.outputs.iter().zip(&b.outputs) {
            assert_eq!(
                x.as_ref().map(|v| v.value.r2),
                y.as_ref().map(|v| v.value.r2)
            );
        }
    }

    #[test]
    fn record_phases_is_observational_only() {
        let points = triple_disk(128, 70);
        let plain = Driver::new(Med)
            .nodes(128)
            .seed(70)
            .run(&points)
            .expect("run");
        assert!(plain.obs.is_none(), "recording is opt-in");
        let traced = Driver::new(Med)
            .nodes(128)
            .seed(70)
            .record_phases(true)
            .run(&points)
            .expect("run");
        // Same trajectory: the recorder only reads values the engine
        // computed anyway.
        assert_eq!(plain.rounds, traced.rounds);
        assert_eq!(plain.metrics.total_ops(), traced.metrics.total_ops());
        let obs = traced.obs.expect("recorder summary");
        assert!(
            obs.phase_calls.iter().any(|&c| c > 0),
            "phases were spanned"
        );
        assert_eq!(
            obs.phase_calls.iter().filter(|&&c| c > 0).count(),
            6,
            "round-sync engine spans pull/serve/compute/deliver/absorb/refill"
        );
    }

    #[test]
    fn explicit_perfect_fault_model_matches_the_default() {
        // The pre-fault-subsystem trajectories themselves are pinned in
        // tests/faults.rs (the canonical copy); here we only check that
        // installing Perfect explicitly changes nothing vs the default.
        let points = duo_disk(128, 1);
        let implicit = Driver::new(Med)
            .nodes(128)
            .seed(1)
            .run(&points)
            .expect("run");
        let explicit = Driver::new(Med)
            .nodes(128)
            .seed(1)
            .fault_model(gossip_sim::fault::Perfect)
            .run(&points)
            .expect("run");
        assert_eq!(implicit.rounds, explicit.rounds);
        assert_eq!(implicit.metrics.total_ops(), explicit.metrics.total_ops());
        assert_eq!(implicit.faults, FaultSummary::default());
        assert_eq!(explicit.faults.model, "perfect");
    }

    #[test]
    fn driver_runs_under_each_builtin_fault_model() {
        use gossip_sim::fault::{Bernoulli, Churn, Compose, Delay};
        let points = duo_disk(256, 5);
        let base = || Driver::new(Med).nodes(256).seed(5);
        let perfect = base().run(&points).expect("run");
        assert!(perfect.all_halted);

        let lossy = base()
            .fault_model(Bernoulli::new(0.2))
            .run(&points)
            .expect("run");
        assert!(lossy.all_halted, "termination survives 20% loss");
        assert!(lossy.consensus_output().is_some());
        assert!(lossy.faults.messages_dropped > 0);
        assert_eq!(lossy.faults.model, "bernoulli-loss");

        let churny = base()
            .fault_model(Churn::crash_recovery(0.3, 0.2))
            .run(&points)
            .expect("run");
        assert!(churny.all_halted, "termination survives recovery churn");
        assert!(churny.consensus_output().is_some());
        assert!(churny.faults.offline_node_rounds > 0);
        assert!(
            churny.rounds >= perfect.rounds,
            "churn must not speed up termination"
        );

        let delayed = base()
            .fault_model(Delay::uniform(2))
            .run(&points)
            .expect("run");
        assert!(delayed.all_halted, "termination survives delivery delay");
        assert!(delayed.consensus_output().is_some());
        assert!(delayed.faults.messages_delayed > 0);

        let mixed = base()
            .fault_model(
                Compose::default()
                    .and(Bernoulli::new(0.1))
                    .and(Churn::crash_recovery(0.2, 0.15))
                    .and(Delay::uniform(1)),
            )
            .run(&points)
            .expect("run");
        assert!(mixed.all_halted, "termination survives combined faults");
        assert!(mixed.consensus_output().is_some());
        assert!(mixed.faults.messages_dropped > 0);
        assert!(mixed.faults.messages_delayed > 0);
        assert!(mixed.faults.offline_node_rounds > 0);
        // All faulty runs still agree on the true optimum.
        for report in [&lossy, &churny, &delayed, &mixed] {
            let basis = report.consensus_output().expect("consensus");
            assert!((basis.value.r2.sqrt() - 10.0).abs() < 1e-6);
        }
    }

    #[test]
    fn pre_raised_cancel_flag_aborts_before_any_round() {
        let points = duo_disk(128, 6);
        let flag = Arc::new(AtomicBool::new(true));
        let err = Driver::new(Med)
            .nodes(128)
            .seed(6)
            .cancel_flag(flag)
            .run(&points)
            .expect_err("pre-raised flag must cancel");
        assert_eq!(err, DriverError::Cancelled);
        // The analytic hypercube baseline honours the flag too.
        let err = Driver::new(Med)
            .nodes(128)
            .seed(6)
            .algorithm(Algorithm::Hypercube)
            .cancel_flag(Arc::new(AtomicBool::new(true)))
            .run(&points)
            .expect_err("pre-raised flag must cancel the baseline");
        assert_eq!(err, DriverError::Cancelled);
    }

    #[test]
    fn unraised_cancel_flag_is_byte_identical() {
        let points = duo_disk(256, 7);
        let plain = Driver::new(Med)
            .nodes(256)
            .seed(7)
            .run(&points)
            .expect("run");
        let flagged = Driver::new(Med)
            .nodes(256)
            .seed(7)
            .cancel_flag(Arc::new(AtomicBool::new(false)))
            .run(&points)
            .expect("run");
        assert_eq!(plain.rounds, flagged.rounds);
        assert_eq!(plain.stop_cause, flagged.stop_cause);
        assert_eq!(plain.metrics.rounds, flagged.metrics.rounds);
        assert_eq!(plain.metrics.degradation, flagged.metrics.degradation);
        assert_eq!(
            plain.consensus_output().expect("consensus").value,
            flagged.consensus_output().expect("consensus").value
        );
    }

    #[test]
    fn cancel_flag_raised_mid_run_cancels_at_a_round_boundary() {
        let points = duo_disk(256, 8);
        let flag = Arc::new(AtomicBool::new(false));
        // A Custom stop predicate doubles as a deterministic mid-run
        // trigger: it raises the flag at round 2 (and never stops the
        // run itself), so the next boundary check must cancel.
        let trigger = flag.clone();
        let err = Driver::new(Med)
            .nodes(256)
            .seed(8)
            .stop(StopCondition::Custom(Arc::new(move |p: &Progress| {
                if p.round >= 2 {
                    trigger.store(true, std::sync::atomic::Ordering::Relaxed);
                }
                false
            })))
            .cancel_flag(flag)
            .run(&points)
            .expect_err("raised flag must cancel mid-run");
        assert_eq!(err, DriverError::Cancelled);
    }

    #[test]
    fn budget_exhausted_runs_stamp_rounds_over_budget() {
        let points = duo_disk(256, 9);
        let starved = Driver::new(Med)
            .nodes(256)
            .seed(9)
            .max_rounds(3)
            .run(&points)
            .expect("run");
        assert_eq!(starved.stop_cause, StopCause::MaxRounds);
        assert_eq!(starved.metrics.degradation.rounds_over_budget, 3);
        assert!(starved.metrics.degradation.any());

        let finished = Driver::new(Med)
            .nodes(256)
            .seed(9)
            .run(&points)
            .expect("run");
        assert_eq!(finished.stop_cause, StopCause::AllHalted);
        assert_eq!(finished.metrics.degradation.rounds_over_budget, 0);
        assert!(!finished.metrics.degradation.any());

        // An explicit round budget is a *chosen* stop, not degradation.
        let budgeted = Driver::new(Med)
            .nodes(256)
            .seed(9)
            .stop(StopCondition::RoundBudget(3))
            .run(&points)
            .expect("run");
        assert_eq!(budgeted.stop_cause, StopCause::RoundBudget);
        assert_eq!(budgeted.metrics.degradation.rounds_over_budget, 0);
    }

    #[test]
    fn loss_degrades_rounds_gracefully() {
        use gossip_sim::fault::Bernoulli;
        let points = duo_disk(256, 5);
        let target = lpt::LpType::basis_of(&Med, &points).value;
        let rounds: Vec<u64> = [0.0, 0.4]
            .iter()
            .map(|&loss| {
                let report = Driver::new(Med)
                    .nodes(256)
                    .seed(5)
                    .fault_model(Bernoulli::new(loss))
                    .stop(StopCondition::FirstSolution(target))
                    .run(&points)
                    .expect("run");
                assert!(report.reached(), "loss {loss} still converges");
                report.rounds
            })
            .collect();
        assert!(
            rounds[1] > rounds[0],
            "heavy loss costs extra rounds: {rounds:?}"
        );
    }

    // The lossy hitting-set doubling run is covered end-to-end in
    // tests/faults.rs (hitting_set_doubling_survives_loss); no unit copy.

    #[test]
    fn hypercube_rejects_fault_models() {
        use gossip_sim::fault::Bernoulli;
        let points = duo_disk(64, 6);
        let err = Driver::new(Med)
            .nodes(64)
            .algorithm(Algorithm::Hypercube)
            .fault_model(Bernoulli::new(0.1))
            .run(&points)
            .unwrap_err();
        assert_eq!(
            err,
            DriverError::UnsupportedFaults {
                algorithm: "hypercube"
            }
        );
        // The perfect model — spelled explicitly or as a zero-rate
        // built-in — is still accepted.
        for ok in [
            Driver::new(Med)
                .nodes(64)
                .seed(6)
                .algorithm(Algorithm::Hypercube)
                .fault_model(gossip_sim::fault::Perfect)
                .run(&points),
            Driver::new(Med)
                .nodes(64)
                .seed(6)
                .algorithm(Algorithm::Hypercube)
                .fault_model(Bernoulli::new(0.0))
                .run(&points),
        ] {
            assert!(ok.is_ok());
        }
    }

    #[test]
    fn parallel_threshold_builder_changes_nothing() {
        let points = triple_disk(256, 8);
        let base = Driver::new(Med).nodes(256).seed(8);
        let a = base
            .clone()
            .parallel_threshold(1)
            .run(&points)
            .expect("run");
        let b = base
            .clone()
            .parallel_threshold(10_000)
            .run(&points)
            .expect("run");
        let c = base.run(&points).expect("run");
        assert_eq!(a.rounds, b.rounds);
        assert_eq!(b.rounds, c.rounds);
        assert_eq!(a.metrics.total_ops(), b.metrics.total_ops());
        assert_eq!(b.metrics.total_ops(), c.metrics.total_ops());
    }

    /// The seq/par decision is explicit in the report: `parallel(true)`
    /// under a one-worker pool is recorded as sequential execution
    /// (previously the knob was silently ignored), a multi-worker pool
    /// as parallel with its thread count — and the deterministic
    /// payload is identical either way.
    #[test]
    fn exec_info_records_the_effective_seq_par_decision() {
        let points = triple_disk(300, 9);
        let run_with = |threads: usize| {
            let pool = rayon::ThreadPoolBuilder::new()
                .num_threads(threads)
                .build()
                .expect("pool");
            pool.install(|| {
                Driver::new(Med)
                    .nodes(300)
                    .seed(9)
                    .parallel_threshold(1)
                    .run(&points)
                    .expect("run")
            })
        };
        let seq = run_with(1);
        assert_eq!(seq.exec, ExecInfo::from_threads(1));
        assert!(!seq.exec.parallel, "one-worker pool must read sequential");

        let par = run_with(4);
        assert_eq!(
            par.exec,
            ExecInfo {
                threads: 4,
                parallel: true
            }
        );

        // n below the threshold: parallel not taken even with workers.
        let pool = rayon::ThreadPoolBuilder::new()
            .num_threads(4)
            .build()
            .expect("pool");
        let below = pool.install(|| {
            Driver::new(Med)
                .nodes(300)
                .seed(9)
                .parallel_threshold(10_000)
                .run(&points)
                .expect("run")
        });
        assert_eq!(below.exec, ExecInfo::sequential());

        // The decision is metadata only: payloads agree bit-for-bit.
        for other in [&par, &below] {
            assert_eq!(seq.rounds, other.rounds);
            assert_eq!(seq.metrics.rounds, other.metrics.rounds);
            assert_eq!(seq.all_halted, other.all_halted);
            assert_eq!(
                seq.consensus_output().map(|b| b.value.r2.to_bits()),
                other.consensus_output().map(|b| b.value.r2.to_bits())
            );
        }
    }

    #[test]
    fn topology_is_recorded_and_algorithms_solve_on_overlays() {
        use gossip_sim::topology::{Hypercube, RandomRegular};
        let points = duo_disk(128, 3);
        let base = || Driver::new(Med).nodes(128).seed(3);
        let complete = base().run(&points).expect("run");
        assert_eq!(complete.topology, "complete");

        // High-Load on a well-connected random-regular overlay still
        // reaches exact-optimum consensus.
        let rr = base()
            .topology(RandomRegular(8))
            .algorithm(Algorithm::high_load())
            .run(&points)
            .expect("run");
        assert_eq!(rr.topology, "random-regular");
        assert!(rr.all_halted);
        let basis = rr.consensus_output().expect("consensus");
        assert!((basis.value.r2.sqrt() - 10.0).abs() < 1e-6);

        // Low-Load on the hypercube overlay: the paper's guarantees
        // assume uniform gossip, and on a sparse overlay the
        // termination audit samples only neighbors — every node halts
        // and the optimum is found, but individual nodes may keep a
        // locally-unviolated sub-optimal basis (which is exactly the
        // degradation the topology seam exists to measure).
        let hc = base().topology(Hypercube).run(&points).expect("run");
        assert_eq!(hc.topology, "hypercube");
        assert!(hc.all_halted);
        let best = hc
            .outputs
            .iter()
            .map(|o| o.as_ref().expect("all nodes output").value.r2)
            .fold(f64::NEG_INFINITY, f64::max);
        assert!((best.sqrt() - 10.0).abs() < 1e-6, "optimum not found");
    }

    #[test]
    fn explicit_complete_topology_matches_the_default() {
        let points = duo_disk(128, 1);
        let implicit = Driver::new(Med)
            .nodes(128)
            .seed(1)
            .run(&points)
            .expect("run");
        let explicit = Driver::new(Med)
            .nodes(128)
            .seed(1)
            .topology(gossip_sim::topology::Complete)
            .run(&points)
            .expect("run");
        assert_eq!(implicit.rounds, explicit.rounds);
        assert_eq!(implicit.metrics.total_ops(), explicit.metrics.total_ops());
        assert_eq!(explicit.topology, "complete");
    }

    #[test]
    fn hypercube_algorithm_rejects_non_hypercube_topologies() {
        use gossip_sim::topology::{Hypercube, Ring};
        let points = duo_disk(64, 6);
        let err = Driver::new(Med)
            .nodes(64)
            .algorithm(Algorithm::Hypercube)
            .topology(Ring(2))
            .run(&points)
            .unwrap_err();
        assert_eq!(
            err,
            DriverError::UnsupportedTopology {
                algorithm: "hypercube",
                topology: "ring"
            }
        );
        // The default complete topology and an explicit hypercube — the
        // overlay the baseline actually charges against — are accepted.
        for ok in [
            Driver::new(Med)
                .nodes(64)
                .seed(6)
                .algorithm(Algorithm::Hypercube)
                .run(&points),
            Driver::new(Med)
                .nodes(64)
                .seed(6)
                .algorithm(Algorithm::Hypercube)
                .topology(Hypercube)
                .run(&points),
        ] {
            assert!(ok.is_ok());
        }
    }

    #[test]
    fn best_output_prefers_smaller_then_lexicographic() {
        let report: RunReport<Vec<u32>> = RunReport {
            outputs: vec![
                Some(vec![4, 5, 6]),
                None,
                Some(vec![2, 9]),
                Some(vec![2, 3]),
                Some(vec![2, 3, 1]),
            ],
            rounds: 0,
            all_halted: false,
            stop_cause: StopCause::MaxRounds,
            first_candidate_round: None,
            size_bound: None,
            doubling: None,
            faults: FaultSummary::default(),
            metrics: Metrics::default(),
            schedule: RngSchedule::default(),
            topology: "complete",
            exec: ExecInfo::sequential(),
            obs: None,
            consensus: None,
        };
        assert_eq!(report.best_output(), Some(&vec![2, 3]));
    }
}
