//! The High-Load Clarkson Algorithm (paper, Section 3: Algorithm 5) and
//! its accelerated variant (Section 3.1).
//!
//! For `|H| = ω(n log n)` the Low-Load algorithm's per-round work
//! `Θ(m/(dn))` becomes super-logarithmic, so the High-Load algorithm
//! inverts the flow: instead of every node sampling the network, every
//! node *pushes its local optimal basis* `B_i = basis(H(v_i))` to `C`
//! random nodes per round; receivers reply by pushing each of their
//! local violators of the received bases to random nodes. Since
//! `H(v_i)` is a uniformly random `1/n` fraction of `H(V)`, the local
//! basis plays the role of the basis of a random sample of size
//! `≈ m/n`, and a Chernoff-style bound on the number of violators that
//! holds for **all** LP-type problems — including the degenerate
//! instances that Clarkson-style duplication creates, where the
//! Gärtner–Welzl bound does not apply — gives `|W_i| = O(d log n)`
//! w.h.p. (Lemmas 14–15). No filtering is needed: `|H(V)|` grows by at
//! most `O(C·d·n log n)` per round, while a basis element's multiplicity
//! grows by a `(C+1)` factor every `d` rounds (Lemmas 16–17), forcing
//! termination in `O(d log n)` rounds for `C = 1` and
//! `O(d log n / log log n)` for `C = logᵉ n` (Theorem 4).

use crate::termination::{TermEntry, TermState};
use gossip_sim::{NodeControl, PhaseRng, Protocol, Response, Served};
use lpt::{BasisOf, LpType};
use std::sync::Arc;

/// Tuning knobs for the High-Load protocol.
#[derive(Clone, Debug)]
pub struct HighLoadConfig {
    /// How many copies of the local basis each node pushes per round
    /// (the acceleration parameter `C` of Section 3.1).
    pub push_count: usize,
    /// Termination maturity factor (as in [`crate::low_load`]).
    pub maturity_factor: f64,
}

impl Default for HighLoadConfig {
    fn default() -> Self {
        HighLoadConfig {
            push_count: 1,
            maturity_factor: 2.0,
        }
    }
}

impl HighLoadConfig {
    /// The accelerated configuration of Section 3.1: `C = ⌈log2(n)^ε⌉`,
    /// giving `O(d log n / log log n)` rounds with `O(d log^{1+ε} n)`
    /// work.
    pub fn accelerated(n: usize, epsilon: f64) -> Self {
        let log2n = (n.max(2) as f64).log2();
        HighLoadConfig {
            push_count: log2n.powf(epsilon).ceil().max(1.0) as usize,
            maturity_factor: 3.0,
        }
    }
}

/// Messages of the High-Load protocol.
#[derive(Debug)]
pub enum HighLoadMsg<P: LpType> {
    /// A duplicated element.
    Elem(P::Element),
    /// A node's local optimal basis. Shared behind an [`Arc`]: the
    /// accelerated variant fans the same basis out `C` times per round,
    /// and with interned payloads every copy after the first costs a
    /// reference-count bump instead of a deep clone of the basis.
    Basis(Arc<BasisOf<P>>),
    /// A termination entry (its basis is Arc-shared too).
    Term(TermEntry<P>),
}

impl<P: LpType> Clone for HighLoadMsg<P> {
    fn clone(&self) -> Self {
        match self {
            HighLoadMsg::Elem(e) => HighLoadMsg::Elem(e.clone()),
            HighLoadMsg::Basis(b) => HighLoadMsg::Basis(Arc::clone(b)),
            HighLoadMsg::Term(t) => HighLoadMsg::Term(t.clone()),
        }
    }
}

/// Per-node state.
#[derive(Debug)]
pub struct HighLoadState<P: LpType> {
    /// All element copies currently held (`H(v_i)`; nothing is deleted).
    pub h: Vec<P::Element>,
    /// Bases received last round, processed this round (shared with
    /// the sender and every other recipient of the same broadcast).
    pub pending_bases: Vec<Arc<BasisOf<P>>>,
    /// Termination-protocol state.
    pub term: TermState<P>,
    /// The node's final output, once decided.
    pub output: Option<BasisOf<P>>,
    /// The node's current local basis (experiment stop predicates read
    /// this; the protocol itself only trusts the audited output).
    pub local_basis: Option<Arc<BasisOf<P>>>,
    /// Local round counter.
    pub round: u64,
}

impl<P: LpType> HighLoadState<P> {
    /// Creates the state for a node initially holding `h`.
    pub fn new(h: Vec<P::Element>, maturity: u64) -> Self {
        HighLoadState {
            h,
            pending_bases: Vec::new(),
            term: TermState::new(maturity),
            output: None,
            local_basis: None,
            round: 0,
        }
    }
}

/// The High-Load Clarkson protocol (Algorithm 5 + termination of
/// Algorithm 3; `push_count > 1` gives the accelerated variant).
#[derive(Clone, Debug)]
pub struct HighLoadClarkson<P: LpType> {
    problem: P,
    push_count: usize,
    maturity: u64,
}

impl<P: LpType> HighLoadClarkson<P> {
    /// Builds the protocol for a network of `n` nodes.
    pub fn new(problem: P, n: usize, cfg: &HighLoadConfig) -> Self {
        let log2n = (n.max(2) as f64).log2();
        // Floor of 10 rounds: at tiny n the ceil(c*log2 n) window is too
        // short for the audit to make even one network traversal, and the
        // w.h.p. guarantees of Lemma 12 are asymptotic. The floor is
        // invisible for n >= 2^5 under the default factor.
        let maturity = ((cfg.maturity_factor * log2n).ceil().max(1.0) as u64).max(10);
        HighLoadClarkson {
            problem,
            push_count: cfg.push_count.max(1),
            maturity,
        }
    }

    /// The termination maturity window in rounds.
    pub fn maturity(&self) -> u64 {
        self.maturity
    }

    /// The acceleration parameter `C`.
    pub fn push_count(&self) -> usize {
        self.push_count
    }

    /// The problem being solved.
    pub fn problem(&self) -> &P {
        &self.problem
    }

    /// Builds the initial per-node state for this protocol.
    pub fn initial_state(&self, h: Vec<P::Element>) -> HighLoadState<P> {
        HighLoadState::new(h, self.maturity)
    }
}

impl<P: LpType + Sync> Protocol for HighLoadClarkson<P> {
    type State = HighLoadState<P>;
    type Msg = HighLoadMsg<P>;
    type Query = (); // the High-Load algorithm is push-only

    fn pulls(&self, _id: u32, _state: &HighLoadState<P>, _rng: &mut PhaseRng, _out: &mut Vec<()>) {}

    fn serve(
        &self,
        _id: u32,
        _state: &HighLoadState<P>,
        _query: &(),
        _rng: &mut PhaseRng,
    ) -> Option<Served<HighLoadMsg<P>>> {
        None
    }

    fn compute(
        &self,
        _id: u32,
        state: &mut HighLoadState<P>,
        _responses: &mut Vec<Option<Response<HighLoadMsg<P>>>>,
        _rng: &mut PhaseRng,
        pushes: &mut Vec<HighLoadMsg<P>>,
    ) -> NodeControl {
        let now = state.round;
        state.round += 1;

        // --- Termination protocol. --------------------------------------
        let h = &state.h;
        let step = state.term.step(&self.problem, now, |basis| {
            h.iter().any(|x| self.problem.violates(basis, x))
        });
        for entry in step.pushes {
            pushes.push(HighLoadMsg::Term(entry));
        }
        if let Some(basis) = step.output {
            state.output = Some(basis);
            return NodeControl::Halt;
        }

        if state.h.is_empty() {
            // A node that never received an element just relays
            // termination traffic.
            state.pending_bases.clear();
            return NodeControl::Continue;
        }

        // --- Compute and broadcast the local basis. ---------------------
        let mut basis = self.problem.basis_of(&state.h);
        self.problem.canonicalize(&mut basis);
        let basis = Arc::new(basis);
        // A basis with no local violators is (locally) optimal: inject it
        // for the network-wide audit. Our own basis trivially qualifies.
        // One Arc serves the audit entry, the C pushes, and local_basis.
        state.term.inject(&self.problem, now, Arc::clone(&basis));
        for _ in 0..self.push_count {
            pushes.push(HighLoadMsg::Basis(Arc::clone(&basis)));
        }
        state.local_basis = Some(basis);

        // --- Answer received bases with violators. ----------------------
        for bj in &state.pending_bases {
            for x in &state.h {
                if self.problem.violates(bj, x) {
                    pushes.push(HighLoadMsg::Elem(x.clone()));
                }
            }
        }
        state.pending_bases.clear();

        NodeControl::Continue
    }

    fn absorb(
        &self,
        _id: u32,
        state: &mut HighLoadState<P>,
        delivered: &mut Vec<HighLoadMsg<P>>,
        _rng: &mut PhaseRng,
    ) -> NodeControl {
        for msg in delivered.drain(..) {
            match msg {
                HighLoadMsg::Elem(e) => state.h.push(e),
                HighLoadMsg::Basis(b) => state.pending_bases.push(b),
                HighLoadMsg::Term(t) => state.term.receive(t),
            }
        }
        NodeControl::Continue
    }

    fn msg_words(&self, msg: &HighLoadMsg<P>) -> usize {
        match msg {
            HighLoadMsg::Elem(_) => 1,
            HighLoadMsg::Basis(b) => b.len() + 1,
            HighLoadMsg::Term(e) => e.basis.len() + 2,
        }
    }

    fn load(&self, state: &HighLoadState<P>) -> usize {
        state.h.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gossip_sim::{Network, NetworkConfig};
    use lpt::exhaustive::test_problems::Interval;
    use rand::Rng;
    use rand_chacha::rand_core::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn scatter(elements: &[i64], n: usize, seed: u64) -> Vec<Vec<i64>> {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let mut out = vec![Vec::new(); n];
        for &e in elements {
            out[rng.gen_range(0..n)].push(e);
        }
        out
    }

    fn run_interval(
        n: usize,
        elements: &[i64],
        cfg: &HighLoadConfig,
        seed: u64,
    ) -> (Vec<Option<BasisOf<Interval>>>, u64) {
        let proto = HighLoadClarkson::new(Interval, n, cfg);
        let states: Vec<_> = scatter(elements, n, seed)
            .into_iter()
            .map(|h| proto.initial_state(h))
            .collect();
        let mut net = Network::new(proto, states, NetworkConfig::with_seed(seed));
        let outcome = net.run(2000);
        assert!(outcome.all_halted(), "did not terminate: {outcome:?}");
        (
            net.states().iter().map(|s| s.output.clone()).collect(),
            outcome.rounds(),
        )
    }

    #[test]
    fn interval_consensus() {
        let elements: Vec<i64> = (0..2000).map(|i| (i * 48271) % 1511 - 755).collect();
        let lo = *elements.iter().min().unwrap();
        let hi = *elements.iter().max().unwrap();
        let (outputs, _) = run_interval(128, &elements, &HighLoadConfig::default(), 21);
        for out in &outputs {
            assert_eq!(out.as_ref().unwrap().value, hi - lo);
        }
    }

    #[test]
    fn heavy_load_per_node() {
        // |H| = 64·n: the high-load regime the algorithm is designed for.
        let n = 64;
        let elements: Vec<i64> = (0..(64 * n) as i64).map(|i| (i * 137) % 4099).collect();
        let (outputs, rounds) = run_interval(n, &elements, &HighLoadConfig::default(), 22);
        let hi = *elements.iter().max().unwrap();
        let lo = *elements.iter().min().unwrap();
        for out in &outputs {
            assert_eq!(out.as_ref().unwrap().value, hi - lo);
        }
        assert!(rounds < 200, "rounds {rounds}");
    }

    #[test]
    fn accelerated_converges_faster_or_equal() {
        let n = 256;
        let elements: Vec<i64> = (0..4 * n as i64).map(|i| (i * 911) % 7919).collect();
        // Compare first-candidate rounds rather than full termination
        // (termination adds the same maturity window to both).
        let run_candidate_rounds = |cfg: &HighLoadConfig, seed: u64| -> u64 {
            let proto = HighLoadClarkson::new(Interval, n, cfg);
            let states: Vec<_> = scatter(&elements, n, seed)
                .into_iter()
                .map(|h| proto.initial_state(h))
                .collect();
            let hi = *elements.iter().max().unwrap();
            let lo = *elements.iter().min().unwrap();
            let mut net = Network::new(proto, states, NetworkConfig::with_seed(seed));
            let outcome = net.run_until(2000, |net| {
                net.states()
                    .iter()
                    .any(|s| s.local_basis.as_ref().is_some_and(|b| b.value == hi - lo))
            });
            outcome.rounds()
        };
        let mut plain_sum = 0;
        let mut accel_sum = 0;
        for seed in 0..5 {
            plain_sum += run_candidate_rounds(&HighLoadConfig::default(), 300 + seed);
            accel_sum += run_candidate_rounds(
                &HighLoadConfig {
                    push_count: 8,
                    ..Default::default()
                },
                300 + seed,
            );
        }
        assert!(
            accel_sum <= plain_sum,
            "accelerated ({accel_sum}) should not be slower than plain ({plain_sum}) on average"
        );
    }

    #[test]
    fn accelerated_config_formula() {
        let cfg = HighLoadConfig::accelerated(1 << 16, 1.0);
        assert_eq!(cfg.push_count, 16);
        let cfg = HighLoadConfig::accelerated(1 << 16, 0.5);
        assert_eq!(cfg.push_count, 4);
    }

    #[test]
    fn deterministic_given_seed() {
        let elements: Vec<i64> = (0..500).map(|i| (i * 17) % 997).collect();
        let (a, ra) = run_interval(64, &elements, &HighLoadConfig::default(), 23);
        let (b, rb) = run_interval(64, &elements, &HighLoadConfig::default(), 23);
        assert_eq!(ra, rb);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.as_ref().unwrap().value, y.as_ref().unwrap().value);
        }
    }

    #[test]
    fn empty_nodes_are_harmless() {
        // More nodes than elements: some nodes start empty and just relay.
        let elements: Vec<i64> = (0..20).collect();
        let (outputs, _) = run_interval(128, &elements, &HighLoadConfig::default(), 24);
        for out in &outputs {
            assert_eq!(out.as_ref().unwrap().value, 19);
        }
    }
}
