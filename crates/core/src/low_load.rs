//! The Low-Load Clarkson Algorithm (paper, Section 2: Algorithms 2–4).
//!
//! For `|H| = O(n log n)`, finds an optimal basis in `O(d log n)` rounds
//! with maximum work `O(d² + log n)` per node per round, w.h.p.
//! (Theorem 3). Per round, every node:
//!
//! 1. samples a random multiset `R_i` of size `6d²` from the global
//!    element multiset `H(V)` via `c(6d² + log n)` pulls (Section 2.1);
//! 2. computes the violators `W_i = {h ∈ H(v_i) : f(R_i) < f(R_i∪{h})}`
//!    among its *locally held* elements and pushes each to a uniformly
//!    random node — the distributed form of Clarkson's multiplicity
//!    doubling;
//! 3. absorbs pushed elements into its local collection;
//! 4. *filters*: keeps each non-original element independently with
//!    probability `1/(1 + 1/(2d))`, which caps `|H(V)| = O(|H₀|)`
//!    (Lemma 9) without ever deleting an original element (so no element
//!    is washed out and correctness is preserved);
//! 5. when `W_i = ∅` (i.e. `f(R_i) = f(R_i ∪ H(v_i))`), injects the
//!    basis of `R_i` into the termination protocol (Algorithm 3), which
//!    audits it network-wide for `c·log n` rounds before anyone outputs.
//!
//! The pull-phase extension (Algorithm 4) handles `|H| < n`: a node that
//! starts with no elements keeps pulling until it receives one original
//! element, then re-scatters it as a new `H₀` copy, guaranteeing
//! `|H₀| ≥ n` shortly after the start.

use crate::sampling::{extract_sample_from, pull_count, SampleOutcome};
use crate::termination::{TermEntry, TermState};
use gossip_sim::{NodeControl, PhaseRng, Protocol, Response, Served};
use lpt::{BasisOf, LpType};
use rand::Rng;
use std::sync::Arc;

/// Tuning knobs for the Low-Load protocol. Defaults follow the paper.
#[derive(Clone, Debug)]
pub struct LowLoadConfig {
    /// Sample size `r`; `None` = the paper's `6·d²`.
    pub sample_size: Option<usize>,
    /// Pull-count factor `c` in `s = c(6d² + log n)`.
    pub pull_factor: f64,
    /// Fraction of successful pulls above which the small-instance
    /// sampling relaxation applies (see [`crate::sampling`]).
    pub relaxed_threshold: f64,
    /// Keep probability of the filtering step; `None` = the paper's
    /// `1/(1 + 1/(2d))`. Exposed for the filtering ablation.
    pub keep_prob: Option<f64>,
    /// Termination maturity factor `c`: entries mature after
    /// `ceil(c·log2 n)` rounds.
    pub maturity_factor: f64,
}

impl Default for LowLoadConfig {
    fn default() -> Self {
        LowLoadConfig {
            sample_size: None,
            pull_factor: 2.0,
            relaxed_threshold: 0.5,
            keep_prob: None,
            maturity_factor: 3.0,
        }
    }
}

/// Messages of the Low-Load protocol.
#[derive(Debug)]
pub enum LowLoadMsg<P: LpType> {
    /// A duplicated element (joins the receiver's filterable pool).
    Elem(P::Element),
    /// A re-scattered original element (joins the receiver's `H₀`;
    /// only sent during the pull phase, Algorithm 4).
    Elem0(P::Element),
    /// A termination entry (Algorithm 3).
    Term(TermEntry<P>),
}

impl<P: LpType> Clone for LowLoadMsg<P> {
    fn clone(&self) -> Self {
        match self {
            LowLoadMsg::Elem(e) => LowLoadMsg::Elem(e.clone()),
            LowLoadMsg::Elem0(e) => LowLoadMsg::Elem0(e.clone()),
            LowLoadMsg::Term(t) => LowLoadMsg::Term(t.clone()),
        }
    }
}

/// Pull queries of the Low-Load protocol.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum LowLoadQuery {
    /// "Send me a uniformly random element copy of your `H(v)`."
    Sample,
    /// "Send me a uniformly random element of your `H₀(v)`" (pull phase).
    PullH0,
}

/// Per-node state.
#[derive(Debug)]
pub struct LowLoadState<P: LpType> {
    /// Original elements (never deleted).
    pub h0: Vec<P::Element>,
    /// Filterable element copies.
    pub extra: Vec<P::Element>,
    /// Whether the node is still in its pull phase (Algorithm 4).
    pub pull_phase: bool,
    /// Termination-protocol state.
    pub term: TermState<P>,
    /// The node's final output, once decided.
    pub output: Option<BasisOf<P>>,
    /// Most recent sampled basis that had no local violators — the
    /// node's current candidate for `f(H)` (used by experiment stop
    /// predicates; the protocol itself only trusts the audited output).
    /// Shared with the termination entry it was injected as.
    pub candidate: Option<Arc<BasisOf<P>>>,
    /// Round at which `candidate` was first set.
    pub candidate_round: Option<u64>,
    /// Local round counter (advances once per `compute`).
    pub round: u64,
    /// Number of rounds in which sampling failed.
    pub sampling_failures: u64,
}

impl<P: LpType> LowLoadState<P> {
    /// Creates the state for a node that initially holds `h0`.
    ///
    /// Nodes starting empty enter the pull phase (Algorithm 4).
    pub fn new(h0: Vec<P::Element>, maturity: u64) -> Self {
        let pull_phase = h0.is_empty();
        LowLoadState {
            h0,
            extra: Vec::new(),
            pull_phase,
            term: TermState::new(maturity),
            output: None,
            candidate: None,
            candidate_round: None,
            round: 0,
            sampling_failures: 0,
        }
    }

    /// Number of element copies currently held.
    pub fn held(&self) -> usize {
        self.h0.len() + self.extra.len()
    }

    fn element_at(&self, idx: usize) -> &P::Element {
        if idx < self.h0.len() {
            &self.h0[idx]
        } else {
            &self.extra[idx - self.h0.len()]
        }
    }
}

/// The Low-Load Clarkson protocol (Algorithm 2 + pull phase of
/// Algorithm 4 + termination of Algorithm 3).
#[derive(Clone, Debug)]
pub struct LowLoadClarkson<P: LpType> {
    problem: P,
    r: usize,
    s: usize,
    keep_prob: f64,
    relaxed_threshold: f64,
    maturity: u64,
}

impl<P: LpType> LowLoadClarkson<P> {
    /// Builds the protocol for a network of `n` nodes.
    pub fn new(problem: P, n: usize, cfg: &LowLoadConfig) -> Self {
        let d = problem.dim().max(1);
        let r = cfg.sample_size.unwrap_or(6 * d * d).max(1);
        let s = pull_count(d, n, cfg.pull_factor).max(r);
        let keep_prob = cfg
            .keep_prob
            .unwrap_or(1.0 / (1.0 + 1.0 / (2.0 * d as f64)));
        assert!((0.0..=1.0).contains(&keep_prob), "keep_prob out of range");
        let log2n = (n.max(2) as f64).log2();
        // Floor of 10 rounds: at tiny n the ceil(c*log2 n) window is too
        // short for the audit to make even one network traversal, and the
        // w.h.p. guarantees of Lemma 12 are asymptotic. The floor is
        // invisible for n >= 2^5 under the default factor.
        let maturity = ((cfg.maturity_factor * log2n).ceil().max(1.0) as u64).max(10);
        LowLoadClarkson {
            problem,
            r,
            s,
            keep_prob,
            relaxed_threshold: cfg.relaxed_threshold,
            maturity,
        }
    }

    /// The termination maturity window in rounds.
    pub fn maturity(&self) -> u64 {
        self.maturity
    }

    /// The per-round pull count `s`.
    pub fn pull_count(&self) -> usize {
        self.s
    }

    /// The sample size `r`.
    pub fn sample_size(&self) -> usize {
        self.r
    }

    /// The problem being solved.
    pub fn problem(&self) -> &P {
        &self.problem
    }

    /// Builds the initial per-node state for this protocol.
    pub fn initial_state(&self, h0: Vec<P::Element>) -> LowLoadState<P> {
        LowLoadState::new(h0, self.maturity)
    }
}

impl<P: LpType + Sync> Protocol for LowLoadClarkson<P> {
    type State = LowLoadState<P>;
    type Msg = LowLoadMsg<P>;
    type Query = LowLoadQuery;

    fn pulls(
        &self,
        _id: u32,
        state: &LowLoadState<P>,
        _rng: &mut PhaseRng,
        out: &mut Vec<LowLoadQuery>,
    ) {
        if state.pull_phase {
            out.push(LowLoadQuery::PullH0);
        } else {
            out.extend(std::iter::repeat_n(LowLoadQuery::Sample, self.s));
        }
    }

    fn serve(
        &self,
        _id: u32,
        state: &LowLoadState<P>,
        query: &LowLoadQuery,
        rng: &mut PhaseRng,
    ) -> Option<Served<LowLoadMsg<P>>> {
        match query {
            LowLoadQuery::Sample => {
                let held = state.held();
                if held == 0 {
                    return None;
                }
                let idx = rng.gen_range(0..held);
                Some(Served {
                    msg: LowLoadMsg::Elem(state.element_at(idx).clone()),
                    slot: idx as u64,
                })
            }
            LowLoadQuery::PullH0 => {
                if state.h0.is_empty() {
                    return None;
                }
                let idx = rng.gen_range(0..state.h0.len());
                Some(Served {
                    msg: LowLoadMsg::Elem(state.h0[idx].clone()),
                    slot: idx as u64,
                })
            }
        }
    }

    fn compute(
        &self,
        _id: u32,
        state: &mut LowLoadState<P>,
        responses: &mut Vec<Option<Response<LowLoadMsg<P>>>>,
        rng: &mut PhaseRng,
        pushes: &mut Vec<LowLoadMsg<P>>,
    ) -> NodeControl {
        let now = state.round;
        state.round += 1;

        // --- Termination protocol (beginning of the iteration). --------
        let (h0, extra) = (&state.h0, &state.extra);
        let step = state.term.step(&self.problem, now, |basis| {
            h0.iter()
                .chain(extra.iter())
                .any(|h| self.problem.violates(basis, h))
        });
        for entry in step.pushes {
            pushes.push(LowLoadMsg::Term(entry));
        }
        if let Some(basis) = step.output {
            state.output = Some(basis);
            return NodeControl::Halt;
        }

        if state.pull_phase {
            // Algorithm 4: keep pulling until one original element
            // arrives, then re-scatter it.
            if let Some(resp) = responses.drain(..).flatten().next() {
                if let LowLoadMsg::Elem(h) = resp.msg {
                    pushes.push(LowLoadMsg::Elem0(h));
                    state.pull_phase = false;
                }
            }
        } else {
            // --- Main Clarkson iteration (Algorithm 2). -----------------
            // Sampling reads the engine's response buffer in place;
            // pulls only ever return element payloads (never term
            // entries), so the projection is total on real responses.
            let sampled = extract_sample_from(
                responses,
                self.r,
                self.relaxed_threshold,
                rng,
                |m: &LowLoadMsg<P>| match m {
                    LowLoadMsg::Elem(e) | LowLoadMsg::Elem0(e) => Some(e),
                    LowLoadMsg::Term(_) => None,
                },
            );
            match sampled {
                SampleOutcome::Sample(sample) => {
                    let mut basis = self.problem.basis_of(&sample);
                    self.problem.canonicalize(&mut basis);
                    let mut any_violator = false;
                    for h in state.h0.iter().chain(state.extra.iter()) {
                        if self.problem.violates(&basis, h) {
                            any_violator = true;
                            pushes.push(LowLoadMsg::Elem(h.clone()));
                        }
                    }
                    if !any_violator {
                        // f(R_i) = f(R_i ∪ H(v_i)): candidate detected.
                        // One Arc serves the audit entry and the local
                        // candidate slot.
                        let basis = Arc::new(basis);
                        state.term.inject(&self.problem, now, Arc::clone(&basis));
                        if state.candidate_round.is_none() {
                            state.candidate_round = Some(now);
                        }
                        state.candidate = Some(basis);
                    }
                }
                SampleOutcome::Failed => {
                    state.sampling_failures += 1;
                }
            }
        }

        // --- Filtering (never touches H₀). ------------------------------
        let keep = self.keep_prob;
        state.extra.retain(|_| rng.gen_bool(keep));

        NodeControl::Continue
    }

    fn absorb(
        &self,
        _id: u32,
        state: &mut LowLoadState<P>,
        delivered: &mut Vec<LowLoadMsg<P>>,
        _rng: &mut PhaseRng,
    ) -> NodeControl {
        for msg in delivered.drain(..) {
            match msg {
                LowLoadMsg::Elem(h) => state.extra.push(h),
                LowLoadMsg::Elem0(h) => state.h0.push(h),
                LowLoadMsg::Term(e) => state.term.receive(e),
            }
        }
        NodeControl::Continue
    }

    fn msg_words(&self, msg: &LowLoadMsg<P>) -> usize {
        match msg {
            LowLoadMsg::Elem(_) | LowLoadMsg::Elem0(_) => 1,
            LowLoadMsg::Term(e) => e.basis.len() + 2,
        }
    }

    fn load(&self, state: &LowLoadState<P>) -> usize {
        state.held()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gossip_sim::{Network, NetworkConfig};
    use lpt::exhaustive::test_problems::Interval;
    use rand_chacha::ChaCha8Rng;

    fn scatter(elements: &[i64], n: usize, seed: u64) -> Vec<Vec<i64>> {
        use rand_chacha::rand_core::SeedableRng;
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let mut out = vec![Vec::new(); n];
        for &e in elements {
            out[rng.gen_range(0..n)].push(e);
        }
        out
    }

    fn run_interval(n: usize, elements: &[i64], seed: u64) -> Vec<Option<BasisOf<Interval>>> {
        let proto = LowLoadClarkson::new(Interval, n, &LowLoadConfig::default());
        let states: Vec<_> = scatter(elements, n, seed)
            .into_iter()
            .map(|h0| proto.initial_state(h0))
            .collect();
        let mut net = Network::new(proto, states, NetworkConfig::with_seed(seed));
        let outcome = net.run(2000);
        assert!(outcome.all_halted(), "did not terminate: {outcome:?}");
        net.states().iter().map(|s| s.output.clone()).collect()
    }

    #[test]
    fn interval_consensus_small() {
        let elements: Vec<i64> = (0..64).map(|i| (i * 37) % 101 - 50).collect();
        let lo = *elements.iter().min().unwrap();
        let hi = *elements.iter().max().unwrap();
        let outputs = run_interval(64, &elements, 11);
        for (i, out) in outputs.iter().enumerate() {
            let b = out.as_ref().expect("node output");
            assert_eq!(b.value, hi - lo, "node {i}");
        }
    }

    #[test]
    fn interval_consensus_more_elements_than_nodes() {
        let elements: Vec<i64> = (0..1000)
            .map(|i| (i * 2654435761_i64) % 777 - 388)
            .collect();
        let lo = *elements.iter().min().unwrap();
        let hi = *elements.iter().max().unwrap();
        let outputs = run_interval(128, &elements, 12);
        for out in &outputs {
            assert_eq!(out.as_ref().unwrap().value, hi - lo);
        }
    }

    #[test]
    fn pull_phase_handles_fewer_elements_than_nodes() {
        // |H| = 5 << n = 128: Algorithm 4's pull phase must bootstrap H0.
        let elements: Vec<i64> = vec![3, -7, 42, 0, 13];
        let outputs = run_interval(128, &elements, 13);
        for out in &outputs {
            assert_eq!(out.as_ref().unwrap().value, 49);
        }
    }

    #[test]
    fn single_node_network() {
        let elements: Vec<i64> = (0..40).collect();
        let outputs = run_interval(1, &elements, 14);
        assert_eq!(outputs[0].as_ref().unwrap().value, 39);
    }

    #[test]
    fn work_bound_holds() {
        let n = 512;
        let elements: Vec<i64> = (0..n as i64).map(|i| (i * 97) % 501).collect();
        let proto = LowLoadClarkson::new(Interval, n, &LowLoadConfig::default());
        let s = proto.pull_count();
        let states: Vec<_> = scatter(&elements, n, 15)
            .into_iter()
            .map(|h0| proto.initial_state(h0))
            .collect();
        let mut net = Network::new(proto, states, NetworkConfig::with_seed(15));
        let outcome = net.run(2000);
        assert!(outcome.all_halted());
        // Work per round: s pulls + |W_i| + termination pushes. Theorem 3
        // says O(d² + log n); assert a generous concrete multiple.
        let bound = (s as u64) + 30 * (n as f64).log2() as u64;
        assert!(
            net.metrics().max_node_work() <= bound,
            "max work {} > bound {bound}",
            net.metrics().max_node_work()
        );
    }

    #[test]
    fn load_stays_linear_in_h0() {
        // Lemma 9: |H(V)| = O(|H0|) thanks to filtering.
        let n = 256;
        let elements: Vec<i64> = (0..n as i64 * 2).map(|i| (i * 31) % 997).collect();
        let proto = LowLoadClarkson::new(Interval, n, &LowLoadConfig::default());
        let states: Vec<_> = scatter(&elements, n, 16)
            .into_iter()
            .map(|h0| proto.initial_state(h0))
            .collect();
        let mut net = Network::new(proto, states, NetworkConfig::with_seed(16));
        net.run(2000);
        let max_total_load = net
            .metrics()
            .rounds
            .iter()
            .map(|r| r.total_load)
            .max()
            .unwrap();
        assert!(
            max_total_load <= 6 * elements.len() as u64 + 6 * n as u64,
            "total load {max_total_load} blew past the Lemma 9 bound"
        );
    }

    #[test]
    fn deterministic_given_seed() {
        let elements: Vec<i64> = (0..200).map(|i| (i * 53) % 301).collect();
        let a = run_interval(64, &elements, 99);
        let b = run_interval(64, &elements, 99);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.as_ref().unwrap().value, y.as_ref().unwrap().value);
        }
    }
}
