//! The round engine's zero-allocation guarantee, enforced with a
//! counting global allocator: once the scratch buffers have warmed up,
//! a steady-state round under the `Perfect` fault model performs **no**
//! heap allocations for the rumor-spreading protocol.
//!
//! This file holds exactly one test: the allocation counter is
//! process-global, and a concurrently running test would pollute it.
//!
//! The rumor payload is deliberately zero-sized: with a sized payload,
//! an inbox occasionally breaks its historical occupancy record
//! (balls-in-bins maxima grow like `log t`) and must grow its
//! capacity, which is engine-inherent amortized growth, not a per-
//! round leak. The ZST rumor pins the strict zero-allocation property
//! of the engine itself; the sized-payload throughput win is measured
//! by the `round_engine` bench instead.

use gossip_sim::{
    Network, NetworkConfig, NodeControl, PhaseRng, Protocol, Response, RngSchedule, Served,
};
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

/// Counts every allocation and reallocation (frees are irrelevant: a
/// free implies a matching earlier count).
struct CountingAlloc;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

/// Push rumor spreading: every informed node pushes one token per
/// round; in saturation every node pushes every round, so each round
/// moves `n` messages through queries/compute/delivery/absorb — the
/// round engine's full data path with zero protocol-side allocation.
struct PushRumor;

#[derive(Clone)]
struct RumorState {
    informed: bool,
}

impl Protocol for PushRumor {
    type State = RumorState;
    type Msg = ();
    type Query = ();

    fn pulls(&self, _: u32, _: &RumorState, _: &mut PhaseRng, _: &mut Vec<()>) {}

    fn serve(&self, _: u32, _: &RumorState, _: &(), _: &mut PhaseRng) -> Option<Served<()>> {
        None
    }

    fn compute(
        &self,
        _: u32,
        state: &mut RumorState,
        _: &mut Vec<Option<Response<()>>>,
        _: &mut PhaseRng,
        pushes: &mut Vec<()>,
    ) -> NodeControl {
        if state.informed {
            pushes.push(());
        }
        NodeControl::Continue
    }

    fn absorb(
        &self,
        _: u32,
        state: &mut RumorState,
        delivered: &mut Vec<()>,
        _: &mut PhaseRng,
    ) -> NodeControl {
        if !delivered.is_empty() {
            state.informed = true;
        }
        NodeControl::Continue
    }
}

#[test]
fn steady_state_rounds_allocate_nothing() {
    use gossip_sim::topology::{Complete, Hypercube, IntoTopology, Topology};
    use std::sync::Arc;
    // Both schedules must hold the guarantee: V2Batched's batch sweeps
    // refill the pre-sized `push_dests` / `pull_targets` scratch rows
    // in place, and its per-round `BatchedUniform` samplers live on the
    // stack. And both on a non-complete topology: the CSR adjacency
    // arena is built once at construction and only *read* per round
    // (neighbor-bounded draws resolve through it in place).
    let topologies: [Arc<dyn Topology>; 2] = [Complete.into_topology(), Hypercube.into_topology()];
    for topology in topologies {
        for schedule in [RngSchedule::V1Compat, RngSchedule::V2Batched] {
            let n = 2048;
            let states: Vec<_> = (0..n).map(|i| RumorState { informed: i == 0 }).collect();
            let mut net = Network::new(
                PushRumor,
                states,
                // Sequential so a real (threaded) rayon would not attribute
                // its own pool allocations to the round engine.
                NetworkConfig::with_seed(7)
                    .sequential()
                    .rng_schedule(schedule)
                    .topology(Arc::clone(&topology)),
            );
            // Warm-up: saturate the rumor and let every scratch buffer
            // reach its steady-state capacity.
            for _ in 0..40 {
                net.round();
            }
            assert!(
                net.states().iter().all(|s| s.informed),
                "rumor must saturate during warm-up ({schedule:?}, {})",
                topology.name()
            );
            // The per-round metrics log is the one thing that must still grow.
            net.reserve_rounds(64);

            let before = ALLOCATIONS.load(Ordering::Relaxed);
            for _ in 0..50 {
                net.round();
            }
            let after = ALLOCATIONS.load(Ordering::Relaxed);
            assert_eq!(
                after - before,
                0,
                "steady-state rounds must perform zero heap allocations \
                 ({schedule:?}, {})",
                topology.name()
            );
        }
    }

    // The same guarantee on the *parallel* path, under a real
    // two-worker pool. Region dispatch is allocation-free by design:
    // no boxed jobs — the caller publishes a `&dyn Fn(usize)` on its
    // stack and workers claim chunk indices off a shared atomic — and
    // Linux mutex/condvar park without heap traffic. Pool construction
    // and warm-up happen outside the measured window; the window then
    // spans 50 fully-fanned-out rounds (5 parallel regions each).
    let pool = rayon::ThreadPoolBuilder::new()
        .num_threads(2)
        .build()
        .expect("pool");
    pool.install(|| {
        for schedule in [RngSchedule::V1Compat, RngSchedule::V2Batched] {
            let n = 2048;
            let states: Vec<_> = (0..n).map(|i| RumorState { informed: i == 0 }).collect();
            let mut net = Network::new(
                PushRumor,
                states,
                NetworkConfig::with_seed(7)
                    .parallel_threshold(1)
                    .rng_schedule(schedule),
            );
            for _ in 0..40 {
                net.round();
            }
            assert!(
                net.states().iter().all(|s| s.informed),
                "rumor must saturate during warm-up ({schedule:?}, parallel)"
            );
            net.reserve_rounds(64);

            let before = ALLOCATIONS.load(Ordering::Relaxed);
            for _ in 0..50 {
                net.round();
            }
            let after = ALLOCATIONS.load(Ordering::Relaxed);
            assert_eq!(
                after - before,
                0,
                "steady-state parallel rounds must perform zero heap \
                 allocations ({schedule:?}, threads=2)"
            );
        }
    });
}
