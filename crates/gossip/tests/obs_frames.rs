//! Golden-file lock on the observability wire frames.
//!
//! The `metrics` and `trace` frames are part of the lpt-server wire
//! contract: monitoring scrapes and dashboards parse them by field
//! name, so their rendering must stay byte-stable exactly like the
//! report stream pinned in `export_jsonl.rs`. This test pins one
//! representative frame of each kind against `tests/golden/obs.jsonl`
//! byte-for-byte.
//!
//! To regenerate after an *intentional* format change:
//! `UPDATE_GOLDEN=1 cargo test -p gossip-sim --test obs_frames`

use gossip_sim::export::{metrics_line, trace_line, Frame, FrameError, MetricsSnapshot};
use gossip_sim::obs::{Counter, Gauge, Phase};
use gossip_sim::{Histogram, ObsSummary};

/// A histogram with a fully determined shape: counts, percentiles, and
/// the exact max all derive from these fixed values.
fn hist(values: &[u64]) -> Histogram {
    let mut h = Histogram::new();
    for &v in values {
        h.record(v);
    }
    h
}

fn golden_metrics() -> MetricsSnapshot {
    MetricsSnapshot {
        requests: 9,
        hits: 4,
        misses: 3,
        runs: 3,
        errors: 1,
        open_sessions: 2,
        workers: 4,
        worker_panics: 1,
        queue_depth: 0,
        queue_depth_high_water: 3,
        cache_entries: 3,
        cache_bytes: 26_872,
        cache_evictions: 1,
        latency_cold_us: hist(&[250_000, 310_000, 470_000]),
        latency_hit_us: hist(&[5, 9, 12, 40]),
        latency_pending_us: Histogram::new(),
        latency_error_us: hist(&[1_800]),
        queue_wait_us: hist(&[120, 950, 4_100]),
        worker_busy_us: hist(&[240_000, 300_000, 460_000]),
        engine_runs: vec![
            ("round-sync".to_string(), 2),
            ("event-const-3".to_string(), 1),
        ],
    }
}

fn golden_trace() -> ObsSummary {
    let mut obs = ObsSummary::default();
    for (i, phase) in Phase::ALL.iter().enumerate() {
        // Distinct per-phase totals so a column swap cannot hide.
        obs.phase_nanos[phase.index()] = (i as u64 + 1) * 1_000_000;
        obs.phase_calls[phase.index()] = 64;
        obs.phase_max_nanos[phase.index()] = (i as u64 + 1) * 250_000;
    }
    obs.counters[Counter::EventPops.index()] = 512;
    obs.counters[Counter::SerializationStalls.index()] = 3;
    obs.counters[Counter::RefillRows.index()] = 96;
    obs.gauges[Gauge::HeapDepth.index()] = 41;
    obs.gauges[Gauge::PopsPerTick.index()] = 8;
    obs
}

fn render() -> String {
    let mut out = String::new();
    out.push_str(&metrics_line(&golden_metrics()));
    out.push('\n');
    // A cold traced run: full phase breakdown.
    out.push_str(&trace_line("cold", 481_733, 950, Some(&golden_trace())));
    out.push('\n');
    // A traced cache hit: no run happened, so no recorder summary.
    out.push_str(&trace_line("hit", 12, 0, None));
    out.push('\n');
    out
}

#[test]
fn obs_frames_match_the_golden_file_byte_for_byte() {
    let golden_path = concat!(env!("CARGO_MANIFEST_DIR"), "/tests/golden/obs.jsonl");
    let rendered = render();
    if std::env::var_os("UPDATE_GOLDEN").is_some() {
        std::fs::write(golden_path, &rendered).expect("write golden file");
    }
    let golden = std::fs::read_to_string(golden_path).expect("read golden file");
    assert_eq!(
        rendered, golden,
        "observability wire format drifted from tests/golden/obs.jsonl; \
         if the change is intentional, regenerate with UPDATE_GOLDEN=1"
    );
}

/// Old readers must stay safe: the report-stream parser treats both
/// observability frames as *unknown tags*, never as silent misparses.
#[test]
fn obs_frames_are_unknown_to_the_report_parser() {
    for line in render().lines() {
        match Frame::parse(line) {
            Err(FrameError::UnknownFrame(tag)) => {
                assert!(tag == "metrics" || tag == "trace", "unexpected tag {tag}");
            }
            other => panic!("expected UnknownFrame, got {other:?}"),
        }
    }
}
