//! Seq-vs-par byte-identity under *real* threads.
//!
//! The engine's contract: a run is a pure function of (protocol,
//! states, seed, schedule, fault model, topology) — the parallel path
//! may not change a single byte. Until the vendored rayon grew real
//! workers this property was vacuously true; this suite now drives it
//! against genuine interleavings across the full grid of
//! {schedule} × {topology} × {fault model} × {thread count}, with
//! repetitions per cell so scheduler-dependent divergence (a racy
//! write, a chunk boundary leak, an RNG stream shared across nodes)
//! has many chances to show up as a state or metrics mismatch.
//!
//! The protocol here is deliberately adversarial for parallelism:
//! every phase draws from its RNG (so any cross-node stream sharing
//! diverges), per-node work is variable (so chunk claiming actually
//! interleaves), serves can fail, nodes halt at data-dependent
//! rounds, and state folds message *order* into a rolling hash (so
//! even a reordering that conserves multisets is caught — delivery
//! order is part of the deterministic contract).

use gossip_sim::event::{Engine, LinkPlan};
use gossip_sim::fault::{Bernoulli, Churn, Compose, Delay};
use gossip_sim::net::{Network, NetworkConfig};
use gossip_sim::protocol::{NodeControl, Protocol, Response, Served};
use gossip_sim::rng::{PhaseRng, RngSchedule};
use gossip_sim::topology::{Complete, Hypercube, IntoTopology, RandomRegular, Ring, Torus2D};
use gossip_sim::NodeId;
use rand::Rng;
use std::sync::Arc;

/// All-phase mixing protocol (see module docs).
struct TokenMix;

#[derive(Clone, Debug, PartialEq)]
struct MixState {
    /// Rolling order-sensitive hash of everything this node saw.
    value: u64,
    pulls_made: u64,
    served: u64,
    absorbed: u64,
}

fn mix(acc: u64, x: u64) -> u64 {
    // splitmix-style avalanche: order-sensitive, collision-averse.
    let mut z = acc.wrapping_add(x).wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

impl Protocol for TokenMix {
    type State = MixState;
    type Msg = u64;
    type Query = u64;

    fn pulls(&self, _: NodeId, state: &MixState, rng: &mut PhaseRng, out: &mut Vec<u64>) {
        // Variable fan-out: 1..=3 queries, payloads from the phase RNG.
        for _ in 0..(1 + rng.gen_range(0..3)) {
            out.push(mix(state.value, rng.gen::<u64>()));
        }
    }

    fn serve(
        &self,
        id: NodeId,
        state: &MixState,
        query: &u64,
        rng: &mut PhaseRng,
    ) -> Option<Served<u64>> {
        // ~1/4 of serves fail, so the failed-pull path is exercised.
        if rng.gen_range(0..4) == 0 {
            return None;
        }
        Some(Served {
            msg: mix(state.value ^ query, u64::from(id) ^ rng.gen::<u64>()),
            slot: rng.gen_range(0..8),
        })
    }

    fn compute(
        &self,
        _: NodeId,
        state: &mut MixState,
        responses: &mut Vec<Option<Response<u64>>>,
        rng: &mut PhaseRng,
        pushes: &mut Vec<u64>,
    ) -> NodeControl {
        state.pulls_made += responses.len() as u64;
        for r in responses.iter() {
            match r {
                Some(resp) => {
                    state.value = mix(state.value, resp.msg ^ u64::from(resp.from) ^ resp.slot);
                    state.served += 1;
                }
                None => state.value = mix(state.value, 0xdead),
            }
        }
        for _ in 0..rng.gen_range(0..2) {
            pushes.push(mix(state.value, rng.gen::<u64>()));
        }
        // Data-dependent halting keeps the halted set itself a
        // determinism probe.
        if state.value % 127 == 0 {
            NodeControl::Halt
        } else {
            NodeControl::Continue
        }
    }

    fn absorb(
        &self,
        _: NodeId,
        state: &mut MixState,
        delivered: &mut Vec<u64>,
        rng: &mut PhaseRng,
    ) -> NodeControl {
        state.absorbed += delivered.len() as u64;
        // Order-sensitive fold: a reordering of deliveries diverges.
        for m in delivered.drain(..) {
            state.value = mix(state.value, m);
        }
        state.value = mix(state.value, rng.gen::<u64>() & 0xff);
        NodeControl::Continue
    }

    fn msg_words(&self, msg: &u64) -> usize {
        1 + (msg % 3) as usize
    }

    fn load(&self, s: &MixState) -> usize {
        s.value.count_ones() as usize
    }
}

fn initial_states(n: usize) -> Vec<MixState> {
    (0..n as u64)
        .map(|i| MixState {
            value: mix(0, i),
            pulls_made: 0,
            served: 0,
            absorbed: 0,
        })
        .collect()
}

/// The fault-model corners: fault-free, a wan-like lossy+laggy link
/// layer, and a flaky fleet with churn (mirroring the workload
/// presets, constructed directly so this crate stays dependency-free).
fn fault_models() -> Vec<(&'static str, Arc<dyn gossip_sim::fault::FaultModel>)> {
    vec![
        ("perfect", Arc::new(gossip_sim::fault::Perfect)),
        (
            "wan",
            Arc::new(Compose::new(vec![Arc::new(Bernoulli::new(0.05))]).and(Delay::between(1, 3))),
        ),
        (
            "flaky",
            Arc::new(
                Compose::new(vec![Arc::new(Churn::crash_recovery(0.10, 0.30))])
                    .and(Bernoulli::new(0.02)),
            ),
        ),
    ]
}

fn topologies() -> Vec<(&'static str, Arc<dyn gossip_sim::topology::Topology>)> {
    vec![
        ("complete", Complete.into_topology()),
        ("hypercube", Hypercube.into_topology()),
        ("rr8", RandomRegular(8).into_topology()),
        ("ring16", Ring(16).into_topology()),
        ("torus", Torus2D.into_topology()),
    ]
}

/// Everything observable about a run, for exact comparison.
type Trace = (
    Vec<MixState>,
    Vec<gossip_sim::metrics::RoundMetrics>,
    Vec<bool>,
);

fn run_cell(
    n: usize,
    rounds: usize,
    schedule: RngSchedule,
    fault: &Arc<dyn gossip_sim::fault::FaultModel>,
    topology: &Arc<dyn gossip_sim::topology::Topology>,
    parallel: bool,
) -> Trace {
    let cfg = NetworkConfig::with_seed(0x5eed)
        .fault(Arc::clone(fault))
        .topology(Arc::clone(topology))
        .rng_schedule(schedule);
    let cfg = if parallel {
        cfg.parallel_threshold(1)
    } else {
        cfg.sequential()
    };
    let mut net = Network::new(TokenMix, initial_states(n), cfg);
    for _ in 0..rounds {
        net.round();
    }
    let halted = (0..n).map(|i| net.is_halted(i)).collect();
    (net.states().to_vec(), net.metrics().rounds.clone(), halted)
}

/// Same observable trace, produced by the event-driven engine under a
/// given link plan (the event engine steps nodes sequentially by
/// construction, so there is no parallel knob here).
fn run_event_cell(
    n: usize,
    rounds: usize,
    schedule: RngSchedule,
    fault: &Arc<dyn gossip_sim::fault::FaultModel>,
    topology: &Arc<dyn gossip_sim::topology::Topology>,
    plan: LinkPlan,
) -> Trace {
    let cfg = NetworkConfig::with_seed(0x5eed)
        .fault(Arc::clone(fault))
        .topology(Arc::clone(topology))
        .rng_schedule(schedule)
        .engine(Engine::EventDriven(plan));
    let mut net = Network::new(TokenMix, initial_states(n), cfg);
    for _ in 0..rounds {
        net.round();
    }
    let halted = (0..n).map(|i| net.is_halted(i)).collect();
    (net.states().to_vec(), net.metrics().rounds.clone(), halted)
}

/// The full grid: {V1Compat, V2Batched} × {complete, hypercube,
/// rr8, ring16, torus} × {perfect, wan, flaky} × threads {2, 4, 8},
/// several repetitions per cell, every repetition compared
/// state-for-state and metric-for-metric against the sequential run.
#[test]
fn par_runs_are_byte_identical_to_sequential_across_the_grid() {
    let n = 1024;
    let rounds = 12;
    let reps_per_cell = 3;
    let faults = fault_models();
    let topos = topologies();
    for schedule in [RngSchedule::V1Compat, RngSchedule::V2Batched] {
        for (topo_name, topo) in &topos {
            for (fault_name, fault) in &faults {
                let baseline = run_cell(n, rounds, schedule, fault, topo, false);
                for threads in [2usize, 4, 8] {
                    let pool = rayon::ThreadPoolBuilder::new()
                        .num_threads(threads)
                        .build()
                        .expect("pool");
                    for rep in 0..reps_per_cell {
                        let par = pool.install(|| run_cell(n, rounds, schedule, fault, topo, true));
                        assert_eq!(
                            par, baseline,
                            "divergence: {schedule:?}/{topo_name}/{fault_name}/threads={threads}/rep={rep}"
                        );
                    }
                }
            }
        }
    }
}

/// Repetition hammer on the hardest cell (most threads, delay + loss,
/// neighbor-bounded draws): a race that needs a rare interleaving gets
/// many more chances here.
#[test]
fn hardest_cell_survives_many_repetitions() {
    let n = 512;
    let rounds = 10;
    let fault: Arc<dyn gossip_sim::fault::FaultModel> =
        Arc::new(Compose::new(vec![Arc::new(Bernoulli::new(0.08))]).and(Delay::between(1, 4)));
    let topo = RandomRegular(8).into_topology();
    let baseline = run_cell(n, rounds, RngSchedule::V2Batched, &fault, &topo, false);
    let pool = rayon::ThreadPoolBuilder::new()
        .num_threads(8)
        .build()
        .expect("pool");
    for rep in 0..25 {
        let par = pool.install(|| run_cell(n, rounds, RngSchedule::V2Batched, &fault, &topo, true));
        assert_eq!(par, baseline, "rep {rep} diverged");
    }
}

/// The unit-latency degeneracy at the raw-network level, across the
/// same adversarial grid the parallel suite runs: for every
/// {schedule} × {topology} × {fault model} cell, the event engine
/// under `LinkPlan::unit()` must produce the identical Trace —
/// per-node states (order-sensitive rolling hashes), per-round
/// metrics, and the halted set — as the round-synchronous engine.
#[test]
fn event_unit_matches_round_sync_across_the_grid() {
    let n = 512;
    let rounds = 10;
    let faults = fault_models();
    let topos = topologies();
    for schedule in [RngSchedule::V1Compat, RngSchedule::V2Batched] {
        for (topo_name, topo) in &topos {
            for (fault_name, fault) in &faults {
                let round_sync = run_cell(n, rounds, schedule, fault, topo, false);
                let event = run_event_cell(n, rounds, schedule, fault, topo, LinkPlan::unit());
                assert_eq!(
                    event, round_sync,
                    "engines diverged: {schedule:?}/{topo_name}/{fault_name}"
                );
            }
        }
    }
}

/// Event-driven scheduling is thread-count-invariant: the heap's
/// (time, seq) total order — not rayon's chunk claiming — decides
/// every interleaving, so running the identical heterogeneous-latency
/// cell inside 1-, 2-, and 4-thread pools must be byte-identical. The
/// plan here has real multi-tick latencies and loss, so the event
/// paths that *don't* exist under unit links are exercised too.
#[test]
fn event_scheduling_is_thread_count_invariant() {
    let n = 512;
    let rounds = 16;
    let plan = LinkPlan::Uniform {
        min: 1,
        max: 3,
        loss_ppm: 20_000,
    };
    let fault = fault_models().remove(1).1; // wan: loss + delay faults on top
    let topo = RandomRegular(8).into_topology();
    let run = || {
        run_event_cell(
            n,
            rounds,
            RngSchedule::V2Batched,
            &fault,
            &topo,
            plan.clone(),
        )
    };
    let baseline = run();
    for threads in [1usize, 2, 4] {
        let pool = rayon::ThreadPoolBuilder::new()
            .num_threads(threads)
            .build()
            .expect("pool");
        let trace = pool.install(run);
        assert_eq!(trace, baseline, "threads={threads}");
    }
}

/// The halted-set evolution (which nodes halt in which round) is also
/// identical under threads — halting feeds back into later rounds'
/// work, so a divergence would compound; checking it directly
/// localizes failures.
#[test]
fn halting_progression_is_thread_invariant() {
    let n = 768;
    let fault: Arc<dyn gossip_sim::fault::FaultModel> = Arc::new(Churn::crash_recovery(0.05, 0.5));
    let topo = Complete.into_topology();
    let per_round = |parallel: bool, pool: Option<&rayon::ThreadPool>| -> Vec<u64> {
        let body = || {
            let cfg = NetworkConfig::with_seed(99)
                .fault(Arc::clone(&fault))
                .topology(Arc::clone(&topo));
            let cfg = if parallel {
                cfg.parallel_threshold(1)
            } else {
                cfg.sequential()
            };
            let mut net = Network::new(TokenMix, initial_states(n), cfg);
            (0..15)
                .map(|_| {
                    net.round();
                    net.halted_count()
                })
                .collect()
        };
        match pool {
            Some(p) => p.install(body),
            None => body(),
        }
    };
    let seq = per_round(false, None);
    for threads in [2, 4, 8] {
        let pool = rayon::ThreadPoolBuilder::new()
            .num_threads(threads)
            .build()
            .expect("pool");
        assert_eq!(per_round(true, Some(&pool)), seq, "threads={threads}");
    }
}
