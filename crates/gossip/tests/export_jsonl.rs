//! Golden-file lock on the JSONL wire format.
//!
//! The rendered byte stream is a wire contract shared by the export
//! writers and the lpt-server protocol: exact replies from the report
//! cache rely on rendering being byte-stable across releases. This
//! test pins a representative stream (header, rounds, summary, error)
//! against `tests/golden/run.jsonl` byte-for-byte, and round-trips it
//! through the parser.
//!
//! To regenerate after an *intentional* format change:
//! `UPDATE_GOLDEN=1 cargo test -p gossip-sim --test export_jsonl`

use gossip_sim::export::{parse_frames, Frame, RunHeader, RunSummary, WireError};
use gossip_sim::metrics::RoundMetrics;

fn golden_frames() -> Vec<Frame> {
    let round = |round: u64, pulls: u64, halted: u64| RoundMetrics {
        round,
        vtime: round, // == round: stays invisible on the wire
        pulls,
        pushes: pulls / 3,
        max_node_work: 17,
        served: pulls - 2,
        msg_words: pulls * 4 + 1,
        total_load: 96,
        max_load: 12,
        halted,
        offline: round, // exercise non-zero fault columns
        dropped: 2 * round,
        delayed: round / 2,
    };
    vec![
        Frame::Header(RunHeader {
            spec: "spec-v1 workload=duo-disk elements=4096 alg=low-load n=256 seed=42 \
                   stop=full max_rounds=20000 doubling=- fault=wan topology=rr8 \
                   schedule=v2batched"
                .to_string(),
            algorithm: "low-load".to_string(),
            n: 256,
            seed: 42,
            fault: "wan".to_string(),
            topology: "rr8".to_string(),
            schedule: "v2batched".to_string(),
            engine: String::new(), // default engine: stays off the wire
        }),
        Frame::Round(round(0, 4096, 0)),
        Frame::Round(round(1, 4099, 7)),
        Frame::Round(round(2, 4080, 256)),
        Frame::Summary(RunSummary {
            rounds: 3,
            all_halted: true,
            stop_cause: "all-halted".to_string(),
            total_pulls: 12275,
            total_pushes: 4090,
            total_msg_words: 49103,
            dropped: 6,
            delayed: 1,
            offline_node_rounds: 3,
            first_candidate_round: Some(1),
            consensus: Some("med:r2=100.0".to_string()),
            degradation: gossip_sim::metrics::Degradation::default(),
        }),
        Frame::Error(WireError {
            code: 205,
            kind: "unknown-scenario".to_string(),
            detail: "no fault scenario preset named \"solar-flare\"".to_string(),
        }),
    ]
}

fn render(frames: &[Frame]) -> String {
    frames
        .iter()
        .map(|f| f.to_line() + "\n")
        .collect::<String>()
}

#[test]
fn rendering_matches_the_golden_file_byte_for_byte() {
    let golden_path = concat!(env!("CARGO_MANIFEST_DIR"), "/tests/golden/run.jsonl");
    let rendered = render(&golden_frames());
    if std::env::var_os("UPDATE_GOLDEN").is_some() {
        std::fs::write(golden_path, &rendered).expect("write golden file");
    }
    let golden = std::fs::read_to_string(golden_path).expect("read golden file");
    assert_eq!(
        rendered, golden,
        "JSONL wire format drifted from tests/golden/run.jsonl; if the \
         change is intentional, regenerate with UPDATE_GOLDEN=1"
    );
}

#[test]
fn golden_stream_round_trips_through_the_parser() {
    let frames = golden_frames();
    let reparsed = parse_frames(&render(&frames)).expect("golden stream parses");
    assert_eq!(reparsed, frames);
}

#[test]
fn parser_rejects_drifted_streams_with_positions() {
    let mut lines: Vec<String> = render(&golden_frames())
        .lines()
        .map(str::to_string)
        .collect();
    lines[2] = "{\"frame\":\"rounds\"}".to_string(); // unknown tag
    let err = parse_frames(&lines.join("\n")).unwrap_err();
    assert_eq!(err.0, 3, "error carries the 1-based line number");
}
