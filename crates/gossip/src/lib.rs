//! # `gossip-sim` — synchronous uniform-gossip network simulator
//!
//! The network model of the paper (Section 1.2): a fixed set of `n`
//! anonymous nodes operating in synchronous rounds. In each round a node
//! may execute any number of *push* operations (send a message to a node
//! chosen uniformly at random) and *pull* operations (ask a node chosen
//! uniformly at random to send it a message); messages sent or requested
//! in round `i` arrive at the beginning of round `i + 1`. The number of
//! push and pull operations a node executes in a round is its
//! *communication work*.
//!
//! ## Round structure
//!
//! Following the paper's accounting convention ("for simplicity we just
//! assume that an iteration of the repeat loop takes one round", Section
//! 2), one simulated round corresponds to one iteration of a distributed
//! algorithm's main loop and is split into four phases:
//!
//! 1. **pull** — every node issues pull requests ([`Protocol::pulls`]);
//! 2. **serve** — each request is served by a uniformly random node
//!    against its start-of-round state ([`Protocol::serve`]);
//! 3. **compute** — every node processes its pull responses, updates its
//!    state, and issues pushes ([`Protocol::compute`]);
//! 4. **absorb** — pushed messages are delivered to uniformly random
//!    nodes, which absorb them ([`Protocol::absorb`]).
//!
//! On a real network each such round costs a small constant number of
//! communication rounds; the paper's round counts (and ours) count
//! iterations. Work is counted exactly: one unit per push and per pull.
//!
//! ## Fault injection
//!
//! The paper's network is *perfect*: no loss, no downtime, fixed
//! one-round latency. The [`fault`] module makes each of those
//! assumptions a pluggable [`FaultModel`] — Bernoulli message loss,
//! crash / crash-recovery churn, bounded random delivery delay, or any
//! composition — installed via [`NetworkConfig::fault`]. Fault
//! decisions draw from their own seed-derived streams, so a simulation
//! remains a deterministic function of (seed, protocol, fault model)
//! and stays bit-identical across sequential and parallel stepping.
//! Injected faults are accounted per round in [`RoundMetrics`]
//! (`offline`, `dropped`, `delayed`).
//!
//! ## Topologies
//!
//! The paper's draws are uniform over **all** nodes — the complete
//! graph. The [`topology`] module makes the neighbor relation a
//! pluggable [`Topology`] (structured [`topology::Hypercube`]
//! overlays, seeded [`topology::RandomRegular`] graphs,
//! [`topology::Ring`]s, [`topology::Torus2D`] grids), installed via
//! [`NetworkConfig::topology`]: every pull target and push destination
//! is then drawn uniformly from the drawing node's neighbor set. The
//! adjacency is built once per run into a flat CSR arena, so
//! steady-state rounds stay zero-alloc; the default
//! [`topology::Complete`] takes the pre-topology draw path and is
//! bit-identical to the historical engine under both schedules.
//!
//! ## Determinism and parallelism
//!
//! Every (round, node, phase) triple gets its own counter-derived
//! [`rand_chacha::ChaCha8Rng`] stream (see [`rng::derive_rng`]), so a
//! simulation's outcome depends only on the master seed — not on thread
//! scheduling. Rounds are stepped with Rayon data-parallelism over nodes
//! when the network is large enough to benefit; results are bit-identical
//! in sequential and parallel mode (tested).
//!
//! The engine's own uniform destination draws are versioned by
//! [`RngSchedule`] (installed via [`NetworkConfig::rng_schedule`]):
//! `V1Compat` reproduces the original per-node streams bit-for-bit,
//! while the default `V2Batched` draws them from one block-batched
//! stream per (seed, round, phase) through a Lemire rejection sampler
//! ([`rng::BatchedUniform`]) — different bitstreams, same protocol
//! outcomes, each individually deterministic.
//!
//! ## Memory model
//!
//! All per-round buffers live in a `scratch::RoundScratch` owned by
//! the [`Network`] and are cleared and refilled in place, and message
//! payloads are moved (never cloned) to their single destination: in
//! steady state a fault-free round performs zero heap allocations. See
//! the [`scratch`] module docs for why buffer reuse cannot perturb the
//! seed-derived RNG streams.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod event;
pub mod export;
pub mod fault;
pub mod metrics;
pub mod net;
pub mod obs;
pub mod protocol;
pub mod rng;
pub mod scratch;
pub mod topology;

pub use event::{Engine, EventQueue, Link, LinkPlan};
pub use export::{ErrorCode, Frame, RunHeader, RunSummary, WireError};
pub use fault::{
    Asymmetric, Bernoulli, Byzantine, Churn, Compose, Delay, FaultModel, IntoFaultModel, Partition,
    Perfect, Regional,
};
pub use metrics::{Degradation, Metrics, RoundMetrics};
pub use net::{Network, NetworkConfig, RunOutcome};
pub use obs::{FlightRecorder, Histogram, NoopRecorder, ObsSummary, Recorder};
pub use protocol::{NodeControl, Protocol, Response, Served};
pub use rng::{BatchedSampler, BatchedUniform, PhaseRng, RngSchedule};
pub use topology::{Adjacency, IntoTopology, Topology};

/// Identifier of a node within one simulated network (dense `0..n`).
///
/// Node identifiers exist only at the simulator level (to index state);
/// the protocols themselves never read them except to seed per-node
/// randomness, preserving the paper's anonymous-nodes assumption.
pub type NodeId = u32;
