//! Serde-free JSON-lines (JSONL) export and wire format.
//!
//! One run is rendered as a stream of self-describing *frames*, one
//! JSON object per line:
//!
//! ```text
//! {"frame":"header", ...}    exactly once, first
//! {"frame":"round",  ...}    one per simulated round, in order
//! {"frame":"summary",...}    exactly once, last
//! ```
//!
//! plus a typed error frame (`{"frame":"error","code":...,"kind":...}`)
//! that replaces the whole stream when a run could not be performed.
//! The format is the export target for the sweep benches **and** the
//! wire format of the `lpt-server` session protocol: because every run
//! is a pure function of its spec (see the crate docs on determinism),
//! two renders of the same spec are byte-identical, which is what makes
//! a report cache exact.
//!
//! Everything here is hand-rolled on `std` only — no serde, no external
//! dependencies: [`Json`] is a minimal recursive-descent JSON parser
//! (with a depth limit so adversarial input cannot overflow the stack),
//! [`ObjBuilder`] a field-ordered object writer, and [`Frame`] the
//! typed layer over both. The field order of every frame is fixed and
//! covered by golden tests; adding a field is a forward-compatible
//! change (readers ignore unknown fields), reordering or renaming one
//! is not.

use crate::metrics::{Degradation, RoundMetrics};
use crate::obs::{Counter, Gauge, Histogram, ObsSummary, Phase};
use std::fmt;
use std::io::{self, Write};

// ---------------------------------------------------------------------------
// Minimal JSON value + parser
// ---------------------------------------------------------------------------

/// Maximum nesting depth [`Json::parse`] accepts. Wire frames are flat
/// objects; anything deeper than this is hostile or corrupt.
pub const MAX_JSON_DEPTH: usize = 32;

/// A parsed JSON value.
///
/// Integers keep full 64-bit precision (`U64` / `I64` variants) instead
/// of being forced through `f64`, because frame counters and seeds are
/// 64-bit and must round-trip exactly.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A non-negative integer without fraction or exponent.
    U64(u64),
    /// A negative integer without fraction or exponent.
    I64(i64),
    /// Any other number.
    F64(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, in source order (duplicate keys keep the last value
    /// on lookup, like most parsers).
    Obj(Vec<(String, Json)>),
}

/// Where and why [`Json::parse`] rejected its input.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct JsonError {
    /// Byte offset of the offending input.
    pub pos: usize,
    /// What went wrong.
    pub msg: &'static str,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid JSON at byte {}: {}", self.pos, self.msg)
    }
}

impl std::error::Error for JsonError {}

impl Json {
    /// Parses one JSON value from `s` (the whole string must be
    /// consumed, bar trailing whitespace).
    pub fn parse(s: &str) -> Result<Json, JsonError> {
        let mut p = Parser {
            bytes: s.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let v = p.value(0)?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(p.err("trailing characters"));
        }
        Ok(v)
    }

    /// Object field lookup (last occurrence wins); `None` on non-objects.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().rev().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as a `u64`, if it is a non-negative integer.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::U64(v) => Some(*v),
            _ => None,
        }
    }

    /// The value as an `f64` (integers widen losslessly where possible).
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::U64(v) => Some(*v as f64),
            Json::I64(v) => Some(*v as f64),
            Json::F64(v) => Some(*v),
            _ => None,
        }
    }

    /// The value as a string slice.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as a bool.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Whether the value is `null`.
    pub fn is_null(&self) -> bool {
        matches!(self, Json::Null)
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, msg: &'static str) -> JsonError {
        JsonError { pos: self.pos, msg }
    }

    fn skip_ws(&mut self) {
        while let Some(b) = self.bytes.get(self.pos) {
            match b {
                b' ' | b'\t' | b'\n' | b'\r' => self.pos += 1,
                _ => break,
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn eat(&mut self, lit: &str, msg: &'static str) -> Result<(), JsonError> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(())
        } else {
            Err(self.err(msg))
        }
    }

    fn value(&mut self, depth: usize) -> Result<Json, JsonError> {
        if depth > MAX_JSON_DEPTH {
            return Err(self.err("nesting too deep"));
        }
        match self.peek() {
            Some(b'n') => self.eat("null", "expected null").map(|()| Json::Null),
            Some(b't') => self.eat("true", "expected true").map(|()| Json::Bool(true)),
            Some(b'f') => self
                .eat("false", "expected false")
                .map(|()| Json::Bool(false)),
            Some(b'"') => self.string().map(Json::Str),
            Some(b'[') => self.array(depth),
            Some(b'{') => self.object(depth),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn array(&mut self, depth: usize) -> Result<Json, JsonError> {
        self.pos += 1; // '['
        let mut out = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(out));
        }
        loop {
            self.skip_ws();
            out.push(self.value(depth + 1)?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(out));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn object(&mut self, depth: usize) -> Result<Json, JsonError> {
        self.pos += 1; // '{'
        let mut out = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(out));
        }
        loop {
            self.skip_ws();
            if self.peek() != Some(b'"') {
                return Err(self.err("expected object key"));
            }
            let key = self.string()?;
            self.skip_ws();
            if self.peek() != Some(b':') {
                return Err(self.err("expected ':'"));
            }
            self.pos += 1;
            self.skip_ws();
            let val = self.value(depth + 1)?;
            out.push((key, val));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(out));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.pos += 1; // '"'
        let mut out = String::new();
        loop {
            let b = self.peek().ok_or_else(|| self.err("unterminated string"))?;
            match b {
                b'"' => {
                    self.pos += 1;
                    return Ok(out);
                }
                b'\\' => {
                    self.pos += 1;
                    let esc = self.peek().ok_or_else(|| self.err("unterminated escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{0008}'),
                        b'f' => out.push('\u{000C}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hi = self.hex4()?;
                            let c = if (0xD800..0xDC00).contains(&hi) {
                                // Surrogate pair: a second \uXXXX must follow.
                                self.eat("\\u", "expected low surrogate")?;
                                let lo = self.hex4()?;
                                if !(0xDC00..0xE000).contains(&lo) {
                                    return Err(self.err("invalid low surrogate"));
                                }
                                let code = 0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00);
                                char::from_u32(code)
                            } else {
                                char::from_u32(hi)
                            };
                            out.push(c.ok_or_else(|| self.err("invalid unicode escape"))?);
                        }
                        _ => return Err(self.err("invalid escape")),
                    }
                }
                0x00..=0x1F => return Err(self.err("raw control character in string")),
                _ => {
                    // Multi-byte UTF-8 is passed through verbatim; the
                    // input is a &str so it is already valid.
                    let start = self.pos;
                    self.pos += 1;
                    while self.pos < self.bytes.len() && self.bytes[self.pos] & 0xC0 == 0x80 {
                        self.pos += 1;
                    }
                    out.push_str(
                        std::str::from_utf8(&self.bytes[start..self.pos])
                            .map_err(|_| self.err("invalid UTF-8"))?,
                    );
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, JsonError> {
        let mut v = 0u32;
        for _ in 0..4 {
            let b = self
                .peek()
                .ok_or_else(|| self.err("truncated \\u escape"))?;
            let d = (b as char)
                .to_digit(16)
                .ok_or_else(|| self.err("invalid hex digit"))?;
            v = v * 16 + d;
            self.pos += 1;
        }
        Ok(v)
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let tok = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii number token");
        if !float {
            if let Ok(v) = tok.parse::<u64>() {
                return Ok(Json::U64(v));
            }
            if let Ok(v) = tok.parse::<i64>() {
                return Ok(Json::I64(v));
            }
        }
        match tok.parse::<f64>() {
            Ok(v) if v.is_finite() => Ok(Json::F64(v)),
            _ => Err(JsonError {
                pos: start,
                msg: "invalid number",
            }),
        }
    }
}

// ---------------------------------------------------------------------------
// JSON writing
// ---------------------------------------------------------------------------

/// Appends `s` to `out` as a JSON string literal (quoted, escaped).
pub fn write_json_str(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Field-ordered JSON object writer: fields appear exactly in the order
/// they are pushed, which is what makes rendered frames byte-stable.
#[derive(Debug)]
pub struct ObjBuilder {
    buf: String,
    first: bool,
}

impl Default for ObjBuilder {
    fn default() -> Self {
        Self::new()
    }
}

impl ObjBuilder {
    /// Starts an empty object.
    pub fn new() -> Self {
        ObjBuilder {
            buf: String::from("{"),
            first: true,
        }
    }

    fn key(&mut self, k: &str) {
        if !self.first {
            self.buf.push(',');
        }
        self.first = false;
        write_json_str(&mut self.buf, k);
        self.buf.push(':');
    }

    /// Adds a string field.
    #[must_use]
    pub fn str(mut self, k: &str, v: &str) -> Self {
        self.key(k);
        write_json_str(&mut self.buf, v);
        self
    }

    /// Adds an unsigned integer field.
    #[must_use]
    pub fn u64(mut self, k: &str, v: u64) -> Self {
        self.key(k);
        self.buf.push_str(&v.to_string());
        self
    }

    /// Adds a float field (non-finite values render as `null` — JSON
    /// has no NaN/∞).
    #[must_use]
    pub fn f64(mut self, k: &str, v: f64) -> Self {
        self.key(k);
        if v.is_finite() {
            self.buf.push_str(&format!("{v:?}"));
        } else {
            self.buf.push_str("null");
        }
        self
    }

    /// Adds a bool field.
    #[must_use]
    pub fn bool(mut self, k: &str, v: bool) -> Self {
        self.key(k);
        self.buf.push_str(if v { "true" } else { "false" });
        self
    }

    /// Adds an optional unsigned integer field (`None` renders `null`).
    #[must_use]
    pub fn opt_u64(mut self, k: &str, v: Option<u64>) -> Self {
        self.key(k);
        match v {
            Some(v) => self.buf.push_str(&v.to_string()),
            None => self.buf.push_str("null"),
        }
        self
    }

    /// Adds an optional string field (`None` renders `null`).
    #[must_use]
    pub fn opt_str(mut self, k: &str, v: Option<&str>) -> Self {
        self.key(k);
        match v {
            Some(v) => write_json_str(&mut self.buf, v),
            None => self.buf.push_str("null"),
        }
        self
    }

    /// Closes the object and returns it (no trailing newline).
    pub fn finish(mut self) -> String {
        self.buf.push('}');
        self.buf
    }
}

// ---------------------------------------------------------------------------
// Typed error codes
// ---------------------------------------------------------------------------

/// A stable machine-readable identity for an error type, in the
/// `specs/structured-errors` style: a numeric `code` and a kebab-case
/// `kind` that are part of the wire contract and never renumbered, plus
/// the human `Display` text as free-form detail.
///
/// Code ranges are partitioned per layer: `1xx` driver errors
/// (`lpt_gossip::DriverError`), `2xx` server/protocol errors
/// (`lpt_server::ServerError`). `0` is reserved (never a valid code).
pub trait ErrorCode: std::error::Error {
    /// Stable numeric code (never renumbered once shipped).
    fn code(&self) -> u16;
    /// Stable kebab-case kind tag (never renamed once shipped).
    fn kind(&self) -> &'static str;
}

/// A typed error frame as it appears on the wire.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct WireError {
    /// Stable numeric code (see [`ErrorCode::code`]).
    pub code: u16,
    /// Stable kebab-case kind tag.
    pub kind: String,
    /// Human-readable detail (not part of the stable contract).
    pub detail: String,
}

impl WireError {
    /// Renders any [`ErrorCode`] error into its wire frame payload.
    pub fn from_error<E: ErrorCode + ?Sized>(err: &E) -> WireError {
        WireError {
            code: err.code(),
            kind: err.kind().to_string(),
            detail: err.to_string(),
        }
    }
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{} {}] {}", self.code, self.kind, self.detail)
    }
}

impl std::error::Error for WireError {}

// ---------------------------------------------------------------------------
// Frames
// ---------------------------------------------------------------------------

/// The header frame: identifies the run the following frames describe.
#[derive(Clone, Debug, PartialEq, Eq, Default)]
pub struct RunHeader {
    /// Canonical spec string of the run (see `lpt_gossip::RunSpecKey`),
    /// or a bench-defined identifier for sweep exports.
    pub spec: String,
    /// Algorithm display name.
    pub algorithm: String,
    /// Network size.
    pub n: u64,
    /// Master seed.
    pub seed: u64,
    /// Fault model / scenario name.
    pub fault: String,
    /// Topology name.
    pub topology: String,
    /// RNG schedule name.
    pub schedule: String,
    /// Execution engine name when the run used a non-default engine
    /// (see [`crate::event::Engine::name`]); empty for the
    /// round-synchronous default, whose header frames then stay
    /// byte-identical to pre-engine builds.
    pub engine: String,
}

/// The summary frame: run-level outcome written after the last round
/// frame.
#[derive(Clone, Debug, PartialEq, Default)]
pub struct RunSummary {
    /// Rounds simulated.
    pub rounds: u64,
    /// Whether every node output and halted.
    pub all_halted: bool,
    /// Stop cause display name (`all-halted`, `round-budget`, ...).
    pub stop_cause: String,
    /// Total pull operations across the run.
    pub total_pulls: u64,
    /// Total push operations across the run.
    pub total_pushes: u64,
    /// Total message volume in `O(log n)`-bit words.
    pub total_msg_words: u64,
    /// Messages lost to the fault model.
    pub dropped: u64,
    /// Pushes the fault model delivered late.
    pub delayed: u64,
    /// Node-rounds lost to downtime.
    pub offline_node_rounds: u64,
    /// Earliest round at which any node held a candidate solution.
    pub first_candidate_round: Option<u64>,
    /// Problem-rendered consensus output, when the run reached one
    /// (e.g. `med:r2=100.0` or `hs:3:[1,5,9]`).
    pub consensus: Option<String>,
    /// Graceful-degradation accounting under adversarial fault models.
    ///
    /// **Wire compatibility:** each field is rendered *only when it is
    /// non-zero* (and parsed leniently, defaulting to zero), so a
    /// summary with no degradation — every fault-free and i.i.d.-faulty
    /// run — is byte-identical to pre-degradation builds and historical
    /// cached replies stay exact.
    pub degradation: Degradation,
}

impl RunSummary {
    /// Pre-fills the communication totals from a run's
    /// [`Metrics`](crate::metrics::Metrics),
    /// leaving the outcome fields (`rounds`, `stop_cause`, consensus,
    /// ...) at their defaults for the caller to set.
    pub fn from_metrics(metrics: &crate::metrics::Metrics) -> RunSummary {
        RunSummary {
            total_pulls: metrics.total_pulls(),
            total_pushes: metrics.total_pushes(),
            total_msg_words: metrics.total_msg_words(),
            dropped: metrics.total_dropped(),
            delayed: metrics.total_delayed(),
            offline_node_rounds: metrics.offline_node_rounds(),
            degradation: metrics.degradation,
            ..RunSummary::default()
        }
    }
}

/// One line of the JSONL stream.
#[derive(Clone, Debug, PartialEq)]
pub enum Frame {
    /// `{"frame":"header",...}` — run identity, exactly once, first.
    Header(RunHeader),
    /// `{"frame":"round",...}` — one simulated round's metrics.
    Round(RoundMetrics),
    /// `{"frame":"summary",...}` — run outcome, exactly once, last.
    Summary(RunSummary),
    /// `{"frame":"error",...}` — typed failure; terminates the stream.
    Error(WireError),
}

/// Why a line could not be decoded into a [`Frame`].
#[derive(Clone, Debug, PartialEq)]
pub enum FrameError {
    /// The line is not valid JSON.
    Json(JsonError),
    /// The line is valid JSON but not an object.
    NotAnObject,
    /// The object has no `"frame"` string tag.
    MissingTag,
    /// The `"frame"` tag names a frame kind this reader doesn't know.
    /// Carries the tag so protocol extensions (e.g. the server's
    /// `stats` frame) can be routed by the caller.
    UnknownFrame(String),
    /// A known frame is missing a field or has one of the wrong type.
    Field {
        /// The frame kind being decoded.
        frame: &'static str,
        /// The offending field.
        field: &'static str,
    },
}

impl fmt::Display for FrameError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FrameError::Json(e) => write!(f, "{e}"),
            FrameError::NotAnObject => write!(f, "frame line is not a JSON object"),
            FrameError::MissingTag => write!(f, "frame object has no \"frame\" tag"),
            FrameError::UnknownFrame(tag) => write!(f, "unknown frame kind {tag:?}"),
            FrameError::Field { frame, field } => {
                write!(f, "{frame} frame: missing or mistyped field {field:?}")
            }
        }
    }
}

impl std::error::Error for FrameError {}

fn need_u64(obj: &Json, frame: &'static str, field: &'static str) -> Result<u64, FrameError> {
    obj.get(field)
        .and_then(Json::as_u64)
        .ok_or(FrameError::Field { frame, field })
}

fn need_str(obj: &Json, frame: &'static str, field: &'static str) -> Result<String, FrameError> {
    obj.get(field)
        .and_then(Json::as_str)
        .map(str::to_string)
        .ok_or(FrameError::Field { frame, field })
}

fn opt_u64(
    obj: &Json,
    frame: &'static str,
    field: &'static str,
) -> Result<Option<u64>, FrameError> {
    match obj.get(field) {
        None => Ok(None),
        Some(v) if v.is_null() => Ok(None),
        Some(v) => v
            .as_u64()
            .map(Some)
            .ok_or(FrameError::Field { frame, field }),
    }
}

impl Frame {
    /// Renders the frame as one JSON line (no trailing newline). Field
    /// order is fixed; see the golden tests.
    pub fn to_line(&self) -> String {
        match self {
            Frame::Header(h) => {
                let mut b = ObjBuilder::new()
                    .str("frame", "header")
                    .str("spec", &h.spec)
                    .str("algorithm", &h.algorithm)
                    .u64("n", h.n)
                    .u64("seed", h.seed)
                    .str("fault", &h.fault)
                    .str("topology", &h.topology)
                    .str("schedule", &h.schedule);
                // The engine tag rides the wire only for non-default
                // engines: every historical stream was round-sync, and
                // the server's exact cache pins reply bytes.
                if !h.engine.is_empty() {
                    b = b.str("engine", &h.engine);
                }
                b.finish()
            }
            Frame::Round(r) => {
                let mut b = ObjBuilder::new()
                    .str("frame", "round")
                    .u64("round", r.round);
                // Virtual time renders only when it diverges from the
                // row index (event engine under non-unit latency), so
                // round-sync streams keep their historical bytes.
                if r.vtime != r.round {
                    b = b.u64("vtime", r.vtime);
                }
                b.u64("pulls", r.pulls)
                    .u64("pushes", r.pushes)
                    .u64("max_node_work", r.max_node_work)
                    .u64("served", r.served)
                    .u64("msg_words", r.msg_words)
                    .u64("total_load", r.total_load)
                    .u64("max_load", r.max_load)
                    .u64("halted", r.halted)
                    .u64("offline", r.offline)
                    .u64("dropped", r.dropped)
                    .u64("delayed", r.delayed)
                    .finish()
            }
            Frame::Summary(s) => {
                let mut b = ObjBuilder::new()
                    .str("frame", "summary")
                    .u64("rounds", s.rounds)
                    .bool("all_halted", s.all_halted)
                    .str("stop_cause", &s.stop_cause)
                    .u64("total_pulls", s.total_pulls)
                    .u64("total_pushes", s.total_pushes)
                    .u64("total_msg_words", s.total_msg_words)
                    .u64("dropped", s.dropped)
                    .u64("delayed", s.delayed)
                    .u64("offline_node_rounds", s.offline_node_rounds)
                    .opt_u64("first_candidate_round", s.first_candidate_round)
                    .opt_str("consensus", s.consensus.as_deref());
                // Degradation fields render only when non-zero so every
                // non-degraded summary stays byte-identical to
                // pre-degradation builds (the server's exact report
                // cache and BENCH_server.json both pin reply bytes).
                let d = &s.degradation;
                if d.rounds_over_budget != 0 {
                    b = b.u64("rounds_over_budget", d.rounds_over_budget);
                }
                if d.partitioned_rounds != 0 {
                    b = b.u64("partitioned_rounds", d.partitioned_rounds);
                }
                if d.unhealed_partition {
                    b = b.bool("unhealed_partition", true);
                }
                if d.byzantine_exposures != 0 {
                    b = b.u64("byzantine_exposures", d.byzantine_exposures);
                }
                if d.link_cuts != 0 {
                    b = b.u64("link_cuts", d.link_cuts);
                }
                b.finish()
            }
            Frame::Error(e) => ObjBuilder::new()
                .str("frame", "error")
                .u64("code", u64::from(e.code))
                .str("kind", &e.kind)
                .str("detail", &e.detail)
                .finish(),
        }
    }

    /// Decodes one JSONL line (unknown fields are ignored).
    pub fn parse(line: &str) -> Result<Frame, FrameError> {
        let v = Json::parse(line).map_err(FrameError::Json)?;
        if !matches!(v, Json::Obj(_)) {
            return Err(FrameError::NotAnObject);
        }
        let tag = v
            .get("frame")
            .and_then(Json::as_str)
            .ok_or(FrameError::MissingTag)?;
        match tag {
            "header" => Ok(Frame::Header(RunHeader {
                spec: need_str(&v, "header", "spec")?,
                algorithm: need_str(&v, "header", "algorithm")?,
                n: need_u64(&v, "header", "n")?,
                seed: need_u64(&v, "header", "seed")?,
                fault: need_str(&v, "header", "fault")?,
                topology: need_str(&v, "header", "topology")?,
                schedule: need_str(&v, "header", "schedule")?,
                engine: v
                    .get("engine")
                    .and_then(Json::as_str)
                    .unwrap_or_default()
                    .to_string(),
            })),
            "round" => {
                let round = need_u64(&v, "round", "round")?;
                Ok(Frame::Round(RoundMetrics {
                    round,
                    // Absent on historical (and all round-sync) frames,
                    // where virtual time is the round index.
                    vtime: opt_u64(&v, "round", "vtime")?.unwrap_or(round),
                    pulls: need_u64(&v, "round", "pulls")?,
                    pushes: need_u64(&v, "round", "pushes")?,
                    max_node_work: need_u64(&v, "round", "max_node_work")?,
                    served: need_u64(&v, "round", "served")?,
                    msg_words: need_u64(&v, "round", "msg_words")?,
                    total_load: need_u64(&v, "round", "total_load")?,
                    max_load: need_u64(&v, "round", "max_load")?,
                    halted: need_u64(&v, "round", "halted")?,
                    offline: need_u64(&v, "round", "offline")?,
                    dropped: need_u64(&v, "round", "dropped")?,
                    delayed: need_u64(&v, "round", "delayed")?,
                }))
            }
            "summary" => Ok(Frame::Summary(RunSummary {
                rounds: need_u64(&v, "summary", "rounds")?,
                all_halted: v.get("all_halted").and_then(Json::as_bool).ok_or(
                    FrameError::Field {
                        frame: "summary",
                        field: "all_halted",
                    },
                )?,
                stop_cause: need_str(&v, "summary", "stop_cause")?,
                total_pulls: need_u64(&v, "summary", "total_pulls")?,
                total_pushes: need_u64(&v, "summary", "total_pushes")?,
                total_msg_words: need_u64(&v, "summary", "total_msg_words")?,
                dropped: need_u64(&v, "summary", "dropped")?,
                delayed: need_u64(&v, "summary", "delayed")?,
                offline_node_rounds: need_u64(&v, "summary", "offline_node_rounds")?,
                first_candidate_round: opt_u64(&v, "summary", "first_candidate_round")?,
                consensus: match v.get("consensus") {
                    None => None,
                    Some(c) if c.is_null() => None,
                    Some(c) => Some(c.as_str().map(str::to_string).ok_or(FrameError::Field {
                        frame: "summary",
                        field: "consensus",
                    })?),
                },
                // Lenient: absent fields are zero (pre-degradation
                // writers and non-degraded summaries omit them).
                degradation: Degradation {
                    rounds_over_budget: opt_u64(&v, "summary", "rounds_over_budget")?.unwrap_or(0),
                    partitioned_rounds: opt_u64(&v, "summary", "partitioned_rounds")?.unwrap_or(0),
                    unhealed_partition: v
                        .get("unhealed_partition")
                        .and_then(Json::as_bool)
                        .unwrap_or(false),
                    byzantine_exposures: opt_u64(&v, "summary", "byzantine_exposures")?
                        .unwrap_or(0),
                    link_cuts: opt_u64(&v, "summary", "link_cuts")?.unwrap_or(0),
                },
            })),
            "error" => {
                let code = need_u64(&v, "error", "code")?;
                Ok(Frame::Error(WireError {
                    code: u16::try_from(code).map_err(|_| FrameError::Field {
                        frame: "error",
                        field: "code",
                    })?,
                    kind: need_str(&v, "error", "kind")?,
                    detail: need_str(&v, "error", "detail")?,
                }))
            }
            other => Err(FrameError::UnknownFrame(other.to_string())),
        }
    }
}

/// Parses a whole JSONL document (blank lines skipped). On failure
/// returns the 1-based line number alongside the decode error.
pub fn parse_frames(text: &str) -> Result<Vec<Frame>, (usize, FrameError)> {
    let mut out = Vec::new();
    for (i, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        out.push(Frame::parse(line).map_err(|e| (i + 1, e))?);
    }
    Ok(out)
}

/// Streaming JSONL frame writer over any [`Write`].
#[derive(Debug)]
pub struct JsonlWriter<W: Write> {
    out: W,
}

impl<W: Write> JsonlWriter<W> {
    /// Wraps a sink.
    pub fn new(out: W) -> Self {
        JsonlWriter { out }
    }

    /// Writes one frame as one line.
    pub fn write_frame(&mut self, frame: &Frame) -> io::Result<()> {
        self.out.write_all(frame.to_line().as_bytes())?;
        self.out.write_all(b"\n")
    }

    /// Writes a complete run stream: header, one round frame per entry
    /// of `rounds`, then the summary.
    pub fn write_run(
        &mut self,
        header: &RunHeader,
        rounds: &[RoundMetrics],
        summary: &RunSummary,
    ) -> io::Result<()> {
        self.write_frame(&Frame::Header(header.clone()))?;
        for r in rounds {
            self.write_frame(&Frame::Round(*r))?;
        }
        self.write_frame(&Frame::Summary(summary.clone()))
    }

    /// Flushes and returns the underlying sink.
    pub fn into_inner(mut self) -> io::Result<W> {
        self.out.flush()?;
        Ok(self.out)
    }
}

// ---------------------------------------------------------------------------
// Observability frames: `metrics` and `trace`
// ---------------------------------------------------------------------------
//
// Both are *observational* protocol extensions: a `metrics` line is a
// point-in-time server snapshot (never part of a run stream), and a
// `trace` line is appended after a solve reply's `summary` only when
// the request opted in — never stored in the report cache, so every
// historical reply stays byte-exact. Readers that predate them route
// the tags through `FrameError::UnknownFrame`, like the `stats` frame.

/// Normalizes a name into a Prometheus-style flat metric token:
/// lowercased, with every character outside `[a-z0-9_]` replaced by
/// `_` (so the engine name `event-uniform-1-4` becomes
/// `event_uniform_1_4`).
pub fn sanitize_metric_name(name: &str) -> String {
    name.chars()
        .map(|c| match c.to_ascii_lowercase() {
            c @ ('a'..='z' | '0'..='9' | '_') => c,
            _ => '_',
        })
        .collect()
}

/// Appends one histogram's summary fields under `prefix`:
/// `<prefix>_count`, then (only when non-empty, so absent distributions
/// cost no bytes) `<prefix>_p50_us`, `<prefix>_p99_us`,
/// `<prefix>_max_us`. Values are expected in microseconds.
#[must_use]
pub fn histogram_fields(mut b: ObjBuilder, prefix: &str, h: &Histogram) -> ObjBuilder {
    b = b.u64(&format!("{prefix}_count"), h.count());
    if !h.is_empty() {
        b = b
            .u64(&format!("{prefix}_p50_us"), h.percentile(50.0))
            .u64(&format!("{prefix}_p99_us"), h.percentile(99.0))
            .u64(&format!("{prefix}_max_us"), h.max());
    }
    b
}

/// A point-in-time server metrics snapshot, rendered by
/// [`metrics_line`] as one `{"frame":"metrics",...}` JSONL line with
/// Prometheus-style flat names.
///
/// The struct lives here (beside the other wire frames) so the line
/// format is golden-testable without a live server; the server
/// assembles one from its shared counters on each `metrics` command.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct MetricsSnapshot {
    /// Total requests handled (any command).
    pub requests: u64,
    /// Solve replies served from the exact report cache.
    pub hits: u64,
    /// Solve requests that missed the cache.
    pub misses: u64,
    /// Driver runs actually executed.
    pub runs: u64,
    /// Requests answered with an error frame.
    pub errors: u64,
    /// Sessions currently open.
    pub open_sessions: u64,
    /// Worker threads in the pool.
    pub workers: u64,
    /// Worker jobs that panicked (contained, worker survived).
    pub worker_panics: u64,
    /// Jobs submitted but not yet picked up by a worker.
    pub queue_depth: u64,
    /// High-water mark of `queue_depth` over the server's life.
    pub queue_depth_high_water: u64,
    /// Ready entries in the report cache.
    pub cache_entries: u64,
    /// Total bytes of all ready cached replies.
    pub cache_bytes: u64,
    /// Entries evicted from the cache (LRU) over the server's life.
    pub cache_evictions: u64,
    /// Request latency (µs) for solves answered by a cold driver run.
    pub latency_cold_us: Histogram,
    /// Request latency (µs) for solves served from the cache.
    pub latency_hit_us: Histogram,
    /// Request latency (µs) for solves that waited on another
    /// session's in-flight run (single-flight pending wait).
    pub latency_pending_us: Histogram,
    /// Request latency (µs) for requests answered with an error frame.
    pub latency_error_us: Histogram,
    /// Time (µs) jobs spent queued before a worker picked them up.
    pub queue_wait_us: Histogram,
    /// Time (µs) workers spent executing jobs.
    pub worker_busy_us: Histogram,
    /// Driver runs per engine, as `(canonical engine name, count)`
    /// pairs; rendered name-sorted as `runs_engine_<name>` fields.
    pub engine_runs: Vec<(String, u64)>,
}

/// Renders a [`MetricsSnapshot`] as one JSONL line (no trailing
/// newline). Field order is fixed and golden-tested; counters first,
/// then histogram blocks, then the name-sorted per-engine run counts.
pub fn metrics_line(m: &MetricsSnapshot) -> String {
    let mut b = ObjBuilder::new()
        .str("frame", "metrics")
        .u64("requests_total", m.requests)
        .u64("hits_total", m.hits)
        .u64("misses_total", m.misses)
        .u64("runs_total", m.runs)
        .u64("errors_total", m.errors)
        .u64("open_sessions", m.open_sessions)
        .u64("workers", m.workers)
        .u64("worker_panics_total", m.worker_panics)
        .u64("queue_depth", m.queue_depth)
        .u64("queue_depth_high_water", m.queue_depth_high_water)
        .u64("cache_entries", m.cache_entries)
        .u64("cache_bytes", m.cache_bytes)
        .u64("cache_evictions_total", m.cache_evictions);
    b = histogram_fields(b, "latency_cold", &m.latency_cold_us);
    b = histogram_fields(b, "latency_hit", &m.latency_hit_us);
    b = histogram_fields(b, "latency_pending", &m.latency_pending_us);
    b = histogram_fields(b, "latency_error", &m.latency_error_us);
    b = histogram_fields(b, "queue_wait", &m.queue_wait_us);
    b = histogram_fields(b, "worker_busy", &m.worker_busy_us);
    let mut engines: Vec<&(String, u64)> = m.engine_runs.iter().collect();
    engines.sort_by(|a, b| a.0.cmp(&b.0));
    for (name, count) in engines {
        b = b.u64(
            &format!("runs_engine_{}", sanitize_metric_name(name)),
            *count,
        );
    }
    b.finish()
}

/// Renders a `trace` frame: the opt-in per-request phase wall breakdown
/// appended after a solve reply's `summary` (no trailing newline).
///
/// `outcome` is the request's cache disposition (`cold`, `hit`,
/// `pending`), `wall_us`/`queue_us` the request's server-side wall and
/// queue-wait time. The engine's recorder summary renders only when the
/// request actually ran a driver (`obs` is `Some`): phase wall totals,
/// then counters and gauges, all flat snake_case names.
pub fn trace_line(outcome: &str, wall_us: u64, queue_us: u64, obs: Option<&ObsSummary>) -> String {
    let mut b = ObjBuilder::new()
        .str("frame", "trace")
        .str("outcome", outcome)
        .u64("wall_us", wall_us)
        .u64("queue_us", queue_us);
    if let Some(s) = obs {
        for p in Phase::ALL {
            b = b.u64(&format!("phase_{}_us", p.name()), s.phase_us(p));
        }
        for c in Counter::ALL {
            b = b.u64(c.name(), s.counter(c));
        }
        for g in Gauge::ALL {
            b = b.u64(g.name(), s.gauge(g));
        }
    }
    b.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_roundtrip_scalars() {
        assert_eq!(Json::parse("null").unwrap(), Json::Null);
        assert_eq!(Json::parse(" true ").unwrap(), Json::Bool(true));
        assert_eq!(Json::parse("42").unwrap(), Json::U64(42));
        assert_eq!(
            Json::parse("18446744073709551615").unwrap(),
            Json::U64(u64::MAX)
        );
        assert_eq!(Json::parse("-7").unwrap(), Json::I64(-7));
        assert_eq!(Json::parse("1.5e3").unwrap(), Json::F64(1500.0));
        assert_eq!(
            Json::parse(r#""a\"b\\c\n\u0041\u00e9""#).unwrap(),
            Json::Str("a\"b\\c\nAé".to_string())
        );
    }

    #[test]
    fn json_rejects_garbage() {
        for bad in [
            "", "{", "}", "[1,", "{\"a\"}", "tru", "\"\\x\"", "1 2", "nan", "inf", "--3",
            "{\"a\":}", "\u{1}",
        ] {
            assert!(Json::parse(bad).is_err(), "accepted {bad:?}");
        }
    }

    #[test]
    fn json_depth_limit_holds() {
        let deep = "[".repeat(4000) + &"]".repeat(4000);
        assert!(Json::parse(&deep).is_err());
    }

    #[test]
    fn json_surrogate_pair() {
        assert_eq!(
            Json::parse(r#""\ud83e\udd80""#).unwrap(),
            Json::Str("🦀".to_string())
        );
    }

    #[test]
    fn obj_builder_escapes_and_orders() {
        let s = ObjBuilder::new()
            .str("a", "x\"y\n")
            .u64("b", 7)
            .bool("c", false)
            .opt_u64("d", None)
            .finish();
        assert_eq!(s, r#"{"a":"x\"y\n","b":7,"c":false,"d":null}"#);
        let v = Json::parse(&s).unwrap();
        assert_eq!(v.get("a").unwrap().as_str().unwrap(), "x\"y\n");
        assert!(v.get("d").unwrap().is_null());
    }

    #[test]
    fn frame_lines_roundtrip() {
        let frames = vec![
            Frame::Header(RunHeader {
                spec: "spec-v1 workload=duo-disk".to_string(),
                algorithm: "low-load".to_string(),
                n: 256,
                seed: u64::MAX,
                fault: "wan".to_string(),
                topology: "rr8".to_string(),
                schedule: "v2batched".to_string(),
                engine: "event-uniform-1-4".to_string(),
            }),
            Frame::Round(RoundMetrics {
                round: 0,
                vtime: 13, // != round: rendered explicitly and round-tripped
                pulls: 1,
                pushes: 2,
                max_node_work: 3,
                served: 4,
                msg_words: 5,
                total_load: 6,
                max_load: 7,
                halted: 8,
                offline: 9,
                dropped: 10,
                delayed: 11,
            }),
            Frame::Summary(RunSummary {
                rounds: 22,
                all_halted: true,
                stop_cause: "all-halted".to_string(),
                total_pulls: 100,
                total_pushes: 50,
                total_msg_words: 150,
                dropped: 1,
                delayed: 2,
                offline_node_rounds: 3,
                first_candidate_round: Some(5),
                consensus: Some("med:r2=100.0".to_string()),
                degradation: Degradation::default(),
            }),
            Frame::Error(WireError {
                code: 204,
                kind: "unknown-workload".to_string(),
                detail: "no workload named \"nope\"".to_string(),
            }),
        ];
        for f in &frames {
            let line = f.to_line();
            assert_eq!(&Frame::parse(&line).unwrap(), f, "line: {line}");
        }
        let doc: String = frames.iter().map(|f| f.to_line() + "\n").collect();
        assert_eq!(parse_frames(&doc).unwrap(), frames);
    }

    #[test]
    fn degraded_summaries_roundtrip_and_zero_degradation_is_invisible() {
        let base = RunSummary {
            rounds: 9,
            all_halted: false,
            stop_cause: "max-rounds".to_string(),
            total_pulls: 4,
            total_pushes: 2,
            total_msg_words: 6,
            dropped: 1,
            delayed: 0,
            offline_node_rounds: 0,
            first_candidate_round: None,
            consensus: None,
            degradation: Degradation::default(),
        };
        // Zero degradation must not add any key: the line is what a
        // pre-degradation build rendered (exact-cache compatibility).
        let clean = Frame::Summary(base.clone()).to_line();
        for key in [
            "rounds_over_budget",
            "partitioned_rounds",
            "unhealed_partition",
            "byzantine_exposures",
            "link_cuts",
        ] {
            assert!(!clean.contains(key), "{key} leaked into {clean}");
        }
        assert_eq!(Frame::parse(&clean).unwrap(), Frame::Summary(base.clone()));

        let degraded = RunSummary {
            degradation: Degradation {
                rounds_over_budget: 9,
                partitioned_rounds: 5,
                unhealed_partition: true,
                byzantine_exposures: 17,
                link_cuts: 40,
            },
            ..base
        };
        let line = Frame::Summary(degraded.clone()).to_line();
        assert!(line.contains("\"partitioned_rounds\":5"), "{line}");
        assert!(line.contains("\"unhealed_partition\":true"), "{line}");
        assert_eq!(Frame::parse(&line).unwrap(), Frame::Summary(degraded));
    }

    #[test]
    fn metrics_line_is_flat_parseable_json() {
        let mut m = MetricsSnapshot {
            requests: 5,
            hits: 2,
            misses: 3,
            runs: 3,
            ..MetricsSnapshot::default()
        };
        m.latency_cold_us.record(900);
        m.engine_runs = vec![("round-sync".to_string(), 2), ("event-unit".to_string(), 1)];
        let line = metrics_line(&m);
        let v = Json::parse(&line).expect("metrics line parses");
        assert_eq!(v.get("frame").unwrap().as_str(), Some("metrics"));
        assert_eq!(v.get("requests_total").unwrap().as_u64(), Some(5));
        assert_eq!(v.get("latency_cold_count").unwrap().as_u64(), Some(1));
        assert_eq!(v.get("latency_cold_max_us").unwrap().as_u64(), Some(900));
        // Empty histograms render only their count.
        assert_eq!(v.get("latency_hit_count").unwrap().as_u64(), Some(0));
        assert!(v.get("latency_hit_p50_us").is_none());
        // Engine names are sanitized and sorted.
        assert_eq!(v.get("runs_engine_event_unit").unwrap().as_u64(), Some(1));
        assert_eq!(v.get("runs_engine_round_sync").unwrap().as_u64(), Some(2));
        assert!(line.find("runs_engine_event_unit") < line.find("runs_engine_round_sync"));
        // The tag routes through UnknownFrame for pre-metrics readers.
        assert!(matches!(
            Frame::parse(&line),
            Err(FrameError::UnknownFrame(tag)) if tag == "metrics"
        ));
    }

    #[test]
    fn trace_line_renders_phases_only_for_real_runs() {
        let hit = trace_line("hit", 120, 0, None);
        let v = Json::parse(&hit).expect("trace line parses");
        assert_eq!(v.get("frame").unwrap().as_str(), Some("trace"));
        assert_eq!(v.get("outcome").unwrap().as_str(), Some("hit"));
        assert_eq!(v.get("wall_us").unwrap().as_u64(), Some(120));
        assert!(v.get("phase_serve_us").is_none(), "no run, no phases");

        let mut obs = ObsSummary::default();
        obs.phase_nanos[Phase::Serve.index()] = 42_000;
        obs.counters[Counter::EventPops.index()] = 7;
        obs.gauges[Gauge::HeapDepth.index()] = 11;
        let cold = trace_line("cold", 950, 30, Some(&obs));
        let v = Json::parse(&cold).expect("trace line parses");
        assert_eq!(v.get("queue_us").unwrap().as_u64(), Some(30));
        assert_eq!(v.get("phase_serve_us").unwrap().as_u64(), Some(42));
        assert_eq!(v.get("event_pops").unwrap().as_u64(), Some(7));
        assert_eq!(v.get("heap_depth").unwrap().as_u64(), Some(11));
        assert!(matches!(
            Frame::parse(&cold),
            Err(FrameError::UnknownFrame(tag)) if tag == "trace"
        ));
    }

    #[test]
    fn metric_names_sanitize_to_flat_tokens() {
        assert_eq!(sanitize_metric_name("round-sync"), "round_sync");
        assert_eq!(
            sanitize_metric_name("event-uniform-1-4"),
            "event_uniform_1_4"
        );
        assert_eq!(sanitize_metric_name("A b.c"), "a_b_c");
    }

    #[test]
    fn frame_parse_rejects_unknown_and_mistyped() {
        assert!(matches!(
            Frame::parse(r#"{"frame":"stats","hits":1}"#),
            Err(FrameError::UnknownFrame(tag)) if tag == "stats"
        ));
        assert!(matches!(
            Frame::parse(r#"{"frame":"round","round":"zero"}"#),
            Err(FrameError::Field {
                frame: "round",
                field: "round"
            })
        ));
        assert_eq!(Frame::parse("[]"), Err(FrameError::NotAnObject));
        assert_eq!(Frame::parse("{}"), Err(FrameError::MissingTag));
    }
}
