//! Reusable per-round buffers: the round engine's memory model.
//!
//! [`Network::round`](crate::Network::round) used to rebuild every
//! per-node buffer (queries, responses, inboxes, push lists, the
//! offline scan) from scratch each round — `O(n)` heap allocations per
//! round even when nothing happened. `RoundScratch` owns all of them
//! for the lifetime of the network: each round `clear()`s and refills
//! in place, so steady-state simulation performs **zero heap
//! allocations** under the [`Perfect`](crate::fault::Perfect) fault
//! model (verified by the `alloc_steady_state` integration test and
//! the `round_engine` micro-benchmark).
//!
//! Buffer reuse cannot perturb results: every RNG stream is derived
//! from `(seed, round, node, phase)` alone (see [`crate::rng`]), and
//! the engine clears each buffer before any phase reads or writes it,
//! so the values flowing through the round are bit-identical to the
//! rebuild-everything engine. The pinned pre-fault trajectories in the
//! workspace's `tests/faults.rs` enforce this.

use crate::obs::{Counter, Phase, Recorder};
use crate::protocol::{Protocol, Response};
use crate::rng::{BatchedSampler, BatchedUniform};
use crate::topology::Adjacency;

/// Per-node phase-2 accounting, filled by the serve pass so the engine
/// never re-walks the response rows to count work: `served`/`words`
/// count responses *sent* (the paper's accounting — a response later
/// lost in transit still cost the server work and bandwidth), while
/// `dropped` itemizes the in-transit losses.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ServeStats {
    /// Pull requests served with a message (including later-lost ones).
    pub served: u64,
    /// Words of all served responses (including later-lost ones).
    pub words: u64,
    /// Served responses the fault model lost in transit (including
    /// corrupted ones the puller discarded, itemized under
    /// [`ServeStats::byzantine`]).
    pub dropped: u64,
    /// Pull requests severed by a link-level fault
    /// ([`FaultModel::cuts_pull`](crate::fault::FaultModel::cuts_pull))
    /// before reaching their target — never served, no work done.
    pub cut: u64,
    /// Served responses the puller received but discarded as corrupted
    /// ([`FaultModel::corrupts_response`](crate::fault::FaultModel::corrupts_response)).
    pub byzantine: u64,
}

/// A fixed-capacity bitset over `0..len`, reused across rounds for the
/// per-node offline scan (one bit per node instead of one `bool` byte,
/// so clearing 2^17 nodes touches 2 KiB, not 128 KiB).
#[derive(Clone, Debug, Default)]
pub struct BitSet {
    words: Vec<u64>,
    len: usize,
}

impl BitSet {
    /// A cleared bitset with capacity for `len` bits.
    pub fn with_len(len: usize) -> Self {
        BitSet {
            words: vec![0; len.div_ceil(64)],
            len,
        }
    }

    /// Number of addressable bits.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the bitset addresses zero bits.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Clears every bit (no deallocation).
    pub fn clear(&mut self) {
        self.words.fill(0);
    }

    /// Reads bit `i`.
    #[inline]
    pub fn get(&self, i: usize) -> bool {
        debug_assert!(i < self.len);
        self.words[i / 64] & (1 << (i % 64)) != 0
    }

    /// Sets bit `i`.
    #[inline]
    pub fn set(&mut self, i: usize) {
        debug_assert!(i < self.len);
        self.words[i / 64] |= 1 << (i % 64);
    }

    /// Number of set bits.
    pub fn count_ones(&self) -> u64 {
        self.words.iter().map(|w| u64::from(w.count_ones())).sum()
    }

    /// The backing words, 64 bits each (bit `i` lives in word `i / 64`).
    /// Exposed so the offline scan can be filled one whole word per
    /// parallel task without data races.
    pub fn words_mut(&mut self) -> &mut [u64] {
        &mut self.words
    }
}

/// All per-round working memory of a [`crate::Network`], allocated once
/// at construction and reused (cleared, never freed) every round.
///
/// Row `i` of every field belongs to node `i`, which is what lets the
/// parallel stepping path hand each node its own `&mut` row
/// (`par_iter_mut` over pre-sized rows) while remaining byte-identical
/// to sequential stepping.
#[derive(Debug)]
pub(crate) struct RoundScratch<P: Protocol> {
    /// Phase 0: which nodes the fault model took offline this round.
    pub offline: BitSet,
    /// Phase 1 output: node `i`'s pull requests.
    pub queries: Vec<Vec<P::Query>>,
    /// Phase 2 output: node `i`'s pull responses, index-aligned with
    /// `queries[i]` (`None` = failed pull).
    pub responses: Vec<Vec<Option<Response<P::Msg>>>>,
    /// Phase 2 accounting for node `i`'s pulls (filled during serving,
    /// so no extra pass over the response rows is needed).
    pub serve_stats: Vec<ServeStats>,
    /// `queries[i].len()`, recorded as the queries are emitted.
    pub pull_counts: Vec<u64>,
    /// Under [`RngSchedule::V2Batched`](crate::rng::RngSchedule): node
    /// `i`'s pull targets, index-aligned with `queries[i]`, filled in
    /// one batched sweep between phases 1 and 2 (unused — left empty —
    /// under `V1Compat`, whose targets come from per-node streams).
    /// Always resolved node ids: non-complete topologies draw
    /// neighbor-list indices and map them through the adjacency arena
    /// during the sweep.
    pub pull_targets: Vec<Vec<u32>>,
    /// Phase 3 output: node `i`'s emitted pushes (drained into inboxes
    /// or the delay queue during delivery).
    pub pushes: Vec<Vec<P::Msg>>,
    /// Phase 3 output: whether node `i` halted in `compute`.
    pub compute_halts: Vec<bool>,
    /// Under [`RngSchedule::V2Batched`](crate::rng::RngSchedule): node
    /// `i`'s push destinations, index-aligned with `pushes[i]`, filled
    /// in one batched sweep between phases 3 and 4 (unused under
    /// `V1Compat`).
    pub push_dests: Vec<Vec<u32>>,
    /// Phase 4 input: messages delivered to node `i` this round.
    pub inboxes: Vec<Vec<P::Msg>>,
    /// Phase 4 output: whether node `i` halted in `absorb`.
    pub absorb_halts: Vec<bool>,
}

/// Selects the key schedule one refill sweep consumes: the run seed
/// plus the (round, phase) pair that domain-separates this sweep's
/// keystream from every other draw in the run.
#[derive(Clone, Copy)]
pub(crate) struct RefillKeys {
    /// The run seed.
    pub seed: u64,
    /// The round whose destinations are being refilled.
    pub round: u64,
    /// Phase tag (`phase::PULL_TARGET` or `phase::PUSH_DEST`).
    pub phase: u64,
}

/// One V2 batched refill sweep: fills destination `rows` (pull targets
/// or push destinations) from a single per-round key schedule, consumed
/// in row order — `rows[i]` gets `counts[i]` draws. Under a
/// non-complete topology each draw is a neighbor-list index resolved
/// through the CSR arena, so rows always hold final node ids.
///
/// The sweep is recorded as a [`Phase::Refill`] span (with
/// [`Counter::RefillRows`] counting the draws); recording only reads
/// values the sweep computed anyway, so an attached recorder cannot
/// perturb the keystream or the rows.
pub(crate) fn refill_dest_rows(
    rows: &mut [Vec<u32>],
    counts: &mut dyn Iterator<Item = usize>,
    keys: RefillKeys,
    n: usize,
    adj: Option<&Adjacency>,
    rec: &mut dyn Recorder,
) {
    let RefillKeys { seed, round, phase } = keys;
    rec.span_start(Phase::Refill);
    let mut drawn: u64 = 0;
    match adj {
        None => {
            let mut sampler = BatchedUniform::new(seed, round, phase, n);
            for row in rows.iter_mut() {
                let count = counts.next().unwrap_or(0);
                row.clear();
                for _ in 0..count {
                    row.push(sampler.next_index() as u32);
                }
                drawn += count as u64;
            }
        }
        Some(a) => {
            let mut sampler = BatchedSampler::new(seed, round, phase);
            for (i, row) in rows.iter_mut().enumerate() {
                let count = counts.next().unwrap_or(0);
                row.clear();
                let nbrs = a.row(i);
                for _ in 0..count {
                    row.push(nbrs[sampler.next_in(nbrs.len())]);
                }
                drawn += count as u64;
            }
        }
    }
    rec.add(Counter::RefillRows, drawn);
    rec.span_end(Phase::Refill);
}

impl<P: Protocol> RoundScratch<P> {
    /// Scratch for an `n`-node network, with every buffer empty.
    pub fn new(n: usize) -> Self {
        RoundScratch {
            offline: BitSet::with_len(n),
            queries: (0..n).map(|_| Vec::new()).collect(),
            responses: (0..n).map(|_| Vec::new()).collect(),
            serve_stats: vec![ServeStats::default(); n],
            pull_counts: vec![0; n],
            pull_targets: (0..n).map(|_| Vec::new()).collect(),
            pushes: (0..n).map(|_| Vec::new()).collect(),
            compute_halts: vec![false; n],
            push_dests: (0..n).map(|_| Vec::new()).collect(),
            inboxes: (0..n).map(|_| Vec::new()).collect(),
            absorb_halts: vec![false; n],
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bitset_set_get_clear() {
        let mut b = BitSet::with_len(130);
        assert_eq!(b.len(), 130);
        assert!(!b.is_empty());
        for i in [0, 1, 63, 64, 65, 128, 129] {
            assert!(!b.get(i));
            b.set(i);
            assert!(b.get(i));
        }
        assert_eq!(b.count_ones(), 7);
        b.clear();
        assert_eq!(b.count_ones(), 0);
        assert!(!b.get(64));
    }

    #[test]
    fn bitset_words_cover_all_bits() {
        let mut b = BitSet::with_len(65);
        assert_eq!(b.words_mut().len(), 2);
        b.words_mut()[1] = 1;
        assert!(b.get(64));
        assert!(BitSet::with_len(0).is_empty());
    }
}
