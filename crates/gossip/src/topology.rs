//! Pluggable communication topologies: who may gossip with whom.
//!
//! The paper's network model is the *complete* graph — every push and
//! pull targets a node drawn uniformly at random from **all** `n`
//! nodes (self included). Real deployments gossip over overlays:
//! structured hypercubes, random regular graphs, rings, grids. A
//! [`Topology`] makes the neighbor relation a pluggable, versioned
//! seam alongside [`RngSchedule`](crate::rng::RngSchedule) and
//! [`FaultModel`](crate::fault::FaultModel): the engine draws every
//! destination **uniformly from the drawing node's neighbor set**
//! instead of from `0..n`.
//!
//! ## Contract
//!
//! Conceptually a topology is a map from `(node, round, draw-index)`
//! to a peer drawn uniformly from `neighbors(node)`. Concretely it is
//! split into two halves so the hot path stays zero-alloc:
//!
//! * [`Topology::build`] runs **once per run** (at
//!   [`Network::new`](crate::Network::new)) and returns the full
//!   neighbor relation as a flat CSR-style [`Adjacency`] arena —
//!   `None` for the complete graph, whose "arena" would be the
//!   quadratic all-pairs relation;
//! * the round engine performs the per-draw uniform selection over the
//!   prebuilt neighbor rows, through the same versioned
//!   [`RngSchedule`](crate::rng::RngSchedule) paths as the complete
//!   graph (per-node streams under `V1Compat`, one batched Lemire
//!   sweep per `(seed, round, phase)` under `V2Batched`).
//!
//! Because the arena is immutable after construction and every draw is
//! a pure function of `(seed, round, node, phase, draw-index)`,
//! simulations remain bit-identical across sequential and parallel
//! stepping and across reruns, and a run stays a deterministic
//! function of (seed, protocol, fault model, schedule, **topology**).
//!
//! ## Why `Complete` is pin-stable
//!
//! [`Complete`] answers [`Topology::is_complete`] with `true` and
//! builds no arena; the engine then takes exactly the pre-topology
//! draw path (node ids straight from the destination streams), so
//! every historical pinned trajectory reproduces untouched under both
//! schedules. Non-complete topologies draw *neighbor-list indices*
//! from the same streams — a different (but equally deterministic)
//! bitstream, pinned separately.
//!
//! ## Built-ins
//!
//! | topology | neighbor set |
//! |---|---|
//! | [`Complete`] | all `n` nodes, self included (the paper's model; the default) |
//! | [`Hypercube`] | bit-flip neighbors on the dimension-⌈log₂ n⌉ cube (the overlay assumed by the analytic hypercube baseline) |
//! | [`RandomRegular`] | a seeded pairing-model random `d`-regular graph, built once per run |
//! | [`Ring`] | the `k` nearest neighbors on each side of a cycle |
//! | [`Torus2D`] | the 4-neighborhood of a two-dimensional wrap-around grid |
//!
//! Every builder guarantees a non-empty neighbor row for every node
//! (degenerate sizes fall back to self-loops), so a draw can never
//! face an empty outcome set.

use crate::rng::derive_rng;
use rand::Rng;
use std::fmt;
use std::sync::Arc;

/// Mixed into the master seed before deriving topology-construction
/// streams (the [`RandomRegular`] pairing model), so building an
/// overlay never collides with the simulator's per-phase streams, a
/// protocol's custom streams, or the fault streams derived from the
/// same seed (ASCII `"topology"`).
pub const TOPOLOGY_SEED_MIX: u64 = 0x746F_706F_6C6F_6779;

/// A node's neighbor relation for one run, stored as a flat CSR-style
/// arena: `row(i)` is the slice of node ids that node `i` may gossip
/// with. Built once per run by [`Topology::build`] and then only read,
/// so steady-state rounds stay zero-alloc and the Rayon stepping path
/// can share it without synchronization.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Adjacency {
    /// Row boundaries: node `i`'s neighbors live at
    /// `neighbors[offsets[i]..offsets[i + 1]]`.
    offsets: Vec<u32>,
    /// All neighbor lists, concatenated in node order.
    neighbors: Vec<u32>,
}

impl Adjacency {
    /// Builds the arena from per-node neighbor lists.
    ///
    /// # Panics
    /// Panics if any list is empty (a node with no neighbors could
    /// never complete a draw) or names a node outside `0..n`.
    pub fn from_rows(rows: &[Vec<u32>]) -> Self {
        let n = rows.len() as u32;
        let mut offsets = Vec::with_capacity(rows.len() + 1);
        let mut neighbors = Vec::with_capacity(rows.iter().map(Vec::len).sum());
        offsets.push(0u32);
        for (i, row) in rows.iter().enumerate() {
            assert!(!row.is_empty(), "node {i} has no neighbors");
            for &v in row {
                assert!(v < n, "node {i} lists out-of-range neighbor {v}");
                neighbors.push(v);
            }
            offsets.push(neighbors.len() as u32);
        }
        Adjacency { offsets, neighbors }
    }

    /// Number of nodes the arena covers.
    pub fn n(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Node `i`'s neighbors (always non-empty).
    #[inline]
    pub fn row(&self, i: usize) -> &[u32] {
        &self.neighbors[self.offsets[i] as usize..self.offsets[i + 1] as usize]
    }

    /// Node `i`'s degree.
    #[inline]
    pub fn degree(&self, i: usize) -> usize {
        (self.offsets[i + 1] - self.offsets[i]) as usize
    }

    /// Whether `(from, to)` is an edge of the relation.
    pub fn contains(&self, from: usize, to: u32) -> bool {
        self.row(from).contains(&to)
    }

    /// Total number of stored (directed) edges.
    pub fn edge_count(&self) -> usize {
        self.neighbors.len()
    }
}

/// A pluggable communication topology; see the [module docs](self) for
/// the contract and the built-ins.
pub trait Topology: Send + Sync + fmt::Debug {
    /// Short display name, recorded in run reports and perf baselines
    /// (stable across parameter choices — parameters are part of the
    /// run's configuration, not its key).
    fn name(&self) -> &'static str;

    /// Whether this is the complete graph. The engine then skips the
    /// arena entirely and draws node ids straight from the destination
    /// streams — the pre-topology draw path, bit-identical to every
    /// historical pinned trajectory.
    fn is_complete(&self) -> bool {
        false
    }

    /// Builds the neighbor arena for an `n`-node run. `None` means the
    /// complete graph (must match [`Topology::is_complete`]). `seed`
    /// is the run's master seed; randomized constructions must derive
    /// their streams through [`TOPOLOGY_SEED_MIX`] so the overlay is a
    /// pure function of `(topology, n, seed)` and independent of every
    /// other stream of the run.
    fn build(&self, n: usize, seed: u64) -> Option<Adjacency>;
}

/// Conversion into a shared topology handle, accepted by
/// [`crate::NetworkConfig::topology`] and the driver-level builders;
/// mirrors [`crate::fault::IntoFaultModel`].
pub trait IntoTopology {
    /// Converts `self` into a shared topology.
    fn into_topology(self) -> Arc<dyn Topology>;
}

impl<T: Topology + 'static> IntoTopology for T {
    fn into_topology(self) -> Arc<dyn Topology> {
        Arc::new(self)
    }
}

impl IntoTopology for Arc<dyn Topology> {
    fn into_topology(self) -> Arc<dyn Topology> {
        self
    }
}

/// Degenerate sizes (n = 1, or parameters that would isolate a node)
/// fall back to a self-loop so every row stays drawable.
fn self_loop_rows(n: usize) -> Vec<Vec<u32>> {
    (0..n as u32).map(|i| vec![i]).collect()
}

// ---------------------------------------------------------------------------
// Complete
// ---------------------------------------------------------------------------

/// The paper's complete graph (the default): every draw targets a node
/// chosen uniformly from all `n` nodes, **self included** — exactly
/// the pre-topology engine, bit-identical under both schedules.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct Complete;

impl Topology for Complete {
    fn name(&self) -> &'static str {
        "complete"
    }
    fn is_complete(&self) -> bool {
        true
    }
    fn build(&self, _n: usize, _seed: u64) -> Option<Adjacency> {
        None
    }
}

// ---------------------------------------------------------------------------
// Hypercube
// ---------------------------------------------------------------------------

/// The dimension-⌈log₂ n⌉ hypercube: node `i`'s neighbors are the ids
/// `i ^ (1 << b)` for each bit `b` below the dimension (ids ≥ `n` are
/// skipped when `n` is not a power of two, so every edge connects two
/// real nodes). This is the overlay the analytic
/// hypercube-emulated Clarkson baseline charges its `O(log n)` rounds
/// against, now expressible as an actual gossip substrate.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct Hypercube;

impl Topology for Hypercube {
    fn name(&self) -> &'static str {
        "hypercube"
    }
    fn build(&self, n: usize, _seed: u64) -> Option<Adjacency> {
        if n <= 1 {
            return Some(Adjacency::from_rows(&self_loop_rows(n)));
        }
        let dim = (usize::BITS - (n - 1).leading_zeros()) as usize; // ⌈log2 n⌉
        let rows: Vec<Vec<u32>> = (0..n)
            .map(|i| {
                let row: Vec<u32> = (0..dim)
                    .map(|b| i ^ (1 << b))
                    .filter(|&v| v < n)
                    .map(|v| v as u32)
                    .collect();
                // n not a power of two can strand a node whose every
                // bit-flip lands beyond n only when n = 1 (handled
                // above); still, keep the guarantee explicit.
                if row.is_empty() {
                    vec![i as u32]
                } else {
                    row
                }
            })
            .collect();
        Some(Adjacency::from_rows(&rows))
    }
}

// ---------------------------------------------------------------------------
// Random regular
// ---------------------------------------------------------------------------

/// A seeded random `d`-regular graph from the pairing (configuration)
/// model, built once per run: `d` stubs per node are shuffled and
/// paired, then the handful of self-loops and parallel edges the
/// pairing produces (expected `O(d²)`, independent of `n`) are removed
/// by degree-preserving edge swaps — a bad edge `(a, b)` and a random
/// good edge `(c, d)` are rewired to `(a, d)`, `(c, b)` whenever that
/// creates no new conflict. The whole construction draws from one
/// [`TOPOLOGY_SEED_MIX`]-derived stream, so the overlay is a pure
/// function of `(d, n, seed)`. In the degenerate corner where the swap
/// budget runs out (`d` within a whisker of `n`), remaining bad edges
/// are dropped and the graph is *approximately* `d`-regular; `d` is
/// always clamped to `n - 1`, and `n·d` odd leaves one node at degree
/// `d - 1` (one stub has no partner).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RandomRegular(pub usize);

impl Topology for RandomRegular {
    fn name(&self) -> &'static str {
        "random-regular"
    }
    fn build(&self, n: usize, seed: u64) -> Option<Adjacency> {
        let d = self.0.max(1).min(n.saturating_sub(1));
        if n <= 1 || d == 0 {
            return Some(Adjacency::from_rows(&self_loop_rows(n)));
        }
        let mut rng = derive_rng(seed ^ TOPOLOGY_SEED_MIX, 0, n as u64, d as u64);
        // One stub per (node, slot); pairing consecutive entries of a
        // shuffled stub list is the standard configuration model.
        let mut stubs: Vec<u32> = (0..n as u32)
            .flat_map(|i| std::iter::repeat_n(i, d))
            .collect();
        for i in (1..stubs.len()).rev() {
            stubs.swap(i, rng.gen_range(0..=i));
        }
        let mut edges: Vec<(u32, u32)> = stubs.chunks_exact(2).map(|p| (p[0], p[1])).collect();
        let norm = |a: u32, b: u32| if a <= b { (a, b) } else { (b, a) };
        // `seen` holds every *good* (simple, first-occurrence) edge;
        // membership checks only, so the hasher's per-process salt
        // cannot influence the constructed graph.
        let mut seen: std::collections::HashSet<(u32, u32)> =
            std::collections::HashSet::with_capacity(edges.len());
        let mut bad: Vec<usize> = Vec::new();
        for (idx, &(a, b)) in edges.iter().enumerate() {
            if a == b || !seen.insert(norm(a, b)) {
                bad.push(idx);
            }
        }
        let mut budget = 200 * bad.len().max(1);
        while let Some(&idx) = bad.last() {
            if budget == 0 {
                break;
            }
            budget -= 1;
            let j = rng.gen_range(0..edges.len());
            // The partner must be a good edge (a bad one is not in
            // `seen` and must not donate endpoints), and the rewiring
            // must introduce no self-loop or duplicate.
            if j == idx || bad.contains(&j) {
                continue;
            }
            let (a, b) = edges[idx];
            let (c, dd) = edges[j];
            let e1 = norm(a, dd);
            let e2 = norm(c, b);
            if a == dd || c == b || e1 == e2 || seen.contains(&e1) || seen.contains(&e2) {
                continue;
            }
            seen.remove(&norm(c, dd));
            seen.insert(e1);
            seen.insert(e2);
            edges[idx] = (a, dd);
            edges[j] = (c, b);
            bad.pop();
        }
        let mut rows: Vec<Vec<u32>> = vec![Vec::with_capacity(d); n];
        for (idx, &(a, b)) in edges.iter().enumerate() {
            if bad.contains(&idx) {
                continue; // budget exhausted: drop the unrepairable edge
            }
            rows[a as usize].push(b);
            rows[b as usize].push(a);
        }
        for (i, row) in rows.iter_mut().enumerate() {
            if row.is_empty() {
                row.push(i as u32);
            }
        }
        Some(Adjacency::from_rows(&rows))
    }
}

// ---------------------------------------------------------------------------
// Ring
// ---------------------------------------------------------------------------

/// The `k`-nearest-neighbor ring: node `i` gossips with
/// `i ± 1, …, i ± k` (mod `n`), duplicates and self removed — the
/// classic low-degree, high-diameter overlay (diameter `Θ(n / k)`).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Ring(pub usize);

impl Topology for Ring {
    fn name(&self) -> &'static str {
        "ring"
    }
    fn build(&self, n: usize, _seed: u64) -> Option<Adjacency> {
        let k = self.0.max(1);
        if n <= 1 {
            return Some(Adjacency::from_rows(&self_loop_rows(n)));
        }
        let rows: Vec<Vec<u32>> = (0..n)
            .map(|i| {
                let mut row = Vec::with_capacity(2 * k.min(n - 1));
                for step in 1..=k.min(n / 2) {
                    row.push(((i + step) % n) as u32);
                    let back = ((i + n - step) % n) as u32;
                    if !row.contains(&back) {
                        row.push(back);
                    }
                }
                // k ≥ n/2 may still leave the antipode (even n) or a
                // remainder of the cycle uncovered when k > n/2.
                if k > n / 2 {
                    for step in (n / 2 + 1)..=k.min(n - 1) {
                        for v in [((i + step) % n) as u32, ((i + n - step) % n) as u32] {
                            if v != i as u32 && !row.contains(&v) {
                                row.push(v);
                            }
                        }
                    }
                }
                row
            })
            .collect();
        Some(Adjacency::from_rows(&rows))
    }
}

// ---------------------------------------------------------------------------
// 2-D torus
// ---------------------------------------------------------------------------

/// The two-dimensional wrap-around grid: nodes are laid out row-major
/// on a `w × h` grid with `w = ⌈√n⌉`, and each gossips with its
/// left/right/up/down neighbors, wrapping at the edges. When `n` is
/// not a perfect rectangle the last row is ragged; wrap-around then
/// stays within each (shortened) row and column, so every edge still
/// connects two real nodes.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct Torus2D;

impl Topology for Torus2D {
    fn name(&self) -> &'static str {
        "torus2d"
    }
    fn build(&self, n: usize, _seed: u64) -> Option<Adjacency> {
        if n <= 1 {
            return Some(Adjacency::from_rows(&self_loop_rows(n)));
        }
        let w = (n as f64).sqrt().ceil() as usize;
        let rows: Vec<Vec<u32>> = (0..n)
            .map(|i| {
                let (r, c) = (i / w, i % w);
                let row_len = w.min(n - r * w);
                // Rows of column c: all r' with r'·w + c < n.
                let col_len = (n - c).div_ceil(w);
                let mut row = Vec::with_capacity(4);
                let mut push = |v: usize| {
                    let v = v as u32;
                    if v != i as u32 && !row.contains(&v) {
                        row.push(v);
                    }
                };
                push(r * w + (c + 1) % row_len);
                push(r * w + (c + row_len - 1) % row_len);
                push(((r + 1) % col_len) * w + c);
                push(((r + col_len - 1) % col_len) * w + c);
                if row.is_empty() {
                    row.push(i as u32);
                }
                row
            })
            .collect();
        Some(Adjacency::from_rows(&rows))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_symmetric(adj: &Adjacency) {
        for i in 0..adj.n() {
            for &v in adj.row(i) {
                if v as usize != i {
                    assert!(
                        adj.contains(v as usize, i as u32),
                        "edge ({i}, {v}) has no reverse"
                    );
                }
            }
        }
    }

    fn assert_valid(adj: &Adjacency, n: usize) {
        assert_eq!(adj.n(), n);
        for i in 0..n {
            assert!(adj.degree(i) >= 1, "node {i} isolated");
            for &v in adj.row(i) {
                assert!((v as usize) < n);
            }
        }
    }

    #[test]
    fn complete_builds_no_arena() {
        assert!(Complete.is_complete());
        assert!(Complete.build(1024, 7).is_none());
        assert_eq!(Complete.name(), "complete");
    }

    #[test]
    fn hypercube_power_of_two_is_log_n_regular() {
        let n = 64;
        let adj = Hypercube.build(n, 0).expect("arena");
        assert_valid(&adj, n);
        assert_symmetric(&adj);
        for i in 0..n {
            assert_eq!(adj.degree(i), 6, "node {i}");
            for &v in adj.row(i) {
                assert_eq!((i ^ v as usize).count_ones(), 1, "edge ({i}, {v})");
            }
        }
        assert_eq!(adj.edge_count(), n * 6);
    }

    #[test]
    fn hypercube_ragged_n_skips_missing_ids() {
        let n = 100; // dim 7
        let adj = Hypercube.build(n, 0).expect("arena");
        assert_valid(&adj, n);
        assert_symmetric(&adj);
        for i in 0..n {
            assert!(adj.degree(i) <= 7);
            for &v in adj.row(i) {
                assert_eq!((i ^ v as usize).count_ones(), 1);
            }
        }
    }

    #[test]
    fn random_regular_is_regular_simple_and_seed_deterministic() {
        let n = 256;
        let adj = RandomRegular(8).build(n, 42).expect("arena");
        assert_valid(&adj, n);
        assert_symmetric(&adj);
        for i in 0..n {
            assert_eq!(adj.degree(i), 8, "node {i}");
            let mut row = adj.row(i).to_vec();
            row.sort_unstable();
            row.dedup();
            assert_eq!(row.len(), 8, "node {i} has parallel edges");
            assert!(!row.contains(&(i as u32)), "node {i} has a self-loop");
        }
        // Same (n, seed) ⇒ same overlay; different seed ⇒ different.
        assert_eq!(adj, RandomRegular(8).build(n, 42).expect("arena"));
        assert_ne!(adj, RandomRegular(8).build(n, 43).expect("arena"));
    }

    #[test]
    fn random_regular_clamps_excess_degree() {
        // d ≥ n is clamped to n - 1; tiny instances stay drawable.
        let adj = RandomRegular(10).build(4, 1).expect("arena");
        assert_valid(&adj, 4);
        for i in 0..4 {
            assert!(adj.degree(i) <= 3);
        }
    }

    #[test]
    fn ring_k_nearest_and_bounds() {
        let n = 12;
        let adj = Ring(2).build(n, 0).expect("arena");
        assert_valid(&adj, n);
        assert_symmetric(&adj);
        for i in 0..n {
            assert_eq!(adj.degree(i), 4);
            for &v in adj.row(i) {
                let fwd = (v as usize + n - i) % n;
                assert!(fwd <= 2 || fwd >= n - 2, "edge ({i}, {v}) too far");
            }
        }
        // k ≥ n/2 saturates to the complete-minus-self relation.
        let adj = Ring(40).build(9, 0).expect("arena");
        assert_valid(&adj, 9);
        for i in 0..9 {
            assert_eq!(adj.degree(i), 8, "node {i}");
        }
    }

    #[test]
    fn torus_perfect_square_is_4_regular() {
        let n = 16;
        let adj = Torus2D.build(n, 0).expect("arena");
        assert_valid(&adj, n);
        assert_symmetric(&adj);
        for i in 0..n {
            assert_eq!(adj.degree(i), 4, "node {i}");
        }
    }

    #[test]
    fn torus_ragged_n_stays_connected_and_symmetric() {
        for n in [2, 3, 5, 7, 10, 23, 50] {
            let adj = Torus2D.build(n, 0).expect("arena");
            assert_valid(&adj, n);
            assert_symmetric(&adj);
            // BFS connectivity from node 0.
            let mut seen = vec![false; n];
            let mut queue = vec![0usize];
            seen[0] = true;
            while let Some(u) = queue.pop() {
                for &v in adj.row(u) {
                    if !seen[v as usize] {
                        seen[v as usize] = true;
                        queue.push(v as usize);
                    }
                }
            }
            assert!(seen.iter().all(|&s| s), "torus n={n} disconnected");
        }
    }

    #[test]
    fn single_node_topologies_self_loop() {
        for topo in [
            &Hypercube as &dyn Topology,
            &RandomRegular(4),
            &Ring(3),
            &Torus2D,
        ] {
            let adj = topo.build(1, 9).expect("arena");
            assert_eq!(adj.row(0), &[0], "{}", topo.name());
        }
    }

    #[test]
    fn into_topology_shares_arcs_without_rewrapping() {
        let arc: Arc<dyn Topology> = Arc::new(Hypercube);
        let ptr = Arc::as_ptr(&arc);
        let converted = arc.into_topology();
        assert!(std::ptr::eq(ptr, Arc::as_ptr(&converted)));
        assert_eq!(Ring(2).into_topology().name(), "ring");
    }

    #[test]
    #[should_panic(expected = "no neighbors")]
    fn adjacency_rejects_isolated_nodes() {
        let _ = Adjacency::from_rows(&[vec![1], vec![]]);
    }

    #[test]
    #[should_panic(expected = "out-of-range")]
    fn adjacency_rejects_out_of_range_ids() {
        let _ = Adjacency::from_rows(&[vec![2], vec![0]]);
    }
}
