//! Zero-dependency observability: log-bucketed histograms, monotonic
//! span timers, and the `Recorder` seam the engines report into.
//!
//! The design constraint is the determinism contract: **recording can
//! never feed back into protocol state**. Every hook takes values the
//! engine already computed (wall times, queue depths, row counts) and
//! returns nothing, so the byte streams of a run are identical whether
//! a recorder is attached or not. The default [`NoopRecorder`] is
//! provably free in the two senses CI pins down:
//!
//! * **Zero allocation.** The no-op hooks have empty bodies, and a
//!   `Box<NoopRecorder>` is a zero-sized box — the steady-state
//!   allocation-count test runs unchanged through the recorder seam.
//! * **Zero bytes.** Recorded wall times are *execution metadata*, like
//!   [`effective parallelism`](crate::Network::effective_parallelism):
//!   they are excluded from the server's spec cache key and from every
//!   cached reply, so pinned trajectories and golden files are
//!   untouched.
//!
//! The concrete [`FlightRecorder`] keeps one fixed-size [`Histogram`]
//! per phase plus flat counter/gauge arrays — plain arrays, no
//! allocation after construction — and summarizes into an
//! [`ObsSummary`] for the driver's report and the server's `trace`
//! frame.

use std::time::Instant;

/// Number of buckets in a [`Histogram`]: bucket `i` counts values whose
/// bit length is `i` (bucket 0 holds exactly the value 0, bucket `i`
/// holds `2^(i-1) ..= 2^i - 1`), so 65 buckets cover all of `u64`.
pub const HISTOGRAM_BUCKETS: usize = 65;

/// A fixed-size log-bucketed histogram over `u64` values.
///
/// Buckets are powers of two (one bucket per bit length), stored in a
/// plain array: recording is branch-light, never allocates, and
/// [`merge`](Histogram::merge) is element-wise addition, so per-thread
/// histograms can be combined without locks. Exact `min`/`max`/`sum`
/// ride along; percentiles resolve to the upper bound of the bucket
/// holding the requested rank, clamped to the exact observed maximum
/// (so `p100` is exact and no percentile exceeds it).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Histogram {
    counts: [u64; HISTOGRAM_BUCKETS],
    total: u64,
    sum: u64,
    min: u64,
    max: u64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram::new()
    }
}

impl Histogram {
    /// An empty histogram.
    pub const fn new() -> Self {
        Histogram {
            counts: [0; HISTOGRAM_BUCKETS],
            total: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }

    /// The bucket index a value lands in: its bit length.
    #[inline]
    pub fn bucket_of(value: u64) -> usize {
        (64 - value.leading_zeros()) as usize
    }

    /// Inclusive lower bound of bucket `i` (0 for bucket 0, else
    /// `2^(i-1)`).
    pub fn bucket_floor(i: usize) -> u64 {
        debug_assert!(i < HISTOGRAM_BUCKETS);
        if i == 0 {
            0
        } else {
            1u64 << (i - 1)
        }
    }

    /// Inclusive upper bound of bucket `i` (0 for bucket 0, else
    /// `2^i - 1`, saturating at `u64::MAX` for the last bucket).
    pub fn bucket_ceil(i: usize) -> u64 {
        debug_assert!(i < HISTOGRAM_BUCKETS);
        if i == 0 {
            0
        } else {
            u64::MAX >> (64 - i)
        }
    }

    /// Records one value.
    #[inline]
    pub fn record(&mut self, value: u64) {
        self.counts[Self::bucket_of(value)] += 1;
        self.total += 1;
        self.sum = self.sum.saturating_add(value);
        self.min = self.min.min(value);
        self.max = self.max.max(value);
    }

    /// Number of recorded values.
    pub fn count(&self) -> u64 {
        self.total
    }

    /// Whether nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.total == 0
    }

    /// Sum of all recorded values (saturating).
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Smallest recorded value (0 when empty).
    pub fn min(&self) -> u64 {
        if self.total == 0 {
            0
        } else {
            self.min
        }
    }

    /// Largest recorded value (0 when empty).
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Folds another histogram into this one: counts add bucket-wise,
    /// `min`/`max`/`sum`/`count` combine exactly.
    pub fn merge(&mut self, other: &Histogram) {
        for (a, b) in self.counts.iter_mut().zip(other.counts.iter()) {
            *a += b;
        }
        self.total += other.total;
        self.sum = self.sum.saturating_add(other.sum);
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// The `p`-th percentile (`p` in `0.0 ..= 100.0`, clamped): the
    /// upper bound of the bucket holding the value of rank
    /// `ceil(p/100 · count)`, clamped to the exact observed maximum.
    /// Returns 0 on an empty histogram. `percentile(100.0)` is the
    /// exact maximum, so every recorded value is `<= p100`.
    pub fn percentile(&self, p: f64) -> u64 {
        if self.total == 0 {
            return 0;
        }
        let p = p.clamp(0.0, 100.0);
        let rank = ((p / 100.0) * self.total as f64).ceil() as u64;
        let rank = rank.clamp(1, self.total);
        let mut seen = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return Self::bucket_ceil(i).min(self.max);
            }
        }
        self.max
    }

    /// The raw bucket counts (index = bit length of the value).
    pub fn buckets(&self) -> &[u64; HISTOGRAM_BUCKETS] {
        &self.counts
    }
}

// ---------------------------------------------------------------------------
// The recorder seam
// ---------------------------------------------------------------------------

/// An instrumented engine phase (a named span).
///
/// The first five are the round engine's phases (the event engine keys
/// the same work under [`Phase::Tick`]); [`Phase::Refill`] is the
/// scratch-row batch-refill sweep shared by both schedules.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Phase {
    /// Phase 1: emit pull requests.
    Pull,
    /// Phase 2: serve pulls against the start-of-round snapshot.
    Serve,
    /// Phase 3: compute + emit pushes.
    Compute,
    /// Phase 4a: deliver pushes (inboxes + delay queue).
    Deliver,
    /// Phase 4b: absorb deliveries, decide halts.
    Absorb,
    /// The V2 batched scratch-row refill sweeps (pull targets and push
    /// destinations).
    Refill,
    /// One whole event-engine tick (dispatch loop).
    Tick,
}

impl Phase {
    /// Number of phases (the span arrays' fixed size).
    pub const COUNT: usize = 7;

    /// Every phase, in index order.
    pub const ALL: [Phase; Phase::COUNT] = [
        Phase::Pull,
        Phase::Serve,
        Phase::Compute,
        Phase::Deliver,
        Phase::Absorb,
        Phase::Refill,
        Phase::Tick,
    ];

    /// The phase's array index.
    #[inline]
    pub fn index(self) -> usize {
        self as usize
    }

    /// Flat snake_case name (used in wire frames and trend artifacts).
    pub fn name(self) -> &'static str {
        match self {
            Phase::Pull => "pull",
            Phase::Serve => "serve",
            Phase::Compute => "compute",
            Phase::Deliver => "deliver",
            Phase::Absorb => "absorb",
            Phase::Refill => "refill",
            Phase::Tick => "tick",
        }
    }
}

/// A monotonic counter the engines bump (sums).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Counter {
    /// Events popped off the event engine's heap.
    EventPops,
    /// Pushed messages that paid a finite-rate serialization stall
    /// ([`Link::serialization_ticks`](crate::event::Link::serialization_ticks) > 0).
    SerializationStalls,
    /// Scratch rows refilled by the V2 batch sweeps.
    RefillRows,
}

impl Counter {
    /// Number of counters (the counter array's fixed size).
    pub const COUNT: usize = 3;

    /// Every counter, in index order.
    pub const ALL: [Counter; Counter::COUNT] = [
        Counter::EventPops,
        Counter::SerializationStalls,
        Counter::RefillRows,
    ];

    /// The counter's array index.
    #[inline]
    pub fn index(self) -> usize {
        self as usize
    }

    /// Flat snake_case name (used in wire frames).
    pub fn name(self) -> &'static str {
        match self {
            Counter::EventPops => "event_pops",
            Counter::SerializationStalls => "serialization_stalls",
            Counter::RefillRows => "refill_rows",
        }
    }
}

/// A high-water gauge (the recorder keeps the maximum ever reported).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Gauge {
    /// Event-heap depth at tick start.
    HeapDepth,
    /// Events dispatched within a single tick.
    PopsPerTick,
}

impl Gauge {
    /// Number of gauges (the gauge array's fixed size).
    pub const COUNT: usize = 2;

    /// Every gauge, in index order.
    pub const ALL: [Gauge; Gauge::COUNT] = [Gauge::HeapDepth, Gauge::PopsPerTick];

    /// The gauge's array index.
    #[inline]
    pub fn index(self) -> usize {
        self as usize
    }

    /// Flat snake_case name (used in wire frames).
    pub fn name(self) -> &'static str {
        match self {
            Gauge::HeapDepth => "heap_depth",
            Gauge::PopsPerTick => "pops_per_tick",
        }
    }
}

/// The seam the engines report into.
///
/// Every method has an empty default body, so a disabled recorder costs
/// one virtual call per phase boundary and nothing else — no clock
/// reads, no arithmetic, no allocation. Implementations must never
/// influence engine behavior (the hooks receive copies and return
/// nothing, so the type system enforces most of this).
pub trait Recorder: Send {
    /// Whether this recorder actually records (used by callers to skip
    /// preparing values that are expensive to compute).
    fn enabled(&self) -> bool {
        false
    }

    /// A phase span begins now.
    fn span_start(&mut self, _phase: Phase) {}

    /// The phase span started by the matching
    /// [`span_start`](Recorder::span_start) ends now.
    fn span_end(&mut self, _phase: Phase) {}

    /// Adds `by` to a monotonic counter.
    fn add(&mut self, _counter: Counter, _by: u64) {}

    /// Reports a gauge observation; the recorder keeps the high-water
    /// maximum.
    fn high_water(&mut self, _gauge: Gauge, _value: u64) {}

    /// Snapshot of everything recorded so far (`None` for recorders
    /// that record nothing).
    fn summary(&self) -> Option<ObsSummary> {
        None
    }
}

/// The default recorder: records nothing, costs nothing.
#[derive(Clone, Copy, Debug, Default)]
pub struct NoopRecorder;

impl Recorder for NoopRecorder {}

/// Everything a [`FlightRecorder`] observed, as plain arrays indexed by
/// [`Phase`], [`Counter`], and [`Gauge`].
///
/// This is *execution metadata* in the sense of the determinism
/// contract: it describes how bytes were produced and never
/// participates in producing them — it is excluded from the server's
/// cache key and from all cached reply bytes.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ObsSummary {
    /// Total wall nanoseconds per phase.
    pub phase_nanos: [u64; Phase::COUNT],
    /// Completed spans per phase.
    pub phase_calls: [u64; Phase::COUNT],
    /// Longest single span per phase, in nanoseconds.
    pub phase_max_nanos: [u64; Phase::COUNT],
    /// Monotonic counter totals.
    pub counters: [u64; Counter::COUNT],
    /// Gauge high-water marks.
    pub gauges: [u64; Gauge::COUNT],
}

impl ObsSummary {
    /// Total wall microseconds for `phase`.
    pub fn phase_us(&self, phase: Phase) -> u64 {
        self.phase_nanos[phase.index()] / 1_000
    }

    /// A counter's total.
    pub fn counter(&self, c: Counter) -> u64 {
        self.counters[c.index()]
    }

    /// A gauge's high-water mark.
    pub fn gauge(&self, g: Gauge) -> u64 {
        self.gauges[g.index()]
    }

    /// Folds another summary into this one (spans and counters add,
    /// gauges keep the maximum).
    pub fn merge(&mut self, other: &ObsSummary) {
        for i in 0..Phase::COUNT {
            self.phase_nanos[i] += other.phase_nanos[i];
            self.phase_calls[i] += other.phase_calls[i];
            self.phase_max_nanos[i] = self.phase_max_nanos[i].max(other.phase_max_nanos[i]);
        }
        for i in 0..Counter::COUNT {
            self.counters[i] += other.counters[i];
        }
        for i in 0..Gauge::COUNT {
            self.gauges[i] = self.gauges[i].max(other.gauges[i]);
        }
    }
}

/// The concrete recorder: monotonic span timers feeding one log-bucketed
/// span [`Histogram`] per phase, plus flat counter and gauge arrays.
///
/// All storage is fixed-size and allocated at construction; recording
/// never allocates. Timing uses [`std::time::Instant`] (monotonic), and
/// by construction nothing recorded here can flow back into engine
/// state.
#[derive(Clone, Debug)]
pub struct FlightRecorder {
    started: [Option<Instant>; Phase::COUNT],
    spans_ns: [Histogram; Phase::COUNT],
    counters: [u64; Counter::COUNT],
    gauges: [u64; Gauge::COUNT],
}

impl Default for FlightRecorder {
    fn default() -> Self {
        FlightRecorder::new()
    }
}

impl FlightRecorder {
    /// A fresh recorder with empty histograms.
    pub fn new() -> Self {
        FlightRecorder {
            started: [None; Phase::COUNT],
            spans_ns: [const { Histogram::new() }; Phase::COUNT],
            counters: [0; Counter::COUNT],
            gauges: [0; Gauge::COUNT],
        }
    }

    /// The span-duration histogram (nanoseconds) for `phase`.
    pub fn spans(&self, phase: Phase) -> &Histogram {
        &self.spans_ns[phase.index()]
    }
}

impl Recorder for FlightRecorder {
    fn enabled(&self) -> bool {
        true
    }

    fn span_start(&mut self, phase: Phase) {
        self.started[phase.index()] = Some(Instant::now());
    }

    fn span_end(&mut self, phase: Phase) {
        if let Some(t0) = self.started[phase.index()].take() {
            let ns = u64::try_from(t0.elapsed().as_nanos()).unwrap_or(u64::MAX);
            self.spans_ns[phase.index()].record(ns);
        }
    }

    fn add(&mut self, counter: Counter, by: u64) {
        self.counters[counter.index()] += by;
    }

    fn high_water(&mut self, gauge: Gauge, value: u64) {
        let g = &mut self.gauges[gauge.index()];
        *g = (*g).max(value);
    }

    fn summary(&self) -> Option<ObsSummary> {
        let mut s = ObsSummary::default();
        for p in Phase::ALL {
            let h = &self.spans_ns[p.index()];
            s.phase_nanos[p.index()] = h.sum();
            s.phase_calls[p.index()] = h.count();
            s.phase_max_nanos[p.index()] = h.max();
        }
        s.counters = self.counters;
        s.gauges = self.gauges;
        Some(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_boundaries_are_powers_of_two() {
        assert_eq!(Histogram::bucket_of(0), 0);
        assert_eq!(Histogram::bucket_of(1), 1);
        assert_eq!(Histogram::bucket_of(2), 2);
        assert_eq!(Histogram::bucket_of(3), 2);
        assert_eq!(Histogram::bucket_of(4), 3);
        assert_eq!(Histogram::bucket_of(u64::MAX), 64);
        // Floors and ceilings tile u64 exactly.
        assert_eq!(Histogram::bucket_floor(0), 0);
        assert_eq!(Histogram::bucket_ceil(0), 0);
        for i in 1..HISTOGRAM_BUCKETS {
            assert_eq!(Histogram::bucket_floor(i), 1u64 << (i - 1), "floor {i}");
            if i < 64 {
                assert_eq!(Histogram::bucket_ceil(i), (1u64 << i) - 1, "ceil {i}");
            }
            // Every value in the bucket maps back to it.
            assert_eq!(Histogram::bucket_of(Histogram::bucket_floor(i)), i);
            assert_eq!(Histogram::bucket_of(Histogram::bucket_ceil(i)), i);
        }
        assert_eq!(Histogram::bucket_ceil(64), u64::MAX);
    }

    #[test]
    fn record_tracks_exact_min_max_sum_count() {
        let mut h = Histogram::new();
        assert!(h.is_empty());
        assert_eq!((h.min(), h.max(), h.sum(), h.count()), (0, 0, 0, 0));
        for v in [7, 0, 1_000_000, 3] {
            h.record(v);
        }
        assert_eq!(h.count(), 4);
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), 1_000_000);
        assert_eq!(h.sum(), 1_000_010);
        assert_eq!(h.buckets().iter().sum::<u64>(), 4);
    }

    #[test]
    fn percentiles_bound_their_rank_and_p100_is_exact() {
        let mut h = Histogram::new();
        for v in 1..=1000u64 {
            h.record(v);
        }
        // p50's rank-500 value is 500; its bucket (256..=511) caps at 511.
        let p50 = h.percentile(50.0);
        assert!((500..=511).contains(&p50), "p50 = {p50}");
        // p0 resolves to the first value's bucket ceiling.
        assert_eq!(h.percentile(0.0), 1);
        // p100 is the exact maximum, never the bucket ceiling.
        assert_eq!(h.percentile(100.0), 1000);
        // Percentiles are monotone in p.
        let mut prev = 0;
        for p in [0.0, 10.0, 25.0, 50.0, 75.0, 90.0, 99.0, 100.0] {
            let v = h.percentile(p);
            assert!(v >= prev, "p{p}: {v} < {prev}");
            prev = v;
        }
        assert_eq!(Histogram::new().percentile(50.0), 0);
    }

    #[test]
    fn merge_is_exact_bucketwise_addition() {
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        let mut all = Histogram::new();
        for v in [1, 5, 9, 120] {
            a.record(v);
            all.record(v);
        }
        for v in [0, 2, 2_048, u64::MAX] {
            b.record(v);
            all.record(v);
        }
        a.merge(&b);
        assert_eq!(a, all, "merge must equal recording the union");
        // Merging an empty histogram changes nothing.
        let before = a.clone();
        a.merge(&Histogram::new());
        assert_eq!(a, before);
    }

    #[test]
    fn flight_recorder_spans_counters_gauges() {
        let mut r = FlightRecorder::new();
        assert!(r.enabled());
        r.span_start(Phase::Serve);
        r.span_end(Phase::Serve);
        // Unmatched end is ignored, not miscounted.
        r.span_end(Phase::Serve);
        r.add(Counter::RefillRows, 3);
        r.add(Counter::RefillRows, 4);
        r.high_water(Gauge::HeapDepth, 10);
        r.high_water(Gauge::HeapDepth, 4);
        let s = r.summary().expect("flight recorder summarizes");
        assert_eq!(s.phase_calls[Phase::Serve.index()], 1);
        assert_eq!(s.counter(Counter::RefillRows), 7);
        assert_eq!(s.gauge(Gauge::HeapDepth), 10);
        assert_eq!(s.phase_calls[Phase::Pull.index()], 0);
        assert_eq!(r.spans(Phase::Serve).count(), 1);
    }

    #[test]
    fn noop_recorder_reports_nothing() {
        let mut r = NoopRecorder;
        assert!(!r.enabled());
        r.span_start(Phase::Tick);
        r.span_end(Phase::Tick);
        r.add(Counter::EventPops, 5);
        r.high_water(Gauge::PopsPerTick, 5);
        assert!(r.summary().is_none());
    }

    #[test]
    fn summary_merge_adds_spans_and_maxes_gauges() {
        let mut a = ObsSummary::default();
        a.phase_nanos[0] = 100;
        a.phase_calls[0] = 2;
        a.phase_max_nanos[0] = 80;
        a.counters[0] = 5;
        a.gauges[0] = 7;
        let mut b = ObsSummary::default();
        b.phase_nanos[0] = 50;
        b.phase_calls[0] = 1;
        b.phase_max_nanos[0] = 90;
        b.counters[0] = 3;
        b.gauges[0] = 4;
        a.merge(&b);
        assert_eq!(a.phase_nanos[0], 150);
        assert_eq!(a.phase_calls[0], 3);
        assert_eq!(a.phase_max_nanos[0], 90);
        assert_eq!(a.counters[0], 8);
        assert_eq!(a.gauges[0], 7);
    }
}
